//! Quickstart: a complete trip through the data lake.
//!
//! Ingest heterogeneous raw files, watch the ingestion tier extract
//! metadata, promote data through zones, discover related tables, and run
//! a federated query — the whole Fig. 2 architecture in ~100 lines.
//!
//! Run with: `cargo run --example quickstart`

use lake::users::Role;
use lake::DataLake;
use lake_query::explore;

fn main() -> lake_core::Result<()> {
    let mut dl = DataLake::new();
    dl.access.add_user("omar", Role::Operations);
    dl.access.add_user("ada", Role::Scientist);

    println!("=== 1. Ingestion tier: load raw files in their original formats ===");
    let customers = dl.ingest_file(
        "omar",
        "crm/customers.csv",
        b"customer_id,city,signup\nc1,delft,2024-01-02\nc2,paris,2024-02-03\nc3,delft,2024-03-04\n",
    )?;
    let orders = dl.ingest_file(
        "omar",
        "shop/orders.csv",
        b"order_id,cust_id,total\no1,c1,10.50\no2,c1,99.90\no3,c3,5.00\n",
    )?;
    let events = dl.ingest_file(
        "omar",
        "app/events.json",
        br#"{"user": "c1", "kind": "login", "device": {"os": "linux"}}"#,
    )?;
    let serverlog = dl.ingest_file(
        "omar",
        "ops/server.log",
        b"2024-01-01 12:00:00 INFO boot ok\n2024-01-01 12:00:05 WARN disk 91%\n",
    )?;

    for id in [customers, orders, events, serverlog] {
        let meta = dl.meta(id)?;
        println!(
            "  {} {:<12} format={:<5} zone={:?}",
            id,
            meta.name,
            meta.format,
            dl.zone_of(id).map(|z| z.name())
        );
    }
    println!("  placements: {:?}", dl.store.placement_summary());

    println!("\n=== 2. Metadata: what ingestion extracted ===");
    let entry = dl.metamodel.entry(customers).expect("catalogued");
    println!("  customers properties: header={}", entry.properties["header"]);
    if let Some(lake_ingest::gemms::StructuralMetadata::Tree(tree)) =
        &dl.metamodel.entry(events).and_then(|e| e.structure.clone())
    {
        println!("  events.json structure tree: {} nodes, depth {}", tree.size(), tree.depth());
    }

    println!("\n=== 3. Maintenance tier: promote through zones, discover relations ===");
    dl.promote("omar", customers)?; // landing → raw
    dl.promote("omar", customers)?; // raw → trusted
    println!("  customers now in zone {:?}", dl.zone_of(customers).unwrap().name());

    let (corpus, ids) = dl.corpus();
    let q = corpus.table_index("customers").expect("ingested");
    let related = explore::joinable_for_column(&corpus, q, 0, 3);
    for r in &related {
        println!(
            "  joinable with customers.customer_id: {} (overlap {})",
            corpus.tables()[r.table].name, r.score
        );
    }
    let _ = ids;

    println!("\n=== 4. Exploration tier: federated query ===");
    let fe = dl.federated();
    let query = lake_query::parse_query("select cust_id, total from orders where total > 8")?;
    let (result, stats) = fe.execute(&query, true)?;
    println!("{result}");
    println!("  (rows moved from sources: {}, subqueries: {})", stats.rows_moved, stats.subqueries);

    println!("\n=== 5. Provenance ===");
    let pg = dl.provenance();
    for (user, tick) in pg.who_touched("customers") {
        println!("  customers touched by {user} at tick {tick}");
    }
    Ok(())
}
