//! Lakehouse (§8.3): ACID appends over an object store, statistics-based
//! data skipping, compaction, and time travel — the Delta/Iceberg/Hudi
//! functionality the survey names as the field's future direction.
//!
//! Run with: `cargo run --example lakehouse_timetravel`

use lake_core::{Row, Table, Value};
use lake_house::LakeTable;
use lake_store::predicate::{CompareOp, Predicate};
use lake_store::MemoryStore;

fn batch(day: i64, n: i64) -> Table {
    let rows: Vec<Row> = (0..n)
        .map(|i| {
            vec![
                Value::Int(day * 1000 + i),
                Value::Int(day),
                Value::Float((day * 7 + i) as f64 * 0.5),
            ]
        })
        .collect();
    Table::from_rows("sales", &["id", "day", "amount"], rows).expect("rows are uniform")
}

fn main() -> lake_core::Result<()> {
    let store = MemoryStore::new();
    let table = LakeTable::open(&store, "warehouse/sales");

    println!("=== ACID appends: one commit per daily batch ===");
    for day in 1..=5 {
        let v = table.append(&batch(day, 100))?;
        println!("  day {day}: committed version {v}");
    }
    let (rows, _) = table.scan(&[])?;
    println!("  total rows: {}", rows.len());

    println!("\n=== Data skipping: point lookup touches one file ===");
    let preds = [Predicate::new("id", CompareOp::Eq, 3042i64)];
    let (hits, stats) = table.scan(&preds)?;
    println!(
        "  found {} row(s); files read: {}, files skipped via min/max stats: {}",
        hits.len(),
        stats.files_read,
        stats.files_skipped
    );

    println!("\n=== Compaction: 5 small files → 1, atomically ===");
    println!("  files before: {}", table.file_count()?);
    let v = table.compact()?;
    println!("  files after:  {} (version {v})", table.file_count()?);

    println!("\n=== Time travel: every version remains queryable ===");
    for version in [1u64, 3, 5, v] {
        let (rows, _) = table.scan_at(version, &[])?;
        let snap = table.log().snapshot_at(version)?;
        println!(
            "  version {version}: {} rows in {} file(s)",
            rows.len(),
            snap.files.len()
        );
    }

    println!("\n=== Optimistic concurrency: concurrent appends all land ===");
    let store2 = std::sync::Arc::new(MemoryStore::new());
    LakeTable::open(store2.as_ref(), "t").append(&batch(0, 1))?;
    let handles: Vec<_> = (1..=4)
        .map(|day| {
            let store2 = std::sync::Arc::clone(&store2);
            std::thread::spawn(move || {
                LakeTable::open(store2.as_ref(), "t").append(&batch(day, 10)).unwrap()
            })
        })
        .collect();
    let mut versions: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    versions.sort_unstable();
    println!("  4 writers committed versions {versions:?} — no lost updates");
    Ok(())
}
