//! Federated analytics over a heterogeneous smart-city lake (the IoT use
//! case of the survey's introduction): sensor tables in the relational
//! store, citizen reports as JSON documents, archived readings as columnar
//! files, and an infrastructure graph — all answered through one mediator,
//! with predicate push-down and SPARQL-like graph queries.
//!
//! Run with: `cargo run --example federated_analytics`

use lake_core::{Dataset, DatasetId, PropertyGraph, Table, Value};
use lake_query::federated::{FederatedEngine, SourceBinding};
use lake_query::parse_query;
use lake_store::graphstore::{Term, TriplePattern};
use lake_store::{Polystore, StoreKind};
use std::collections::BTreeMap;

fn main() -> lake_core::Result<()> {
    let ps = Polystore::new();

    // Live sensor readings → relational store.
    let live = Table::from_rows(
        "air_live",
        &["station", "district", "pm25"],
        vec![
            vec![Value::str("s1"), Value::str("center"), Value::Float(12.0)],
            vec![Value::str("s2"), Value::str("harbor"), Value::Float(41.5)],
            vec![Value::str("s3"), Value::str("center"), Value::Float(8.2)],
        ],
    )?;
    ps.store(DatasetId(1), "air_live", Dataset::Table(live))?;

    // Citizen reports → document store.
    let reports = vec![
        lake_formats::json::parse(
            r#"{"id": "r1", "loc": {"district": "harbor"}, "reading": 44.0, "note": "smog"}"#,
        )?,
        lake_formats::json::parse(
            r#"{"id": "r2", "loc": {"district": "center"}, "reading": 10.0, "note": "clear"}"#,
        )?,
    ];
    ps.store(DatasetId(2), "air_reports", Dataset::Documents(reports))?;

    // Archived readings → columnar file (with min/max stats).
    let archive = Table::from_rows(
        "air_archive",
        &["station", "district", "pm25"],
        vec![
            vec![Value::str("s1"), Value::str("center"), Value::Float(15.0)],
            vec![Value::str("s2"), Value::str("harbor"), Value::Float(39.0)],
        ],
    )?;
    ps.store_in(DatasetId(3), "air_archive", Dataset::Table(archive), StoreKind::File)?;

    // Infrastructure graph → graph store.
    let mut g = PropertyGraph::new();
    let s2 = g.add_node_with("Station", vec![("name", Value::str("s2"))]);
    let harbor = g.add_node_with("District", vec![("name", Value::str("harbor"))]);
    let plant = g.add_node_with("Facility", vec![("name", Value::str("power_plant"))]);
    g.add_edge(s2, harbor, "located_in");
    g.add_edge(plant, harbor, "located_in");
    ps.graphs.put_graph("infra", g);

    // The mediator: one logical "air_quality" table over three sources.
    let mut fe = FederatedEngine::new(&ps);
    let tab_cols: BTreeMap<String, String> = [
        ("district".to_string(), "district".to_string()),
        ("pm25".to_string(), "pm25".to_string()),
    ]
    .into();
    fe.register(
        "air_quality",
        vec![
            SourceBinding { store: StoreKind::Relational, location: "air_live".into(), columns: tab_cols.clone() },
            SourceBinding {
                store: StoreKind::Document,
                location: "air_reports".into(),
                columns: [
                    ("district".to_string(), "loc.district".to_string()),
                    ("pm25".to_string(), "reading".to_string()),
                ]
                .into(),
            },
            SourceBinding {
                store: StoreKind::File,
                location: "tables/air_archive.pql".into(),
                columns: tab_cols,
            },
        ],
    );

    println!("=== High pollution across ALL sources (pushdown ON) ===");
    let q = parse_query("select district, pm25 from air_quality where pm25 > 30")?;
    let (result, stats) = fe.execute(&q, true)?;
    println!("{result}");
    println!("rows moved: {}, subqueries: {}\n", stats.rows_moved, stats.subqueries);

    println!("=== Same query WITHOUT pushdown (everything ships to the mediator) ===");
    let (result2, stats2) = fe.execute(&q, false)?;
    assert_eq!(result.num_rows(), result2.num_rows());
    println!(
        "same {} answer rows, but rows moved: {} (vs {})\n",
        result2.num_rows(),
        stats2.rows_moved,
        stats.rows_moved
    );

    println!("=== SPARQL-like: what is located in the polluted district? ===");
    let pats = [TriplePattern {
        s: Term::Var("what".into()),
        p: Term::Const(Value::str("located_in")),
        o: Term::Const(Value::str("harbor")),
    }];
    for binding in fe.sparql("infra", &pats)? {
        println!("  {} is in harbor", binding["what"]);
    }
    Ok(())
}
