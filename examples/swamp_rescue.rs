//! Draining a data swamp (§2.2): Gartner's 2014 criticism was that
//! "ingesting disparate data might easily turn the data lake into an
//! unusable data swamp, unless there are metadata management and data
//! governance". This example builds exactly that swamp — anonymous,
//! undocumented, partially dirty files — then rescues it with the
//! maintenance tier: profiling, similarity clustering, domain discovery,
//! constraint-based cleaning, quality-gated zone promotion, curator
//! annotation, and finally full-text findability.
//!
//! Run with: `cargo run --example swamp_rescue`

use lake::users::Role;
use lake::zones::Zone;
use lake::DataLake;
use lake_discovery::brackenbury::Brackenbury;
use lake_discovery::DiscoverySystem;
use lake_maintain::clean::clams;

fn main() -> lake_core::Result<()> {
    let mut dl = DataLake::new();
    dl.access.add_user("omar", Role::Operations);
    dl.access.add_user("carla", Role::Curator);
    dl.access.add_user("sam", Role::Scientist);

    println!("=== the swamp: cryptic names, no docs, hidden duplicates, dirty rows ===");
    let ids = [
        dl.ingest_file("omar", "dump/x1.csv",
            b"cust,city,country\nc1,delft,nl\nc2,paris,fr\nc3,delft,nl\nc4,rome,it\nc5,paris,fr\n")?,
        // A near-duplicate of x1 someone exported again…
        dl.ingest_file("omar", "dump/x1_final_v2.csv",
            b"cust,city,country\nc1,delft,nl\nc2,paris,fr\nc3,delft,nl\nc4,rome,it\n")?,
        // …and a dirty sibling with a violated city→country rule.
        dl.ingest_file("omar", "dump/export(3).csv",
            b"cust,city,country\nc6,delft,nl\nc7,delft,nl\nc8,delft,nl\nc9,paris,fr\nca,paris,fr\ncb,paris,fr\ncc,paris,fr\ncd,paris,de\n")?,
        dl.ingest_file("omar", "dump/zz_old.csv",
            b"sensor,reading\ns1,20.5\ns2,21.0\ns3,19.8\ns4,22.1\ns5,20.0\n")?,
    ];
    println!("ingested {} anonymous files into the landing zone\n", ids.len());

    println!("=== step 1: similarity clustering exposes the duplicate cluster ===");
    let (corpus, corpus_ids) = dl.corpus();
    let mut brk = Brackenbury::default();
    brk.build(&corpus);
    let clusters = brk.cluster(&corpus, 0.6);
    for (ti, &c) in clusters.iter().enumerate() {
        println!("  cluster {c}: {}", corpus.tables()[ti].name);
    }
    println!("  ({} pairs queued for human review)\n", brk.queue.pending().len());

    println!("=== step 2: constraint discovery flags the dirty file ===");
    for (ti, &id) in corpus_ids.iter().enumerate() {
        let table = corpus.tables()[ti].clone();
        let report = clams::analyze(&table, 0.85);
        println!(
            "  {}: {} suspect cells",
            dl.meta(id)?.name,
            report.review_queue.len()
        );
    }
    println!();

    println!("=== step 3: quality-gated promotion — dirty data cannot enter trusted ===");
    for &id in &ids {
        dl.promote_checked("omar", id)?; // landing → raw (ungated)
    }
    for &id in &ids {
        match dl.promote_checked("omar", id) {
            Ok(z) => println!("  {} → {}", dl.meta(id)?.name, z.name()),
            Err(e) => println!("  {} BLOCKED: {e}", dl.meta(id)?.name),
        }
    }
    println!();

    println!("=== step 4: curators document what survived ===");
    dl.catalog.annotate("dump/x1.csv", "carla", "description", "customer registry (master copy)");
    dl.catalog.annotate("dump/x1_final_v2.csv", "carla", "description", "duplicate of x1 - deprecate");
    dl.catalog.annotate("dump/zz_old.csv", "carla", "description", "lab sensor readings 2023");
    println!("  catalog search 'deprecate' → {:?}", dl.catalog.search("deprecate"));
    println!();

    println!("=== step 5: the lake is findable again ===");
    for query in ["paris", "sensor"] {
        let hits = dl.search("sam", query, 3)?;
        let names: Vec<String> = hits
            .iter()
            .map(|h| dl.meta(h.dataset).map(|m| m.name.clone()).unwrap_or_default())
            .collect();
        println!("  search {query:?} → {names:?}");
    }
    let trusted = ids
        .iter()
        .filter(|&&id| dl.zone_of(id) == Some(Zone::Trusted))
        .count();
    println!("\nswamp drained: {trusted}/{} datasets reached the trusted zone;", ids.len());
    println!("the rest are quarantined with named, reviewable violations.");
    Ok(())
}
