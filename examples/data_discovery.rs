//! Related-dataset discovery shoot-out: run all eight systems of the
//! survey's Table 3 on one synthetic lake with planted ground truth and
//! compare their precision/recall/latency — the scenario of the survey's
//! intro, where information silos must be linked up before any insight.
//!
//! Run with: `cargo run --release --example data_discovery`

use lake_core::synth::{generate_lake, LakeGenConfig};
use lake_discovery::corpus::TableCorpus;
use lake_discovery::dln::synthesize_query_log;
use lake_discovery::{evaluate, DiscoverySystem};

fn main() {
    let cfg = LakeGenConfig { groups: 5, tables_per_group: 3, noise_tables: 6, ..Default::default() };
    let lake = generate_lake(&cfg);
    println!(
        "synthetic lake: {} tables ({} related groups + {} noise), {} planted joinable pairs\n",
        lake.tables.len(),
        cfg.groups,
        cfg.noise_tables,
        lake.truth.joinable.len()
    );
    let corpus = TableCorpus::new(lake.tables.clone());
    let k = 2;

    let mut systems: Vec<Box<dyn DiscoverySystem>> = vec![
        Box::new(lake_discovery::aurum::Aurum::default()),
        Box::new(lake_discovery::brackenbury::Brackenbury::default()),
        Box::new(lake_discovery::josie::Josie::default()),
        Box::new(lake_discovery::d3l::D3l::default()),
        Box::new(lake_discovery::juneau::Juneau::default()),
        Box::new(lake_discovery::pexeso::Pexeso::default()),
        Box::new(lake_discovery::rnlim::Rnlim::default()),
        {
            // DLN trains from a synthesized enterprise query log first.
            let mut dln = lake_discovery::dln::Dln::default();
            dln.train_from_log(&corpus, &synthesize_query_log(&lake.truth, 2));
            Box::new(dln)
        },
    ];

    println!(
        "{:<20} {:>7} {:>7} {:>10} {:>10}",
        "system", "P@2", "R@2", "build ms", "query µs"
    );
    println!("{}", "-".repeat(60));
    for sys in &mut systems {
        let report = evaluate(sys.as_mut(), &corpus, &lake.truth, k);
        println!(
            "{:<20} {:>7.2} {:>7.2} {:>10.1} {:>10.0}",
            report.system, report.precision_at_k, report.recall_at_k, report.build_ms, report.query_us
        );
    }

    println!("\nTable 3 descriptive columns (from the implementations):");
    for sys in &systems {
        let info = sys.info();
        println!(
            "  {:<20} criteria: {}",
            info.name,
            info.criteria.join(", ")
        );
    }
}
