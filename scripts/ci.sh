#!/usr/bin/env bash
# Tier-1 verification chain for the rustlake workspace:
# build, test, the repo-native static-analysis gate (including the
# float-ordering rule), the fault-injection chaos gate, the
# observability smoke gate, the server smoke gate (boot, every verb,
# metrics scrape, SIGTERM drain), the scheduler smoke gate (trace
# capture and policy-table determinism across host worker counts),
# then the parallel-determinism gate (e15 asserts parallel results are
# bit-identical to sequential), the server chaos bench (e16 asserts
# swarm reports replay byte-identically and records BENCH_server.json),
# the scheduling bench (e17 replays a captured swarm trace under
# every policy and records BENCH_sched.json), and the durability bench
# (e18 gates WAL group commit, recovery replay, and torn-tail
# quarantine, recording BENCH_durability.json), and the discovery bench
# (e19 gates columnar-vs-row top-k bit-equality across worker counts,
# the ≥2x columnar profiling speedup, and incremental index maintenance,
# recording BENCH_discovery.json). The BENCH_*.json artifacts are dated
# trajectories — each run appends an entry instead of overwriting
# history.
set -euo pipefail

cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo run -p lake-lint -- check
# Machine-readable lint report for downstream tooling (deterministic
# ordering; the exit code above already gates the build).
mkdir -p target
cargo run -q -p lake-lint -- check --json > target/lake-lint-report.json
./scripts/chaos.sh
./scripts/obs.sh
./scripts/server.sh
./scripts/sched.sh
cargo run --release -p lake-bench --bin e15_parallel
cargo run --release -p lake-bench --bin e16_server
cargo run --release -p lake-bench --bin e17_sched
cargo run --release -p lake-bench --bin e18_durability
cargo run --release -p lake-bench --bin e19_discovery
