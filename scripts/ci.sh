#!/usr/bin/env bash
# Tier-1 verification chain for the rustlake workspace:
# build, test, the repo-native static-analysis gate (including the
# float-ordering rule), the fault-injection chaos gate, the
# observability smoke gate, then the parallel-determinism gate
# (e15 asserts parallel results are bit-identical to sequential).
set -euo pipefail

cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo run -p lake-lint -- check
# Machine-readable lint report for downstream tooling (deterministic
# ordering; the exit code above already gates the build).
mkdir -p target
cargo run -q -p lake-lint -- check --json > target/lake-lint-report.json
./scripts/chaos.sh
./scripts/obs.sh
cargo run --release -p lake-bench --bin e15_parallel
