#!/usr/bin/env bash
# Tier-1 verification chain for the rustlake workspace:
# build, test, the repo-native static-analysis gate, the
# fault-injection chaos gate, then the observability smoke gate.
set -euo pipefail

cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo run -p lake-lint -- check
./scripts/chaos.sh
./scripts/obs.sh
