#!/usr/bin/env bash
# Scheduler smoke gate: the e17 bench must produce a byte-identical
# policy table and BENCH_sched.json across two full runs, the second
# under a different host worker count (RUSTLAKE_WORKERS=2) — the
# simulator's comparison table is a pure function of the traces, never
# of the machine it fans out on. Also drives the `--trace` capture flag
# end-to-end: two captures from the same live server must be
# byte-identical and replayable.
set -euo pipefail

cd "$(dirname "$0")/.."

cargo build -q --release -p lake-server
cargo build -q --release -p lake-bench --bin e17_sched

BIN=target/release/lake_server
TMP=$(mktemp -d)
SERVER_PID=

cleanup() {
    if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
        kill -9 "$SERVER_PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT

# --- trace capture over the wire -------------------------------------
"$BIN" serve --capacity 256 >"$TMP/serve.log" 2>&1 &
SERVER_PID=$!
ADDR=
for _ in $(seq 1 100); do
    ADDR=$(grep -m1 '^listening on ' "$TMP/serve.log" 2>/dev/null | awk '{print $3}' || true)
    [[ -n "$ADDR" ]] && break
    sleep 0.05
done
[[ -n "$ADDR" ]] || { echo "sched.sh: server never reported its address" >&2; exit 1; }

"$BIN" swarm "$ADDR" --clients 8 --requests 6 --seed 42 --trace "$TMP/a.trace.json" >/dev/null
"$BIN" swarm "$ADDR" --clients 8 --requests 6 --seed 42 --trace "$TMP/b.trace.json" >/dev/null
cmp -s "$TMP/a.trace.json" "$TMP/b.trace.json" \
    || { echo "sched.sh: same-seed trace captures differ" >&2; exit 1; }
grep -q '"source":"swarm"' "$TMP/a.trace.json" \
    || { echo "sched.sh: trace missing swarm provenance" >&2; exit 1; }
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || { echo "sched.sh: server drain failed" >&2; exit 1; }
SERVER_PID=
echo "sched.sh: --trace capture byte-identical across same-seed swarms"

# --- policy table determinism across host worker counts ---------------
run_bench() {
    cargo run -q --release -p lake-bench --bin e17_sched
}

run_bench > "$TMP/run1.out"
cp BENCH_sched.json "$TMP/bench1.json"
RUSTLAKE_WORKERS=2 run_bench > "$TMP/run2.out"
cp BENCH_sched.json "$TMP/bench2.json"

cmp -s "$TMP/bench1.json" "$TMP/bench2.json" \
    || { echo "sched.sh: BENCH_sched.json differs across host worker counts" >&2; exit 1; }
cmp -s "$TMP/run1.out" "$TMP/run2.out" \
    || { echo "sched.sh: policy table output differs across host worker counts" >&2; exit 1; }
grep -q '"table"' BENCH_sched.json \
    || { echo "sched.sh: BENCH_sched.json missing the policy table" >&2; exit 1; }
echo "sched.sh: policy table and BENCH_sched.json byte-identical across runs and RUSTLAKE_WORKERS"
