#!/usr/bin/env bash
# Observability gate: run the instrumented demo workload (obs_report)
# and assert the lake-obs pipeline actually recorded it — non-zero
# store-op / lakehouse-commit / retry counters in the Prometheus dump,
# and a JSON dump that carries the same commit count. Then the exporter
# golden-file and decorator unit suites the report is built on.
set -euo pipefail

cd "$(dirname "$0")/.."

report=$(cargo run -q -p lake --bin obs_report)

require_nonzero() {
  local metric="$1"
  local line
  line=$(grep -E "^${metric}(\{[^}]*\})? [0-9]" <<<"$report" | head -1) || {
    echo "obs.sh: metric ${metric} missing from obs_report output" >&2
    exit 1
  }
  local value="${line##* }"
  if [ "$value" = "0" ]; then
    echo "obs.sh: metric ${metric} is zero after the demo workload" >&2
    exit 1
  fi
  echo "  ${line}"
}

echo "obs.sh: checking demo-workload counters"
require_nonzero lake_store_put_total
require_nonzero lake_store_get_total
require_nonzero lake_store_put_bytes_total
require_nonzero lake_house_commit_total
require_nonzero lake_house_retry_retries_total
require_nonzero lake_ingest_rows_total
require_nonzero lake_query_execute_total
require_nonzero lake_query_partial_total
require_nonzero lake_query_source_skipped_total

# Latency histograms must have observations, not just registrations.
grep -qE '^lake_store_put_seconds_count(\{[^}]*\})? [1-9]' <<<"$report" || {
  echo "obs.sh: lake_store_put_seconds histogram recorded nothing" >&2
  exit 1
}

# The JSON exporter must agree with the Prometheus one on commit count.
cargo run -q -p lake --bin obs_report -- --json \
  | grep -q '"lake_house_commit_total"' || {
  echo "obs.sh: JSON dump lacks lake_house_commit_total" >&2
  exit 1
}

cargo test -q -p lake-obs
cargo test -q -p lake-store obs::
echo "obs.sh: ok"
