#!/usr/bin/env bash
# Chaos gate: scripted fault-injection scenarios against the lakehouse
# ACID protocol (crates/lake-house/tests/chaos.rs), the federated
# mediator's degradation ladder (crates/lake-query/tests/chaos.rs),
# and the multi-tenant server under FaultStore swarms
# (crates/lake-server/tests/chaos.rs), plus the fault-store,
# fault-source, retry-policy, and circuit-breaker unit suites they
# build on.
#
# Every seeded scenario replays under the three fixed seeds compiled
# into the suites — 7, 42, 1337 — and asserts determinism by running the
# same plan twice and comparing backoff schedules, breaker trajectories,
# and fault stats, so a pass here certifies the whole fault model is
# reproducible, not just that it passed once.
set -euo pipefail

cd "$(dirname "$0")/.."

# The lock-order sanitizer (lake_core::sync) must be green before the
# chaos scenarios lean on it: any rank inversion the suites provoke
# panics with both hold-sites named, failing this gate.
cargo test -q -p lake-core sync::

cargo test -q -p lake-house --test chaos
cargo test -q -p lake-query --test chaos
# Server under chaos: 200-client seeded swarms against FaultStore
# storage — panic isolation, drain-under-load, greedy-tenant quota
# arithmetic, breaker isolation, and byte-identical replay.
cargo test -q -p lake-server --test chaos
cargo test -q -p lake-server --test quota_prop
# Crash-restart durability: deterministic in-process crash points
# (pre-journal, mid-journal torn write, post-journal pre-apply, pre-ack)
# at seeds 7/42/1337, plus a 4-client kill -9 swarm. Every restart
# asserts the parity contract — records replayed equals journal frames
# on disk — through both the recovery report line and the
# lake_server_recovery_replayed_total counter, and the WAL property
# suite sweeps torn tails over every byte offset of the final frame.
cargo test -q -p lake-server --test restart_chaos
cargo test -q -p lake-server --test wal_prop
cargo test -q -p lake-store fault::
cargo test -q -p lake-core retry::
cargo test -q -p lake-core --test retry_prop
cargo test -q -p lake-query degrade::
cargo test -q -p lake-query fault::
cargo test -q -p lake-house recovery::
