#!/usr/bin/env bash
# Server smoke gate: boot the real `lake_server` binary, exercise one
# request per protocol verb over the wire, scrape the Prometheus
# endpoint, then SIGTERM it mid-life and assert a graceful drain —
# in-flight work finished, metrics flushed, exit status 0.
#
# This is deliberately an end-to-end process test (fork/exec, signals,
# real sockets), complementing the in-process chaos suites in
# crates/lake-server/tests/.
set -euo pipefail

cd "$(dirname "$0")/.."

cargo build -q --release -p lake-server

BIN=target/release/lake_server
LOG=$(mktemp)
SERVER_PID=

cleanup() {
    if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
        kill -9 "$SERVER_PID" 2>/dev/null || true
    fi
    rm -f "$LOG"
}
trap cleanup EXIT

"$BIN" serve --chaos --capacity 64 >"$LOG" 2>&1 &
SERVER_PID=$!

# The serve command prints "listening on HOST:PORT" once bound.
ADDR=
for _ in $(seq 1 100); do
    ADDR=$(grep -m1 '^listening on ' "$LOG" 2>/dev/null | awk '{print $3}' || true)
    [[ -n "$ADDR" ]] && break
    sleep 0.05
done
if [[ -z "$ADDR" ]]; then
    echo "server.sh: server never reported its address" >&2
    cat "$LOG" >&2
    exit 1
fi
echo "server.sh: serving at $ADDR"

req() { "$BIN" request "$ADDR" "$@"; }

# One request per verb, each asserting its typed outcome.
req health | grep -q '"status":"ok"'
req put --tenant acme --name t1 --kind text \
    --body '"hello lake"' | grep -q '"status":"ok"'
req get --tenant acme --name t1 | grep -q 'hello lake'
req list --tenant acme | grep -q 't1'
req stats --tenant acme | grep -q '"datasets":1'
req del --tenant acme --name t1 | grep -q '"status":"ok"'
# A missing dataset is a typed 404, and the client exits 2 (typed
# error), never 1 (transport failure).
set +e
out=$(req get --tenant acme --name t1)
rc=$?
set -e
[[ $rc -eq 2 ]] || { echo "server.sh: expected typed-error exit 2, got $rc" >&2; exit 1; }
echo "$out" | grep -q '"code":"not_found"'
# Chaos verbs answer typed errors without killing the process.
set +e
req flaky --tenant acme >/dev/null
req boom --tenant acme >/dev/null
set -e
kill -0 "$SERVER_PID" || { echo "server.sh: process died on chaos verbs" >&2; exit 1; }
req health | grep -q '"status":"ok"'

# Scrape the metrics endpoint and check the server family is exported.
req metrics | grep -q 'lake_server_requests_total'
req metrics | grep -q 'lake_server_worker_panics_total'

# A short swarm over the wire keeps some work in flight at SIGTERM time.
"$BIN" swarm "$ADDR" --clients 16 --requests 5 >/dev/null &
SWARM_PID=$!
kill -TERM "$SERVER_PID"
rc=0
wait "$SERVER_PID" || rc=$?
wait "$SWARM_PID" 2>/dev/null || true
if [[ $rc -ne 0 ]]; then
    echo "server.sh: drain exited $rc, want 0" >&2
    cat "$LOG" >&2
    exit 1
fi
grep -q 'drained=true' "$LOG" || { echo "server.sh: no drain report" >&2; cat "$LOG" >&2; exit 1; }
SERVER_PID=
echo "server.sh: all verbs answered, metrics scraped, SIGTERM drained cleanly (exit 0)"
