#!/usr/bin/env bash
# Server smoke gate: boot the real `lake_server` binary, exercise one
# request per protocol verb over the wire, scrape the Prometheus
# endpoint, then SIGTERM it mid-life and assert a graceful drain —
# in-flight work finished, metrics flushed, exit status 0. A second leg
# boots with the write-ahead journal, kill -9s the process mid-swarm,
# restarts on the same WAL dir, and asserts every acked write is
# readable again (the durability contract end-to-end, real processes
# and real fsyncs).
#
# This is deliberately an end-to-end process test (fork/exec, signals,
# real sockets), complementing the in-process chaos suites in
# crates/lake-server/tests/.
set -euo pipefail

cd "$(dirname "$0")/.."

cargo build -q --release -p lake-server

BIN=target/release/lake_server
LOG=$(mktemp)
WAL_DIR=$(mktemp -d)
SERVER_PID=

cleanup() {
    if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
        kill -9 "$SERVER_PID" 2>/dev/null || true
    fi
    rm -f "$LOG"
    rm -rf "$WAL_DIR"
}
trap cleanup EXIT

# Wait for "listening on HOST:PORT" in a server log; prints the addr.
wait_addr() {
    local log=$1 addr=
    for _ in $(seq 1 100); do
        addr=$(grep -m1 '^listening on ' "$log" 2>/dev/null | awk '{print $3}' || true)
        [[ -n "$addr" ]] && { echo "$addr"; return 0; }
        sleep 0.05
    done
    echo "server.sh: server never reported its address" >&2
    cat "$log" >&2
    return 1
}

"$BIN" serve --chaos --capacity 64 >"$LOG" 2>&1 &
SERVER_PID=$!

# The serve command prints "listening on HOST:PORT" once bound.
ADDR=$(wait_addr "$LOG")
echo "server.sh: serving at $ADDR"

req() { "$BIN" request "$ADDR" "$@"; }

# One request per verb, each asserting its typed outcome.
req health | grep -q '"status":"ok"'
req put --tenant acme --name t1 --kind text \
    --body '"hello lake"' | grep -q '"status":"ok"'
req get --tenant acme --name t1 | grep -q 'hello lake'
req list --tenant acme | grep -q 't1'
req stats --tenant acme | grep -q '"datasets":1'
req del --tenant acme --name t1 | grep -q '"status":"ok"'
# A missing dataset is a typed 404, and the client exits 2 (typed
# error), never 1 (transport failure).
set +e
out=$(req get --tenant acme --name t1)
rc=$?
set -e
[[ $rc -eq 2 ]] || { echo "server.sh: expected typed-error exit 2, got $rc" >&2; exit 1; }
echo "$out" | grep -q '"code":"not_found"'
# Chaos verbs answer typed errors without killing the process.
set +e
req flaky --tenant acme >/dev/null
req boom --tenant acme >/dev/null
set -e
kill -0 "$SERVER_PID" || { echo "server.sh: process died on chaos verbs" >&2; exit 1; }
req health | grep -q '"status":"ok"'

# Scrape the metrics endpoint and check the server family is exported.
req metrics | grep -q 'lake_server_requests_total'
req metrics | grep -q 'lake_server_worker_panics_total'

# A short swarm over the wire keeps some work in flight at SIGTERM time.
"$BIN" swarm "$ADDR" --clients 16 --requests 5 >/dev/null &
SWARM_PID=$!
kill -TERM "$SERVER_PID"
rc=0
wait "$SERVER_PID" || rc=$?
wait "$SWARM_PID" 2>/dev/null || true
if [[ $rc -ne 0 ]]; then
    echo "server.sh: drain exited $rc, want 0" >&2
    cat "$LOG" >&2
    exit 1
fi
grep -q 'drained=true' "$LOG" || { echo "server.sh: no drain report" >&2; cat "$LOG" >&2; exit 1; }
SERVER_PID=
echo "server.sh: all verbs answered, metrics scraped, SIGTERM drained cleanly (exit 0)"

# ---- kill -9 mid-swarm: write-ahead journal durability ----------------
# Boot with the WAL, ack two known writes, put a swarm in flight, then
# SIGKILL — no drain, no flush, the journal is all that survives.
: >"$LOG"
"$BIN" serve --chaos --capacity 64 --wal-dir "$WAL_DIR" >"$LOG" 2>&1 &
SERVER_PID=$!
ADDR=$(wait_addr "$LOG")
echo "server.sh: WAL server at $ADDR (journal in $WAL_DIR)"
req put --tenant acme --name k1 --kind text \
    --body '"survives-kill-9"' | grep -q '"status":"ok"'
req put --tenant acme --name k2 --kind log \
    --body '["first line","second line"]' | grep -q '"status":"ok"'
"$BIN" swarm "$ADDR" --clients 16 --requests 20 >/dev/null 2>&1 &
SWARM_PID=$!
sleep 0.2
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
wait "$SWARM_PID" 2>/dev/null || true
SERVER_PID=

# Restart on the same journal: the recovery line must report the
# replay, and both acked writes must read back byte-for-byte.
: >"$LOG"
"$BIN" serve --capacity 64 --wal-dir "$WAL_DIR" >"$LOG" 2>&1 &
SERVER_PID=$!
ADDR=$(wait_addr "$LOG")
grep -q '^recovery ' "$LOG" || { echo "server.sh: no recovery report after kill -9" >&2; cat "$LOG" >&2; exit 1; }
grep -m1 '^recovery ' "$LOG" | grep -q '"replayed"' || { echo "server.sh: recovery report lacks replay count" >&2; exit 1; }
req get --tenant acme --name k1 | grep -q 'survives-kill-9'
req get --tenant acme --name k2 | grep -q 'second line'
req metrics | grep -q 'lake_server_recovery_replayed_total'
req metrics | grep -q 'lake_server_wal_appended_total'
# The recovered server still drains cleanly.
kill -TERM "$SERVER_PID"
rc=0
wait "$SERVER_PID" || rc=$?
if [[ $rc -ne 0 ]]; then
    echo "server.sh: post-recovery drain exited $rc, want 0" >&2
    cat "$LOG" >&2
    exit 1
fi
SERVER_PID=
echo "server.sh: kill -9 mid-swarm, restart replayed the journal, acked writes intact"
