//! Criterion bench for E5: KAYAK's parallel task-dependency execution vs
//! sequential execution.
//!
//! The workload is latency-bound (each atomic task waits ~1 ms, the shape
//! of profiling tasks that block on storage), so the dependency DAG's
//! parallelism shows up as wall-clock improvement even on machines with
//! few cores; CPU-bound speedups additionally require physical cores.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lake_organize::kayak::TaskGraph;
use std::time::Duration;

fn workload(chains: usize) -> TaskGraph {
    let wait = Duration::from_millis(1);
    let mut g = TaskGraph::new();
    let mut tails = Vec::new();
    for d in 0..chains {
        let a = g.add_task(&format!("detect{d}"), move || std::thread::sleep(wait));
        let b = g.add_task(&format!("profile{d}"), move || std::thread::sleep(wait));
        g.add_dependency(a, b);
        tails.push(b);
    }
    let join = g.add_task("join", move || std::thread::sleep(wait));
    for t in tails {
        g.add_dependency(t, join);
    }
    g
}

fn bench(c: &mut Criterion) {
    let mut grp = c.benchmark_group("e5_kayak");
    grp.sample_size(10);
    let chains = 8;
    grp.bench_function(BenchmarkId::new("sequential", chains), |b| {
        b.iter(|| workload(chains).run_sequential().unwrap())
    });
    for workers in [2usize, 4, 8] {
        grp.bench_function(BenchmarkId::new("parallel", workers), |b| {
            b.iter(|| workload(chains).run_parallel(workers).unwrap())
        });
    }
    grp.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
