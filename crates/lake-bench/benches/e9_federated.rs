//! Criterion bench for E9: federated query execution with vs without
//! predicate pushdown at 1% selectivity.

use criterion::{criterion_group, criterion_main, Criterion};
use lake_core::{Dataset, DatasetId, Table, Value};
use lake_query::federated::{FederatedEngine, SourceBinding};
use lake_query::parse_query;
use lake_store::{Polystore, StoreKind};
use std::collections::BTreeMap;
use std::hint::black_box;

fn setup() -> Polystore {
    let ps = Polystore::new();
    let rows = 10_000;
    let data: Vec<Vec<Value>> = (0..rows)
        .map(|i| vec![Value::Int(i as i64), Value::Int((i % 100) as i64)])
        .collect();
    let t = Table::from_rows("events_live", &["id", "bucket"], data).unwrap();
    ps.store(DatasetId(1), "events_live", Dataset::Table(t.clone())).unwrap();
    let mut archived = t;
    archived.name = "events_archive".into();
    ps.store_in(DatasetId(2), "events_archive", Dataset::Table(archived), StoreKind::File)
        .unwrap();
    ps
}

fn bench(c: &mut Criterion) {
    let ps = setup();
    let cols: BTreeMap<String, String> = [
        ("id".to_string(), "id".to_string()),
        ("bucket".to_string(), "bucket".to_string()),
    ]
    .into();
    let mut fe = FederatedEngine::new(&ps);
    fe.register(
        "events",
        vec![
            SourceBinding { store: StoreKind::Relational, location: "events_live".into(), columns: cols.clone() },
            SourceBinding { store: StoreKind::File, location: "tables/events_archive.pql".into(), columns: cols },
        ],
    );
    let q = parse_query("select id from events where bucket < 1").unwrap();

    let mut g = c.benchmark_group("e9_federated");
    g.sample_size(20);
    g.bench_function("pushdown_on", |b| {
        b.iter(|| black_box(fe.execute(&q, true).unwrap()))
    });
    g.bench_function("pushdown_off", |b| {
        b.iter(|| black_box(fe.execute(&q, false).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
