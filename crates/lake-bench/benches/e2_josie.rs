//! Criterion bench for E2: JOSIE's cost-model top-k overlap search vs the
//! naive full-posting-scan baseline, uniform vs Zipfian token skew.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lake_core::synth::Zipf;
use lake_discovery::josie::Josie;
use rand::SeedableRng;
use std::hint::black_box;

fn build(alpha: f64) -> (Josie, Vec<Vec<String>>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let zipf = Zipf::new(2_000, alpha);
    let mut josie = Josie::default();
    let mut sets = Vec::new();
    for id in 0..1_000 {
        let set: Vec<String> = (0..80).map(|_| format!("v{}", zipf.sample(&mut rng))).collect();
        josie.insert_set(id, set.iter().cloned());
        sets.push(set);
    }
    // Plant 12 near-duplicates of the query set (real lakes contain
    // joinable columns — the overlaps JOSIE's pruning exploits).
    for d in 0..12usize {
        let mut near = sets[0].clone();
        near.truncate(70);
        near.extend((0..10).map(|i| format!("extra{d}_{i}")));
        josie.insert_set(1_000 + d, near);
    }
    (josie, sets)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_josie");
    g.sample_size(20);
    for alpha in [0.0f64, 1.2] {
        let (josie, sets) = build(alpha);
        g.bench_with_input(BenchmarkId::new("cost_model", format!("alpha{alpha}")), &(), |b, _| {
            b.iter(|| {
                let (top, _) = josie.top_k_overlap(&sets[0], 10, &[0]);
                black_box(top)
            })
        });
        g.bench_with_input(BenchmarkId::new("naive_scan", format!("alpha{alpha}")), &(), |b, _| {
            b.iter(|| {
                let (top, _) = josie.top_k_baseline(&sets[0], 10, &[0]);
                black_box(top)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
