//! Criterion bench for E1: MinHash+LSH candidate generation vs all-pairs
//! exact Jaccard comparison, at two corpus sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lake_core::synth::{generate_lake, LakeGenConfig};
use lake_discovery::corpus::{TableCorpus, SIGNATURE_LEN};
use lake_index::lsh::LshIndex;
use std::hint::black_box;

fn corpus(groups: usize) -> TableCorpus {
    let cfg = LakeGenConfig { groups, tables_per_group: 3, noise_tables: groups, ..Default::default() };
    TableCorpus::new(generate_lake(&cfg).tables)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_lsh_scaling");
    g.sample_size(10);
    for groups in [8usize, 24] {
        let corpus = corpus(groups);
        let profiles = corpus.profiles();
        g.bench_with_input(BenchmarkId::new("all_pairs_exact", profiles.len()), &corpus, |b, corpus| {
            b.iter(|| {
                let ps = corpus.profiles();
                let mut hits = 0usize;
                for a in 0..ps.len() {
                    for b2 in a + 1..ps.len() {
                        if ps[a].jaccard_exact(&ps[b2]) >= 0.4 {
                            hits += 1;
                        }
                    }
                }
                black_box(hits)
            })
        });
        g.bench_with_input(BenchmarkId::new("minhash_lsh", profiles.len()), &corpus, |b, corpus| {
            b.iter(|| {
                let mut lsh = LshIndex::new(SIGNATURE_LEN / 4, 4);
                for (i, p) in corpus.profiles().iter().enumerate() {
                    lsh.insert(i, p.signature.clone());
                }
                black_box(lsh.candidate_pairs().len())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
