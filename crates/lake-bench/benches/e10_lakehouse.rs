//! Criterion bench for E10: lakehouse commit latency, snapshot replay
//! with/without checkpoints, and stats-pruned vs full scans.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lake_core::{Row, Table, Value};
use lake_house::{Action, LakeTable, TxnLog};
use lake_store::predicate::{CompareOp, Predicate};
use lake_store::MemoryStore;
use std::hint::black_box;

fn batch(tag: i64, n: i64) -> Table {
    let rows: Vec<Row> = (0..n).map(|i| vec![Value::Int(tag * 10_000 + i), Value::Int(tag)]).collect();
    Table::from_rows("b", &["id", "tag"], rows).unwrap()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_lakehouse");
    g.sample_size(20);

    // Commit latency (append path: encode + put + log commit).
    g.bench_function("append_commit", |b| {
        let store = MemoryStore::new();
        let t = LakeTable::open(&store, "t");
        let mut tag = 0i64;
        b.iter(|| {
            tag += 1;
            black_box(t.append(&batch(tag, 100)).unwrap())
        })
    });

    // Snapshot replay cost with and without checkpoints, 200 commits deep.
    for (label, every) in [("no_checkpoints", 0u64), ("checkpoint_every_20", 20)] {
        let store = MemoryStore::new();
        let mut log = TxnLog::open(&store, "t");
        log.checkpoint_every = every;
        for i in 0..200 {
            log.commit(&[Action::AddFile { path: format!("f{i}"), rows: 1 }]).unwrap();
        }
        g.bench_function(BenchmarkId::new("snapshot_replay", label), |b| {
            b.iter(|| black_box(log.snapshot().unwrap()))
        });
    }

    // Scan: stats-pruned point lookup vs full scan over 32 files.
    let store = MemoryStore::new();
    let t = LakeTable::open(&store, "scan");
    for tag in 0..32 {
        t.append(&batch(tag, 200)).unwrap();
    }
    let pred = [Predicate::new("id", CompareOp::Eq, 150_007i64)];
    g.bench_function("scan_point_lookup_pruned", |b| {
        b.iter(|| black_box(t.scan(&pred).unwrap()))
    });
    g.bench_function("scan_full", |b| b.iter(|| black_box(t.scan(&[]).unwrap())));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
