//! Dated benchmark trajectories: `BENCH_*.json` as append-only history.
//!
//! The experiment binaries used to overwrite their JSON artifact on
//! every run, so the repo only ever held the latest numbers — a
//! regression between two commits left no trace in the artifact itself.
//! [`record`] turns each artifact into a canonical JSON array of
//! `{"date", "report"}` entries: one entry per day, the latest run of a
//! day replacing that day's entry, earlier days preserved verbatim. A
//! legacy single-object artifact is migrated by wrapping it as a
//! `"pre-trajectory"` entry, so no history is dropped on upgrade.
//!
//! The same determinism discipline as the trace/bench writers applies:
//! the array is serialized, re-parsed, and re-serialized, and the two
//! byte strings must compare equal before anything is written.
//!
//! This module is library code, so it never reads the clock ([`clock`
//! lint](../../lake-lint)): callers (bins, which may) pass unix seconds
//! to [`utc_date`] or a preformatted date to [`record`].

use lake_core::{Json, LakeError, Result};

/// Format unix seconds as a `YYYY-MM-DD` UTC civil date. Pure — the
/// caller reads the clock (bins are exempt from the clock lint; this
/// library is not).
pub fn utc_date(secs: u64) -> String {
    // Days-to-civil conversion (Gregorian, proleptic), era-based.
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Append `report` to the trajectory artifact at `path` under `date`,
/// replacing the last entry if it carries the same date. Returns the
/// number of entries in the artifact after the write.
pub fn record(path: &str, date: &str, report: &Json) -> Result<usize> {
    let mut entries = load_entries(path)?;
    let entry = Json::obj(vec![("date", Json::str(date)), ("report", report.clone())]);
    let same_day = entries
        .last()
        .and_then(|e| e.get("date"))
        .and_then(Json::as_str)
        .is_some_and(|d| d == date);
    if same_day {
        if let Some(last) = entries.last_mut() {
            *last = entry;
        }
    } else {
        entries.push(entry);
    }
    let n = entries.len();
    let text = format!("{}\n", Json::Array(entries));
    let again = format!("{}\n", lake_formats::json::parse(text.trim_end())?);
    if text != again {
        return Err(LakeError::invalid(format!(
            "trajectory for {path} does not serialize deterministically"
        )));
    }
    std::fs::write(path, &text).map_err(|e| LakeError::Io(format!("writing {path}: {e}")))?;
    Ok(n)
}

/// Read the existing artifact: an array is a trajectory, a bare object
/// is a legacy single-report artifact (wrapped so its numbers survive),
/// a missing file is an empty history.
fn load_entries(path: &str) -> Result<Vec<Json>> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(_) => return Ok(Vec::new()),
    };
    match lake_formats::json::parse(text.trim_end())? {
        Json::Array(entries) => Ok(entries),
        legacy @ Json::Object(_) => Ok(vec![Json::obj(vec![
            ("date", Json::str("pre-trajectory")),
            ("report", legacy),
        ])]),
        other => Err(LakeError::invalid(format!(
            "trajectory artifact {path} holds neither an array nor an object: {other}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join(format!("lake-traj-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn utc_date_matches_known_epochs() {
        assert_eq!(utc_date(0), "1970-01-01");
        assert_eq!(utc_date(86_399), "1970-01-01");
        assert_eq!(utc_date(86_400), "1970-01-02");
        // 2026-08-08T00:00:00Z.
        assert_eq!(utc_date(1_786_147_200), "2026-08-08");
        // Leap day 2024-02-29T12:00:00Z.
        assert_eq!(utc_date(1_709_208_000), "2024-02-29");
    }

    #[test]
    fn record_appends_and_replaces_same_day() {
        let path = tmp("appends.json");
        let _ = std::fs::remove_file(&path);
        let r1 = Json::obj(vec![("ok", Json::Num(1.0))]);
        assert_eq!(record(&path, "2026-08-07", &r1).unwrap(), 1);
        let r2 = Json::obj(vec![("ok", Json::Num(2.0))]);
        assert_eq!(record(&path, "2026-08-08", &r2).unwrap(), 2);
        // A rerun on the same day replaces, never duplicates.
        let r3 = Json::obj(vec![("ok", Json::Num(3.0))]);
        assert_eq!(record(&path, "2026-08-08", &r3).unwrap(), 2);
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = lake_formats::json::parse(text.trim_end()).unwrap();
        let entries = parsed.as_array().unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].path("report.ok").unwrap(), &Json::Num(1.0));
        assert_eq!(entries[1].path("report.ok").unwrap(), &Json::Num(3.0));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn legacy_single_object_artifacts_are_migrated() {
        let path = tmp("legacy.json");
        std::fs::write(&path, "{\"p50_us\":435}\n").unwrap();
        let r = Json::obj(vec![("p50_us", Json::Num(440.0))]);
        assert_eq!(record(&path, "2026-08-08", &r).unwrap(), 2);
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = lake_formats::json::parse(text.trim_end()).unwrap();
        let entries = parsed.as_array().unwrap();
        assert_eq!(entries[0].path("date").unwrap().as_str(), Some("pre-trajectory"));
        assert_eq!(entries[0].path("report.p50_us").unwrap(), &Json::Num(435.0));
        assert_eq!(entries[1].path("report.p50_us").unwrap(), &Json::Num(440.0));
    }
}
