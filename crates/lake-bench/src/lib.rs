//! # lake-bench
//!
//! The benchmark harness regenerating every table and figure of the
//! survey, plus the qualitative-claim experiments indexed in DESIGN.md
//! (§3, "per-experiment index").
//!
//! Binaries (each prints one table/figure analog):
//!
//! | bin | artifact |
//! |---|---|
//! | `table1` | Table 1 — classification of systems by tier/function |
//! | `table2` | Table 2 — DAG-based organization comparison |
//! | `table3` | Table 3 — related-dataset-discovery comparison (+measured) |
//! | `fig2_pipeline` | Fig. 2 — per-tier end-to-end trace |
//! | `e1_lsh_scaling` … `e12_alite` | experiments E1–E12 |
//!
//! Criterion benches cover the performance-sensitive claims (E1, E2, E5,
//! E9, E10).

pub mod trajectory;

use lake_core::synth::{generate_lake, GroundTruth, LakeGenConfig};
use lake_core::Table;
use lake_discovery::corpus::TableCorpus;

/// The standard benchmark lake used across experiment binaries.
pub fn standard_lake() -> (Vec<Table>, GroundTruth) {
    let cfg = LakeGenConfig { groups: 5, tables_per_group: 3, noise_tables: 6, ..Default::default() };
    let lake = generate_lake(&cfg);
    (lake.tables, lake.truth)
}

/// The standard profiled corpus.
pub fn standard_corpus() -> (TableCorpus, GroundTruth) {
    let (tables, truth) = standard_lake();
    (TableCorpus::new(tables), truth)
}

/// Print a named section header.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

/// Format a ratio as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.0}%", x * 100.0)
}
