//! A1 — storage-design ablation (the §4.1 format choices made
//! measurable): columnar dictionary encoding vs plain encoding, row vs
//! columnar layouts, and the two compression codecs, over three value
//! profiles (repetitive categorical, unique ids, numeric).

use lake_core::synth::Zipf;
use lake_core::{Column, Table, Value};
use lake_formats::compress::{compress, Codec};
use lake_formats::{columnar, rowenc};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

fn table(profile: &str, rows: usize, rng: &mut StdRng) -> Table {
    let col = match profile {
        "categorical" => {
            let zipf = Zipf::new(12, 1.1);
            Column::new(
                "v",
                (0..rows)
                    .map(|_| Value::str(lake_core::synth::vocab::COLORS[zipf.sample(rng)]))
                    .collect(),
            )
        }
        "unique_ids" => Column::new(
            "v",
            (0..rows).map(|i| Value::str(format!("id-{i:08}-{}", rng.random::<u32>()))).collect(),
        ),
        _ => Column::new("v", (0..rows).map(|_| Value::Float(rng.random())).collect()),
    };
    let key = Column::new("k", (0..rows).map(|i| Value::Int(i as i64)).collect());
    Table::from_columns(profile, vec![key, col]).unwrap()
}

fn main() {
    let rows = 20_000;
    let mut rng = StdRng::seed_from_u64(1);
    println!("A1 — storage ablation ({rows} rows per profile)\n");
    println!(
        "{:<14} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "profile", "columnar B", "row B", "col/row", "rle B", "lz77 B"
    );
    for profile in ["categorical", "unique_ids", "numeric"] {
        let t = table(profile, rows, &mut rng);
        let col_buf = columnar::encode(&t);
        let row_buf = rowenc::encode(&t).unwrap();
        let rle = compress(&col_buf, Codec::Rle).len();
        let lz = compress(&col_buf, Codec::Lz77).len();
        println!(
            "{:<14} {:>12} {:>12} {:>9.2}x {:>10} {:>10}",
            profile,
            col_buf.len(),
            row_buf.len(),
            row_buf.len() as f64 / col_buf.len() as f64,
            rle,
            lz
        );
        // Round-trips stay intact under every layout.
        assert_eq!(columnar::decode(&col_buf).unwrap(), t);
        assert_eq!(rowenc::decode(&row_buf).unwrap(), t);
    }

    // Encode/decode throughput.
    println!("\n{:<14} {:>12} {:>12}", "profile", "enc µs", "dec µs");
    for profile in ["categorical", "unique_ids"] {
        let t = table(profile, rows, &mut rng);
        let t0 = Instant::now();
        let buf = columnar::encode(&t);
        let enc = t0.elapsed().as_secs_f64() * 1e6;
        let t1 = Instant::now();
        let _ = columnar::decode(&buf).unwrap();
        let dec = t1.elapsed().as_secs_f64() * 1e6;
        println!("{:<14} {:>12.0} {:>12.0}", profile, enc, dec);
    }
    println!("\nshape check: dictionary encoding shrinks categorical columns several-fold");
    println!("(hence the survey's Parquet-for-analytics guidance); unique ids defeat the");
    println!("dictionary and row/columnar sizes converge; LZ77 further squeezes repetitive");
    println!("payloads where RLE alone cannot.");
}
