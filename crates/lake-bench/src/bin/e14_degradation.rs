//! E14 — graceful degradation for federated query: degraded vs strict
//! execution over a federation with injected faults.
//!
//! Every scenario runs under a `ManualClock` with a seeded `FaultSource`,
//! so the "latency" column is *simulated* milliseconds (hangs + retry
//! backoff) and the whole table replays byte-for-byte: this bench doubles
//! as a demonstration that the degradation ladder is deterministic.
//! Completeness columns come straight from `ExecStats`; the trailing
//! section dumps the `lake-obs` counters the same run produced.

use lake_core::retry::{Clock, ManualClock, RetryPolicy};
use lake_core::{Dataset, DatasetId, Table, Value};
use lake_obs::MetricsRegistry;
use lake_query::degrade::{BreakerConfig, DegradationConfig, QueryBudget};
use lake_query::fault::FaultSource;
use lake_query::federated::{FederatedEngine, SourceBinding};
use lake_query::parse_query;
use lake_store::{Polystore, StoreKind};
use std::collections::BTreeMap;
use std::sync::Arc;

const ROWS: usize = 5_000;

fn build_polystore() -> lake_core::Result<Polystore> {
    let ps = Polystore::new();
    let data: Vec<Vec<Value>> = (0..ROWS)
        .map(|i| vec![Value::Int(i as i64), Value::Int((i % 100) as i64)])
        .collect();
    let live = Table::from_rows("events_live", &["id", "bucket"], data.clone())?;
    ps.store(DatasetId(1), "events_live", Dataset::Table(live))?;
    let docs: Vec<_> = (0..200)
        .map(|i| {
            lake_core::Json::obj(vec![
                ("id", lake_core::Json::Num((ROWS + i) as f64)),
                ("bucket", lake_core::Json::Num((i % 100) as f64)),
            ])
        })
        .collect();
    ps.store(DatasetId(2), "events_docs", Dataset::Documents(docs))?;
    let mut archive = Table::from_rows("events_archive", &["id", "bucket"], data)?;
    archive.name = "events_archive".into();
    ps.store_in(DatasetId(3), "events_archive", Dataset::Table(archive), StoreKind::File)?;
    Ok(ps)
}

fn engine<'a>(
    ps: &'a Polystore,
    registry: &'a MetricsRegistry,
    clock: Arc<ManualClock>,
) -> FederatedEngine<'a> {
    let cols: BTreeMap<String, String> =
        [("id".to_string(), "id".to_string()), ("bucket".to_string(), "bucket".to_string())]
            .into();
    let mut fe = FederatedEngine::new(ps).with_obs(registry, clock as Arc<dyn Clock>);
    fe.register(
        "events",
        vec![
            SourceBinding {
                store: StoreKind::Relational,
                location: "events_live".into(),
                columns: cols.clone(),
            },
            SourceBinding {
                store: StoreKind::Document,
                location: "events_docs".into(),
                columns: cols.clone(),
            },
            SourceBinding {
                store: StoreKind::File,
                location: "tables/events_archive.pql".into(),
                columns: cols,
            },
        ],
    );
    fe
}

struct Scenario {
    name: &'static str,
    faults: fn() -> FaultSource,
}

const SCENARIOS: &[Scenario] = &[
    Scenario { name: "healthy", faults: FaultSource::new },
    Scenario {
        name: "slow-archive",
        faults: || FaultSource::new().slow("tables/events_archive.pql", 40),
    },
    Scenario { name: "docs-transient", faults: || FaultSource::new().transient("events_docs", 2) },
    Scenario { name: "docs-dead", faults: || FaultSource::new().dead("events_docs") },
    Scenario {
        name: "all-dead",
        faults: || {
            FaultSource::new()
                .dead("events_live")
                .dead("events_docs")
                .dead("tables/events_archive.pql")
        },
    },
];

fn main() -> lake_core::Result<()> {
    println!("E14 — degraded vs strict federated execution ({ROWS} rows × 3 sources)");
    println!("(sim ms = ManualClock time: injected hangs + retry backoff; deterministic)\n");
    println!(
        "{:<15} {:<9} {:>7} {:>8} {:>8}  {}",
        "scenario", "mode", "rows", "partial", "sim ms", "completeness"
    );

    let registry = MetricsRegistry::new();
    let q = parse_query("select id from events where bucket < 10")?;
    for sc in SCENARIOS {
        for strict in [false, true] {
            let ps = build_polystore()?;
            let clock = Arc::new(ManualClock::new());
            let cfg = if strict { DegradationConfig::strict() } else { DegradationConfig::degraded() };
            let fe = engine(&ps, &registry, Arc::clone(&clock))
                .with_degradation(
                    cfg.with_retry(RetryPolicy::new(3).with_base_delay_ms(5).with_jitter_seed(42))
                        .with_breaker(BreakerConfig::default())
                        .with_budget(QueryBudget::unlimited().with_per_source_ms(100)),
                )
                .with_faults((sc.faults)());
            let mode = if strict { "strict" } else { "degraded" };
            match fe.execute(&q, true) {
                Ok((t, stats)) => println!(
                    "{:<15} {:<9} {:>7} {:>8} {:>8}  {}",
                    sc.name,
                    mode,
                    t.num_rows(),
                    stats.completeness.is_partial,
                    clock.total_ms(),
                    stats.completeness.render(),
                ),
                Err(e) => println!(
                    "{:<15} {:<9} {:>7} {:>8} {:>8}  error: {e}",
                    sc.name, mode, "-", "-", clock.total_ms(),
                ),
            }
        }
    }

    let snap = registry.snapshot();
    println!("\nobs registry after all runs:");
    for name in
        ["lake_query_execute_total", "lake_query_partial_total", "lake_query_source_skipped_total"]
    {
        println!("  {:<35} {}", name, snap.counter_value(name));
    }
    for (id, v) in &snap.counters {
        if id.name == "lake_query_source_skipped_total" {
            let labels: Vec<String> =
                id.labels.iter().map(|(k, val)| format!("{k}={val}")).collect();
            println!("    {:<33} {}", labels.join(","), v);
        }
    }
    println!("\nshape check: degraded mode answers from the healthy sources and says what");
    println!("it skipped; strict mode preserves fail-fast. Same faults, same seeds → same table.");
    Ok(())
}
