//! E4 — Aurum's incremental maintenance (§6.2.1): "When changes occur in
//! the data, Aurum does not re-read it from scratch. Only if the
//! difference compared to the original values is above a threshold, it
//! updates column signatures."
//!
//! Sweep the update threshold under a fixed stream of small changes;
//! report re-profiles performed (maintenance cost) against accumulated
//! staleness (index freshness) — the trade-off the threshold tunes.

use lake_bench::standard_corpus;
use lake_discovery::aurum::{Aurum, AurumConfig};
use lake_discovery::corpus::ColumnRef;
use lake_discovery::DiscoverySystem;

fn main() {
    println!("E4 — Aurum incremental maintenance: threshold vs cost vs staleness\n");
    println!("{:>10} {:>12} {:>12}", "threshold", "re-profiles", "staleness");
    for threshold in [0.01, 0.05, 0.1, 0.2, 0.5] {
        let (mut corpus, _) = standard_corpus();
        let mut aurum = Aurum::new(AurumConfig { update_threshold: threshold, ..Default::default() });
        aurum.build(&corpus);
        // A fixed change stream: 200 small edits of 3% of a column each,
        // round-robin over the first 10 columns.
        for i in 0..200 {
            let at = corpus.profiles()[i % 10].at;
            let at = ColumnRef { table: at.table, column: at.column };
            aurum.observe_change(&mut corpus, at, 0.03);
        }
        println!(
            "{:>10.2} {:>12} {:>12.2}",
            threshold,
            aurum.reprofile_count,
            aurum.staleness()
        );
    }
    println!("\nshape check: higher thresholds → fewer re-profiles but more staleness;");
    println!("the threshold is exactly the cost/freshness dial the paper describes.");
}
