//! E7 — domain discovery quality (§6.4.1): D⁴ recovers semantic domains
//! from values alone; DomainNet additionally disambiguates homographs
//! ("Apple: fruit or brand?").
//!
//! A planted corpus of fruit/brand/color/city columns — fruit and brand
//! share three homographs — measures domain F1 for D⁴ and homograph
//! precision/recall for DomainNet.

use lake_core::stats::f1;
use lake_core::synth::generate_domain_corpus;
use lake_maintain::enrich::d4::{discover_domains, D4Config};
use lake_maintain::enrich::domainnet::{analyze, column_assignment};
use std::collections::{BTreeMap, BTreeSet};

fn main() {
    let (tables, labels) = generate_domain_corpus(11, 4, 100);
    println!(
        "E7 — domain discovery on {} columns over 4 planted domains (3 homographs)\n",
        labels.len()
    );

    // --- D⁴: column-domain assignment agreement (pairwise F1). ---
    let disc = discover_domains(&tables, D4Config::default());
    let mut truth_of: BTreeMap<(usize, usize), &str> = BTreeMap::new();
    for (tname, col, dom) in &labels {
        let ti = tables.iter().position(|t| &t.name == tname).unwrap();
        let ci = tables[ti].column_index(col).unwrap();
        truth_of.insert((ti, ci), dom);
    }
    let keys: Vec<(usize, usize)> = truth_of.keys().copied().collect();
    let (mut tp, mut fp, mut fnn) = (0usize, 0usize, 0usize);
    for i in 0..keys.len() {
        for j in i + 1..keys.len() {
            let same_truth = truth_of[&keys[i]] == truth_of[&keys[j]];
            let same_pred = match (disc.column_domain.get(&keys[i]), disc.column_domain.get(&keys[j])) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            };
            match (same_truth, same_pred) {
                (true, true) => tp += 1,
                (false, true) => fp += 1,
                (true, false) => fnn += 1,
                _ => {}
            }
        }
    }
    let precision = tp as f64 / (tp + fp).max(1) as f64;
    let recall = tp as f64 / (tp + fnn).max(1) as f64;
    println!("D4:        {} domains found", disc.domains.len());
    println!(
        "           pairwise column-domain P={precision:.2} R={recall:.2} F1={:.2}",
        f1(precision, recall)
    );

    // --- DomainNet: homograph detection. ---
    let net = analyze(&tables, 5);
    let truth_homographs: BTreeSet<&str> = ["apple", "blackberry", "kiwi"].into();
    let found: BTreeSet<String> = net.homographs().into_iter().map(|(v, _)| v).collect();
    let htp = found.iter().filter(|v| truth_homographs.contains(v.as_str())).count();
    let hp = htp as f64 / found.len().max(1) as f64;
    let hr = htp as f64 / truth_homographs.len() as f64;
    println!(
        "DomainNet: {} column communities; homographs found: {:?}",
        net.num_communities(),
        found
    );
    println!("           homograph P={hp:.2} R={hr:.2} F1={:.2}", f1(hp, hr));
    let _ = column_assignment(&net);
    println!("\nshape check: both recover the planted domains; DomainNet flags exactly the");
    println!("fruit/brand homographs without merging the two domains.");
}
