//! Regenerate Table 2: comparison of DAG-based dataset organization
//! approaches — the descriptive rows come from the implementations'
//! `describe()` methods, and the measured |V|/|E| columns from actually
//! building each DAG on one synthetic data-science scenario.

use lake_bench::standard_lake;
use lake_organize::kayak::{describe_task_graph, Pipeline, Primitive, TaskGraph};
use lake_organize::notebook::{synth_notebook, VariableDependencyGraph};
use lake_organize::organization::{attribute_embeddings, build_optimized};
use lake_organize::DagDescription;

fn main() {
    let (tables, _) = standard_lake();
    let mut rows: Vec<DagDescription> = Vec::new();

    // KAYAK pipeline + task dependency on an insert/profile/relate flow.
    let mut graph = TaskGraph::new();
    let mut pipeline = Pipeline::new();
    let mut prev: Option<usize> = None;
    for t in tables.iter().take(6) {
        let detect = graph.add_task(&format!("detect:{}", t.name), || {});
        let profile = graph.add_task(&format!("profile:{}", t.name), || {});
        let join = graph.add_task(&format!("joinability:{}", t.name), || {});
        let p = pipeline.add_primitive(Primitive {
            name: format!("insert_{}", t.name),
            tasks: vec![detect, profile, join],
        });
        if let Some(prev) = prev {
            pipeline.add_order(prev, p);
        }
        prev = Some(p);
    }
    pipeline.lower(&mut graph);
    rows.push(pipeline.describe());
    rows.push(describe_task_graph(&graph));

    // Nargesian organization over the lake's attributes.
    let embeddings = attribute_embeddings(&tables, 32);
    let org = build_optimized(&embeddings, 4);
    rows.push(org.describe());

    // Juneau variable dependency graph from a synthetic notebook session.
    let nb = synth_notebook("analysis", &["dropna", "normalize", "merge", "groupby", "plot"]);
    let vdg = VariableDependencyGraph::from_notebook(&nb);
    rows.push(vdg.describe());

    println!("Table 2 — Comparison of DAG-based dataset organization approaches");
    println!("(descriptions generated from the implementations; |V|,|E| measured)\n");
    for d in &rows {
        println!("System:        {}", d.system);
        println!("  Function:    {}", d.function);
        println!("  Node:        {}", d.node);
        println!("  Edge:        {}", d.edge);
        println!("  Direction:   {}", d.edge_direction);
        println!("  Built:       |V|={} |E|={}", d.nodes_built, d.edges_built);
        println!();
    }

    // Sanity: the four rows of the paper's Table 2.
    assert_eq!(rows.len(), 4);
    assert!(graph.run_parallel(4).is_ok());
    println!("task-dependency DAG executed in parallel ✓");
}
