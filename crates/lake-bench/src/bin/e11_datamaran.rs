//! E11 — DATAMARAN (§5.1): unsupervised structure extraction from
//! multi-line logs "provides a high extraction accuracy compared to
//! existing works".
//!
//! Synthetic corpora with known record templates measure template
//! recovery and record-extraction accuracy against a naive
//! one-line-one-record splitter baseline.

use lake_ingest::datamaran::{Datamaran, DatamaranConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generate a log from `k` known templates, with multi-line stack frames
/// on error records.
fn synth_log(lines: usize, templates: usize, seed: u64) -> (Vec<String>, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut log = Vec::new();
    let mut records = 0;
    while log.len() < lines {
        let t = rng.random_range(0..templates);
        let ts = format!("2024-01-{:02} {:02}:{:02}:{:02}", rng.random_range(1..28), rng.random_range(0..24), rng.random_range(0..60), rng.random_range(0..60));
        records += 1;
        match t {
            0 => log.push(format!("{ts} INFO user {} logged in", rng.random_range(100..999))),
            1 => log.push(format!("{ts} WARN disk {}% full on node{}", rng.random_range(50..99), rng.random_range(0..8))),
            2 => {
                log.push(format!("{ts} ERROR request {} failed", rng.random_range(1000..9999)));
                for f in 0..rng.random_range(1..4) {
                    log.push(format!("  at frame_{f} in module{}", rng.random_range(0..5)));
                }
            }
            _ => log.push(format!("{ts} DEBUG cache hit ratio {:.2}", rng.random::<f64>())),
        }
    }
    (log, records)
}

fn main() {
    println!("E11 — DATAMARAN log-structure extraction\n");
    println!(
        "{:>10} {:>10} {:>10} {:>12} {:>14}",
        "lines", "templates", "found", "match rate", "naive records"
    );
    for templates in [2usize, 3, 4] {
        let (log, true_records) = synth_log(2_000, templates, 7);
        let d = Datamaran::new(DatamaranConfig { min_coverage: 0.05, refine: true });
        let result = d.extract_records(&log);
        let matched = result.records.len();
        let match_rate = matched as f64 / true_records as f64;
        // Naive baseline treats every line as a record — overcounts by all
        // continuation lines.
        let naive_records = log.len();
        println!(
            "{:>10} {:>10} {:>10} {:>12} {:>14}",
            log.len(),
            templates,
            result.templates.len(),
            lake_bench::pct(match_rate),
            naive_records
        );
        assert!(match_rate > 0.95, "extraction accuracy too low");
        assert!(result.unmatched as f64 <= true_records as f64 * 0.05);
    }

    // Field extraction fidelity.
    let (log, _) = synth_log(500, 2, 9);
    let result = Datamaran::default().extract_records(&log);
    let with_fields = result.records.iter().filter(|r| !r.fields.is_empty()).count();
    println!(
        "\nfield extraction: {}/{} records carry structured field values",
        with_fields,
        result.records.len()
    );
    println!("shape check: near-perfect record recovery without supervision; the naive");
    println!("splitter cannot tell continuation lines from records.");
}
