//! E17 — workload scheduling policies on the lake simulator, recorded to
//! `BENCH_sched.json`.
//!
//! The bench captures a seeded workload trace from a live `lake-server`
//! swarm, adds three synthetic shapes (uniform, bursty, heavy-tailed),
//! and replays all four under all four policies (FIFO, SJF, fair share,
//! EDF) on the discrete-event simulator. Three gates guard the artifact:
//!
//! 1. **Replay** — the full scenario runs twice and the policy tables
//!    must be byte-identical; the comparison also re-runs under a fixed
//!    single host worker and must not change a byte (the table is a pure
//!    function of the traces, not of fan-out).
//! 2. **Calibration** — the captured trace's cost percentiles must agree
//!    with the swarm's measured virtual-cost percentiles within ±10%
//!    (the residual is the `not_found` slice: measurement covers `ok`
//!    responses, the trace covers every offered request).
//! 3. **Conservation** — every (trace × policy) cell satisfies
//!    `submitted == completed + rejected`.

use lake_core::{Parallelism, SystemClock};
use lake_obs::MetricsRegistry;
use lake_sched::{
    compare, synthesize, CostModel, Job, PolicyKind, PolicyTable, SimConfig, TraceShape,
};
use lake_server::{run_swarm_traced, LakeServer, ServerConfig, SwarmConfig, SwarmReport};
use lake_store::polystore::Polystore;
use std::sync::Arc;

const CLIENTS: usize = 48;
const REQUESTS_PER_CLIENT: usize = 16;
const TENANTS: usize = 8;
const SEED: u64 = 42;
const SYNTH_JOBS: usize = 400;
const DEADLINE_SLACK: u64 = 4;
const SIM_WORKERS: usize = 8;
const TOLERANCE_PERCENT: u64 = 10;

fn swarm_config() -> SwarmConfig {
    SwarmConfig {
        clients: CLIENTS,
        requests_per_client: REQUESTS_PER_CLIENT,
        tenants: TENANTS,
        seed: SEED,
        payload_len: 96,
        ..SwarmConfig::default()
    }
}

struct Scenario {
    report: SwarmReport,
    trace_json: String,
    sim_p50: u64,
    sim_p99: u64,
    table: PolicyTable,
}

/// One full scenario: live swarm capture, synthetic shapes, the policy
/// cross product under the session's host parallelism.
fn run_once(host_par: Parallelism) -> Scenario {
    let registry = Arc::new(MetricsRegistry::new());
    let cfg = ServerConfig { queue_capacity: 1_024, ..ServerConfig::default() };
    let handle = LakeServer::start(
        cfg,
        Arc::new(Polystore::new()),
        Arc::clone(&registry),
        Arc::new(SystemClock),
    )
    .expect("server start");
    let (report, trace) = run_swarm_traced(&handle.addr(), &swarm_config());
    let drain = handle.join().expect("drain");
    assert!(drain.drained && drain.worker_panics == 0, "{drain:?}");

    let (sim_p50, sim_p99) = trace.cost_percentiles();
    let model = CostModel::server_default();
    let mut traces: Vec<(String, Vec<Job>)> =
        vec![("swarm".to_string(), trace.to_jobs(Some(DEADLINE_SLACK)))];
    for shape in [TraceShape::Uniform, TraceShape::Bursty, TraceShape::HeavyTail] {
        let t = synthesize(shape, SEED, SYNTH_JOBS, TENANTS, &model);
        traces.push((shape.name().to_string(), t.to_jobs(Some(DEADLINE_SLACK))));
    }
    let table = compare(
        &traces,
        &PolicyKind::all(),
        &SimConfig { workers: SIM_WORKERS, queue_capacity: 0 },
        host_par,
    );
    Scenario {
        report,
        trace_json: trace.to_json().to_string(),
        sim_p50,
        sim_p99,
        table,
    }
}

fn within_tolerance(a: u64, b: u64) -> bool {
    let hi = a.max(b);
    let lo = a.min(b);
    hi.saturating_sub(lo).saturating_mul(100) <= hi.saturating_mul(TOLERANCE_PERCENT)
}

fn main() {
    println!("E17 — lake workload scheduling on the discrete-event simulator");
    println!(
        "  swarm: {CLIENTS} clients x {REQUESTS_PER_CLIENT} requests, {TENANTS} tenants, seed {SEED}"
    );
    println!(
        "  replay: 4 traces x 4 policies on {SIM_WORKERS} simulated workers, deadline slack {DEADLINE_SLACK}"
    );

    let first = run_once(Parallelism::auto());
    let second = run_once(Parallelism::auto());
    let solo = run_once(Parallelism::fixed(1));

    // Gate 1a: the whole scenario replays byte-identically.
    let table_a = first.table.to_json().to_string();
    if table_a != second.table.to_json().to_string() {
        eprintln!("REPLAY MISMATCH between two same-seed runs");
        std::process::exit(1);
    }
    if first.trace_json != second.trace_json {
        eprintln!("TRACE MISMATCH between two same-seed captures");
        std::process::exit(1);
    }
    // Gate 1b: host fan-out cannot perturb the table.
    if table_a != solo.table.to_json().to_string() {
        eprintln!("HOST-WORKER MISMATCH: fixed(1) table differs from auto table");
        std::process::exit(1);
    }

    // Gate 2: calibration against the measured swarm percentiles.
    let (p50, p99) = (first.report.p50_us, first.report.p99_us);
    if !within_tolerance(first.sim_p50, p50) || !within_tolerance(first.sim_p99, p99) {
        eprintln!(
            "CALIBRATION DRIFT beyond {TOLERANCE_PERCENT}%: simulated p50/p99 {}/{} vs measured {}/{}",
            first.sim_p50, first.sim_p99, p50, p99
        );
        std::process::exit(1);
    }

    // Gate 3: conservation in every cell.
    for row in &first.table.rows {
        if !row.result.is_conserved() {
            eprintln!("CONSERVATION BROKE in {}/{}: {row:?}", row.trace, row.result.policy);
            std::process::exit(1);
        }
    }

    // Record the run into an obs registry (the `lake sched` CLI surfaces
    // the same family) and sanity-check one counter.
    let registry = MetricsRegistry::new();
    first.table.record_to(&registry);
    let per_policy_jobs: u64 = first
        .table
        .rows
        .iter()
        .filter(|r| r.result.policy == "fifo")
        .map(|r| r.result.submitted)
        .sum();
    let counted =
        registry.snapshot().counter_value_with("lake_sched_jobs_total", &[("policy", "fifo")]);
    if counted != per_policy_jobs {
        eprintln!("metrics drifted from the table: {counted} vs {per_policy_jobs}");
        std::process::exit(1);
    }

    println!();
    print!("{}", first.table.render());
    println!(
        "\n  calibration: simulated p50/p99 {}/{}us vs measured {}/{}us (within {TOLERANCE_PERCENT}%)",
        first.sim_p50, first.sim_p99, p50, p99
    );
    println!("  replay: byte-identical across two runs and host worker counts");

    let payload = lake_core::Json::obj(vec![
        ("measured_p50_us", lake_core::Json::Num(p50 as f64)),
        ("measured_p99_us", lake_core::Json::Num(p99 as f64)),
        ("simulated_p50_us", lake_core::Json::Num(first.sim_p50 as f64)),
        ("simulated_p99_us", lake_core::Json::Num(first.sim_p99 as f64)),
        ("seed", lake_core::Json::Num(SEED as f64)),
        ("sim_workers", lake_core::Json::Num(SIM_WORKERS as f64)),
        ("table", first.table.to_json()),
        ("tolerance_percent", lake_core::Json::Num(TOLERANCE_PERCENT as f64)),
    ]);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sched.json");
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let date = lake_bench::trajectory::utc_date(secs);
    let entries = lake_bench::trajectory::record(out, &date, &payload)
        .expect("append BENCH_sched.json trajectory");
    println!("  wrote {out} ({entries} dated entries)");
}
