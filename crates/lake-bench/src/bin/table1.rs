//! Regenerate Table 1: classification of data lake solutions by tier and
//! function, with the module implementing each system in this workspace.

use lake::registry::{render_table1, Function, REGISTRY};

fn main() {
    println!("Table 1 — Classification of data lake solutions based on functions");
    println!("(every row is an implemented module in this repository)\n");
    print!("{}", render_table1());
    println!(
        "\n{} systems across {} functions and 3 tiers.",
        REGISTRY.len(),
        Function::ALL.len()
    );
    for f in Function::ALL {
        assert!(
            REGISTRY.iter().any(|e| e.function == f),
            "uncovered function {f:?}"
        );
    }
    println!("coverage check: all 11 functions implemented ✓");
}
