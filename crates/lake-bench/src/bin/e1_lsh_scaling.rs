//! E1 — Aurum's scalability claim (§6.2.1): "instead of conducting an
//! all-pair comparison of O(n²) complexity, it profiles columns with
//! signatures and stores them in an LSH index … it reduces to linear
//! complexity."
//!
//! Sweep the number of columns; compare all-pairs exact Jaccard vs
//! MinHash+LSH candidate generation (build + candidate-pair time), and
//! report the LSH's recall of truly similar pairs.

use lake_core::synth::{generate_lake, LakeGenConfig};
use lake_discovery::corpus::{TableCorpus, SIGNATURE_LEN};
use lake_index::lsh::LshIndex;
use std::time::Instant;

fn main() {
    println!("E1 — LSH vs all-pairs scaling (Aurum's linear-complexity claim)\n");
    println!(
        "{:>8} {:>12} {:>12} {:>8} {:>8}",
        "columns", "allpairs ms", "lsh ms", "speedup", "recall"
    );
    for groups in [4usize, 8, 16, 32, 64] {
        let cfg = LakeGenConfig {
            groups,
            tables_per_group: 3,
            noise_tables: groups,
            ..Default::default()
        };
        let lake = generate_lake(&cfg);
        let corpus = TableCorpus::new(lake.tables);
        let profiles = corpus.profiles();
        let n = profiles.len();

        // All-pairs exact Jaccard on domains.
        let t0 = Instant::now();
        let mut truth_pairs = Vec::new();
        for a in 0..n {
            for b in a + 1..n {
                if profiles[a].jaccard_exact(&profiles[b]) >= 0.4 {
                    truth_pairs.push((a, b));
                }
            }
        }
        let allpairs_ms = t0.elapsed().as_secs_f64() * 1e3;

        // MinHash + LSH.
        let t1 = Instant::now();
        let mut lsh = LshIndex::new(SIGNATURE_LEN / 4, 4);
        for (i, p) in profiles.iter().enumerate() {
            lsh.insert(i, p.signature.clone());
        }
        let candidates = lsh.candidate_pairs();
        let lsh_ms = t1.elapsed().as_secs_f64() * 1e3;

        let found = truth_pairs.iter().filter(|p| candidates.contains(p)).count();
        let recall = if truth_pairs.is_empty() { 1.0 } else { found as f64 / truth_pairs.len() as f64 };
        println!(
            "{:>8} {:>12.1} {:>12.1} {:>7.1}x {:>8}",
            n,
            allpairs_ms,
            lsh_ms,
            allpairs_ms / lsh_ms.max(1e-9),
            lake_bench::pct(recall)
        );
    }
    println!("\nshape check: speedup grows with corpus size; recall stays ≥ ~90%.");
}
