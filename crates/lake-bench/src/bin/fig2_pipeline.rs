//! Regenerate Fig. 2: drive one dataset batch through every tier of the
//! proposed architecture and print the per-tier trace — storage tier
//! routing, ingestion-tier extraction/modeling, all seven maintenance
//! functions, and both exploration functions.

use lake::users::Role;
use lake::DataLake;
use lake_bench::section;
use lake_discovery::DiscoverySystem;

fn main() -> lake_core::Result<()> {
    let mut dl = DataLake::new();
    dl.access.add_user("omar", Role::Operations);
    dl.access.add_user("carl", Role::Curator);

    section("STORAGE TIER — polystore routing by original format");
    dl.ingest_file("omar", "crm/customers.csv", b"customer_id,city,country\nc1,delft,nl\nc2,paris,fr\nc3,delft,nl\nc4,delft,de\n")?;
    dl.ingest_file("omar", "shop/orders.csv", b"order_id,customer_id,total\no1,c1,10\no2,c2,99\no3,c1,30\n")?;
    dl.ingest_file("omar", "app/profiles.json", br#"{"user": "c1", "prefs": {"lang": "nl"}}"#)?;
    dl.ingest_file("omar", "ops/app.log", b"2024-01-01 12:00:00 INFO user c1 login\n2024-01-01 12:00:09 INFO user c2 login\n")?;
    println!("placements: {:?}", dl.store.placement_summary());

    section("INGESTION TIER — metadata extraction & modeling");
    for id in dl.dataset_ids() {
        let e = dl.metamodel.entry(id).unwrap();
        println!(
            "  {} structure={:?} props={}",
            dl.meta(id)?.name,
            e.structure.as_ref().map(std::mem::discriminant),
            e.properties.len()
        );
    }

    section("MAINTENANCE TIER — the seven functions");
    // 1. Dataset organization (GOODS catalog + zones).
    println!("1. organization: catalog entries={}, zones assigned", dl.catalog.len());
    for id in dl.dataset_ids() {
        dl.promote("carl", id)?;
    }
    // 2. Related dataset discovery.
    let (corpus, _) = dl.corpus();
    let mut aurum = lake_discovery::aurum::Aurum::default();
    aurum.build(&corpus);
    let q = corpus.table_index("customers").unwrap();
    let rel = aurum.top_k_related(&corpus, q, 2);
    println!(
        "2. discovery: customers ↔ {:?}",
        rel.iter().map(|&(t, _)| &corpus.tables()[t].name).collect::<Vec<_>>()
    );
    // 3. Data integration.
    let t_cust = dl.store.relational.get_table("customers")?;
    let t_ord = dl.store.relational.get_table("orders")?;
    let refs = vec![&t_cust, &t_ord];
    let ischema = lake_integrate::mapping::IntegratedSchema::build(
        &refs,
        lake_integrate::matching::MatcherKind::Hybrid,
        0.4,
    );
    println!("3. integration: integrated schema has {} attributes", ischema.attributes.len());
    // 4. Metadata enrichment.
    let rfds = lake_maintain::enrich::rfd::discover_rfds(&t_cust, 0.7, true);
    println!("4. enrichment: {} relaxed FDs discovered on customers", rfds.len());
    // 5. Data cleaning.
    let report = lake_maintain::clean::clams::analyze(&t_cust, 0.7);
    println!(
        "5. cleaning: {} constraints, {} review-queue triples",
        report.constraints.len(),
        report.review_queue.len()
    );
    // 6. Schema evolution.
    let mut hist = lake_maintain::evolve::EvolutionHistory::default();
    hist.ingest(1, &[lake_formats::json::parse(r#"{"user": "c1"}"#)?]);
    hist.ingest(2, &[lake_formats::json::parse(r#"{"user": "c1", "prefs": {"lang": "nl"}}"#)?]);
    println!("6. evolution: {} schema versions, ops={:?}", hist.versions.len(), hist.operations(0));
    // 7. Data provenance.
    let pg = dl.provenance();
    println!("7. provenance: graph has {} nodes", pg.graph().node_count());

    section("EXPLORATION TIER");
    let hits = lake_query::explore::joinable_for_column(&corpus, q, 0, 2);
    println!(
        "query-driven discovery: top joinable = {:?}",
        hits.iter().map(|a| &corpus.tables()[a.table].name).collect::<Vec<_>>()
    );
    let fe = dl.federated();
    let query = lake_query::parse_query("select customer_id, total from orders where total > 20")?;
    let (result, stats) = fe.execute(&query, true)?;
    println!(
        "heterogeneous querying: {} rows (moved {} from sources)",
        result.num_rows(),
        stats.rows_moved
    );
    println!("\nFig. 2 pipeline complete ✓");
    Ok(())
}
