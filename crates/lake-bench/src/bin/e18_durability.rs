//! E18: crash-restart durability — write-ahead journal group commit,
//! recovery replay, and torn-tail quarantine, measured in-process.
//!
//! Three gates, each checked at seeds 7 / 42 / 1337:
//!
//! 1. **Recovery fidelity** — replaying the journal into a fresh
//!    namespace reproduces the live state byte-for-byte, sequentially
//!    and under a 4-thread append burst.
//! 2. **Group commit** — fsync batches never exceed appended frames
//!    (and at least one fsync happened; acked means on disk).
//! 3. **Torn-tail safety** — garbage bytes appended to the journal are
//!    quarantined on the next open without losing any acked frame.
//!
//! The whole run executes twice and the two JSON payloads must be
//! byte-identical before `BENCH_durability.json` gains a dated entry.

use lake_core::{CrashSwitch, Json};
use lake_obs::MetricsRegistry;
use lake_query::{BreakerConfig, QuotaConfig};
use lake_server::wal::{apply_record, dump_state, Wal, WalConfig, WalOp, WalRecord};
use lake_server::Tenants;
use lake_store::durable::checksum_hex;
use lake_store::polystore::Polystore;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

const SEEDS: [u64; 3] = [7, 42, 1337];
const SEQ_OPS: usize = 40;
const BURST_OPS: usize = 32;
const BURST_THREADS: usize = 4;

fn fresh_dir(seed: u64, tag: &str) -> String {
    let dir = std::env::temp_dir().join(format!("lake-e18-{}-{seed}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scenario dir");
    dir.to_string_lossy().into_owned()
}

fn fresh_tenants() -> Tenants {
    Tenants::new(QuotaConfig::unlimited(), BreakerConfig::default())
}

fn open_wal(dir: &str, registry: &MetricsRegistry) -> (Wal, lake_server::wal::Recovered) {
    Wal::open(WalConfig::new(dir), Arc::new(CrashSwitch::disabled()), registry)
        .expect("open wal")
}

/// Seeded workload of puts (mixed wire kinds) and dels of live keys.
fn workload(seed: u64, n: usize) -> Vec<(WalOp, String, String, Json)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    let mut live: Vec<String> = Vec::new();
    for i in 0..n {
        if !live.is_empty() && rng.random_range(0..5u32) == 0 {
            let victim = live.remove(rng.random_range(0..live.len()));
            out.push((WalOp::Del, victim, String::new(), Json::Null));
            continue;
        }
        let name = format!("d{i}");
        let (kind, body) = match rng.random_range(0..3u32) {
            0 => ("text", Json::str(format!("v-{seed}-{i}"))),
            1 => ("log", Json::Array(vec![Json::str(format!("line-{i}"))])),
            _ => ("documents", Json::Array(vec![Json::obj(vec![("k", Json::Num(i as f64))])])),
        };
        live.push(name.clone());
        out.push((WalOp::Put, name, kind.to_string(), body));
    }
    out
}

/// Journal-then-apply each op (the durable write path's order); returns
/// the live namespace dump.
fn run_ops(
    wal: &Arc<Wal>,
    tenants: &Arc<Tenants>,
    store: &Arc<Polystore>,
    ops: &[(WalOp, String, String, Json)],
) {
    for (op, name, kind, body) in ops {
        let seq = wal.append(*op, "acme", name, kind, body).expect("append");
        let rec = WalRecord {
            seq,
            op: *op,
            tenant: "acme".into(),
            name: name.clone(),
            kind: kind.clone(),
            body: body.clone(),
        };
        apply_record(tenants, store, &rec).expect("apply");
        wal.mark_applied(seq);
    }
}

/// Recover the journal at `dir` into a fresh namespace; returns the
/// dump and the number of records replayed.
fn recover(dir: &str) -> (String, u64) {
    let registry = MetricsRegistry::new();
    let (_wal, recovered) = open_wal(dir, &registry);
    let tenants = fresh_tenants();
    let store = Polystore::new();
    if let Some(snapshot) = &recovered.snapshot {
        lake_server::wal::restore_snapshot(&tenants, &store, snapshot).expect("snapshot");
    }
    for rec in &recovered.records {
        apply_record(&tenants, &store, rec).expect("replay");
    }
    (dump_state(&tenants, &store).to_string(), recovered.records.len() as u64)
}

fn gate(ok: bool, what: &str) {
    if !ok {
        eprintln!("E18 gate failed: {what}");
        std::process::exit(1);
    }
}

fn scenario(seed: u64) -> Json {
    // Phase 1: sequential workload, restart, torn tail.
    let dir = fresh_dir(seed, "seq");
    let registry = MetricsRegistry::new();
    let ops = workload(seed, SEQ_OPS);
    {
        let (wal, recovered) = open_wal(&dir, &registry);
        gate(recovered.records.is_empty(), "fresh dir replays nothing");
        let (wal, tenants, store) =
            (Arc::new(wal), Arc::new(fresh_tenants()), Arc::new(Polystore::new()));
        run_ops(&wal, &tenants, &store, &ops);
        let live = dump_state(&tenants, &store).to_string();
        let (replayed_dump, replayed) = recover(&dir);
        gate(replayed_dump == live, "sequential replay reproduces the live state");
        gate(replayed == ops.len() as u64, "every acked frame replays");
    }
    let snap = registry.snapshot();
    let appended = snap.counter_value("lake_server_wal_appended_total");
    let fsync_batches = snap.counter_value("lake_server_wal_fsync_batches_total");
    gate(appended == ops.len() as u64, "append counter matches workload");
    gate(fsync_batches >= 1 && fsync_batches <= appended, "group commit batches <= appends");

    // Torn tail: garbage after the last frame is quarantined, acked
    // frames survive.
    let journal = std::path::Path::new(&dir).join("_wal").join("journal.log");
    let mut bytes = std::fs::read(&journal).expect("read journal");
    bytes.extend_from_slice(&[0, 0, 0, 99, b'x', b'y']);
    std::fs::write(&journal, &bytes).expect("tear journal");
    let torn_registry = MetricsRegistry::new();
    let (_wal, torn) = open_wal(&dir, &torn_registry);
    gate(torn.report.torn_bytes > 0, "torn suffix detected");
    gate(torn.records.len() == ops.len(), "torn suffix costs no acked frame");
    let torn_bytes = torn.report.torn_bytes;
    let _ = std::fs::remove_dir_all(&dir);

    // Phase 2: 4-thread append burst over disjoint keys; the recovered
    // state must match the live one regardless of interleaving.
    let burst_dir = fresh_dir(seed, "burst");
    let burst_registry = MetricsRegistry::new();
    let puts: Vec<_> = workload(seed.wrapping_mul(31), BURST_OPS)
        .into_iter()
        .filter(|(op, ..)| *op == WalOp::Put)
        .collect();
    let burst_checksum = {
        let (wal, _) = open_wal(&burst_dir, &burst_registry);
        let (wal, tenants, store) =
            (Arc::new(wal), Arc::new(fresh_tenants()), Arc::new(Polystore::new()));
        let handles: Vec<_> = (0..BURST_THREADS)
            .map(|t| {
                let chunk: Vec<_> =
                    puts.iter().skip(t).step_by(BURST_THREADS).cloned().collect();
                let (wal, tenants, store) =
                    (Arc::clone(&wal), Arc::clone(&tenants), Arc::clone(&store));
                std::thread::spawn(move || run_ops(&wal, &tenants, &store, &chunk))
            })
            .collect();
        for h in handles {
            h.join().expect("burst thread");
        }
        let live = dump_state(&tenants, &store).to_string();
        let (recovered_dump, replayed) = recover(&burst_dir);
        gate(recovered_dump == live, "burst replay reproduces the live state");
        gate(replayed == puts.len() as u64, "every burst frame replays");
        checksum_hex(live.as_bytes())
    };
    let burst_snap = burst_registry.snapshot();
    let burst_appended = burst_snap.counter_value("lake_server_wal_appended_total");
    let burst_fsyncs = burst_snap.counter_value("lake_server_wal_fsync_batches_total");
    gate(
        burst_fsyncs >= 1 && burst_fsyncs <= burst_appended,
        "burst group commit batches <= appends",
    );
    let _ = std::fs::remove_dir_all(&burst_dir);

    // `fsync_batches` under the burst depends on thread timing, so the
    // payload keeps only the invariant; everything recorded here is a
    // pure function of the seed.
    Json::obj(vec![
        ("acked", Json::Num(appended as f64)),
        ("burst_state_fnv", Json::str(burst_checksum)),
        ("fsync_batches", Json::Num(fsync_batches as f64)),
        ("group_commit_ok", Json::Bool(burst_fsyncs <= burst_appended)),
        ("replayed", Json::Num(appended as f64)),
        ("seed", Json::Num(seed as f64)),
        ("torn_bytes", Json::Num(torn_bytes as f64)),
    ])
}

fn main() {
    lake_bench::section("E18 — durability: WAL group commit, recovery replay, torn-tail quarantine");

    let run = || Json::Array(SEEDS.iter().map(|&s| scenario(s)).collect());
    let first = run();
    let second = run();
    let (json_a, json_b) = (first.to_string(), second.to_string());
    if json_a != json_b {
        eprintln!("REPLAY MISMATCH:\n  run1: {json_a}\n  run2: {json_b}");
        std::process::exit(1);
    }

    println!("\n  seed   acked  fsyncs  replayed  torn_bytes  burst_state_fnv");
    println!("  -----  -----  ------  --------  ----------  ----------------");
    if let Some(rows) = first.as_array() {
        for row in rows {
            let n = |k: &str| row.get(k).and_then(Json::as_f64).unwrap_or(-1.0) as i64;
            let fnv = row.get("burst_state_fnv").and_then(Json::as_str).unwrap_or("?");
            println!(
                "  {:<5}  {:>5}  {:>6}  {:>8}  {:>10}  {fnv}",
                n("seed"),
                n("acked"),
                n("fsync_batches"),
                n("replayed"),
                n("torn_bytes"),
            );
        }
    }
    println!("\n  recovery: live state reproduced byte-for-byte at every seed");
    println!("  torn tail: quarantined with zero acked frames lost");
    println!("  replay: byte-identical across two full runs");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_durability.json");
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let date = lake_bench::trajectory::utc_date(secs);
    let entries = lake_bench::trajectory::record(out, &date, &first)
        .expect("append BENCH_durability.json trajectory");
    println!("  wrote {out} ({entries} dated entries)");
}
