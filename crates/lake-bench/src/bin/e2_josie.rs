//! E2 — JOSIE's claims (§6.2.1): exact top-k overlap search whose cost
//! model "makes the performance robust to different data distributions".
//!
//! Sweep the Zipf exponent of value frequencies; compare JOSIE's
//! cost-model search against the naive read-every-posting baseline:
//! postings read, candidates probed, latency — and verify exactness.

use lake_core::synth::Zipf;
use lake_discovery::josie::Josie;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    println!("E2 — JOSIE cost model vs naive inverted-index scan\n");
    println!(
        "{:>6} {:>14} {:>14} {:>10} {:>10} {:>7}",
        "alpha", "josie posts", "naive posts", "josie µs", "naive µs", "exact"
    );
    for alpha in [0.0, 0.5, 1.0, 1.5] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let zipf = Zipf::new(2_000, alpha);
        let mut josie = Josie::default();
        let mut sets = Vec::new();
        for id in 0..1_000 {
            let set: Vec<String> =
                (0..80).map(|_| format!("v{}", zipf.sample(&mut rng))).collect();
            josie.insert_set(id, set.iter().cloned());
            sets.push(set);
        }
        // Plant near-duplicates of each query set: real lakes contain
        // joinable columns, and these high overlaps are what raise the
        // k-th-best bound enough for the cost model's pruning to bite.
        for q in 0..25usize {
            for d in 0..12usize {
                let mut near = sets[q].clone();
                near.truncate(70);
                near.extend((0..10).map(|i| format!("x{q}_{d}_{i}")));
                josie.insert_set(1_000 + q * 12 + d, near);
            }
        }

        let mut total_fast_posts = 0usize;
        let mut total_slow_posts = 0usize;
        let mut fast_time = 0.0;
        let mut slow_time = 0.0;
        let mut all_exact = true;
        for q in 0..25 {
            let t0 = Instant::now();
            let (fast, stats) = josie.top_k_overlap(&sets[q], 10, &[q]);
            fast_time += t0.elapsed().as_secs_f64() * 1e6;
            total_fast_posts += stats.postings_read;

            let t1 = Instant::now();
            let (slow, work) = josie.top_k_baseline(&sets[q], 10, &[q]);
            slow_time += t1.elapsed().as_secs_f64() * 1e6;
            total_slow_posts += work;

            let fo: Vec<usize> = fast.iter().map(|&(_, o)| o).collect();
            let so: Vec<usize> = slow.iter().map(|&(_, o)| o).collect();
            all_exact &= fo == so;
        }
        println!(
            "{:>6.1} {:>14} {:>14} {:>10.0} {:>10.0} {:>7}",
            alpha,
            total_fast_posts,
            total_slow_posts,
            fast_time / 25.0,
            slow_time / 25.0,
            if all_exact { "yes" } else { "NO" }
        );
        assert!(all_exact, "JOSIE must be exact at alpha={alpha}");
    }
    println!("\nshape check: JOSIE reads fewer postings, gap widens with skew (higher alpha).");
}
