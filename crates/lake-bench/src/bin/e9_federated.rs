//! E9 — heterogeneous querying (§7.2, §6.3): pushing selection predicates
//! down to the sources "reduces the amount of data to be loaded"
//! (Constance; Ontario's optimized plans).
//!
//! Sweep predicate selectivity over a three-store federation; report rows
//! moved and latency with and without pushdown.

use lake_core::{Dataset, DatasetId, Table, Value};
use lake_query::federated::{FederatedEngine, SourceBinding};
use lake_query::parse_query;
use lake_store::{Polystore, StoreKind};
use std::collections::BTreeMap;
use std::time::Instant;

fn main() -> lake_core::Result<()> {
    let rows = 20_000;
    let ps = Polystore::new();

    let data: Vec<Vec<Value>> = (0..rows)
        .map(|i| vec![Value::Int(i as i64), Value::Int((i % 100) as i64), Value::str(format!("p{i}"))])
        .collect();
    let t = Table::from_rows("events_live", &["id", "bucket", "payload"], data)?;
    ps.store(DatasetId(1), "events_live", Dataset::Table(t.clone()))?;
    let mut archived = t.clone();
    archived.name = "events_archive".into();
    ps.store_in(DatasetId(2), "events_archive", Dataset::Table(archived), StoreKind::File)?;

    let cols: BTreeMap<String, String> = [
        ("id".to_string(), "id".to_string()),
        ("bucket".to_string(), "bucket".to_string()),
        ("payload".to_string(), "payload".to_string()),
    ]
    .into();
    let mut fe = FederatedEngine::new(&ps);
    fe.register(
        "events",
        vec![
            SourceBinding { store: StoreKind::Relational, location: "events_live".into(), columns: cols.clone() },
            SourceBinding { store: StoreKind::File, location: "tables/events_archive.pql".into(), columns: cols },
        ],
    );

    println!("E9 — federated predicate pushdown ({} rows × 2 sources)\n", rows);
    println!(
        "{:>12} {:>12} {:>12} {:>10} {:>10}",
        "selectivity", "moved(push)", "moved(no)", "push ms", "no-push ms"
    );
    for buckets in [1i64, 10, 50, 100] {
        let q = parse_query(&format!("select id from events where bucket < {buckets}"))?;
        let t0 = Instant::now();
        let (res_push, s_push) = fe.execute(&q, true)?;
        let push_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let (res_no, s_no) = fe.execute(&q, false)?;
        let no_ms = t1.elapsed().as_secs_f64() * 1e3;
        assert_eq!(res_push.num_rows(), res_no.num_rows(), "answers must agree");
        println!(
            "{:>11}% {:>12} {:>12} {:>10.1} {:>10.1}",
            buckets,
            s_push.rows_moved,
            s_no.rows_moved,
            push_ms,
            no_ms
        );
    }
    println!("\nshape check: pushdown moves only matching rows; the gap is largest for");
    println!("selective predicates — the Constance/Ontario optimization in action.");
    Ok(())
}
