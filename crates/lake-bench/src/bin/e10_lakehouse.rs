//! E10 — Lakehouse ACID storage (§8.3): optimistic-concurrency commit
//! throughput under contention, snapshot-isolation checks, time travel,
//! and data-skipping effectiveness as the file count grows.

use lake_core::{Row, Table, Value};
use lake_house::{HouseMetrics, LakeTable};
use lake_obs::MetricsRegistry;
use lake_store::predicate::{CompareOp, Predicate};
use lake_store::MemoryStore;
use std::sync::Arc;
use std::time::Instant;

fn batch(tag: i64, n: i64) -> Table {
    let rows: Vec<Row> = (0..n).map(|i| vec![Value::Int(tag * 10_000 + i), Value::Int(tag)]).collect();
    Table::from_rows("b", &["id", "tag"], rows).unwrap()
}

fn main() {
    println!("E10 — lakehouse ACID over the object store\n");

    // Concurrent writer throughput, with measured commit latency read
    // back from the shared lake-obs registry (every writer's HouseMetrics
    // handle records into the same `lake_house_commit_seconds` histogram).
    println!(
        "{:>8} {:>12} {:>14} {:>14} {:>14}",
        "writers", "commits", "commits/sec", "p50 commit", "p99 commit"
    );
    for writers in [1usize, 2, 4, 8] {
        let registry = MetricsRegistry::new();
        let obs = HouseMetrics::register(&registry);
        let store = Arc::new(MemoryStore::new());
        LakeTable::open(store.as_ref(), "t").append(&batch(0, 10)).unwrap();
        let per_writer = 20;
        let t0 = Instant::now();
        let handles: Vec<_> = (0..writers)
            .map(|w| {
                let store = Arc::clone(&store);
                let obs = obs.clone();
                std::thread::spawn(move || {
                    let t = LakeTable::open(store.as_ref(), "t").with_obs(obs);
                    for i in 0..per_writer {
                        t.append(&batch((w * 100 + i) as i64 + 1, 10)).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let secs = t0.elapsed().as_secs_f64();
        let commits = writers * per_writer;
        let t = LakeTable::open(store.as_ref(), "t");
        assert_eq!(t.log().latest_version() as usize, commits + 1, "no lost commits");
        let snap = registry.snapshot();
        let commit_seconds = snap.histogram("lake_house_commit_seconds").cloned().unwrap_or_default();
        assert_eq!(commit_seconds.count, commits as u64, "every commit measured");
        println!(
            "{:>8} {:>12} {:>14.0} {:>11.1} us {:>11.1} us",
            writers,
            commits,
            commits as f64 / secs,
            commit_seconds.quantile(0.5) * 1e6,
            commit_seconds.quantile(0.99) * 1e6
        );
    }

    // Data skipping as the table accumulates files.
    println!("\n{:>8} {:>14} {:>14}", "files", "files read", "skip rate");
    let store = MemoryStore::new();
    let t = LakeTable::open(&store, "skip");
    for files in [4i64, 16, 64] {
        while (t.file_count().unwrap() as i64) < files {
            let tag = t.file_count().unwrap() as i64;
            t.append(&batch(tag, 50)).unwrap();
        }
        let (hits, stats) = t
            .scan(&[Predicate::new("id", CompareOp::Eq, 10_000i64 * (files / 2) + 7)])
            .unwrap();
        assert_eq!(hits.len(), 1);
        println!(
            "{:>8} {:>14} {:>14}",
            files,
            stats.files_read,
            lake_bench::pct(stats.files_skipped as f64 / files as f64)
        );
    }

    // Snapshot isolation: a reader pinned at an old version is unaffected
    // by later compaction.
    let pinned = t.log().latest_version();
    let (rows_before, _) = t.scan_at(pinned, &[]).unwrap();
    t.compact().unwrap();
    let (rows_after, _) = t.scan_at(pinned, &[]).unwrap();
    assert_eq!(rows_before.len(), rows_after.len());
    println!("\nsnapshot isolation: pinned reader unaffected by compaction ✓");
    println!("shape check: throughput degrades gracefully under contention (optimistic");
    println!("retries), and skip rate approaches 1 - 1/files for point lookups.");
}
