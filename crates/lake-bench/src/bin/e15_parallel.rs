//! E15 — deterministic parallel discovery: sequential vs parallel wall
//! times for corpus profiling, index construction, and query fan-out,
//! with the determinism contract asserted on every row.
//!
//! The north-star claims the reproduction should run "as fast as the
//! hardware allows" *without* giving up replayability. This bench proves
//! both halves at once: every parallel build/evaluation is compared
//! bit-for-bit against its sequential twin (profiles, EKG edges,
//! precision, recall) before any speedup is reported, so a row that
//! printed is a row whose parallel result was byte-identical. On hosts
//! with ≥ 4 workers the corpus-profiling speedup is additionally
//! asserted to reach 1.5×; below that the bench still verifies
//! determinism and reports whatever the hardware gives.

use lake_core::par::Parallelism;
use lake_core::retry::SystemClock;
use lake_core::synth::{generate_lake, LakeGenConfig};
use lake_discovery::aurum::Aurum;
use lake_discovery::d3l::D3l;
use lake_discovery::eval::evaluate_with_options;
use lake_discovery::josie::Josie;
use lake_discovery::{DiscoverySystem, TableCorpus};
use std::time::Instant;

fn lake_config() -> LakeGenConfig {
    LakeGenConfig {
        groups: 6,
        tables_per_group: 4,
        noise_tables: 8,
        rows: (150, 250),
        key_pool: 120,
        ..LakeGenConfig::default()
    }
}

fn main() {
    let auto = Parallelism::auto();
    let workers = auto.workers();
    println!("E15 — deterministic parallel discovery ({workers} workers)\n");

    // Corpus profiling: sequential vs parallel, identical profiles.
    let cfg = lake_config();
    let lake = generate_lake(&cfg);
    let t0 = Instant::now();
    let seq_corpus =
        TableCorpus::with_parallelism(lake.tables.clone(), Parallelism::sequential());
    let seq_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let par_corpus = TableCorpus::with_parallelism(lake.tables.clone(), auto);
    let par_ms = t1.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        seq_corpus.profiles(),
        par_corpus.profiles(),
        "parallel profiling must be bit-identical to sequential"
    );
    let profile_speedup = seq_ms / par_ms.max(1e-9);
    println!(
        "{:>24} {:>10} {:>12} {:>12} {:>9}",
        "stage", "columns", "seq ms", "par ms", "speedup"
    );
    println!(
        "{:>24} {:>10} {:>12.2} {:>12.2} {:>8.2}x",
        "corpus profiling",
        seq_corpus.profiles().len(),
        seq_ms,
        par_ms,
        profile_speedup
    );

    // Per-system: build + query fan-out, identical precision/recall.
    println!(
        "\n{:>24} {:>10} {:>12} {:>12} {:>9}  {}",
        "system", "queries", "seq bld ms", "par bld ms", "speedup", "p@k / r@k (verified equal)"
    );
    let clock = SystemClock;
    let systems: Vec<(&str, Box<dyn Fn(Parallelism) -> Box<dyn DiscoverySystem>>)> = vec![
        (
            "Aurum",
            Box::new(|p| {
                let mut s = Aurum::default();
                s.par = p;
                Box::new(s)
            }),
        ),
        (
            "JOSIE",
            Box::new(|p| {
                let mut s = Josie::default();
                s.par = p;
                Box::new(s)
            }),
        ),
        (
            "D3L",
            Box::new(|p| {
                let mut s = D3l::default();
                s.par = p;
                Box::new(s)
            }),
        ),
    ];
    for (name, make) in &systems {
        let mut seq_sys = make(Parallelism::sequential());
        let seq = evaluate_with_options(
            seq_sys.as_mut(),
            &seq_corpus,
            &lake.truth,
            3,
            &clock,
            Parallelism::sequential(),
        );
        let mut par_sys = make(auto);
        let par = evaluate_with_options(
            par_sys.as_mut(),
            &par_corpus,
            &lake.truth,
            3,
            &clock,
            auto,
        );
        assert_eq!(
            seq.precision_at_k.to_bits(),
            par.precision_at_k.to_bits(),
            "{name}: parallel precision diverged from sequential"
        );
        assert_eq!(
            seq.recall_at_k.to_bits(),
            par.recall_at_k.to_bits(),
            "{name}: parallel recall diverged from sequential"
        );
        assert_eq!(seq.queries, par.queries);
        println!(
            "{:>24} {:>10} {:>12.2} {:>12.2} {:>8.2}x  p@3={:.3} r@3={:.3}",
            name,
            par.queries,
            seq.build_ms,
            par.build_ms,
            seq.build_ms / par.build_ms.max(1e-9),
            par.precision_at_k,
            par.recall_at_k
        );
    }

    // The speedup floor is a *hardware* claim: workers can be forced up
    // with RUSTLAKE_WORKERS, but oversubscribing one physical core cannot
    // make profiling faster, so gate on actual cores as well.
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if workers >= 4 && cores >= 4 {
        assert!(
            profile_speedup >= 1.5,
            "expected ≥1.5x profiling speedup with {workers} workers on {cores} cores, \
             got {profile_speedup:.2}x"
        );
        println!("\nOK: profiling speedup {profile_speedup:.2}x meets the ≥1.5x floor at {workers} workers.");
    } else {
        println!(
            "\nNOTE: {workers} worker(s) on {cores} core(s); the ≥1.5x speedup floor applies \
             from 4 cores up. Determinism was still verified on every row."
        );
    }
}
