//! E5 — KAYAK's claim (§6.1.3): the task-dependency DAG "helps to
//! identify which tasks can be parallelized during execution."
//!
//! A synthetic data-preparation workload (per-dataset profiling chains
//! feeding one lake-wide joinability task) is executed sequentially and
//! with growing worker pools; wall-clock speedup is reported.

use lake_organize::kayak::TaskGraph;
use std::time::{Duration, Instant};

fn workload(datasets: usize, work: Duration) -> TaskGraph {
    let mut g = TaskGraph::new();
    let mut tails = Vec::new();
    for d in 0..datasets {
        let detect = g.add_task(&format!("detect{d}"), move || std::thread::sleep(work));
        let profile = g.add_task(&format!("profile{d}"), move || std::thread::sleep(work));
        let stats = g.add_task(&format!("stats{d}"), move || std::thread::sleep(work));
        g.add_dependency(detect, profile);
        g.add_dependency(profile, stats);
        tails.push(stats);
    }
    let join = g.add_task("joinability", move || std::thread::sleep(work));
    for t in tails {
        g.add_dependency(t, join);
    }
    g
}

fn main() {
    let work = Duration::from_millis(2);
    let datasets = 12;
    println!("E5 — KAYAK parallel task scheduling ({datasets} dataset chains × 3 tasks + 1 barrier)\n");

    let g = workload(datasets, work);
    let t0 = Instant::now();
    g.run_sequential().unwrap();
    let seq = t0.elapsed();
    println!("{:>8} {:>10} {:>8}", "workers", "ms", "speedup");
    println!("{:>8} {:>10.1} {:>8}", "seq", seq.as_secs_f64() * 1e3, "1.0x");

    for workers in [2usize, 4, 8] {
        let g = workload(datasets, work);
        let t0 = Instant::now();
        let order = g.run_parallel(workers).unwrap();
        let par = t0.elapsed();
        assert_eq!(order.len(), datasets * 3 + 1);
        println!(
            "{:>8} {:>10.1} {:>7.1}x",
            workers,
            par.as_secs_f64() * 1e3,
            seq.as_secs_f64() / par.as_secs_f64()
        );
    }
    println!("\nshape check: speedup approaches min(workers, dataset chains); the final");
    println!("joinability task is the sequential barrier limiting perfect scaling.");
}
