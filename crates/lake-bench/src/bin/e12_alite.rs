//! E12 — ALITE (§6.3): Full Disjunction integrates discovered tables more
//! completely than chains of binary outer joins.
//!
//! On cyclic-association inputs (the classic R(a,b), S(b,c), T(c,a)
//! pattern scaled up), count the fully-associated result tuples each
//! method recovers, and verify no source tuple is lost.

use lake_core::{Table, Value};
use lake_integrate::alite::{align_columns, full_disjunction, outer_join_chain};

fn cyclic_tables(entities: usize) -> Vec<Table> {
    // R(person, city), S(city, country), T(country, person) — associations
    // that close a cycle per entity.
    let r = Table::from_rows(
        "r",
        &["person", "city"],
        (0..entities)
            .map(|i| vec![Value::str(format!("p{i}")), Value::str(format!("city{i}"))])
            .collect(),
    )
    .unwrap();
    let s = Table::from_rows(
        "s",
        &["city", "country"],
        (0..entities)
            .map(|i| vec![Value::str(format!("city{i}")), Value::str(format!("country{i}"))])
            .collect(),
    )
    .unwrap();
    let t = Table::from_rows(
        "t",
        &["country", "person"],
        (0..entities)
            .map(|i| vec![Value::str(format!("country{i}")), Value::str(format!("q{i}"))])
            .collect(),
    )
    .unwrap();
    vec![r, s, t]
}

fn main() {
    println!("E12 — ALITE full disjunction vs binary outer-join chain\n");
    let tables = cyclic_tables(6);
    let refs: Vec<&Table> = tables.iter().collect();

    // Column alignment by embeddings (the ALITE pipeline).
    let alignment = align_columns(&refs, 0.45);
    println!(
        "alignment: {} integrated attributes from {} source columns",
        alignment.num_attributes,
        refs.iter().map(|t| t.num_columns()).sum::<usize>()
    );
    assert_eq!(alignment.num_attributes, 4, "person/city/country/person₂? got {}", alignment.num_attributes);

    let fd = full_disjunction(&refs, &alignment).unwrap();
    let chain = outer_join_chain(&refs, &alignment).unwrap();

    let complete = |t: &Table| {
        t.iter_rows()
            .filter(|r| r.iter().filter(|v| !v.is_null()).count() >= 3)
            .count()
    };
    println!("full disjunction:  {} rows, {} fully-associated", fd.num_rows(), complete(&fd));
    println!("outer-join chain:  {} rows, {} fully-associated", chain.num_rows(), complete(&chain));

    // Every source tuple must be preserved by FD.
    for (ti, t) in refs.iter().enumerate() {
        for r in 0..t.num_rows() {
            let covered = fd.iter_rows().any(|row| {
                t.columns().iter().enumerate().all(|(ci, col)| {
                    let target = alignment.assignment[ti][ci];
                    row[target] == col.values[r]
                })
            });
            assert!(covered, "lost tuple {ti}/{r}");
        }
    }
    println!("tuple preservation: every source tuple subsumed by an FD tuple ✓");
    assert!(complete(&fd) >= complete(&chain));
    println!("\nshape check: FD recovers at least as many full associations as any join");
    println!("chain, and is order-independent — the reason ALITE computes FD.");
}
