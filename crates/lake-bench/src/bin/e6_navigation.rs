//! E6 — Nargesian et al.'s claim (§6.1.3): the optimized organization
//! "achieves the maximum probability for all the attributes of tables to
//! be found" — i.e. structure beats flat and random baselines.
//!
//! Evaluate the exact Markov navigation success probability (no
//! simulation noise) of three organizations over the standard lake.

use lake_bench::standard_lake;
use lake_organize::organization::{
    attribute_embeddings, build_flat, build_optimized, build_random,
};

fn main() {
    let (tables, _) = standard_lake();
    let embeddings = attribute_embeddings(&tables, 32);
    println!(
        "E6 — organization navigation: {} attributes from {} tables\n",
        embeddings.len(),
        tables.len()
    );
    println!(
        "{:<22} {:>8} {:>8} {:>12}",
        "organization", "|V|", "|E|", "P(discover)"
    );
    println!("{}", "-".repeat(55));

    let flat = build_flat(&embeddings);
    let pf = flat.expected_discovery_probability(&embeddings);
    let d = flat.describe();
    println!("{:<22} {:>8} {:>8} {:>12.4}", "flat (1 level)", d.nodes_built, d.edges_built, pf);

    for seed in [1u64, 2] {
        let r = build_random(&embeddings, seed);
        let pr = r.expected_discovery_probability(&embeddings);
        let d = r.describe();
        println!(
            "{:<22} {:>8} {:>8} {:>12.4}",
            format!("random hierarchy #{seed}"),
            d.nodes_built,
            d.edges_built,
            pr
        );
    }

    for branching in [2usize, 4, 8] {
        let o = build_optimized(&embeddings, branching);
        let po = o.expected_discovery_probability(&embeddings);
        let d = o.describe();
        println!(
            "{:<22} {:>8} {:>8} {:>12.4}",
            format!("optimized (b={branching})"),
            d.nodes_built,
            d.edges_built,
            po
        );
    }
    println!("\nshape check: optimized > random > flat; moderate branching wins (too-wide");
    println!("levels dilute transition probabilities, too-narrow ones add navigation depth).");
}
