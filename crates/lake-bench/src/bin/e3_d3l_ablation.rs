//! E3 — D³L's claim (§6.2.1): combining five similarity features with
//! trained weights "improves the accuracy of discovered related tables"
//! over single signals.
//!
//! Ablation: each of the 5 features alone vs the uniform combination vs
//! the classifier-trained weighted combination, on the standard lake.

use lake_bench::standard_corpus;
use lake_discovery::d3l::{D3l, FEATURE_NAMES, NUM_FEATURES};
use lake_discovery::{evaluate, DiscoverySystem};

fn main() {
    let (corpus, truth) = standard_corpus();
    println!("E3 — D³L feature ablation\n");
    println!("{:<24} {:>6} {:>6}", "configuration", "P@2", "R@2");
    println!("{}", "-".repeat(40));

    for f in 0..NUM_FEATURES {
        let mut sys = D3l::with_single_feature(f);
        let r = evaluate(&mut sys, &corpus, &truth, 2);
        println!("{:<24} {:>6.2} {:>6.2}", format!("only {}", FEATURE_NAMES[f]), r.precision_at_k, r.recall_at_k);
    }

    let mut uniform = D3l::default();
    let ru = evaluate(&mut uniform, &corpus, &truth, 2);
    println!("{:<24} {:>6.2} {:>6.2}", "uniform combination", ru.precision_at_k, ru.recall_at_k);

    // Trained weights.
    let mut trained = D3l::default();
    trained.build(&corpus);
    let mut labelled = Vec::new();
    for a in 0..corpus.profiles().len() {
        for b in (a + 1)..corpus.profiles().len().min(a + 14) {
            let ta = &corpus.tables()[corpus.profiles()[a].at.table].name;
            let tb = &corpus.tables()[corpus.profiles()[b].at.table].name;
            if ta != tb {
                labelled.push((a, b, truth.tables_related(ta, tb)));
            }
        }
    }
    trained.train_weights(&corpus, &labelled);
    let weights = trained.weights;
    let rt = evaluate(&mut trained, &corpus, &truth, 2);
    println!("{:<24} {:>6.2} {:>6.2}", "trained combination", rt.precision_at_k, rt.recall_at_k);

    println!("\nlearned weights:");
    for (name, w) in FEATURE_NAMES.iter().zip(weights) {
        println!("  {name:<14} {w:.3}");
    }
    println!("\nshape check: combination ≥ best single feature; value overlap is the strongest single signal.");
}
