//! E13 — the survey's §8.2 research question made executable: "How to
//! discover related datasets to augment the existing training dataset and
//! improve ML model accuracy?"
//!
//! A data scientist holds a tiny labelled table; the lake contains
//! unionable tables with more labelled examples (plus noise tables).
//! Table-union search finds the augmenting tables; retraining on the
//! union improves held-out accuracy — the in-lake ML loop.

use lake_core::{Column, Table, Value};
use lake_discovery::corpus::TableCorpus;
use lake_discovery::union_search::UnionSearch;
use lake_discovery::DiscoverySystem;
use lake_ml::forest::{ForestConfig, RandomForest};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Two gaussian-ish classes in 2-D.
fn sample(class: usize, rng: &mut StdRng) -> (f64, f64) {
    // Overlapping classes: the decision boundary must be *learned*, so
    // more training data genuinely helps.
    let (cx, cy) = if class == 0 { (0.0, 0.0) } else { (0.9, 0.9) };
    (
        cx + rng.random::<f64>() + rng.random::<f64>() - 1.0,
        cy + rng.random::<f64>() + rng.random::<f64>() - 1.0,
    )
}

fn labelled_table(name: &str, rows: usize, rng: &mut StdRng) -> Table {
    let mut f1 = Vec::new();
    let mut f2 = Vec::new();
    let mut label = Vec::new();
    for i in 0..rows {
        let class = i % 2;
        let (x, y) = sample(class, rng);
        f1.push(Value::Float(x));
        f2.push(Value::Float(y));
        label.push(Value::str(if class == 0 { "alpha" } else { "beta" }));
    }
    Table::from_columns(
        name,
        vec![Column::new("f1", f1), Column::new("f2", f2), Column::new("label", label)],
    )
    .unwrap()
}

fn to_xy(t: &Table) -> (Vec<Vec<f64>>, Vec<usize>) {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for row in t.iter_rows() {
        let (Some(a), Some(b)) = (row[0].as_f64(), row[1].as_f64()) else { continue };
        let Some(l) = row[2].as_str() else { continue };
        xs.push(vec![a, b]);
        ys.push(usize::from(l == "beta"));
    }
    (xs, ys)
}

fn accuracy(model: &RandomForest, xs: &[Vec<f64>], ys: &[usize]) -> f64 {
    xs.iter().zip(ys).filter(|(x, y)| model.predict(x) == **y).count() as f64 / xs.len() as f64
}

fn main() {
    let mut rng = StdRng::seed_from_u64(13);
    println!("E13 — in-lake training-data augmentation (§8.2)\n");

    // The scientist's tiny training table + the lake.
    let train = labelled_table("my_train", 10, &mut rng);
    let mut tables = vec![train.clone()];
    for i in 0..3 {
        tables.push(labelled_table(&format!("survey_batch_{i}"), 150, &mut rng));
    }
    // Noise: unrelated textual tables.
    for i in 0..3 {
        tables.push(
            Table::from_columns(
                format!("noise_{i}"),
                vec![Column::new(
                    format!("txt{i}"),
                    (0..50).map(|j| Value::str(format!("w{i}_{j}"))).collect(),
                )],
            )
            .unwrap(),
        );
    }
    let corpus = TableCorpus::new(tables);

    // Held-out evaluation data.
    let test = labelled_table("test", 600, &mut rng);
    let (tx, ty) = to_xy(&test);

    // Baseline: train on the tiny table alone.
    let (bx, by) = to_xy(&train);
    let base = RandomForest::fit(&bx, &by, 2, ForestConfig::default());
    let base_acc = accuracy(&base, &tx, &ty);
    println!("baseline: {} training rows → accuracy {base_acc:.3}", bx.len());

    // Discover unionable tables and augment.
    let mut us = UnionSearch::default();
    us.build(&corpus);
    let found = us.top_k_unionable(&corpus, 0, 3);
    println!("union search found: {:?}", found
        .iter()
        .map(|&(t, s)| format!("{} ({s:.2})", corpus.tables()[t].name))
        .collect::<Vec<_>>());
    assert!(
        found.iter().all(|&(t, _)| corpus.tables()[t].name.starts_with("survey_batch")),
        "noise tables must not be selected"
    );

    let mut augmented = train.clone();
    for &(t, _) in &found {
        augmented = unioned_into_accum(augmented, &us, &corpus, t);
    }
    let (ax, ay) = to_xy(&augmented);
    let aug = RandomForest::fit(&ax, &ay, 2, ForestConfig::default());
    let aug_acc = accuracy(&aug, &tx, &ty);
    println!("augmented: {} training rows → accuracy {aug_acc:.3}", ax.len());
    assert!(aug_acc > base_acc, "augmentation should improve accuracy");
    println!(
        "\nshape check: discovery-driven augmentation lifted accuracy by {:.1} points —",
        (aug_acc - base_acc) * 100.0
    );
    println!("the §8.2 'ML-aware data lake' loop: discover → union → retrain.");
}

/// Append `candidate`'s aligned rows to `acc` (which shares the query's
/// schema).
fn unioned_into_accum(
    mut acc: Table,
    us: &UnionSearch,
    corpus: &TableCorpus,
    candidate: usize,
) -> Table {
    let u = us.union_into(corpus, 0, candidate).unwrap();
    // union_into returns query rows followed by candidate rows; take the
    // tail and push onto the accumulator.
    let query_rows = corpus.tables()[0].num_rows();
    for row in u.iter_rows().skip(query_rows) {
        acc.push_row(row).unwrap();
    }
    acc
}
