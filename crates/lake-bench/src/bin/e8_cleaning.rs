//! E8 — data cleaning (§6.5): error-injection benchmark. Corrupt a known
//! fraction of a clean table three ways (FD violations, type anomalies,
//! format drift) and measure each cleaner's detection precision/recall.

use lake_core::stats::f1;
use lake_core::{Table, Value};
use lake_maintain::clean::autovalidate::{infer_rule, validate_batch};
use lake_maintain::clean::clams;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeSet;

/// A clean city→country table with phone-formatted contact values.
fn clean_table(rows: usize, rng: &mut StdRng) -> Table {
    let cities = [("delft", "nl"), ("paris", "fr"), ("rome", "it"), ("oslo", "no")];
    let data: Vec<Vec<Value>> = (0..rows)
        .map(|i| {
            let (city, country) = cities[rng.random_range(0..cities.len())];
            vec![
                Value::Int(i as i64),
                Value::str(city),
                Value::str(country),
                Value::str(format!("06-{:04}-{:03}", rng.random_range(0..10_000), i % 1000)),
            ]
        })
        .collect();
    Table::from_rows("contacts", &["id", "city", "country", "phone"], data).unwrap()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(8);
    let rows = 400;
    let mut table = clean_table(rows, &mut rng);
    println!("E8 — cleaning benchmark: {rows} rows, 5% planted errors per kind\n");

    // Inject errors: remember the dirty rows.
    let mut dirty_fd: BTreeSet<usize> = BTreeSet::new();
    let mut dirty_type: BTreeSet<usize> = BTreeSet::new();
    let n_errs = rows / 20;
    let mut cols: Vec<lake_core::Column> = table.columns().to_vec();
    for _ in 0..n_errs {
        let r = rng.random_range(0..rows);
        cols[2].values[r] = Value::str("zz"); // FD violation: city ↛ zz
        dirty_fd.insert(r);
    }
    for _ in 0..n_errs {
        let r = rng.random_range(0..rows);
        cols[1].values[r] = Value::Int(12345); // type anomaly in city
        dirty_type.insert(r);
    }
    table = Table::from_columns("contacts", cols).unwrap();

    // --- CLAMS: constraint inference + violation ranking. ---
    let report = clams::analyze(&table, 0.85);
    let flagged: BTreeSet<usize> = report.review_queue.iter().map(|(t, _)| t.row).collect();
    let truth: BTreeSet<usize> = dirty_fd.union(&dirty_type).copied().collect();
    let tp = flagged.intersection(&truth).count();
    let p = tp as f64 / flagged.len().max(1) as f64;
    let r = tp as f64 / truth.len().max(1) as f64;
    println!(
        "CLAMS:         {} constraints, {} flagged rows → P={p:.2} R={r:.2} F1={:.2}",
        report.constraints.len(),
        flagged.len(),
        f1(p, r)
    );

    // --- Auto-Validate: train on clean phones, validate corrupted batch. ---
    let mut rng2 = StdRng::seed_from_u64(9);
    let train_table = clean_table(300, &mut rng2);
    let train: Vec<String> = train_table
        .column("phone")
        .unwrap()
        .values
        .iter()
        .map(Value::render)
        .collect();
    let train_refs: Vec<&str> = train.iter().map(String::as_str).collect();
    let rule = infer_rule(&train_refs, 0.02);
    let clean_batch: Vec<String> = clean_table(100, &mut rng2)
        .column("phone")
        .unwrap()
        .values
        .iter()
        .map(Value::render)
        .collect();
    let corrupted: Vec<String> = clean_batch.iter().map(|v| v.replace('-', "/")).collect();
    let ok_clean = validate_batch(&rule, clean_batch.iter().map(String::as_str), 0.05);
    let ok_bad = validate_batch(&rule, corrupted.iter().map(String::as_str), 0.05);
    println!(
        "Auto-Validate: level={:?}, clean batch accepted={ok_clean}, drifted batch accepted={ok_bad}",
        rule.level
    );
    assert!(ok_clean && !ok_bad);

    println!("\nshape check: CLAMS catches in-table violations with high precision;");
    println!("Auto-Validate catches cross-batch format drift rule-free methods miss.");
}
