//! E19 — DLBench-style discovery benchmark on the million-row lake:
//! columnar batch profiling vs. the naive row path, top-k equality
//! gates, and incremental index maintenance vs. whole-index rebuild.
//!
//! Three claims are gated, e15-style (a row that printed is a row whose
//! equality assertion already passed):
//!
//! 1. **Equality** — for every worker count in the 1/2/4/8 sweep (the
//!    same counts `RUSTLAKE_WORKERS` would pin process-wide), the
//!    columnar [`ProfilePath`] produces profiles *and* per-system top-k
//!    answers (Aurum, JOSIE, D³L) bit-identical to the naive row path.
//! 2. **Speedup** — dictionary-encoded profiling beats row-order
//!    re-rendering by ≥ 2× on the million-row lake (the floor applies to
//!    the best sweep row; every row's ratio is reported).
//! 3. **Incremental maintenance** — absorbing a `StreamIngestor` flush
//!    as per-profile deltas lands on index state byte-identical to a
//!    from-scratch rebuild, at a ≥ 2× lower cost.
//!
//! The dated report is appended to `BENCH_discovery.json` via
//! [`lake_bench::trajectory`] — append-only history, one entry per day.

use lake_core::par::Parallelism;
use lake_core::synth::{generate_lake, LakeGenConfig};
use lake_core::{Json, Value};
use lake_discovery::aurum::Aurum;
use lake_discovery::corpus::ProfilePath;
use lake_discovery::d3l::D3l;
use lake_discovery::josie::Josie;
use lake_discovery::{DiscoverySystem, IncrementalDiscovery, TableCorpus};
use lake_ingest::stream::StreamIngestor;
use std::time::Instant;

/// ~1M rows: 8 groups × 4 tables × ~28k rows + 4 noise tables. Larger
/// tables over the same pools (keys, cities, products, the 100k-cent
/// price grid) give the value-frequency skew real lakes show — which is
/// precisely the redundancy dictionary encoding exploits.
fn lake_config() -> LakeGenConfig {
    LakeGenConfig {
        seed: 7,
        groups: 8,
        tables_per_group: 4,
        noise_tables: 4,
        rows: (26_000, 30_000),
        key_pool: 2_000,
        ..LakeGenConfig::default()
    }
}

/// Bitwise view of a top-k answer (scores by bits, so `assert_eq!` is
/// exact equality, not float tolerance).
fn bits(top: &[(usize, f64)]) -> Vec<(usize, u64)> {
    top.iter().map(|&(t, s)| (t, s.to_bits())).collect()
}

/// Assert the two corpora profiled identically, numeric samples compared
/// bitwise.
fn assert_profiles_equal(col: &TableCorpus, row: &TableCorpus, workers: usize) {
    assert_eq!(col.profiles().len(), row.profiles().len());
    for (c, r) in col.profiles().iter().zip(row.profiles()) {
        let cb: Vec<u64> = c.numeric.iter().map(|f| f.to_bits()).collect();
        let rb: Vec<u64> = r.numeric.iter().map(|f| f.to_bits()).collect();
        assert_eq!(cb, rb, "{} @ {workers}w: numeric bits diverged", c.name);
        assert_eq!(c, r, "{} @ {workers}w: profile diverged", c.name);
    }
}

/// Per-system top-k answers on both corpora must match bit-for-bit.
/// Returns the number of (system, query) answers verified.
fn assert_topk_equal(col: &TableCorpus, row: &TableCorpus, par: Parallelism, k: usize) -> usize {
    let queries: Vec<usize> = (0..8)
        .filter_map(|g| col.table_index(&format!("g{g}_t0")))
        .collect();
    let mut verified = 0;
    let systems: Vec<(&str, Box<dyn Fn() -> Box<dyn DiscoverySystem>>)> = vec![
        ("Aurum", Box::new(move || {
            let mut s = Aurum::default();
            s.par = par;
            Box::new(s)
        })),
        ("JOSIE", Box::new(move || {
            let mut s = Josie::default();
            s.par = par;
            Box::new(s)
        })),
        ("D3L", Box::new(move || Box::new(D3l::with_parallelism(par)))),
    ];
    for (name, make) in &systems {
        let mut on_col = make();
        on_col.build(col);
        let mut on_row = make();
        on_row.build(row);
        // D³L's pairwise KS over the full numeric samples makes each
        // query orders slower than the index-backed systems; two queries
        // still cover every feature kernel.
        let qs = if *name == "D3L" { &queries[..2.min(queries.len())] } else { &queries[..] };
        for &q in qs {
            let a = on_col.top_k_related(col, q, k);
            let b = on_row.top_k_related(row, q, k);
            assert_eq!(bits(&a), bits(&b), "{name}: top-{k} diverged on query table {q}");
            verified += 1;
        }
    }
    verified
}

/// Incremental state vs. a from-scratch build: profiles, LSH pairs and
/// signatures, inverted postings counts, embedding bits.
fn assert_incremental_equal(inc: &IncrementalDiscovery, scratch: &IncrementalDiscovery) {
    assert_eq!(inc.corpus().profiles(), scratch.corpus().profiles());
    assert_eq!(inc.lsh().len(), scratch.lsh().len());
    assert_eq!(inc.lsh().candidate_pairs(), scratch.lsh().candidate_pairs());
    assert_eq!(inc.inverted().num_sets(), scratch.inverted().num_sets());
    assert_eq!(inc.inverted().num_tokens(), scratch.inverted().num_tokens());
    let ebits = |d: &D3l| -> Vec<Vec<u64>> {
        d.embeddings().iter().map(|e| e.iter().map(|f| f.to_bits()).collect()).collect()
    };
    assert_eq!(ebits(inc.d3l()), ebits(scratch.d3l()), "embedding bits diverged");
}

fn main() {
    let cfg = lake_config();
    let t0 = Instant::now();
    let lake = generate_lake(&cfg);
    let rows: usize = lake.tables.iter().map(|t| t.num_rows()).sum();
    let gen_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "E19 — columnar discovery on the million-row lake \
         ({} tables, {rows} rows, generated in {gen_ms:.0} ms)\n",
        lake.tables.len()
    );

    println!(
        "{:>8} {:>12} {:>12} {:>9} {:>8} {:>12}",
        "workers", "row ms", "columnar ms", "speedup", "columns", "top-k checks"
    );
    // Warm-up: one untimed build per path. The first build after lake
    // generation pays allocator growth and page-fault costs that neither
    // path owns; timing it would randomly tax whichever path runs first.
    drop(TableCorpus::with_profile_path(
        lake.tables.clone(),
        Parallelism::fixed(1),
        ProfilePath::RowNaive,
    ));
    drop(TableCorpus::with_profile_path(
        lake.tables.clone(),
        Parallelism::fixed(1),
        ProfilePath::Columnar,
    ));

    let mut sweep = Vec::new();
    let mut best_speedup = 0.0f64;
    for &w in &[1usize, 2, 4, 8] {
        let par = Parallelism::fixed(w);
        // Clone outside the timed region: the deep table copy costs the
        // same on both paths and would dilute the measured ratio.
        let tables_row = lake.tables.clone();
        let t = Instant::now();
        let row = TableCorpus::with_profile_path(tables_row, par, ProfilePath::RowNaive);
        let row_ms = t.elapsed().as_secs_f64() * 1e3;
        let tables_col = lake.tables.clone();
        let t = Instant::now();
        let col = TableCorpus::with_profile_path(tables_col, par, ProfilePath::Columnar);
        let col_ms = t.elapsed().as_secs_f64() * 1e3;

        assert_profiles_equal(&col, &row, w);
        let checks = assert_topk_equal(&col, &row, par, 5);

        let speedup = row_ms / col_ms.max(1e-9);
        best_speedup = best_speedup.max(speedup);
        println!(
            "{:>8} {:>12.1} {:>12.1} {:>8.2}x {:>8} {:>12}",
            w,
            row_ms,
            col_ms,
            speedup,
            col.profiles().len(),
            checks
        );
        sweep.push(Json::obj(vec![
            ("workers", Json::Num(w as f64)),
            ("row_ms", Json::Num((row_ms * 10.0).round() / 10.0)),
            ("columnar_ms", Json::Num((col_ms * 10.0).round() / 10.0)),
            ("speedup", Json::Num((speedup * 100.0).round() / 100.0)),
            ("topk_checks", Json::Num(checks as f64)),
            ("topk_equal", Json::Bool(true)),
        ]));
    }

    // Incremental index maintenance: one stream flush absorbed as deltas
    // vs. rebuilding every index over the extended lake.
    let par = Parallelism::auto();
    let mut inc = IncrementalDiscovery::with_parallelism(lake.tables.clone(), par);
    let mut ing = StreamIngestor::new(&["event_id", "city", "qty"], 4_096, 7)
        .expect("ingestor columns are valid");
    for i in 0..5_000i64 {
        let city = ["delft", "paris", "oslo", "berlin"][(i % 4) as usize];
        ing.push(vec![Value::Int(i), Value::str(city), Value::Int(i % 50)])
            .expect("push row");
    }
    let t = Instant::now();
    inc.absorb_flush(&ing, "stream_events").expect("absorb flush");
    let flush_ms = t.elapsed().as_secs_f64() * 1e3;

    let mut extended = lake.tables.clone();
    extended.push(ing.sample_table("stream_events").expect("sample"));
    let t = Instant::now();
    let scratch = IncrementalDiscovery::with_parallelism(extended, par);
    let rebuild_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_incremental_equal(&inc, &scratch);
    let inc_speedup = rebuild_ms / flush_ms.max(1e-9);
    println!(
        "\nincremental flush: {flush_ms:.1} ms vs {rebuild_ms:.1} ms rebuild \
         ({inc_speedup:.0}x), state byte-identical"
    );

    assert!(
        best_speedup >= 2.0,
        "columnar profiling must beat the row path ≥2x on the million-row lake, \
         best sweep row gave {best_speedup:.2}x"
    );
    assert!(
        inc_speedup >= 2.0,
        "delta maintenance must beat a rebuild ≥2x, got {inc_speedup:.2}x"
    );
    println!(
        "OK: top-k bit-equality held on every sweep row; best profiling speedup \
         {best_speedup:.2}x; incremental maintenance {inc_speedup:.0}x over rebuild."
    );

    let report = Json::obj(vec![
        ("tables", Json::Num(lake.tables.len() as f64)),
        ("rows", Json::Num(rows as f64)),
        ("sweep", Json::Array(sweep)),
        ("best_profile_speedup", Json::Num((best_speedup * 100.0).round() / 100.0)),
        (
            "incremental",
            Json::obj(vec![
                ("flush_ms", Json::Num((flush_ms * 10.0).round() / 10.0)),
                ("rebuild_ms", Json::Num((rebuild_ms * 10.0).round() / 10.0)),
                ("speedup", Json::Num(inc_speedup.round())),
                ("state_identical", Json::Bool(true)),
            ]),
        ),
    ]);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_discovery.json");
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let date = lake_bench::trajectory::utc_date(secs);
    let entries = lake_bench::trajectory::record(out, &date, &report)
        .expect("append BENCH_discovery.json trajectory");
    println!("wrote {out} ({entries} dated entries)");
}
