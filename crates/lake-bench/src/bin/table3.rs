//! Regenerate Table 3: comparison of related-dataset-discovery approaches
//! — the survey's descriptive columns (relatedness criteria, similarity
//! metrics, applied technique) come from each implementation's `info()`,
//! and measured precision/recall/latency columns come from running all
//! eight systems on the standard synthetic lake with planted ground truth.

use lake_bench::standard_corpus;
use lake_discovery::dln::synthesize_query_log;
use lake_discovery::{evaluate, DiscoverySystem};

fn main() {
    let (corpus, truth) = standard_corpus();
    let k = 2;

    // Trainable systems train first (as their papers prescribe).
    let mut dln = lake_discovery::dln::Dln::default();
    dln.train_from_log(&corpus, &synthesize_query_log(&truth, 2));
    let mut rnlim = lake_discovery::rnlim::Rnlim::default();
    rnlim.build(&corpus);
    let labelled = labelled_pairs(&corpus, &truth);
    rnlim.train(&corpus, &labelled);
    let mut d3l = lake_discovery::d3l::D3l::default();
    d3l.build(&corpus);
    d3l.train_weights(&corpus, &labelled);

    let mut systems: Vec<Box<dyn DiscoverySystem>> = vec![
        Box::new(lake_discovery::aurum::Aurum::default()),
        Box::new(lake_discovery::brackenbury::Brackenbury::default()),
        Box::new(lake_discovery::josie::Josie::default()),
        Box::new(d3l),
        Box::new(lake_discovery::juneau::Juneau::default()),
        Box::new(lake_discovery::pexeso::Pexeso::default()),
        Box::new(rnlim),
        Box::new(dln),
    ];

    println!("Table 3 — Comparison of related dataset discovery approaches");
    println!("(descriptive columns from implementations; measured on the synthetic lake)\n");
    println!(
        "{:<20} | {:<34} | {:>5} {:>5} {:>9} {:>9}",
        "System", "Technique", "P@2", "R@2", "build ms", "query µs"
    );
    println!("{}", "-".repeat(95));
    for sys in &mut systems {
        let info = sys.info();
        let r = evaluate(sys.as_mut(), &corpus, &truth, k);
        println!(
            "{:<20} | {:<34} | {:>5.2} {:>5.2} {:>9.1} {:>9.0}",
            info.name,
            info.technique.join(", "),
            r.precision_at_k,
            r.recall_at_k,
            r.build_ms,
            r.query_us
        );
    }
    println!("\nRelatedness criteria / similarity metrics per system:");
    for sys in &systems {
        let info = sys.info();
        println!("  {:<20} criteria: {}", info.name, info.criteria.join("; "));
        println!("  {:<20} metrics:  {}", "", info.metrics.join("; "));
    }
}

fn labelled_pairs(
    corpus: &lake_discovery::corpus::TableCorpus,
    truth: &lake_core::synth::GroundTruth,
) -> Vec<(usize, usize, bool)> {
    let mut out = Vec::new();
    let n = corpus.profiles().len();
    for a in 0..n {
        for b in (a + 1)..n.min(a + 14) {
            let ta = &corpus.tables()[corpus.profiles()[a].at.table].name;
            let tb = &corpus.tables()[corpus.profiles()[b].at.table].name;
            if ta != tb {
                out.push((a, b, truth.tables_related(ta, tb)));
            }
        }
    }
    out
}
