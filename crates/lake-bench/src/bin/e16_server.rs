//! E16 — multi-tenant server under chaos: a 200-client seeded closed-loop
//! swarm against a `FaultStore`-backed server, recorded to
//! `BENCH_server.json`.
//!
//! The bench runs the identical scenario **twice** and refuses to emit the
//! artifact unless the two reports are byte-identical: latency percentiles
//! come from the server's virtual-cost model and every rejection path is
//! count-based, so the whole table is a pure function of the seed. Tenant 0
//! runs greedy (health-only) under a request-budget override, which turns
//! its 429 count into exact arithmetic — `offered − budget`.

use lake_core::{ManualClock, Parallelism, RetryPolicy};
use lake_obs::MetricsRegistry;
use lake_query::QuotaConfig;
use lake_server::{run_swarm, DrainReport, LakeServer, ServerConfig, SwarmConfig, SwarmReport};
use lake_store::fault::{FaultPlan, FaultStore, Op};
use lake_store::object::MemoryStore;
use lake_store::polystore::Polystore;
use std::sync::Arc;

const CLIENTS: usize = 200;
const REQUESTS_PER_CLIENT: usize = 10;
const TENANTS: usize = 8;
const SEED: u64 = 42;
const GREEDY_BUDGET: u64 = 100;

fn swarm_config() -> SwarmConfig {
    SwarmConfig {
        clients: CLIENTS,
        requests_per_client: REQUESTS_PER_CLIENT,
        tenants: TENANTS,
        seed: SEED,
        payload_len: 96,
        greedy_tenant_zero: true,
        ..SwarmConfig::default()
    }
}

/// One full scenario: fresh fault-injected server, full swarm, drain.
fn run_once() -> (SwarmReport, DrainReport) {
    let clock = Arc::new(ManualClock::new());
    // Fault budgets of at most retry_attempts − 1 per op: even if one
    // unlucky op eats the whole budget, its retries absorb it — chaos
    // underneath, deterministic zero surfaced storage errors above. A
    // bigger budget would make the surfaced count interleaving-dependent
    // and break the byte-identity gate.
    let plan = FaultPlan::new().seed(7).fail_next(Op::Put, 4).fail_next(Op::Get, 4);
    let store = Arc::new(
        Polystore::with_file_store(Box::new(FaultStore::new(MemoryStore::new(), plan)))
            .with_retry(RetryPolicy::new(5).with_jitter_seed(7))
            .with_clock(clock.clone()),
    );
    let cfg = ServerConfig {
        workers: Parallelism::fixed(8),
        queue_capacity: 1_024,
        quota_overrides: vec![(
            "tenant0".to_string(),
            QuotaConfig::unlimited().with_max_requests(GREEDY_BUDGET),
        )],
        ..ServerConfig::default()
    };
    let registry = Arc::new(MetricsRegistry::new());
    let handle = LakeServer::start(cfg, store, registry, clock).expect("server start");
    let report = run_swarm(&handle.addr(), &swarm_config());
    let drain = handle.join().expect("drain");
    (report, drain)
}

fn main() {
    println!("E16 — multi-tenant lake server under FaultStore chaos");
    println!(
        "  swarm: {CLIENTS} clients x {REQUESTS_PER_CLIENT} requests, {TENANTS} tenants, seed {SEED}"
    );
    let (first, drain_a) = run_once();
    let (second, drain_b) = run_once();
    let cfg = swarm_config();
    let json_a = first.to_json(&cfg).to_string();
    let json_b = second.to_json(&cfg).to_string();
    if json_a != json_b {
        eprintln!("REPLAY MISMATCH:\n  run1: {json_a}\n  run2: {json_b}");
        std::process::exit(1);
    }

    let offered_t0 = (CLIENTS / TENANTS * REQUESTS_PER_CLIENT) as u64;
    let want_429 = offered_t0 - GREEDY_BUDGET;
    let got_429 = first.by_code.get("quota_requests").copied().unwrap_or(0);
    if got_429 != want_429 {
        eprintln!("greedy-tenant arithmetic broke: want {want_429} quota_requests, got {got_429}");
        std::process::exit(1);
    }
    // With the fault budget fully absorbed, only these outcomes exist.
    for code in first.by_code.keys() {
        if !matches!(code.as_str(), "ok" | "not_found" | "quota_requests") {
            eprintln!("unexpected outcome {code:?} leaked through the retry budget");
            std::process::exit(1);
        }
    }
    for (drain, label) in [(&drain_a, "run1"), (&drain_b, "run2")] {
        if !drain.drained || drain.worker_panics != 0 || !drain.admission.is_conserved() {
            eprintln!("{label} drain gate failed: {drain:?}");
            std::process::exit(1);
        }
    }

    println!("\n  outcome            count");
    println!("  -----------------  -----");
    for (code, count) in &first.by_code {
        println!("  {code:<17}  {count:>5}");
    }
    println!("\n  offered {:>6}   ok {:>6}   transport_errors {}", first.offered, first.ok, first.transport_errors);
    println!(
        "  latency (virtual cost): p50 {}us  p99 {}us  mean {}us  max {}us",
        first.p50_us, first.p99_us, first.mean_us, first.max_us
    );
    println!(
        "  drain: in-flight at exit {}  admission conserved  worker panics 0",
        drain_a.in_flight_at_exit
    );
    println!("  replay: byte-identical across two same-seed runs");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json");
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let date = lake_bench::trajectory::utc_date(secs);
    let entries = lake_bench::trajectory::record(out, &date, &first.to_json(&cfg))
        .expect("append BENCH_server.json trajectory");
    println!("  wrote {out} ({entries} dated entries)");
}
