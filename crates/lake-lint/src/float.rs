//! Float-ordering lint: a `partial_cmp` result must stay an `Option`.
//!
//! Ranking code that sorts by `f64` scores via `partial_cmp(..)` plus
//! `.unwrap()` panics the moment a NaN reaches the
//! comparator — and NaNs *do* reach Table-3 comparators (an empty
//! numeric column's mean, a zero-magnitude cosine). The `unwrap_or(..)`
//! variant is no better: it silently maps every NaN comparison to a
//! fixed ordering, so sorts stop being transitive and the result order
//! depends on the sort algorithm's probe sequence. `f64::total_cmp` is
//! total, panic-free, and agrees with `partial_cmp` on every non-NaN
//! comparison except `-0.0` vs `+0.0` — the workspace-wide replacement.
//!
//! Flags any `partial_cmp(…)` call whose result is chained into a
//! method starting with `unwrap` or `expect`, even across line breaks.
//! `#[cfg(test)]` regions are exempt like every other source lint, and
//! tests/benches/bins/examples are exempt via the shared directory walk.

use crate::errors::{matches_at, strip_comments_and_strings};
use crate::{Finding, Rule};

/// Scan one library source file for `partial_cmp` chains that discard
/// the `Option` through the unwrap/expect family.
pub fn scan_source(file: &str, src: &str) -> Vec<Finding> {
    let stripped = strip_comments_and_strings(src);
    let chars: Vec<char> = stripped.chars().collect();
    let mut findings = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut brace_depth = 0usize;
    let mut cfg_test_depth: Option<usize> = None;
    while i < chars.len() {
        match chars[i] {
            '\n' => {
                line += 1;
                i += 1;
                continue;
            }
            '{' => {
                brace_depth += 1;
                i += 1;
                continue;
            }
            '}' => {
                brace_depth = brace_depth.saturating_sub(1);
                if cfg_test_depth.is_some_and(|d| brace_depth < d) {
                    cfg_test_depth = None;
                }
                i += 1;
                continue;
            }
            _ => {}
        }
        if matches_at(&chars, i, "#[cfg(test)") {
            cfg_test_depth = Some(brace_depth);
            i += 1;
            continue;
        }
        let at_call = cfg_test_depth.is_none()
            && matches_at(&chars, i, "partial_cmp")
            && (i == 0 || chars.get(i - 1).map_or(true, |c| !c.is_alphanumeric() && *c != '_'))
            && chars
                .get(i + "partial_cmp".len())
                .is_some_and(|c| !c.is_alphanumeric() && *c != '_');
        if !at_call {
            i += 1;
            continue;
        }
        let call_line = line;
        let mut j = i + "partial_cmp".len();
        // Find the argument list, tolerating whitespace before `(`; a bare
        // `partial_cmp` token (e.g. a trait-method definition) is not a call.
        while j < chars.len() && chars[j].is_whitespace() {
            if chars[j] == '\n' {
                line += 1;
            }
            j += 1;
        }
        if chars.get(j) != Some(&'(') {
            i = j;
            continue;
        }
        // Balance the argument parentheses.
        let mut depth = 0usize;
        while j < chars.len() {
            match chars[j] {
                '\n' => line += 1,
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        // The chained method, if any, may sit after whitespace/newlines.
        while j < chars.len() && chars[j].is_whitespace() {
            if chars[j] == '\n' {
                line += 1;
            }
            j += 1;
        }
        if chars.get(j) == Some(&'.') {
            j += 1;
            while j < chars.len() && chars[j].is_whitespace() {
                if chars[j] == '\n' {
                    line += 1;
                }
                j += 1;
            }
            let mut method = String::new();
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                method.push(chars[j]);
                j += 1;
            }
            if method.starts_with("unwrap") || method.starts_with("expect") {
                findings.push(Finding {
                    rule: Rule::FloatOrdering,
                    file: file.to_string(),
                    line: call_line,
                    message: format!(
                        "partial_cmp(..).{method} orders floats partially and dies (or \
                         lies) on NaN; sort with f64::total_cmp instead"
                    ),
                });
            }
        }
        i = j;
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    // The embedded sources below always break the chain across lines:
    // this crate's own acceptance gate greps for `partial_cmp` and the
    // unwrap family co-occurring on one line, and must stay silent here.

    #[test]
    fn chained_partial_cmp_is_flagged() {
        let src = r#"
pub fn rank(mut v: Vec<(usize, f64)>) {
    v.sort_by(|a, b| b.1.partial_cmp(&a.1)
        .unwrap().then(a.0.cmp(&b.0)));
    v.sort_by(|a, b| a.1.partial_cmp(&b.1)
        .expect("comparable"));
}
"#;
        let f = scan_source("f.rs", src);
        assert_eq!(f.len(), 2, "{f:#?}");
        assert!(f.iter().all(|x| x.rule == Rule::FloatOrdering));
        // Findings anchor to the comparison line, not the chained line.
        assert_eq!((f[0].line, f[1].line), (3, 5));
        assert!(f[0].message.contains("total_cmp"), "{}", f[0].message);
    }

    #[test]
    fn unwrap_or_variants_are_flagged_too() {
        let src = "
pub fn s(mut v: Vec<f64>) {
    v.sort_by(|a, b| a.partial_cmp(b)
        .unwrap_or(std::cmp::Ordering::Equal));
    v.sort_by(|a, b| {
        a.partial_cmp(b)
            .unwrap_or_else(|| std::cmp::Ordering::Equal)
    });
}
";
        let f = scan_source("f.rs", src);
        assert_eq!(f.len(), 2, "{f:#?}");
        assert_eq!((f[0].line, f[1].line), (3, 6));
    }

    #[test]
    fn benign_uses_are_not_flagged() {
        let src = r#"
pub fn fine(mut v: Vec<f64>, a: f64, b: f64) -> Option<std::cmp::Ordering> {
    v.sort_by(f64::total_cmp);
    let kept = a.partial_cmp(&b);
    if let Some(ord) = a.partial_cmp(&b) { let _ = ord; }
    kept
}
impl PartialOrd for Wrapper {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.0.partial_cmp(&other.0)
    }
}
#[cfg(test)]
mod tests {
    fn t(a: f64, b: f64) {
        let _ = a.partial_cmp(&b)
            .unwrap();
    }
}
"#;
        assert!(scan_source("f.rs", src).is_empty(), "{:#?}", scan_source("f.rs", src));
    }
}
