//! The grandfather baseline: existing violations are tolerated, new ones
//! fail, and the file can only shrink.
//!
//! Format is a TOML subset, one table per rule, one `"file" = count`
//! entry per file, sorted for stable diffs:
//!
//! ```toml
//! [panic]
//! "crates/lake-core/src/synth.rs" = 3
//! ```
//!
//! Regenerate with `cargo run -p lake-lint -- fix-baseline` after an
//! intentional burn-down. The lint's own test suite asserts that the
//! checked-in baseline matches the current workspace exactly, so a
//! regeneration that *grows* a count will be caught in review as a
//! baseline diff with the wrong sign.

use std::collections::BTreeMap;
use std::fmt;

use crate::{Finding, Rule};

/// A malformed baseline file: the offending line and what is wrong with
/// it. Typed (rather than a bare `String`) so callers can branch on the
/// failure and the error-discipline rule holds for the lint itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineError {
    /// 1-based line in `lake-lint.baseline.toml`.
    pub line: usize,
    /// What was wrong.
    pub kind: BaselineErrorKind,
}

/// The ways a baseline file can be malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineErrorKind {
    /// `[table]` header naming no known rule — a typo here would
    /// silently tolerate nothing (or everything).
    UnknownRule(String),
    /// A `"file" = count` entry before any `[rule]` table.
    OrphanEntry,
    /// A line that is neither a header, a comment, nor `"file" = count`.
    MalformedEntry,
    /// The count is not an unsigned integer.
    BadCount(String),
    /// A zero-count entry; the line should be deleted instead.
    ZeroCount(String),
    /// The same (rule, file) appears twice.
    DuplicateEntry(String),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            BaselineErrorKind::UnknownRule(name) => write!(f, "unknown rule [{name}]"),
            BaselineErrorKind::OrphanEntry => write!(f, "entry before any [rule] table"),
            BaselineErrorKind::MalformedEntry => write!(f, "expected `\"file\" = count`"),
            BaselineErrorKind::BadCount(file) => {
                write!(f, "count for {file} is not a number")
            }
            BaselineErrorKind::ZeroCount(file) => {
                write!(f, "zero-count entry for {file}; delete the line instead")
            }
            BaselineErrorKind::DuplicateEntry(file) => {
                write!(f, "duplicate entry for {file}")
            }
        }
    }
}

impl std::error::Error for BaselineError {}

/// Per-(rule, file) tolerated violation counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `(rule, file) -> count`.
    pub entries: BTreeMap<(Rule, String), usize>,
}

impl Baseline {
    /// Build a baseline that exactly grandfathers `findings`.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut entries: BTreeMap<(Rule, String), usize> = BTreeMap::new();
        for f in findings {
            if never_baselinable(f.rule) {
                continue; // layering and lock-order are never baselinable
            }
            *entries.entry((f.rule, f.file.clone())).or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Parse the baseline file format. Unknown rule tables are an error —
    /// a typo silently tolerating nothing (or everything) must not pass.
    pub fn parse(text: &str) -> Result<Baseline, BaselineError> {
        let err = |line: usize, kind: BaselineErrorKind| BaselineError { line: line + 1, kind };
        let mut entries = BTreeMap::new();
        let mut current: Option<Rule> = None;
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                current = Some(Rule::from_key(header.trim()).ok_or_else(|| {
                    err(ln, BaselineErrorKind::UnknownRule(header.to_string()))
                })?);
                continue;
            }
            let Some(rule) = current else {
                return Err(err(ln, BaselineErrorKind::OrphanEntry));
            };
            let (file, count) = line
                .split_once('=')
                .ok_or_else(|| err(ln, BaselineErrorKind::MalformedEntry))?;
            let file = file.trim().trim_matches('"').to_string();
            let count: usize = count
                .trim()
                .parse()
                .map_err(|_| err(ln, BaselineErrorKind::BadCount(file.clone())))?;
            if count == 0 {
                return Err(err(ln, BaselineErrorKind::ZeroCount(file)));
            }
            if entries.insert((rule, file.clone()), count).is_some() {
                return Err(err(ln, BaselineErrorKind::DuplicateEntry(file)));
            }
        }
        Ok(Baseline { entries })
    }

    /// Serialize in the canonical sorted form.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# lake-lint baseline — grandfathered violations, one `\"file\" = count` per line.\n\
             # This file may only SHRINK. Regenerate after a burn-down with:\n\
             #   cargo run -p lake-lint -- fix-baseline\n",
        );
        for rule in [
            Rule::Panic,
            Rule::Indexing,
            Rule::ErrorDiscipline,
            Rule::ClockDiscipline,
            Rule::FloatOrdering,
            Rule::GuardBlocking,
            Rule::AtomicOrdering,
        ] {
            let section: Vec<_> =
                self.entries.iter().filter(|((r, _), _)| *r == rule).collect();
            if section.is_empty() {
                continue;
            }
            out.push_str(&format!("\n[{}]\n", rule.key()));
            for ((_, file), count) in section {
                out.push_str(&format!("\"{file}\" = {count}\n"));
            }
        }
        out
    }

    /// Tolerated count for one (rule, file).
    pub fn allowed(&self, rule: Rule, file: &str) -> usize {
        self.entries.get(&(rule, file.to_string())).copied().unwrap_or(0)
    }
}

/// Outcome of comparing current findings against a baseline.
#[derive(Debug, Default)]
pub struct Comparison {
    /// Findings in excess of the baseline — these fail the check. For a
    /// file whose count grew, all of that file's findings are listed so
    /// the offender is visible regardless of which one is "new".
    pub new_violations: Vec<Finding>,
    /// Baseline entries now higher than reality — the file improved and
    /// the baseline should be regenerated (warning, not failure).
    pub stale: Vec<(Rule, String, usize, usize)>,
}

/// Rules whose violations always fail, even if someone hand-edits an
/// entry into the baseline: an inverted tier edge or a lock-order
/// inversion/cycle is a latent deadlock or architecture break, not debt.
pub fn never_baselinable(rule: Rule) -> bool {
    matches!(rule, Rule::Layering | Rule::LockOrder)
}

/// Compare current `findings` against `baseline`.
pub fn compare(findings: &[Finding], baseline: &Baseline) -> Comparison {
    let mut by_key: BTreeMap<(Rule, String), Vec<&Finding>> = BTreeMap::new();
    for f in findings {
        by_key.entry((f.rule, f.file.clone())).or_default().push(f);
    }
    let mut cmp = Comparison::default();
    for ((rule, file), fs) in &by_key {
        if never_baselinable(*rule) {
            // Always new, even when a baseline entry exists.
            cmp.new_violations.extend(fs.iter().map(|&f| f.clone()));
            continue;
        }
        let allowed = baseline.allowed(*rule, file);
        if fs.len() > allowed {
            cmp.new_violations.extend(fs.iter().map(|&f| f.clone()));
        } else if fs.len() < allowed {
            cmp.stale.push((*rule, file.clone(), allowed, fs.len()));
        }
    }
    // Entries whose file no longer has findings at all.
    for ((rule, file), &allowed) in &baseline.entries {
        if !by_key.contains_key(&(*rule, file.clone())) {
            cmp.stale.push((*rule, file.clone(), allowed, 0));
        }
    }
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: Rule, file: &str, line: usize) -> Finding {
        Finding { rule, file: file.into(), line, message: "m".into() }
    }

    #[test]
    fn roundtrips_canonical_form() {
        let fs = vec![
            finding(Rule::Panic, "a.rs", 1),
            finding(Rule::Panic, "a.rs", 2),
            finding(Rule::ErrorDiscipline, "b.rs", 3),
        ];
        let b = Baseline::from_findings(&fs);
        let parsed = Baseline::parse(&b.render()).expect("parses");
        assert_eq!(parsed, b);
        assert_eq!(parsed.allowed(Rule::Panic, "a.rs"), 2);
        assert_eq!(parsed.allowed(Rule::Panic, "missing.rs"), 0);
    }

    #[test]
    fn layering_is_never_grandfathered() {
        let fs = vec![finding(Rule::Layering, "Cargo.toml", 1)];
        let b = Baseline::from_findings(&fs);
        assert!(b.entries.is_empty());
        let cmp = compare(&fs, &b);
        assert_eq!(cmp.new_violations.len(), 1);
    }

    #[test]
    fn lock_order_is_never_grandfathered_even_when_baselined() {
        let fs = vec![finding(Rule::LockOrder, "crates/x/src/lib.rs", 7)];
        // fix-baseline-style regeneration drops it entirely…
        assert!(Baseline::from_findings(&fs).entries.is_empty());
        // …and even a hand-edited baseline entry buys no tolerance.
        let mut forged = Baseline::default();
        forged.entries.insert((Rule::LockOrder, "crates/x/src/lib.rs".into()), 5);
        let cmp = compare(&fs, &forged);
        assert_eq!(cmp.new_violations.len(), 1);
        assert_eq!(cmp.new_violations[0].rule, Rule::LockOrder);
    }

    #[test]
    fn growth_fails_shrink_warns() {
        let base = Baseline::from_findings(&[
            finding(Rule::Panic, "a.rs", 1),
            finding(Rule::Panic, "a.rs", 2),
        ]);
        // Same count: clean.
        let same = vec![finding(Rule::Panic, "a.rs", 9), finding(Rule::Panic, "a.rs", 10)];
        let cmp = compare(&same, &base);
        assert!(cmp.new_violations.is_empty() && cmp.stale.is_empty());
        // Growth: every finding in the file is reported.
        let grown = vec![
            finding(Rule::Panic, "a.rs", 1),
            finding(Rule::Panic, "a.rs", 2),
            finding(Rule::Panic, "a.rs", 3),
        ];
        assert_eq!(compare(&grown, &base).new_violations.len(), 3);
        // Shrink: stale entry reported with old and new counts.
        let shrunk = vec![finding(Rule::Panic, "a.rs", 1)];
        let cmp = compare(&shrunk, &base);
        assert!(cmp.new_violations.is_empty());
        assert_eq!(cmp.stale, vec![(Rule::Panic, "a.rs".into(), 2, 1)]);
        // Full fix: file disappears from findings entirely.
        let cmp = compare(&[], &base);
        assert_eq!(cmp.stale, vec![(Rule::Panic, "a.rs".into(), 2, 0)]);
    }

    #[test]
    fn parse_rejects_malformed_baselines() {
        assert!(Baseline::parse("[no-such-rule]\n\"a\" = 1\n").is_err());
        assert!(Baseline::parse("\"orphan\" = 1\n").is_err());
        assert!(Baseline::parse("[panic]\n\"a\" = zero\n").is_err());
        assert!(Baseline::parse("[panic]\n\"a\" = 0\n").is_err());
        assert!(Baseline::parse("[panic]\n\"a\" = 1\n\"a\" = 2\n").is_err());
    }
}
