//! The grandfather baseline: existing violations are tolerated, new ones
//! fail, and the file can only shrink.
//!
//! Format is a TOML subset, one table per rule, one `"file" = count`
//! entry per file, sorted for stable diffs:
//!
//! ```toml
//! [panic]
//! "crates/lake-core/src/synth.rs" = 3
//! ```
//!
//! Regenerate with `cargo run -p lake-lint -- fix-baseline` after an
//! intentional burn-down. The lint's own test suite asserts that the
//! checked-in baseline matches the current workspace exactly, so a
//! regeneration that *grows* a count will be caught in review as a
//! baseline diff with the wrong sign.

use std::collections::BTreeMap;

use crate::{Finding, Rule};

/// Per-(rule, file) tolerated violation counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `(rule, file) -> count`.
    pub entries: BTreeMap<(Rule, String), usize>,
}

impl Baseline {
    /// Build a baseline that exactly grandfathers `findings`.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut entries: BTreeMap<(Rule, String), usize> = BTreeMap::new();
        for f in findings {
            if f.rule == Rule::Layering {
                continue; // layering violations are never baselinable
            }
            *entries.entry((f.rule, f.file.clone())).or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Parse the baseline file format. Unknown rule tables are an error —
    /// a typo silently tolerating nothing (or everything) must not pass.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = BTreeMap::new();
        let mut current: Option<Rule> = None;
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                current = Some(
                    Rule::from_key(header.trim())
                        .ok_or_else(|| format!("line {}: unknown rule [{}]", ln + 1, header))?,
                );
                continue;
            }
            let Some(rule) = current else {
                return Err(format!("line {}: entry before any [rule] table", ln + 1));
            };
            let (file, count) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `\"file\" = count`", ln + 1))?;
            let file = file.trim().trim_matches('"').to_string();
            let count: usize = count
                .trim()
                .parse()
                .map_err(|_| format!("line {}: count is not a number", ln + 1))?;
            if count == 0 {
                return Err(format!(
                    "line {}: zero-count entry for {file}; delete the line instead",
                    ln + 1
                ));
            }
            if entries.insert((rule, file.clone()), count).is_some() {
                return Err(format!("line {}: duplicate entry for {file}", ln + 1));
            }
        }
        Ok(Baseline { entries })
    }

    /// Serialize in the canonical sorted form.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# lake-lint baseline — grandfathered violations, one `\"file\" = count` per line.\n\
             # This file may only SHRINK. Regenerate after a burn-down with:\n\
             #   cargo run -p lake-lint -- fix-baseline\n",
        );
        for rule in [
            Rule::Panic,
            Rule::Indexing,
            Rule::ErrorDiscipline,
            Rule::ClockDiscipline,
            Rule::FloatOrdering,
        ] {
            let section: Vec<_> =
                self.entries.iter().filter(|((r, _), _)| *r == rule).collect();
            if section.is_empty() {
                continue;
            }
            out.push_str(&format!("\n[{}]\n", rule.key()));
            for ((_, file), count) in section {
                out.push_str(&format!("\"{file}\" = {count}\n"));
            }
        }
        out
    }

    /// Tolerated count for one (rule, file).
    pub fn allowed(&self, rule: Rule, file: &str) -> usize {
        self.entries.get(&(rule, file.to_string())).copied().unwrap_or(0)
    }
}

/// Outcome of comparing current findings against a baseline.
#[derive(Debug, Default)]
pub struct Comparison {
    /// Findings in excess of the baseline — these fail the check. For a
    /// file whose count grew, all of that file's findings are listed so
    /// the offender is visible regardless of which one is "new".
    pub new_violations: Vec<Finding>,
    /// Baseline entries now higher than reality — the file improved and
    /// the baseline should be regenerated (warning, not failure).
    pub stale: Vec<(Rule, String, usize, usize)>,
}

/// Compare current `findings` against `baseline`.
pub fn compare(findings: &[Finding], baseline: &Baseline) -> Comparison {
    let mut by_key: BTreeMap<(Rule, String), Vec<&Finding>> = BTreeMap::new();
    for f in findings {
        by_key.entry((f.rule, f.file.clone())).or_default().push(f);
    }
    let mut cmp = Comparison::default();
    for ((rule, file), fs) in &by_key {
        if *rule == Rule::Layering {
            // Never baselinable: always new.
            cmp.new_violations.extend(fs.iter().map(|&f| f.clone()));
            continue;
        }
        let allowed = baseline.allowed(*rule, file);
        if fs.len() > allowed {
            cmp.new_violations.extend(fs.iter().map(|&f| f.clone()));
        } else if fs.len() < allowed {
            cmp.stale.push((*rule, file.clone(), allowed, fs.len()));
        }
    }
    // Entries whose file no longer has findings at all.
    for ((rule, file), &allowed) in &baseline.entries {
        if !by_key.contains_key(&(*rule, file.clone())) {
            cmp.stale.push((*rule, file.clone(), allowed, 0));
        }
    }
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: Rule, file: &str, line: usize) -> Finding {
        Finding { rule, file: file.into(), line, message: "m".into() }
    }

    #[test]
    fn roundtrips_canonical_form() {
        let fs = vec![
            finding(Rule::Panic, "a.rs", 1),
            finding(Rule::Panic, "a.rs", 2),
            finding(Rule::ErrorDiscipline, "b.rs", 3),
        ];
        let b = Baseline::from_findings(&fs);
        let parsed = Baseline::parse(&b.render()).expect("parses");
        assert_eq!(parsed, b);
        assert_eq!(parsed.allowed(Rule::Panic, "a.rs"), 2);
        assert_eq!(parsed.allowed(Rule::Panic, "missing.rs"), 0);
    }

    #[test]
    fn layering_is_never_grandfathered() {
        let fs = vec![finding(Rule::Layering, "Cargo.toml", 1)];
        let b = Baseline::from_findings(&fs);
        assert!(b.entries.is_empty());
        let cmp = compare(&fs, &b);
        assert_eq!(cmp.new_violations.len(), 1);
    }

    #[test]
    fn growth_fails_shrink_warns() {
        let base = Baseline::from_findings(&[
            finding(Rule::Panic, "a.rs", 1),
            finding(Rule::Panic, "a.rs", 2),
        ]);
        // Same count: clean.
        let same = vec![finding(Rule::Panic, "a.rs", 9), finding(Rule::Panic, "a.rs", 10)];
        let cmp = compare(&same, &base);
        assert!(cmp.new_violations.is_empty() && cmp.stale.is_empty());
        // Growth: every finding in the file is reported.
        let grown = vec![
            finding(Rule::Panic, "a.rs", 1),
            finding(Rule::Panic, "a.rs", 2),
            finding(Rule::Panic, "a.rs", 3),
        ];
        assert_eq!(compare(&grown, &base).new_violations.len(), 3);
        // Shrink: stale entry reported with old and new counts.
        let shrunk = vec![finding(Rule::Panic, "a.rs", 1)];
        let cmp = compare(&shrunk, &base);
        assert!(cmp.new_violations.is_empty());
        assert_eq!(cmp.stale, vec![(Rule::Panic, "a.rs".into(), 2, 1)]);
        // Full fix: file disappears from findings entirely.
        let cmp = compare(&[], &base);
        assert_eq!(cmp.stale, vec![(Rule::Panic, "a.rs".into(), 2, 0)]);
    }

    #[test]
    fn parse_rejects_malformed_baselines() {
        assert!(Baseline::parse("[no-such-rule]\n\"a\" = 1\n").is_err());
        assert!(Baseline::parse("\"orphan\" = 1\n").is_err());
        assert!(Baseline::parse("[panic]\n\"a\" = zero\n").is_err());
        assert!(Baseline::parse("[panic]\n\"a\" = 0\n").is_err());
        assert!(Baseline::parse("[panic]\n\"a\" = 1\n\"a\" = 2\n").is_err());
    }
}
