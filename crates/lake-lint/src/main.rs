//! CLI entry point: `cargo run -p lake-lint -- <check|fix-baseline>`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("check");
    let root = match workspace_root() {
        Some(r) => r,
        None => {
            eprintln!("lake-lint: could not locate the workspace root from the current directory");
            return ExitCode::FAILURE;
        }
    };
    match cmd {
        "check" => run_check(&root),
        "fix-baseline" | "--fix-baseline" => run_fix_baseline(&root),
        other => {
            eprintln!("lake-lint: unknown command `{other}`");
            eprintln!("usage: cargo run -p lake-lint -- <check|fix-baseline>");
            ExitCode::FAILURE
        }
    }
}

fn workspace_root() -> Option<PathBuf> {
    let cwd = std::env::current_dir().ok()?;
    lake_lint::find_workspace_root(&cwd)
}

fn run_check(root: &std::path::Path) -> ExitCode {
    let report = match lake_lint::check(root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lake-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    for (rule, file, allowed, actual) in &report.comparison.stale {
        eprintln!(
            "warning: stale baseline entry [{rule}] \"{file}\" = {allowed} (now {actual}); \
             run `cargo run -p lake-lint -- fix-baseline` to shrink it"
        );
    }
    if report.is_clean() {
        let grandfathered = report.findings.len();
        println!(
            "lake-lint: clean ({grandfathered} grandfathered finding{} in baseline)",
            if grandfathered == 1 { "" } else { "s" }
        );
        return ExitCode::SUCCESS;
    }
    for f in &report.comparison.new_violations {
        eprintln!("error: {f}");
    }
    eprintln!(
        "lake-lint: {} new violation{} (not in lake-lint.baseline.toml)",
        report.comparison.new_violations.len(),
        if report.comparison.new_violations.len() == 1 { "" } else { "s" }
    );
    ExitCode::FAILURE
}

fn run_fix_baseline(root: &std::path::Path) -> ExitCode {
    let findings = match lake_lint::scan_workspace(root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("lake-lint: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Layering violations cannot be baselined away — refuse to write a
    // baseline that would still fail.
    let layering: Vec<_> =
        findings.iter().filter(|f| f.rule == lake_lint::Rule::Layering).collect();
    if !layering.is_empty() {
        for f in &layering {
            eprintln!("error: {f}");
        }
        eprintln!("lake-lint: layering violations must be fixed, not baselined");
        return ExitCode::FAILURE;
    }
    let base = lake_lint::baseline::Baseline::from_findings(&findings);
    let path = lake_lint::baseline_path(root);
    if let Err(e) = std::fs::write(&path, base.render()) {
        eprintln!("lake-lint: writing {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!(
        "lake-lint: wrote {} ({} grandfathered finding{})",
        path.display(),
        findings.len(),
        if findings.len() == 1 { "" } else { "s" }
    );
    ExitCode::SUCCESS
}
