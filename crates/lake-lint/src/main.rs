//! CLI entry point: `cargo run -p lake-lint -- <check [--json]|fix-baseline>`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("check");
    let root = match workspace_root() {
        Some(r) => r,
        None => {
            eprintln!("lake-lint: could not locate the workspace root from the current directory");
            return ExitCode::FAILURE;
        }
    };
    match cmd {
        "check" => run_check(&root, args.iter().any(|a| a == "--json")),
        "fix-baseline" | "--fix-baseline" => run_fix_baseline(&root),
        other => {
            eprintln!("lake-lint: unknown command `{other}`");
            eprintln!("usage: cargo run -p lake-lint -- <check [--json]|fix-baseline>");
            ExitCode::FAILURE
        }
    }
}

fn workspace_root() -> Option<PathBuf> {
    let cwd = std::env::current_dir().ok()?;
    lake_lint::find_workspace_root(&cwd)
}

fn run_check(root: &std::path::Path, json: bool) -> ExitCode {
    let report = match lake_lint::check(root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lake-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        // Machine-readable report on stdout; exit code still carries the
        // verdict so CI can pipe the JSON and gate on the status.
        println!("{}", render_json(&report));
        return if report.is_clean() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }
    for (rule, file, allowed, actual) in &report.comparison.stale {
        eprintln!(
            "warning: stale baseline entry [{rule}] \"{file}\" = {allowed} (now {actual}); \
             run `cargo run -p lake-lint -- fix-baseline` to shrink it"
        );
    }
    if report.is_clean() {
        let grandfathered = report.findings.len();
        println!(
            "lake-lint: clean ({grandfathered} grandfathered finding{} in baseline)",
            if grandfathered == 1 { "" } else { "s" }
        );
        return ExitCode::SUCCESS;
    }
    for f in &report.comparison.new_violations {
        eprintln!("error: {f}");
    }
    eprintln!(
        "lake-lint: {} new violation{} (not in lake-lint.baseline.toml)",
        report.comparison.new_violations.len(),
        if report.comparison.new_violations.len() == 1 { "" } else { "s" }
    );
    ExitCode::FAILURE
}

/// Render the report as deterministic JSON: findings are already sorted
/// by (file, line) from the scan, stale entries by (rule, file) from the
/// comparison's BTreeMap walk, and every string is escaped by hand — no
/// serde in this dependency-free crate.
fn render_json(report: &lake_lint::Report) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"clean\": {},\n", report.is_clean()));
    out.push_str(&format!(
        "  \"grandfathered\": {},\n",
        report.findings.len() - report.comparison.new_violations.len()
    ));
    out.push_str("  \"new_violations\": [");
    for (i, f) in report.comparison.new_violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
            json_str(f.rule.key()),
            json_str(&f.file),
            f.line,
            json_str(&f.message)
        ));
    }
    if !report.comparison.new_violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"stale\": [");
    for (i, (rule, file, allowed, actual)) in report.comparison.stale.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"file\": {}, \"allowed\": {allowed}, \"actual\": {actual}}}",
            json_str(rule.key()),
            json_str(file)
        ));
    }
    if !report.comparison.stale.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn run_fix_baseline(root: &std::path::Path) -> ExitCode {
    let findings = match lake_lint::scan_workspace(root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("lake-lint: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Layering and lock-order violations cannot be baselined away —
    // refuse to write a baseline that would still fail.
    let hard: Vec<_> = findings
        .iter()
        .filter(|f| lake_lint::baseline::never_baselinable(f.rule))
        .collect();
    if !hard.is_empty() {
        for f in &hard {
            eprintln!("error: {f}");
        }
        eprintln!("lake-lint: layering and lock-order violations must be fixed, not baselined");
        return ExitCode::FAILURE;
    }
    let base = lake_lint::baseline::Baseline::from_findings(&findings);
    let path = lake_lint::baseline_path(root);
    if let Err(e) = std::fs::write(&path, base.render()) {
        eprintln!("lake-lint: writing {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!(
        "lake-lint: wrote {} ({} grandfathered finding{})",
        path.display(),
        findings.len(),
        if findings.len() == 1 { "" } else { "s" }
    );
    ExitCode::SUCCESS
}
