//! `lake-lint`: repo-native static analysis for the rustlake workspace.
//!
//! Nine checks keep the survey's architecture and the lakehouse's
//! reliability story honest as the codebase scales:
//!
//! 1. **Panic-freedom** ([`scanner`]): library code must not call
//!    `.unwrap()`/`.expect()` or invoke `panic!`-family macros; slice
//!    indexing is additionally banned on configured hot paths (the ACID
//!    commit/time-travel files). Tests, benches, bins, and examples are
//!    exempt.
//! 2. **Tier layering** ([`layering`]): crate dependencies must respect
//!    the paper's storage → functions → facade DAG; an inverted edge
//!    fails immediately and cannot be baselined.
//! 3. **Error discipline** ([`errors`]): `pub fn`s must not return
//!    `Result<_, String>` or `Box<dyn Error>` — error kinds drive retry
//!    and conflict handling, so they must stay typed. The same pass
//!    requires every `ObjectStore` impl that provides `put_if_absent` to
//!    document its atomicity guarantee: the commit protocol's whole
//!    correctness rests on that one primitive.
//! 4. **Clock discipline** ([`clock`]): library code must not call
//!    `Instant::now`/`SystemTime::now` directly — timed paths thread a
//!    `lake_core::retry::Clock` so chaos suites and latency histograms
//!    replay deterministically. Only `impl … Clock for …` blocks touch
//!    the real clock.
//! 5. **Float ordering** ([`float`]): `partial_cmp` results must not be
//!    unwrapped (or `unwrap_or`-defaulted) — score comparators sort with
//!    `f64::total_cmp`, which cannot panic on NaN and keeps sorts total.
//! 6. **Lock ordering** ([`concurrency`]): nested `OrderedMutex`/
//!    `OrderedRwLock` acquisitions must follow the declared global order
//!    in `lake_core::sync::rank` with strictly increasing ranks; raw
//!    locks are implicit leaves. Inversions and cycles can deadlock, so
//!    — like layering — they are never baselinable.
//! 7. **Guard across blocking** ([`concurrency`]): no lock guard may be
//!    held across `ObjectStore` calls, `retry_with_stats`, channel
//!    send/recv, or `lake_core::par` fan-outs.
//! 8. **Atomic ordering** ([`concurrency`]): `Ordering::Relaxed` is
//!    allowed only on declared counter atomics (lake-obs metric cells);
//!    elsewhere it needs a `// lint: ordering` justification.
//! 9. **Durability discipline** ([`durability`]): in journal/WAL library
//!    sources (paths containing `wal` or `durable`), every `.write_all(`
//!    must be followed in the same fn by `.sync_all(`/`.sync_data(` —
//!    the server's ack contract is "on disk", not "in the page cache",
//!    and only a power cut ever exposes the difference. Deliberately
//!    volatile writes justify with `// lint: durability <why>`.
//!
//! Existing violations are grandfathered in `lake-lint.baseline.toml`
//! ([`baseline`]); the baseline can only shrink. Run as:
//!
//! ```text
//! cargo run -p lake-lint -- check
//! cargo run -p lake-lint -- check --json
//! cargo run -p lake-lint -- fix-baseline
//! ```

pub mod baseline;
pub mod clock;
pub mod concurrency;
pub mod durability;
pub mod errors;
pub mod float;
pub mod layering;
pub mod scanner;

use std::fmt;
use std::path::{Path, PathBuf};

/// The lint rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Panic-prone construct in library code.
    Panic,
    /// Slice indexing on a declared hot path.
    Indexing,
    /// Stringly-typed public error return.
    ErrorDiscipline,
    /// Tier-inverting dependency edge.
    Layering,
    /// Direct wall/monotonic time read outside a `Clock` implementation.
    ClockDiscipline,
    /// `partial_cmp` result forced open instead of handled as an `Option`.
    FloatOrdering,
    /// Nested lock acquisition violating the declared global rank order.
    LockOrder,
    /// Lock guard held across a blocking call (I/O, retry, channel, fan-out).
    GuardBlocking,
    /// `Ordering::Relaxed` outside declared counter atomics, unjustified.
    AtomicOrdering,
    /// `write_all` on a journal path with no following fsync in the fn.
    Durability,
}

impl Rule {
    /// Stable key used in the baseline file and CLI output.
    pub fn key(self) -> &'static str {
        match self {
            Rule::Panic => "panic",
            Rule::Indexing => "indexing",
            Rule::ErrorDiscipline => "error-discipline",
            Rule::Layering => "layering",
            Rule::ClockDiscipline => "clock-discipline",
            Rule::FloatOrdering => "float-ordering",
            Rule::LockOrder => "lock-order",
            Rule::GuardBlocking => "guard-blocking",
            Rule::AtomicOrdering => "atomic-ordering",
            Rule::Durability => "durability",
        }
    }

    /// Inverse of [`Rule::key`].
    pub fn from_key(key: &str) -> Option<Rule> {
        match key {
            "panic" => Some(Rule::Panic),
            "indexing" => Some(Rule::Indexing),
            "error-discipline" => Some(Rule::ErrorDiscipline),
            "layering" => Some(Rule::Layering),
            "clock-discipline" => Some(Rule::ClockDiscipline),
            "float-ordering" => Some(Rule::FloatOrdering),
            "lock-order" => Some(Rule::LockOrder),
            "guard-blocking" => Some(Rule::GuardBlocking),
            "atomic-ordering" => Some(Rule::AtomicOrdering),
            "durability" => Some(Rule::Durability),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Repo-relative file path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// Path prefixes (repo-relative, `/`-separated) where the slice-indexing
/// rule applies: the ACID commit / time-travel paths whose abort-freedom
/// guarantees depend on no out-of-bounds panics, plus lake-obs — metric
/// recording sits on every instrumented hot path and must never abort it —
/// and lake-sched, whose event loop must drain every schedule it is handed.
/// The columnar execution spine is covered file-by-file: the dictionary
/// batch kernels, the parquet-lite codec, and incremental index
/// maintenance all run inside every profiling/ingest hot loop.
pub const HOT_PATHS: &[&str] = &[
    "crates/lake-core/src/batch.rs",
    "crates/lake-discovery/src/incremental.rs",
    "crates/lake-formats/src/columnar.rs",
    "crates/lake-house/src/",
    "crates/lake-obs/src/",
    "crates/lake-sched/src/",
    "crates/lake-server/src/",
];

/// Directory names whose contents are exempt from source lints.
const EXEMPT_DIRS: &[&str] = &["tests", "benches", "bin", "examples", "fixtures", "target"];

/// Scan every first-party crate under `root/crates` — library sources and
/// manifests — and return all findings sorted by (file, line). The
/// `crates/vendored/` stand-ins for external dependencies are skipped:
/// they mirror foreign APIs, not lake conventions.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let mut conc = concurrency::Analysis::default();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
        .collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let manifest = crate_dir.join("Cargo.toml");
        let rel = relative_to(&manifest, root);
        findings.extend(layering::check_manifest_file(&manifest, &rel)?);
        let src = crate_dir.join("src");
        if src.is_dir() {
            walk_sources(&src, root, &mut findings, &mut conc)?;
        }
    }
    findings.extend(conc.finish());
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

fn walk_sources(
    dir: &Path,
    root: &Path,
    findings: &mut Vec<Finding>,
    conc: &mut concurrency::Analysis,
) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if EXEMPT_DIRS.contains(&name) {
                continue;
            }
            walk_sources(&path, root, findings, conc)?;
        } else if name.ends_with(".rs") {
            let rel = relative_to(&path, root);
            let src = std::fs::read_to_string(&path)?;
            let hot = HOT_PATHS.iter().any(|h| rel.starts_with(h));
            findings.extend(scanner::scan_source(&rel, &src, hot));
            findings.extend(errors::scan_source(&rel, &src));
            findings.extend(errors::scan_atomicity(&rel, &src));
            findings.extend(clock::scan_source(&rel, &src));
            findings.extend(float::scan_source(&rel, &src));
            findings.extend(durability::scan_source(&rel, &src));
            conc.add_source(&rel, &src);
        }
    }
    Ok(())
}

/// Render `path` relative to `root` with forward slashes (stable across
/// platforms for baseline entries).
fn relative_to(path: &Path, root: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Canonical baseline location within a workspace.
pub fn baseline_path(root: &Path) -> PathBuf {
    root.join("lake-lint.baseline.toml")
}

/// Locate the workspace root: walk up from `start` until a `Cargo.toml`
/// containing a `[workspace]` table is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Full check result, ready for CLI rendering.
#[derive(Debug)]
pub struct Report {
    /// All current findings (including grandfathered ones).
    pub findings: Vec<Finding>,
    /// Comparison against the checked-in baseline.
    pub comparison: baseline::Comparison,
}

impl Report {
    /// Does the check pass (no new violations)?
    pub fn is_clean(&self) -> bool {
        self.comparison.new_violations.is_empty()
    }
}

/// Why a lint run itself (not the scanned code) failed.
#[derive(Debug)]
pub enum LintError {
    /// The workspace scan could not read a source or manifest.
    Io(std::io::Error),
    /// `lake-lint.baseline.toml` is malformed.
    Baseline(baseline::BaselineError),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io(e) => write!(f, "scan failed: {e}"),
            LintError::Baseline(e) => write!(f, "lake-lint.baseline.toml: {e}"),
        }
    }
}

impl std::error::Error for LintError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LintError::Io(e) => Some(e),
            LintError::Baseline(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for LintError {
    fn from(e: std::io::Error) -> Self {
        LintError::Io(e)
    }
}

impl From<baseline::BaselineError> for LintError {
    fn from(e: baseline::BaselineError) -> Self {
        LintError::Baseline(e)
    }
}

/// Run the full check against the baseline at the canonical path; a
/// missing baseline file is treated as empty (everything counts as new).
pub fn check(root: &Path) -> Result<Report, LintError> {
    let findings = scan_workspace(root)?;
    let base = match std::fs::read_to_string(baseline_path(root)) {
        Ok(text) => baseline::Baseline::parse(&text)?,
        Err(_) => baseline::Baseline::default(),
    };
    let comparison = baseline::compare(&findings, &base);
    Ok(Report { findings, comparison })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_keys_roundtrip() {
        for rule in [
            Rule::Panic,
            Rule::Indexing,
            Rule::ErrorDiscipline,
            Rule::Layering,
            Rule::ClockDiscipline,
            Rule::FloatOrdering,
            Rule::LockOrder,
            Rule::GuardBlocking,
            Rule::AtomicOrdering,
            Rule::Durability,
        ] {
            assert_eq!(Rule::from_key(rule.key()), Some(rule));
        }
        assert_eq!(Rule::from_key("nope"), None);
    }

    #[test]
    fn relative_paths_use_forward_slashes() {
        let root = Path::new("/ws");
        let p = Path::new("/ws/crates/lake-core/src/lib.rs");
        assert_eq!(relative_to(p, root), "crates/lake-core/src/lib.rs");
    }
}
