//! Concurrency-discipline lints: the workspace-wide lock-site model
//! behind rules 6–8.
//!
//! Unlike the per-file passes, this one accumulates facts across every
//! scanned source ([`Analysis::add_source`]) and judges them together
//! ([`Analysis::finish`]):
//!
//! 6. **Lock ordering** — every `OrderedMutex`/`OrderedRwLock` is
//!    constructed with a rank from `lake_core::sync::rank`, the single
//!    declared global order (parsed from the `mod rank { … }` block, so
//!    the static and runtime checkers share one source of truth).
//!    Nested acquisitions must follow strictly increasing ranks; raw
//!    `Mutex`/`RwLock` fields are implicit leaves (nothing may be
//!    acquired while one is held). Inversions and cycles can deadlock,
//!    so — like layering — they are **never baselinable**.
//! 7. **Guard across blocking** — no lock guard may stay live across an
//!    `ObjectStore` call, `retry_with_stats`, a channel send/recv, or a
//!    `lake_core::par` fan-out: backoff and I/O under a lock serialize
//!    the very paths the lock was meant to keep short, and a hang turns
//!    into a pile-up.
//! 8. **Atomic-ordering discipline** — `Ordering::Relaxed` is allowed
//!    only on declared counter atomics (the lake-obs metric cells);
//!    anywhere else needs a `// lint: ordering` justification on the
//!    same or preceding line. Only the exact `Ordering::Relaxed` token
//!    is matched, so `std::cmp::Ordering` (which has no `Relaxed`) can
//!    never false-positive.
//!
//! The model is a hand-rolled token walk over comment/string-stripped
//! source — no `syn` in this offline workspace — so it is deliberately
//! heuristic: guard liveness is tracked through `let` bindings, block
//! scopes, statement-end for temporaries, and explicit `drop(..)`;
//! interprocedural edges resolve callees by bare name across the
//! workspace, skipping [`GENERIC_CALLEES`] (ubiquitous container-method
//! names whose collisions would drown the signal). Heuristics err toward
//! silence on constructs they cannot read; the runtime sanitizer in
//! `lake_core::sync` backstops them under the chaos suites.

use std::collections::{BTreeMap, BTreeSet};

use crate::errors::strip_comments_and_strings;
use crate::{Finding, Rule};

/// Path prefixes whose atomics are declared counters: `Ordering::Relaxed`
/// is the documented norm there (lake-obs metric cells), no per-site
/// justification needed.
pub const COUNTER_ATOMIC_PATHS: &[&str] = &["crates/lake-obs/src/"];

/// Callee names that block: retry/backoff drivers, channel endpoints,
/// sleeps, and `lake_core::par` fan-outs. A guard live across one of
/// these is a rule-7 violation.
const BLOCKING_FNS: &[&str] = &[
    "retry",
    "retry_with_stats",
    "recv",
    "recv_timeout",
    "try_recv",
    "send",
    "send_timeout",
    "try_send",
    "sleep_ms",
    "map_range",
    "map_indexed",
    "run_parallel",
    "scope",
];

/// `ObjectStore` methods: blocking when invoked on a store-ish receiver
/// (`store`, `files`, `inner`, or anything containing "store").
const STORE_METHODS: &[&str] = &["put", "put_if_absent", "get", "delete", "exists", "list", "size"];

/// Method names that *are* acquisitions — call events on these are
/// handled by the acquisition tracking, not the interprocedural pass.
const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// Ubiquitous names excluded from interprocedural resolution: resolving
/// `guard.clear()` to `Tracer::clear` (which locks the very guard held)
/// by bare-name collision would flood rule 6 with self-edges.
const GENERIC_CALLEES: &[&str] = &[
    "and_then", "as_ref", "as_str", "clear", "clone", "cmp", "collect", "contains",
    "contains_key", "count", "default", "drain", "entry", "eq", "extend", "filter", "fmt",
    "from", "get", "get_mut", "hash", "insert", "into", "into_iter", "is_empty", "iter",
    "keys", "len", "map", "new", "next", "ok_or_else", "pop", "pop_front", "push",
    "push_back", "remove", "retain", "snapshot", "sort", "sort_by", "to_string",
    "unwrap_or", "unwrap_or_default", "unwrap_or_else", "values", "with_capacity",
];

const KEYWORDS: &[&str] = &[
    "as", "async", "await", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "super", "trait", "type", "unsafe", "use",
    "where", "while",
];

/// A lock's identity across the workspace.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Class {
    /// Constructed with `rank::CONST` — ranked by the declared order.
    Ranked(String),
    /// A raw `Mutex`/`RwLock` (or an unresolved `.lock()` receiver):
    /// an implicit leaf — nothing may be acquired while it is held.
    Unranked(String),
}

impl Class {
    fn display(&self) -> String {
        match self {
            Class::Ranked(c) => format!("rank::{c}"),
            Class::Unranked(id) => format!("{id} (unranked leaf)"),
        }
    }
}

/// One lock the walker currently considers held.
#[derive(Debug, Clone)]
struct Hold {
    class: Class,
    line: usize,
    /// Brace depth the hold was created at.
    depth: usize,
    /// `Some(name)` for `let`-bound guards (killable by `drop(name)`),
    /// `None` for statement temporaries.
    binding: Option<String>,
    /// Temporaries die at the end of their statement; bindings at the
    /// end of their block.
    temp: bool,
}

/// An acquisition or call observed while at least one lock was held.
#[derive(Debug, Clone)]
struct Event {
    file: String,
    line: usize,
    /// `Ok(class)` for acquisitions, `Err(callee)` for calls.
    subject: Result<Class, String>,
    holds: Vec<(Class, usize)>,
}

/// A declared rank constant: `const NAME: u32 = N;` inside `mod rank`.
#[derive(Debug, Clone)]
struct RankConst {
    file: String,
    line: usize,
    value: u32,
}

/// Workspace-wide accumulator for rules 6–8. Feed every library source
/// through [`Analysis::add_source`], then call [`Analysis::finish`].
#[derive(Debug, Default)]
pub struct Analysis {
    rank_consts: BTreeMap<String, RankConst>,
    events: Vec<Event>,
    /// Direct lock acquisitions per function name (bare-name keyed).
    fn_acquires: BTreeMap<String, BTreeSet<Class>>,
    /// Functions that directly make a blocking call, and which one.
    fn_blocks: BTreeMap<String, String>,
    /// Call edges per function name.
    fn_calls: BTreeMap<String, BTreeSet<String>>,
    /// How many `fn name` definitions each bare name has. Bare-name call
    /// resolution is only trusted when a name is defined exactly once —
    /// anything else would merge unrelated functions across crates.
    fn_defs: BTreeMap<String, usize>,
    /// Rule 7/8 findings completed during the per-file walks.
    findings: Vec<Finding>,
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Punct(char),
}

/// Tokenize stripped source into idents and single-char puncts with
/// 1-based line numbers. Numeric literals come through as `Ident`s of
/// their digits so rank values stay recoverable.
fn lex(stripped: &str) -> Vec<(Tok, usize)> {
    let chars: Vec<char> = stripped.chars().collect();
    let mut toks = Vec::new();
    let mut line = 1;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c.is_alphanumeric() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            toks.push((Tok::Ident(chars[start..i].iter().collect()), line));
        } else {
            toks.push((Tok::Punct(c), line));
            i += 1;
        }
    }
    toks
}

fn ident_at(toks: &[(Tok, usize)], i: usize) -> Option<&str> {
    match toks.get(i) {
        Some((Tok::Ident(s), _)) => Some(s),
        _ => None,
    }
}

fn punct_at(toks: &[(Tok, usize)], i: usize, c: char) -> bool {
    matches!(toks.get(i), Some((Tok::Punct(p), _)) if *p == c)
}

impl Analysis {
    /// Scan one library source file, accumulating lock facts and
    /// emitting any per-file (rule 7/8) findings.
    pub fn add_source(&mut self, file: &str, src: &str) {
        let stripped = strip_comments_and_strings(src);
        let raw_lines: Vec<&str> = src.lines().collect();
        let toks = lex(&stripped);
        let lock_map = self.collect_rank_consts_and_locks(file, &toks);
        self.walk(file, &toks, &lock_map, &raw_lines);
    }

    /// Pre-pass: collect `mod rank { const … }` declarations and build
    /// this file's lock-name → class map from `Ordered*::new(…, rank::X,
    /// …)` construction sites and raw `field: Mutex<…>` declarations.
    fn collect_rank_consts_and_locks(
        &mut self,
        file: &str,
        toks: &[(Tok, usize)],
    ) -> BTreeMap<String, Class> {
        let mut map: BTreeMap<String, Class> = BTreeMap::new();
        let mut i = 0;
        while i < toks.len() {
            // `mod rank {` — record every `const NAME: u32 = N;` inside.
            if ident_at(toks, i) == Some("mod") && ident_at(toks, i + 1) == Some("rank") {
                let mut j = i + 2;
                let mut depth = 0usize;
                while j < toks.len() {
                    match &toks[j].0 {
                        Tok::Punct(';') if depth == 0 => break, // `mod rank;`
                        Tok::Punct('{') => depth += 1,
                        Tok::Punct('}') => {
                            depth = depth.saturating_sub(1);
                            if depth == 0 {
                                break;
                            }
                        }
                        Tok::Ident(w) if w == "const" && depth > 0 => {
                            // const NAME : u32 = VALUE ;
                            if let (Some(name), Some(value)) =
                                (ident_at(toks, j + 1), const_u32_value(toks, j))
                            {
                                self.rank_consts.entry(name.to_string()).or_insert(RankConst {
                                    file: file.to_string(),
                                    line: toks[j].1,
                                    value,
                                });
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                i = j;
                continue;
            }
            // `OrderedMutex::new(` / `OrderedRwLock::new(` — find the
            // rank constant inside the call and the binding name before.
            if let Some(w) = ident_at(toks, i) {
                if (w == "OrderedMutex" || w == "OrderedRwLock")
                    && punct_at(toks, i + 1, ':')
                    && punct_at(toks, i + 2, ':')
                    && ident_at(toks, i + 3) == Some("new")
                    && punct_at(toks, i + 4, '(')
                {
                    if let Some(konst) = rank_const_in_call(toks, i + 4) {
                        if let Some(name) = binding_name_before(toks, i) {
                            map.insert(name, Class::Ranked(konst));
                        }
                    }
                }
                // `name: Mutex<` / `name: RwLock<` — raw lock field or
                // typed local: an unranked leaf unless a ranked
                // constructor already claimed the name.
                if (w == "Mutex" || w == "RwLock")
                    && punct_at(toks, i + 1, '<')
                    && i >= 2
                    && punct_at(toks, i - 1, ':')
                    && !punct_at(toks, i - 2, ':')
                {
                    if let Some(name) = ident_at(toks, i - 2) {
                        map.entry(name.to_string())
                            .or_insert_with(|| Class::Unranked(format!("{file}#{name}")));
                    }
                }
            }
            i += 1;
        }
        map
    }

    /// Linear walk: track braces, `#[cfg(test)]` regions, the current
    /// function, live guards, and record acquisition/call/atomic events.
    fn walk(
        &mut self,
        file: &str,
        toks: &[(Tok, usize)],
        lock_map: &BTreeMap<String, Class>,
        raw_lines: &[&str],
    ) {
        let mut depth = 0usize;
        let mut cfg_test: Option<usize> = None;
        let mut pending_fn: Option<String> = None;
        let mut fn_stack: Vec<(String, usize)> = Vec::new();
        let mut holds: Vec<Hold> = Vec::new();
        let mut pending_let: Option<(usize, Option<String>)> = None;
        let mut i = 0;
        while i < toks.len() {
            let line = toks[i].1;
            match &toks[i].0 {
                Tok::Punct('#')
                    if punct_at(toks, i + 1, '[')
                        && ident_at(toks, i + 2) == Some("cfg")
                        && punct_at(toks, i + 3, '(')
                        && ident_at(toks, i + 4) == Some("test") =>
                {
                    cfg_test.get_or_insert(depth);
                    i += 5;
                    continue;
                }
                Tok::Punct('{') => {
                    depth += 1;
                    if let Some(name) = pending_fn.take() {
                        fn_stack.push((name, depth));
                    }
                }
                Tok::Punct('}') => {
                    depth = depth.saturating_sub(1);
                    if cfg_test.is_some_and(|d| depth < d) {
                        cfg_test = None;
                    }
                    while fn_stack.last().is_some_and(|(_, d)| *d > depth) {
                        fn_stack.pop();
                    }
                    // Closing a block ends the statements in it: kill
                    // bindings from inside, and temporaries whose
                    // statement just ended (if-let scrutinees, loop
                    // headers live exactly until their block closes).
                    holds.retain(|h| if h.temp { h.depth < depth } else { h.depth <= depth });
                    if pending_let.as_ref().is_some_and(|(d, _)| *d > depth) {
                        pending_let = None;
                    }
                }
                Tok::Punct(';') => {
                    holds.retain(|h| !(h.temp && h.depth == depth));
                    if pending_let.as_ref().is_some_and(|(d, _)| *d == depth) {
                        pending_let = None;
                    }
                    pending_fn = None;
                }
                Tok::Ident(w) if w == "fn" => {
                    if let Some(name) = ident_at(toks, i + 1) {
                        *self.fn_defs.entry(name.to_string()).or_insert(0) += 1;
                        pending_fn = Some(name.to_string());
                        i += 2;
                        continue;
                    }
                }
                Tok::Ident(w) if w == "let" => {
                    // `if let` / `while let` scrutinee guards are
                    // temporaries (they die with the statement's block),
                    // not bindings.
                    let scrutinee = i > 0
                        && matches!(&toks[i - 1].0,
                            Tok::Ident(k) if k == "if" || k == "while");
                    if !scrutinee {
                        let mut j = i + 1;
                        while ident_at(toks, j) == Some("mut") {
                            j += 1;
                        }
                        pending_let = Some((depth, ident_at(toks, j).map(str::to_string)));
                    }
                }
                Tok::Ident(w) if w == "drop" && punct_at(toks, i + 1, '(') => {
                    if let Some(name) = ident_at(toks, i + 2) {
                        if punct_at(toks, i + 3, ')') {
                            holds.retain(|h| h.binding.as_deref() != Some(name));
                        }
                    }
                }
                Tok::Ident(w)
                    if w == "Ordering"
                        && punct_at(toks, i + 1, ':')
                        && punct_at(toks, i + 2, ':')
                        && ident_at(toks, i + 3) == Some("Relaxed") =>
                {
                    if cfg_test.is_none()
                        && !is_counter_atomic_path(file)
                        && !has_ordering_justification(raw_lines, line)
                    {
                        self.findings.push(Finding {
                            rule: Rule::AtomicOrdering,
                            file: file.to_string(),
                            line,
                            message: "Ordering::Relaxed outside a declared counter atomic; \
                                      use a stronger ordering or justify with `// lint: ordering`"
                                .to_string(),
                        });
                    }
                    i += 4;
                    continue;
                }
                Tok::Ident(name) => {
                    if cfg_test.is_some() || KEYWORDS.contains(&name.as_str()) {
                        i += 1;
                        continue;
                    }
                    // Acquisition: `<recv>.lock()` / `.read()` / `.write()`.
                    if i >= 2
                        && punct_at(toks, i - 1, '.')
                        && ACQUIRE_METHODS.contains(&name.as_str())
                        && punct_at(toks, i + 1, '(')
                        && punct_at(toks, i + 2, ')')
                    {
                        if let Some(recv) = ident_at(toks, i - 2) {
                            let class = match lock_map.get(recv) {
                                Some(c) => Some(c.clone()),
                                None if name == "lock" => {
                                    Some(Class::Unranked(format!("{file}#{recv}")))
                                }
                                None => None, // unresolved .read()/.write(): not a lock
                            };
                            if let Some(class) = class {
                                // `x.lock().foo(..)`: the guard is a
                                // statement temporary — the chained
                                // result, not the guard, reaches any
                                // `let` binding.
                                let chained = punct_at(toks, i + 3, '.');
                                self.on_acquire(
                                    file,
                                    line,
                                    class,
                                    depth,
                                    chained,
                                    &mut holds,
                                    &pending_let,
                                    &fn_stack,
                                );
                                i += 3;
                                continue;
                            }
                        }
                    }
                    // Call event: `name(` that is not a macro (`name!`),
                    // a definition (preceded by `fn`), or a type-ish
                    // constructor (uppercase).
                    if punct_at(toks, i + 1, '(')
                        && name.chars().next().is_some_and(|c| c.is_lowercase() || c == '_')
                        && !ACQUIRE_METHODS.contains(&name.as_str())
                    {
                        // Store methods block only on store-ish receivers:
                        // `self.store.get(..)` yes, `map.get(..)` no.
                        let receiver = if punct_at(toks, i - 1, '.') {
                            ident_at(toks, i.wrapping_sub(2))
                        } else {
                            None
                        };
                        let store_blocking = STORE_METHODS.contains(&name.as_str())
                            && receiver.is_some_and(is_storeish);
                        let blocking = BLOCKING_FNS.contains(&name.as_str()) || store_blocking;
                        self.on_call(file, line, name, blocking, &holds, &fn_stack);
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_acquire(
        &mut self,
        file: &str,
        line: usize,
        class: Class,
        depth: usize,
        chained: bool,
        holds: &mut Vec<Hold>,
        pending_let: &Option<(usize, Option<String>)>,
        fn_stack: &[(String, usize)],
    ) {
        if !holds.is_empty() {
            self.events.push(Event {
                file: file.to_string(),
                line,
                subject: Ok(class.clone()),
                holds: holds.iter().map(|h| (h.class.clone(), h.line)).collect(),
            });
        }
        if let Some((name, _)) = fn_stack.last() {
            self.fn_acquires.entry(name.clone()).or_default().insert(class.clone());
        }
        let (binding, temp) = match pending_let {
            Some((d, name)) if *d == depth && !chained => (name.clone(), false),
            _ => (None, true),
        };
        holds.push(Hold { class, line, depth, binding, temp });
    }

    fn on_call(
        &mut self,
        file: &str,
        line: usize,
        name: &str,
        blocking: bool,
        holds: &[Hold],
        fn_stack: &[(String, usize)],
    ) {
        if let Some((caller, _)) = fn_stack.last() {
            self.fn_calls.entry(caller.clone()).or_default().insert(name.to_string());
            if blocking {
                self.fn_blocks.entry(caller.clone()).or_insert_with(|| name.to_string());
            }
        }
        if holds.is_empty() {
            return;
        }
        if blocking {
            // Innermost (most recently acquired) guard named; the fix is
            // usually to shrink that one's scope.
            if let Some(h) = holds.last() {
                self.findings.push(Finding {
                    rule: Rule::GuardBlocking,
                    file: file.to_string(),
                    line,
                    message: format!(
                        "lock guard `{}` (acquired line {}) held across blocking call `{name}`; \
                         release the guard before I/O, backoff, channel ops, or fan-out",
                        h.class.display(),
                        h.line,
                    ),
                });
            }
            return;
        }
        if GENERIC_CALLEES.contains(&name) {
            return;
        }
        self.events.push(Event {
            file: file.to_string(),
            line,
            subject: Err(name.to_string()),
            holds: holds.iter().map(|h| (h.class.clone(), h.line)).collect(),
        });
    }

    /// Judge the accumulated facts: rank inversions (direct and
    /// call-mediated), transitive guard-across-blocking, lock-order
    /// cycles, duplicate ranks — plus the rule 7/8 findings already
    /// collected per file.
    pub fn finish(mut self) -> Vec<Finding> {
        let mut findings = std::mem::take(&mut self.findings);
        self.check_duplicate_ranks(&mut findings);
        let acquires = self.acquire_closure();
        let blocking = self.blocking_closure();
        let mut edges: BTreeMap<(Class, Class), (String, usize)> = BTreeMap::new();
        for ev in &self.events {
            let Some(max_held) =
                ev.holds.iter().max_by_key(|(c, _)| self.rank_of(c)).cloned()
            else {
                continue;
            };
            let held_rank = self.rank_of(&max_held.0);
            match &ev.subject {
                Ok(class) => {
                    let new_rank = self.rank_of(class);
                    if new_rank <= held_rank {
                        findings.push(Finding {
                            rule: Rule::LockOrder,
                            file: ev.file.clone(),
                            line: ev.line,
                            message: format!(
                                "lock-order inversion: acquiring `{}` ({}) while holding `{}` \
                                 ({}, acquired line {}); the declared order \
                                 (lake_core::sync::rank) requires strictly increasing ranks",
                                class.display(),
                                rank_label(new_rank),
                                max_held.0.display(),
                                rank_label(held_rank),
                                max_held.1,
                            ),
                        });
                    }
                    for (held, _) in &ev.holds {
                        if held != class {
                            edges
                                .entry((held.clone(), class.clone()))
                                .or_insert((ev.file.clone(), ev.line));
                        }
                    }
                }
                Err(callee) => {
                    if !self.resolvable(callee) {
                        continue;
                    }
                    if let Some(via) = blocking.get(callee.as_str()) {
                        findings.push(Finding {
                            rule: Rule::GuardBlocking,
                            file: ev.file.clone(),
                            line: ev.line,
                            message: format!(
                                "lock guard `{}` held across call into `{callee}`, which \
                                 blocks (via `{via}`); release the guard first",
                                max_held.0.display(),
                            ),
                        });
                    }
                    let Some(acquired) = acquires.get(callee.as_str()) else { continue };
                    for class in acquired {
                        let new_rank = self.rank_of(class);
                        // Strict inequality only: equality here is almost
                        // always a bare-name self-collision, and genuine
                        // re-entrancy is caught by the direct check.
                        if new_rank < held_rank && !ev.holds.iter().any(|(h, _)| h == class) {
                            findings.push(Finding {
                                rule: Rule::LockOrder,
                                file: ev.file.clone(),
                                line: ev.line,
                                message: format!(
                                    "lock-order inversion: call into `{callee}` acquires `{}` \
                                     ({}) while holding `{}` ({}, acquired line {})",
                                    class.display(),
                                    rank_label(new_rank),
                                    max_held.0.display(),
                                    rank_label(held_rank),
                                    max_held.1,
                                ),
                            });
                        }
                        for (held, _) in &ev.holds {
                            if held != class {
                                edges
                                    .entry((held.clone(), class.clone()))
                                    .or_insert((ev.file.clone(), ev.line));
                            }
                        }
                    }
                }
            }
        }
        self.check_cycles(&edges, &mut findings);
        findings
    }

    /// Is `name` safe to resolve by bare name — defined exactly once in
    /// the workspace? (A colliding name would merge unrelated functions.)
    fn resolvable(&self, name: &str) -> bool {
        self.fn_defs.get(name) == Some(&1)
            && !GENERIC_CALLEES.contains(&name)
            && !ACQUIRE_METHODS.contains(&name)
    }

    /// Fixpoint of which lock classes each function acquires, directly
    /// or through calls to uniquely-named functions.
    fn acquire_closure(&self) -> BTreeMap<&str, BTreeSet<Class>> {
        let mut closure: BTreeMap<&str, BTreeSet<Class>> =
            self.fn_acquires.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        loop {
            let mut changed = false;
            for (caller, callees) in &self.fn_calls {
                let mut gained: BTreeSet<Class> = BTreeSet::new();
                for callee in callees {
                    if !self.resolvable(callee) {
                        continue;
                    }
                    if let Some(acq) = closure.get(callee.as_str()) {
                        gained.extend(acq.iter().cloned());
                    }
                }
                if !gained.is_empty() {
                    let entry = closure.entry(caller.as_str()).or_default();
                    let before = entry.len();
                    entry.extend(gained);
                    changed |= entry.len() > before;
                }
            }
            if !changed {
                return closure;
            }
        }
    }

    /// Fixpoint of which functions (transitively) block, and through
    /// which primitive; propagates only through uniquely-named callees.
    fn blocking_closure(&self) -> BTreeMap<&str, String> {
        let mut blocking: BTreeMap<&str, String> =
            self.fn_blocks.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        loop {
            let mut changed = false;
            for (caller, callees) in &self.fn_calls {
                if blocking.contains_key(caller.as_str()) {
                    continue;
                }
                for callee in callees {
                    if !self.resolvable(callee) {
                        continue;
                    }
                    if let Some(via) = blocking.get(callee.as_str()).cloned() {
                        blocking.insert(caller.as_str(), via);
                        changed = true;
                        break;
                    }
                }
            }
            if !changed {
                return blocking;
            }
        }
    }

    fn rank_of(&self, class: &Class) -> u32 {
        match class {
            Class::Ranked(konst) => {
                self.rank_consts.get(konst).map(|rc| rc.value).unwrap_or(u32::MAX)
            }
            Class::Unranked(_) => u32::MAX,
        }
    }

    fn check_duplicate_ranks(&self, findings: &mut Vec<Finding>) {
        let mut by_value: BTreeMap<u32, Vec<(&String, &RankConst)>> = BTreeMap::new();
        for (name, rc) in &self.rank_consts {
            by_value.entry(rc.value).or_default().push((name, rc));
        }
        for (value, consts) in by_value {
            if consts.len() > 1 {
                let names: Vec<&str> = consts.iter().map(|(n, _)| n.as_str()).collect();
                if let Some((_, first)) = consts.first() {
                    findings.push(Finding {
                        rule: Rule::LockOrder,
                        file: first.file.clone(),
                        line: first.line,
                        message: format!(
                            "duplicate lock rank {value} shared by {}; the declared order must \
                             totally order every lock",
                            names.join(", "),
                        ),
                    });
                }
            }
        }
    }

    /// Find strongly-connected components of the nesting graph; any
    /// multi-node component is a potential deadlock cycle. Reported on
    /// the representative edge sites so the offender is clickable.
    fn check_cycles(
        &self,
        edges: &BTreeMap<(Class, Class), (String, usize)>,
        findings: &mut Vec<Finding>,
    ) {
        let mut nodes: BTreeSet<&Class> = BTreeSet::new();
        for (a, b) in edges.keys() {
            nodes.insert(a);
            nodes.insert(b);
        }
        let node_list: Vec<&Class> = nodes.iter().copied().collect();
        let index: BTreeMap<&Class, usize> =
            node_list.iter().enumerate().map(|(i, c)| (*c, i)).collect();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); node_list.len()];
        for (a, b) in edges.keys() {
            if let (Some(&ia), Some(&ib)) = (index.get(a), index.get(b)) {
                adj[ia].push(ib);
            }
        }
        for component in tarjan_scc(&adj) {
            if component.len() < 2 {
                continue;
            }
            let members: BTreeSet<usize> = component.iter().copied().collect();
            let cycle_desc: Vec<String> =
                component.iter().map(|&i| node_list[i].display()).collect();
            for ((a, b), (file, line)) in edges {
                let (Some(&ia), Some(&ib)) = (index.get(a), index.get(b)) else { continue };
                if members.contains(&ia) && members.contains(&ib) {
                    findings.push(Finding {
                        rule: Rule::LockOrder,
                        file: file.clone(),
                        line: *line,
                        message: format!(
                            "lock-order cycle: `{}` is acquired while `{}` is held, closing \
                             the cycle {{{}}}; cycles can deadlock and are never baselinable",
                            b.display(),
                            a.display(),
                            cycle_desc.join(" -> "),
                        ),
                    });
                }
            }
        }
    }
}

fn rank_label(rank: u32) -> String {
    if rank == u32::MAX { "unranked leaf".to_string() } else { format!("rank {rank}") }
}

fn is_counter_atomic_path(file: &str) -> bool {
    COUNTER_ATOMIC_PATHS.iter().any(|p| file.starts_with(p))
}

fn is_storeish(receiver: &str) -> bool {
    receiver == "files" || receiver == "inner" || receiver.contains("store")
}

/// Is there a `lint: ordering` justification on `line` or in the
/// contiguous `//` comment block immediately above it?
fn has_ordering_justification(raw_lines: &[&str], line: usize) -> bool {
    let here = raw_lines.get(line.wrapping_sub(1)).copied().unwrap_or("");
    if here.contains("lint: ordering") {
        return true;
    }
    let mut ln = line.wrapping_sub(1); // 0-based index of the line above
    while ln > 0 {
        ln -= 1;
        let text = raw_lines.get(ln).copied().unwrap_or("").trim_start();
        if !text.starts_with("//") {
            return false;
        }
        if text.contains("lint: ordering") {
            return true;
        }
    }
    false
}

/// Parse `const NAME : u32 = VALUE ;` starting at the `const` token.
fn const_u32_value(toks: &[(Tok, usize)], j: usize) -> Option<u32> {
    if !(punct_at(toks, j + 2, ':')
        && ident_at(toks, j + 3) == Some("u32")
        && punct_at(toks, j + 4, '='))
    {
        return None;
    }
    ident_at(toks, j + 5).and_then(|v| v.replace('_', "").parse().ok())
}

/// Inside the balanced parens opened at `open`, find `rank :: CONST`.
fn rank_const_in_call(toks: &[(Tok, usize)], open: usize) -> Option<String> {
    let mut depth = 0usize;
    let mut j = open;
    while j < toks.len() {
        match &toks[j].0 {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return None;
                }
            }
            Tok::Ident(w)
                if w == "rank" && punct_at(toks, j + 1, ':') && punct_at(toks, j + 2, ':') =>
            {
                return ident_at(toks, j + 3).map(str::to_string);
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Walk backwards from a constructor to its binding name: skips wrapper
/// layers (`Arc::new(`, path segments) to reach `field:` or `let name =`.
fn binding_name_before(toks: &[(Tok, usize)], mut i: usize) -> Option<String> {
    while i > 0 {
        i -= 1;
        match &toks[i].0 {
            Tok::Punct('(') | Tok::Punct('{') => continue,
            Tok::Ident(w) => {
                // A path segment (`Arc` in `Arc::new`) or `new` itself.
                let is_path_seg = punct_at(toks, i + 1, ':') && punct_at(toks, i + 2, ':');
                if is_path_seg || w == "new" {
                    continue;
                }
                return None;
            }
            Tok::Punct(':') => {
                if i > 0 && punct_at(toks, i - 1, ':') {
                    i -= 1; // the `::` of a path — skip both colons
                    continue;
                }
                return preceding_binding_ident(toks, i);
            }
            Tok::Punct('=') => return preceding_binding_ident(toks, i),
            _ => return None,
        }
    }
    None
}

/// The identifier immediately before token `i`, skipping `mut`.
fn preceding_binding_ident(toks: &[(Tok, usize)], mut i: usize) -> Option<String> {
    while i > 0 {
        i -= 1;
        match &toks[i].0 {
            Tok::Ident(w) if w == "mut" => continue,
            Tok::Ident(name) => return Some(name.clone()),
            _ => return None,
        }
    }
    None
}

/// Iterative Tarjan SCC over an adjacency list.
fn tarjan_scc(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    let mut call_stack: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        call_stack.push((start, 0));
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        while let Some(&(v, ci)) = call_stack.last() {
            if ci < adj[v].len() {
                if let Some(top) = call_stack.last_mut() {
                    top.1 += 1;
                }
                let w = adj[v][ci];
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut component = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(component);
                }
            }
        }
    }
    sccs
}
