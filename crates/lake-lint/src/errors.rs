//! Error-discipline lint: public library functions must fail with
//! `lake_core::error` types, not stringly errors.
//!
//! Flags `pub fn` signatures whose return type is a `Result` with error
//! position `String` or `Box<dyn … Error …>`. The workspace-wide
//! convention is `lake_core::Result<T>` / `LakeError`, which keeps error
//! kinds matchable (`Conflict` vs `NotFound` drives retry logic in the
//! lakehouse commit path).
//!
//! Signature extraction is line-based on top of a brace-depth walk — no
//! `syn` available — and deliberately conservative: only signatures it can
//! fully read (up to `{`, `;`, or `where`) are judged.
//!
//! A second pass ([`scan_atomicity`]) guards the lakehouse's one
//! correctness primitive: any `ObjectStore` impl that provides
//! `put_if_absent` must say — in its docs or body comments — what makes
//! the conditional put atomic. An impl that silently does
//! check-then-write would corrupt the commit protocol without failing a
//! single functional test, so the claim has to be written down where
//! reviewers will see it.

use crate::{Finding, Rule};

/// Scan one library source file for stringly-typed public error returns.
pub fn scan_source(file: &str, src: &str) -> Vec<Finding> {
    let stripped = strip_comments_and_strings(src);
    let mut findings = Vec::new();
    let bytes: Vec<char> = stripped.chars().collect();
    let mut i = 0;
    let mut line = 1;
    let mut cfg_test_depth: Option<usize> = None;
    let mut brace_depth = 0usize;
    while i < bytes.len() {
        if bytes[i] == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if bytes[i] == '{' {
            brace_depth += 1;
            i += 1;
            continue;
        }
        if bytes[i] == '}' {
            brace_depth = brace_depth.saturating_sub(1);
            if cfg_test_depth.is_some_and(|d| brace_depth < d) {
                cfg_test_depth = None;
            }
            i += 1;
            continue;
        }
        // Track `#[cfg(test)]` regions so test helpers are exempt.
        if matches_at(&bytes, i, "#[cfg(test)") {
            cfg_test_depth = Some(brace_depth);
            i += 1;
            continue;
        }
        if cfg_test_depth.is_none()
            && matches_at(&bytes, i, "pub fn ")
            && (i == 0 || !bytes[i - 1].is_alphanumeric())
        {
            // Read the signature through to `{`, `;`, or `where`.
            let sig_start = i;
            let mut j = i;
            let mut sig = String::new();
            while j < bytes.len() && bytes[j] != '{' && bytes[j] != ';' {
                sig.push(bytes[j]);
                j += 1;
            }
            let sig_line = line; // findings anchor at the `pub fn` line
            if let Some(bad) = stringly_error(&sig) {
                findings.push(Finding {
                    rule: Rule::ErrorDiscipline,
                    file: file.to_string(),
                    line: sig_line,
                    message: format!(
                        "public fn returns Result<_, {bad}>; use lake_core::error types"
                    ),
                });
            }
            // Continue the main walk from the signature end (newlines
            // inside the signature still need counting).
            line += bytes[sig_start..j.min(bytes.len())].iter().filter(|&&c| c == '\n').count();
            i = j;
            continue;
        }
        i += 1;
    }
    findings
}

/// Scan one library source file for `ObjectStore` impls whose
/// `put_if_absent` carries no atomicity documentation.
///
/// Structure (impl headers, block extents, the `fn put_if_absent`
/// token) is detected on the comment/string-stripped text; the word
/// `atomic` is then searched case-insensitively in the *raw* source,
/// from ~20 lines above the impl header (leading doc comments) through
/// the end of the impl block (body comments). `#[cfg(test)]` impls are
/// exempt, like every other source lint.
pub fn scan_atomicity(file: &str, src: &str) -> Vec<Finding> {
    let stripped = strip_comments_and_strings(src);
    let chars: Vec<char> = stripped.chars().collect();
    let raw_lines: Vec<&str> = src.lines().collect();
    let mut findings = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut brace_depth = 0usize;
    let mut cfg_test_depth: Option<usize> = None;
    while i < chars.len() {
        match chars[i] {
            '\n' => {
                line += 1;
                i += 1;
                continue;
            }
            '{' => {
                brace_depth += 1;
                i += 1;
                continue;
            }
            '}' => {
                brace_depth = brace_depth.saturating_sub(1);
                if cfg_test_depth.is_some_and(|d| brace_depth < d) {
                    cfg_test_depth = None;
                }
                i += 1;
                continue;
            }
            _ => {}
        }
        if matches_at(&chars, i, "#[cfg(test)") {
            cfg_test_depth = Some(brace_depth);
            i += 1;
            continue;
        }
        let at_impl = matches_at(&chars, i, "impl")
            && (i == 0 || chars.get(i - 1).map_or(true, |c| !c.is_alphanumeric() && *c != '_'))
            && chars.get(i + 4).is_some_and(|c| !c.is_alphanumeric() && *c != '_');
        if cfg_test_depth.is_none() && at_impl {
            // Header through to `{` (or `;` for e.g. `impl Trait` in a
            // return position — not a block, skip).
            let mut j = i;
            let mut header = String::new();
            while j < chars.len() && chars[j] != '{' && chars[j] != ';' {
                header.push(chars[j]);
                j += 1;
            }
            if chars.get(j) != Some(&'{') || !header.contains("ObjectStore for") {
                line += header.matches('\n').count();
                i = j;
                continue;
            }
            let impl_line = line;
            // Walk the block to its matching brace.
            let block_start = j;
            let mut depth = 0usize;
            let mut k = j;
            while k < chars.len() {
                match chars.get(k) {
                    Some('{') => depth += 1,
                    Some('}') => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            let body: String = chars.get(block_start..k).unwrap_or(&[]).iter().collect();
            let end_line =
                impl_line + header.matches('\n').count() + body.matches('\n').count();
            if body.contains("fn put_if_absent") {
                let from = impl_line.saturating_sub(21); // 0-based: 20 lines of leading docs
                let to = end_line.min(raw_lines.len());
                let documented = raw_lines
                    .get(from..to)
                    .unwrap_or(&[])
                    .iter()
                    .any(|l| l.to_ascii_lowercase().contains("atomic"));
                if !documented {
                    findings.push(Finding {
                        rule: Rule::ErrorDiscipline,
                        file: file.to_string(),
                        line: impl_line,
                        message: "ObjectStore impl provides put_if_absent without documenting \
                                  its atomicity guarantee"
                            .to_string(),
                    });
                }
            }
            line = end_line;
            i = k;
            continue;
        }
        i += 1;
    }
    findings
}

pub(crate) fn matches_at(chars: &[char], i: usize, needle: &str) -> bool {
    needle.chars().enumerate().all(|(k, nc)| chars.get(i + k) == Some(&nc))
}

/// If the signature's return type is a stringly-typed Result, name the
/// offending error type.
fn stringly_error(sig: &str) -> Option<&'static str> {
    let ret = sig.split("->").nth(1)?;
    let ret = ret.split(" where ").next().unwrap_or(ret).trim();
    // Find `Result<…>` (std or aliased path, but NOT lake_core::Result,
    // whose error type is fixed to LakeError).
    let idx = ret.find("Result<")?;
    let prefix = &ret[..idx];
    if prefix.contains("lake_core") {
        return None;
    }
    let args = &ret[idx + "Result<".len()..];
    // Split the generic arguments at top level.
    let mut depth = 0;
    let mut top_commas = Vec::new();
    let mut end = args.len();
    for (bi, c) in args.char_indices() {
        match c {
            '<' | '(' | '[' => depth += 1,
            '>' if depth == 0 => {
                end = bi;
                break;
            }
            '>' | ')' | ']' => depth -= 1,
            ',' if depth == 0 => top_commas.push(bi),
            _ => {}
        }
    }
    let second = top_commas.first().map(|&c| args[c + 1..end].trim())?;
    if second == "String" {
        return Some("String");
    }
    if second.starts_with("Box<dyn") && second.contains("Error") {
        return Some("Box<dyn Error>");
    }
    None
}

/// Replace comments, string contents, and char literals with spaces so
/// token matching never fires inside them (newlines are preserved for
/// line numbers). Char literals matter twice over: `'"'` would otherwise
/// open a phantom string that swallows real code, and `'{'` / `'}'`
/// would corrupt the brace-depth tracking every pass builds on.
pub(crate) fn strip_comments_and_strings(src: &str) -> String {
    let chars: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            // Char literal vs lifetime: a literal is `'x'` or `'\x..'`;
            // a lifetime (`'a`) has no closing quote right after.
            '\'' if chars.get(i + 1) == Some(&'\\')
                || (chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\'')) =>
            {
                out.push(' ');
                i += 1;
                while i < chars.len() {
                    match chars[i] {
                        '\\' => {
                            out.push_str("  ");
                            i += 2;
                        }
                        '\'' => {
                            out.push(' ');
                            i += 1;
                            break;
                        }
                        c => {
                            out.push(if c == '\n' { '\n' } else { ' ' });
                            i += 1;
                        }
                    }
                }
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    out.push(' ');
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                let mut depth = 1;
                out.push_str("  ");
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        out.push_str("  ");
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        out.push_str("  ");
                        i += 2;
                    } else {
                        out.push(if chars[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                }
            }
            '"' => {
                out.push(' ');
                i += 1;
                while i < chars.len() {
                    match chars[i] {
                        '\\' => {
                            out.push_str("  ");
                            i += 2;
                        }
                        '"' => {
                            out.push(' ');
                            i += 1;
                            break;
                        }
                        c => {
                            out.push(if c == '\n' { '\n' } else { ' ' });
                            i += 1;
                        }
                    }
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_string_and_boxed_errors() {
        let src = r#"
pub fn bad_string(x: u8) -> Result<u8, String> { Ok(x) }
pub fn bad_boxed() -> Result<(), Box<dyn std::error::Error>> { Ok(()) }
"#;
        let f = scan_source("f.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f[0].message.contains("String"));
        assert!(f[1].message.contains("Box<dyn Error>"));
    }

    #[test]
    fn accepts_lake_error_results_and_non_results() {
        let src = r#"
pub fn good(x: u8) -> lake_core::Result<u8> { Ok(x) }
pub fn also_good() -> Result<u8, LakeError> { Ok(1) }
pub fn renders() -> String { String::new() }
pub fn tuple() -> (String, u8) { (String::new(), 0) }
fn private_is_exempt() -> Result<(), String> { Ok(()) }
"#;
        assert!(scan_source("f.rs", src).is_empty(), "{:?}", scan_source("f.rs", src));
    }

    #[test]
    fn nested_generics_split_correctly() {
        let src = "pub fn f() -> Result<Vec<(String, u8)>, String> { todo!() }";
        assert_eq!(scan_source("f.rs", src).len(), 1);
        let ok = "pub fn f() -> Result<HashMap<String, Vec<u8>>, LakeError> { todo!() }";
        assert!(scan_source("f.rs", ok).is_empty());
    }

    #[test]
    fn cfg_test_helpers_are_exempt() {
        let src = r#"
#[cfg(test)]
mod tests {
    pub fn helper() -> Result<(), String> { Ok(()) }
}
"#;
        assert!(scan_source("f.rs", src).is_empty());
    }

    #[test]
    fn undocumented_put_if_absent_impl_is_flagged() {
        let src = r#"
impl ObjectStore for SilentStore {
    fn put(&self, key: &str, data: &[u8]) -> Result<()> { Ok(()) }
    fn put_if_absent(&self, key: &str, data: &[u8]) -> Result<()> {
        if self.exists(key) { return Err(LakeError::already_exists(key)); }
        self.put(key, data)
    }
}
"#;
        let f = scan_atomicity("f.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::ErrorDiscipline);
        assert_eq!(f[0].line, 2);
        assert!(f[0].message.contains("atomicity"));
    }

    #[test]
    fn atomicity_doc_before_or_inside_the_impl_satisfies_the_rule() {
        let leading = r#"
/// Conditional put is atomic via the map's write lock.
impl ObjectStore for DocStore {
    fn put_if_absent(&self, key: &str, data: &[u8]) -> Result<()> { todo!() }
}
"#;
        assert!(scan_atomicity("f.rs", leading).is_empty());
        let inline = r#"
impl ObjectStore for DocStore {
    fn put_if_absent(&self, key: &str, data: &[u8]) -> Result<()> {
        // Atomic: one critical section covers check and insert.
        todo!()
    }
}
"#;
        assert!(scan_atomicity("f.rs", inline).is_empty());
    }

    #[test]
    fn impls_without_put_if_absent_and_test_impls_are_exempt() {
        let no_conditional_put = r#"
impl ObjectStore for ReadOnlyStore {
    fn get(&self, key: &str) -> Result<Vec<u8>> { todo!() }
}
"#;
        assert!(scan_atomicity("f.rs", no_conditional_put).is_empty());
        let in_tests = r#"
#[cfg(test)]
mod tests {
    impl ObjectStore for FakeStore {
        fn put_if_absent(&self, key: &str, data: &[u8]) -> Result<()> { todo!() }
    }
}
"#;
        assert!(scan_atomicity("f.rs", in_tests).is_empty());
    }

    #[test]
    fn generic_decorator_impls_are_also_checked() {
        // Delegation is not an excuse: the wrapper must still say the
        // guarantee is inherited.
        let src = r#"
impl<S: ObjectStore> ObjectStore for Wrapper<S> {
    fn put_if_absent(&self, key: &str, data: &[u8]) -> Result<()> {
        self.inner.put_if_absent(key, data)
    }
}
"#;
        assert_eq!(scan_atomicity("f.rs", src).len(), 1);
    }

    #[test]
    fn comments_and_strings_never_match() {
        let src = r#"
// pub fn commented() -> Result<u8, String> {}
fn f() { let s = "pub fn fake() -> Result<u8, String>"; }
"#;
        assert!(scan_source("f.rs", src).is_empty());
    }
}
