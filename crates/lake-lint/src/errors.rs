//! Error-discipline lint: public library functions must fail with
//! `lake_core::error` types, not stringly errors.
//!
//! Flags `pub fn` signatures whose return type is a `Result` with error
//! position `String` or `Box<dyn … Error …>`. The workspace-wide
//! convention is `lake_core::Result<T>` / `LakeError`, which keeps error
//! kinds matchable (`Conflict` vs `NotFound` drives retry logic in the
//! lakehouse commit path).
//!
//! Signature extraction is line-based on top of a brace-depth walk — no
//! `syn` available — and deliberately conservative: only signatures it can
//! fully read (up to `{`, `;`, or `where`) are judged.

use crate::{Finding, Rule};

/// Scan one library source file for stringly-typed public error returns.
pub fn scan_source(file: &str, src: &str) -> Vec<Finding> {
    let stripped = strip_comments_and_strings(src);
    let mut findings = Vec::new();
    let bytes: Vec<char> = stripped.chars().collect();
    let mut i = 0;
    let mut line = 1;
    let mut cfg_test_depth: Option<usize> = None;
    let mut brace_depth = 0usize;
    while i < bytes.len() {
        if bytes[i] == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if bytes[i] == '{' {
            brace_depth += 1;
            i += 1;
            continue;
        }
        if bytes[i] == '}' {
            brace_depth = brace_depth.saturating_sub(1);
            if cfg_test_depth.is_some_and(|d| brace_depth < d) {
                cfg_test_depth = None;
            }
            i += 1;
            continue;
        }
        // Track `#[cfg(test)]` regions so test helpers are exempt.
        if matches_at(&bytes, i, "#[cfg(test)") {
            cfg_test_depth = Some(brace_depth);
            i += 1;
            continue;
        }
        if cfg_test_depth.is_none()
            && matches_at(&bytes, i, "pub fn ")
            && (i == 0 || !bytes[i - 1].is_alphanumeric())
        {
            // Read the signature through to `{`, `;`, or `where`.
            let sig_start = i;
            let mut j = i;
            let mut sig = String::new();
            while j < bytes.len() && bytes[j] != '{' && bytes[j] != ';' {
                sig.push(bytes[j]);
                j += 1;
            }
            let sig_line = line; // findings anchor at the `pub fn` line
            if let Some(bad) = stringly_error(&sig) {
                findings.push(Finding {
                    rule: Rule::ErrorDiscipline,
                    file: file.to_string(),
                    line: sig_line,
                    message: format!(
                        "public fn returns Result<_, {bad}>; use lake_core::error types"
                    ),
                });
            }
            // Continue the main walk from the signature end (newlines
            // inside the signature still need counting).
            line += bytes[sig_start..j.min(bytes.len())].iter().filter(|&&c| c == '\n').count();
            i = j;
            continue;
        }
        i += 1;
    }
    findings
}

fn matches_at(chars: &[char], i: usize, needle: &str) -> bool {
    needle.chars().enumerate().all(|(k, nc)| chars.get(i + k) == Some(&nc))
}

/// If the signature's return type is a stringly-typed Result, name the
/// offending error type.
fn stringly_error(sig: &str) -> Option<&'static str> {
    let ret = sig.split("->").nth(1)?;
    let ret = ret.split(" where ").next().unwrap_or(ret).trim();
    // Find `Result<…>` (std or aliased path, but NOT lake_core::Result,
    // whose error type is fixed to LakeError).
    let idx = ret.find("Result<")?;
    let prefix = &ret[..idx];
    if prefix.contains("lake_core") {
        return None;
    }
    let args = &ret[idx + "Result<".len()..];
    // Split the generic arguments at top level.
    let mut depth = 0;
    let mut top_commas = Vec::new();
    let mut end = args.len();
    for (bi, c) in args.char_indices() {
        match c {
            '<' | '(' | '[' => depth += 1,
            '>' if depth == 0 => {
                end = bi;
                break;
            }
            '>' | ')' | ']' => depth -= 1,
            ',' if depth == 0 => top_commas.push(bi),
            _ => {}
        }
    }
    let second = top_commas.first().map(|&c| args[c + 1..end].trim())?;
    if second == "String" {
        return Some("String");
    }
    if second.starts_with("Box<dyn") && second.contains("Error") {
        return Some("Box<dyn Error>");
    }
    None
}

/// Replace comments and string contents with spaces so signature matching
/// never fires inside them (newlines are preserved for line numbers).
fn strip_comments_and_strings(src: &str) -> String {
    let chars: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    out.push(' ');
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                let mut depth = 1;
                out.push_str("  ");
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        out.push_str("  ");
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        out.push_str("  ");
                        i += 2;
                    } else {
                        out.push(if chars[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                }
            }
            '"' => {
                out.push(' ');
                i += 1;
                while i < chars.len() {
                    match chars[i] {
                        '\\' => {
                            out.push_str("  ");
                            i += 2;
                        }
                        '"' => {
                            out.push(' ');
                            i += 1;
                            break;
                        }
                        c => {
                            out.push(if c == '\n' { '\n' } else { ' ' });
                            i += 1;
                        }
                    }
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_string_and_boxed_errors() {
        let src = r#"
pub fn bad_string(x: u8) -> Result<u8, String> { Ok(x) }
pub fn bad_boxed() -> Result<(), Box<dyn std::error::Error>> { Ok(()) }
"#;
        let f = scan_source("f.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f[0].message.contains("String"));
        assert!(f[1].message.contains("Box<dyn Error>"));
    }

    #[test]
    fn accepts_lake_error_results_and_non_results() {
        let src = r#"
pub fn good(x: u8) -> lake_core::Result<u8> { Ok(x) }
pub fn also_good() -> Result<u8, LakeError> { Ok(1) }
pub fn renders() -> String { String::new() }
pub fn tuple() -> (String, u8) { (String::new(), 0) }
fn private_is_exempt() -> Result<(), String> { Ok(()) }
"#;
        assert!(scan_source("f.rs", src).is_empty(), "{:?}", scan_source("f.rs", src));
    }

    #[test]
    fn nested_generics_split_correctly() {
        let src = "pub fn f() -> Result<Vec<(String, u8)>, String> { todo!() }";
        assert_eq!(scan_source("f.rs", src).len(), 1);
        let ok = "pub fn f() -> Result<HashMap<String, Vec<u8>>, LakeError> { todo!() }";
        assert!(scan_source("f.rs", ok).is_empty());
    }

    #[test]
    fn cfg_test_helpers_are_exempt() {
        let src = r#"
#[cfg(test)]
mod tests {
    pub fn helper() -> Result<(), String> { Ok(()) }
}
"#;
        assert!(scan_source("f.rs", src).is_empty());
    }

    #[test]
    fn comments_and_strings_never_match() {
        let src = r#"
// pub fn commented() -> Result<u8, String> {}
fn f() { let s = "pub fn fake() -> Result<u8, String>"; }
"#;
        assert!(scan_source("f.rs", src).is_empty());
    }
}
