//! Clock-discipline lint: library code must not read wall/monotonic time
//! directly.
//!
//! Every timed code path in the workspace threads a
//! `lake_core::retry::Clock` so that tests, chaos suites, and latency
//! histograms replay deterministically under a `ManualClock`. A stray
//! `std::time::Instant::now()` (or `SystemTime::now()`) re-introduces
//! nondeterminism that no functional test will catch — the code works,
//! it just stops being replayable — so the ban has to be structural.
//!
//! Flags `Instant::now` / `SystemTime::now` tokens in library sources,
//! with two exemptions:
//!
//! * `impl … Clock for …` blocks — a `Clock` *implementation* is the one
//!   place that legitimately touches the real clock (`SystemClock`);
//! * `#[cfg(test)]` regions, like every other source lint (tests may
//!   time themselves).
//!
//! Tests, benches, bins, and examples are exempt via the shared
//! directory walk, same as the panic lint.

use crate::errors::{matches_at, strip_comments_and_strings};
use crate::{Finding, Rule};

/// The banned time-source tokens.
const BANNED: &[&str] = &["Instant::now", "SystemTime::now"];

/// Scan one library source file for direct time reads outside `Clock`
/// implementations.
pub fn scan_source(file: &str, src: &str) -> Vec<Finding> {
    let stripped = strip_comments_and_strings(src);
    let chars: Vec<char> = stripped.chars().collect();
    let mut findings = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut brace_depth = 0usize;
    let mut cfg_test_depth: Option<usize> = None;
    while i < chars.len() {
        match chars[i] {
            '\n' => {
                line += 1;
                i += 1;
                continue;
            }
            '{' => {
                brace_depth += 1;
                i += 1;
                continue;
            }
            '}' => {
                brace_depth = brace_depth.saturating_sub(1);
                if cfg_test_depth.is_some_and(|d| brace_depth < d) {
                    cfg_test_depth = None;
                }
                i += 1;
                continue;
            }
            _ => {}
        }
        if matches_at(&chars, i, "#[cfg(test)") {
            cfg_test_depth = Some(brace_depth);
            i += 1;
            continue;
        }
        // Skip whole `impl … Clock for …` blocks: Clock implementations
        // are the designated owners of the real time source.
        let at_impl = matches_at(&chars, i, "impl")
            && (i == 0 || chars.get(i - 1).map_or(true, |c| !c.is_alphanumeric() && *c != '_'))
            && chars.get(i + 4).is_some_and(|c| !c.is_alphanumeric() && *c != '_');
        if at_impl {
            let mut j = i;
            let mut header = String::new();
            while j < chars.len() && chars[j] != '{' && chars[j] != ';' {
                header.push(chars[j]);
                j += 1;
            }
            if chars.get(j) == Some(&'{') && header.contains("Clock for") {
                // Walk past the whole impl block.
                let mut depth = 0usize;
                let mut k = j;
                while k < chars.len() {
                    match chars.get(k) {
                        Some('\n') => line += 1,
                        Some('{') => depth += 1,
                        Some('}') => {
                            depth = depth.saturating_sub(1);
                            if depth == 0 {
                                k += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                line += header.matches('\n').count();
                i = k;
                continue;
            }
            line += header.matches('\n').count();
            i = j;
            continue;
        }
        let mut matched = None;
        if cfg_test_depth.is_none()
            && (i == 0 || chars.get(i - 1).map_or(true, |c| !c.is_alphanumeric() && *c != '_'))
        {
            matched = BANNED.iter().find(|needle| matches_at(&chars, i, needle));
        }
        if let Some(needle) = matched {
            findings.push(Finding {
                rule: Rule::ClockDiscipline,
                file: file.to_string(),
                line,
                message: format!(
                    "{needle} read outside a Clock implementation; thread a \
                     lake_core::retry::Clock so the path replays under ManualClock"
                ),
            });
            i += needle.chars().count();
        } else {
            i += 1;
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_time_reads_are_flagged() {
        let src = r#"
pub fn timed() -> u64 {
    let t0 = std::time::Instant::now();
    let _wall = std::time::SystemTime::now();
    t0.elapsed().as_micros() as u64
}
"#;
        let f = scan_source("f.rs", src);
        assert_eq!(f.len(), 2, "{f:#?}");
        assert!(f.iter().all(|x| x.rule == Rule::ClockDiscipline));
        assert_eq!((f[0].line, f[1].line), (3, 4));
        assert!(f[0].message.contains("Instant::now"), "{}", f[0].message);
        assert!(f[1].message.contains("SystemTime::now"), "{}", f[1].message);
    }

    #[test]
    fn clock_impls_are_the_designated_owners() {
        let src = r#"
impl Clock for SystemClock {
    fn now_micros(&self) -> u64 {
        let start = START.get_or_init(std::time::Instant::now);
        u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}
impl retry::Clock for OtherClock {
    fn now_micros(&self) -> u64 { Instant::now().elapsed().as_micros() as u64 }
}
"#;
        assert!(scan_source("f.rs", src).is_empty(), "{:#?}", scan_source("f.rs", src));
    }

    #[test]
    fn non_clock_impls_are_still_scanned() {
        let src = r#"
impl Profiler for Wall {
    fn profile(&self) -> u64 { Instant::now().elapsed().as_micros() as u64 }
}
"#;
        assert_eq!(scan_source("f.rs", src).len(), 1);
    }

    #[test]
    fn cfg_test_regions_and_lookalike_idents_are_exempt() {
        let src = r#"
#[cfg(test)]
mod tests {
    fn t() { let _ = std::time::Instant::now(); }
}
fn f() { let _ = MyInstant::now(); }
// Instant::now() in a comment
fn g() { let s = "Instant::now()"; }
"#;
        assert!(scan_source("f.rs", src).is_empty(), "{:#?}", scan_source("f.rs", src));
    }
}
