//! Hand-rolled Rust token scanner for the panic-freedom lint.
//!
//! No `syn` (the build environment has no crates.io access), so this is a
//! character-level scanner that understands just enough Rust lexing to be
//! trustworthy: line and (nested) block comments, string literals with
//! escapes, raw strings (`r"…"`, `r#"…"#`, any hash depth), byte and char
//! literals, and lifetimes (so `'a` is not mistaken for an unterminated
//! char). On top of the token stream it finds panic-prone constructs:
//!
//! - `.unwrap()` / `.expect(…)` method calls
//! - `panic!`, `todo!`, `unimplemented!`, `unreachable!` macro invocations
//! - slice/array indexing `expr[…]` — only reported for files the caller
//!   marks as hot paths, where an out-of-bounds abort would break an ACID
//!   guarantee rather than a test
//!
//! Code under `#[cfg(test)]` is exempt: the attribute's following item
//! (block-delimited or `;`-terminated) is skipped entirely.

use crate::{Finding, Rule};

/// One lexed token the lint logic cares about.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    /// Identifier or keyword, with its 1-based line.
    Ident(String, usize),
    /// Any single punctuation character, with its 1-based line.
    Punct(char, usize),
}

/// Lex `src` into idents and punctuation, dropping comments, strings,
/// char literals, lifetimes, and numeric literals.
fn lex(src: &str) -> Vec<Tok> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                let mut depth = 1;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            '"' => {
                i = skip_string(&chars, i, &mut line);
            }
            'r' | 'b' if is_raw_or_byte_string(&chars, i) => {
                i = skip_raw_or_byte(&chars, i, &mut line);
            }
            '\'' => {
                i = skip_char_or_lifetime(&chars, i, &mut line);
            }
            _ if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push(Tok::Ident(chars[start..i].iter().collect(), line));
            }
            _ if c.is_ascii_digit() => {
                // Numeric literal (incl. suffixes and underscores); skip so
                // `0..2usize` never yields an `usize` ident token.
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.')
                {
                    // `0..n`: the range dots belong to punctuation, not the number.
                    if chars[i] == '.' && chars.get(i + 1) == Some(&'.') {
                        break;
                    }
                    i += 1;
                }
            }
            _ if c.is_whitespace() => {
                i += 1;
            }
            _ => {
                toks.push(Tok::Punct(c, line));
                i += 1;
            }
        }
    }
    toks
}

/// Skip a `"…"` literal starting at `i`; returns the index past the close.
fn skip_string(chars: &[char], mut i: usize, line: &mut usize) -> usize {
    i += 1; // opening quote
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Does `r…`/`b…` at `i` begin a raw string, byte string, or byte char?
fn is_raw_or_byte_string(chars: &[char], i: usize) -> bool {
    // Reject when part of a longer identifier (e.g. `for r in xs`).
    if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
        return false;
    }
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j) == Some(&'\'') {
            return true; // byte char b'x'
        }
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
        while chars.get(j) == Some(&'#') {
            j += 1;
        }
    }
    chars.get(j) == Some(&'"')
}

/// Skip `r"…"`, `r#"…"#`, `b"…"`, `br##"…"##`, or `b'…'` starting at `i`.
fn skip_raw_or_byte(chars: &[char], mut i: usize, line: &mut usize) -> usize {
    if chars[i] == 'b' {
        i += 1;
        if chars.get(i) == Some(&'\'') {
            // Byte char literal: b'x' or b'\n'.
            i += 1;
            if chars.get(i) == Some(&'\\') {
                i += 1;
            }
            i += 1;
            if chars.get(i) == Some(&'\'') {
                i += 1;
            }
            return i;
        }
    }
    let mut hashes = 0;
    if chars.get(i) == Some(&'r') {
        i += 1;
        while chars.get(i) == Some(&'#') {
            hashes += 1;
            i += 1;
        }
        if chars.get(i) == Some(&'"') {
            i += 1;
            // Scan for `"` followed by `hashes` hashes.
            while i < chars.len() {
                if chars[i] == '\n' {
                    *line += 1;
                }
                if chars[i] == '"' && chars[i + 1..].iter().take(hashes).filter(|&&h| h == '#').count() == hashes {
                    return i + 1 + hashes;
                }
                i += 1;
            }
            return i;
        }
        return i;
    }
    // Plain byte string b"…": same rules as a normal string.
    if chars.get(i) == Some(&'"') {
        return skip_string(chars, i, line);
    }
    i
}

/// Skip a char literal `'x'`/`'\n'`, or recognize a lifetime `'a` and
/// consume just the tick + identifier.
fn skip_char_or_lifetime(chars: &[char], i: usize, line: &mut usize) -> usize {
    // Lifetime: 'ident not closed by a quote ('a, 'static, '_).
    let mut j = i + 1;
    if j < chars.len() && (chars[j].is_alphabetic() || chars[j] == '_') {
        while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
            j += 1;
        }
        if chars.get(j) != Some(&'\'') {
            return j; // lifetime, no closing tick
        }
        return j + 1; // char literal like 'a'
    }
    // Escaped or punctuation char literal.
    if chars.get(j) == Some(&'\\') {
        j += 2;
        // Unicode escapes: '\u{1F600}'.
        if chars.get(j - 1) == Some(&'u') && chars.get(j) == Some(&'{') {
            while j < chars.len() && chars[j] != '}' {
                j += 1;
            }
            j += 1;
        }
    } else {
        if chars.get(j) == Some(&'\n') {
            *line += 1;
        }
        j += 1;
    }
    if chars.get(j) == Some(&'\'') {
        j += 1;
    }
    j
}

/// Macro names whose invocation aborts the process.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented", "unreachable"];

/// Scan one library source file; `hot_path` additionally enables the
/// slice-indexing rule. `file` is the repo-relative path used in findings.
pub fn scan_source(file: &str, src: &str, hot_path: bool) -> Vec<Finding> {
    let toks = lex(src);
    let mut findings = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // `#[cfg(test)]` — skip the attribute and the item that follows.
        if is_cfg_test_at(&toks, i) {
            i = skip_attr_and_item(&toks, i);
            continue;
        }
        match &toks[i] {
            Tok::Ident(name, line) => {
                let prev_dot =
                    i > 0 && matches!(&toks[i - 1], Tok::Punct('.', _));
                let next_bang =
                    matches!(toks.get(i + 1), Some(Tok::Punct('!', _)));
                let next_paren = matches!(toks.get(i + 1), Some(Tok::Punct('(', _)));
                if prev_dot && next_paren && (name == "unwrap" || name == "expect") {
                    findings.push(Finding {
                        rule: Rule::Panic,
                        file: file.to_string(),
                        line: *line,
                        message: format!(".{name}() can abort; return a LakeError instead"),
                    });
                } else if next_bang && PANIC_MACROS.contains(&name.as_str()) {
                    findings.push(Finding {
                        rule: Rule::Panic,
                        file: file.to_string(),
                        line: *line,
                        message: format!("{name}! aborts the process in library code"),
                    });
                }
                i += 1;
            }
            Tok::Punct('[', line) => {
                if hot_path && is_index_expression(&toks, i) {
                    findings.push(Finding {
                        rule: Rule::Indexing,
                        file: file.to_string(),
                        line: *line,
                        message: "slice indexing on a hot path can abort; use .get()".to_string(),
                    });
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    findings
}

/// Is `toks[i..]` exactly `# [ cfg ( test ) ]` (also matching
/// `cfg(any(test, …))` conservatively when `test` is the first argument)?
fn is_cfg_test_at(toks: &[Tok], i: usize) -> bool {
    let pat = |k: usize| toks.get(i + k);
    matches!(pat(0), Some(Tok::Punct('#', _)))
        && matches!(pat(1), Some(Tok::Punct('[', _)))
        && matches!(pat(2), Some(Tok::Ident(s, _)) if s == "cfg")
        && matches!(pat(3), Some(Tok::Punct('(', _)))
        && matches!(pat(4), Some(Tok::Ident(s, _)) if s == "test")
}

/// Skip an attribute starting at `#` and the single item that follows it
/// (through its matching `{…}` block or terminating `;`).
fn skip_attr_and_item(toks: &[Tok], mut i: usize) -> usize {
    // Consume the attribute's [...] itself.
    let mut depth = 0;
    while i < toks.len() {
        match &toks[i] {
            Tok::Punct('[', _) => depth += 1,
            Tok::Punct(']', _) => {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            _ => {}
        }
        i += 1;
    }
    // Any further attributes on the same item.
    while matches!(toks.get(i), Some(Tok::Punct('#', _))) {
        let mut d = 0;
        while i < toks.len() {
            match &toks[i] {
                Tok::Punct('[', _) => d += 1,
                Tok::Punct(']', _) => {
                    d -= 1;
                    if d == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    // Consume the item: to the first `{` then its matching `}`, or a `;`
    // that appears before any block (e.g. `#[cfg(test)] use foo;`).
    let mut brace = 0;
    while i < toks.len() {
        match &toks[i] {
            Tok::Punct('{', _) => brace += 1,
            Tok::Punct('}', _) => {
                brace -= 1;
                if brace == 0 {
                    return i + 1;
                }
            }
            Tok::Punct(';', _) if brace == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

/// Heuristic: a `[` opens an *index expression* when the preceding token
/// could end an expression (identifier, `)`, or `]`) and is not a macro
/// bang or attribute hash. Type positions (`&[u8]`, `[T; 4]`) follow
/// punctuation and are excluded.
fn is_index_expression(toks: &[Tok], i: usize) -> bool {
    if i == 0 {
        return false;
    }
    match &toks[i - 1] {
        Tok::Ident(name, _) => {
            // `vec![…]`-style macro brackets arrive as ident + `!` + `[`,
            // so the direct predecessor here is an ident only for real
            // postfix indexing — except type paths like `Vec<[u8; 4]>`
            // never place an ident directly before `[`.
            !matches!(
                name.as_str(),
                "mut" | "dyn" | "impl" | "ref" | "return" | "in" | "as" | "let" | "for" | "if"
                    | "else" | "match" | "while" | "loop" | "move" | "where" | "unsafe" | "const"
                    | "static" | "break" | "continue" | "box"
            )
        }
        Tok::Punct(')', _) | Tok::Punct(']', _) => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count(src: &str, hot: bool) -> usize {
        scan_source("f.rs", src, hot).len()
    }

    #[test]
    fn finds_unwrap_and_expect_calls() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\nfn g(x: Option<u8>) -> u8 { x.expect(\"boom\") }\n";
        let f = scan_source("f.rs", src, false);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].line, 1);
        assert_eq!(f[1].line, 2);
    }

    #[test]
    fn finds_panic_family_macros() {
        let src = "fn f() { panic!(\"x\") }\nfn g() { todo!() }\nfn h() { unimplemented!() }\nfn i() { unreachable!() }\n";
        assert_eq!(count(src, false), 4);
    }

    #[test]
    fn ignores_strings_comments_and_identifier_lookalikes() {
        let src = r##"
// a comment with .unwrap() and panic!
/* block /* nested */ with .expect("x") */
fn f() {
    let s = "contains .unwrap() and panic!(oops)";
    let r = r#"raw with .unwrap()"#;
    let b = b"bytes .unwrap()";
    let c = '"';
    let lt: &'static str = "lifetime then string with .unwrap()";
    let ok = x.unwrap_or(3);
    let ok2 = x.unwrap_or_else(|| 4);
    let ok3 = expectations(5);
}
"##;
        assert_eq!(count(src, false), 0, "{:?}", scan_source("f.rs", src, false));
    }

    #[test]
    fn cfg_test_modules_and_fns_are_exempt() {
        let src = r#"
fn lib() -> u8 { 1 }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); panic!("fine in tests"); }
}
"#;
        assert_eq!(count(src, false), 0);
        let attr_fn = r#"
#[cfg(test)]
fn helper() { Some(1).unwrap(); }
fn lib() { Some(1).unwrap(); }
"#;
        assert_eq!(count(attr_fn, false), 1);
    }

    #[test]
    fn indexing_only_flagged_on_hot_paths() {
        let src = "fn f(v: &[u8], i: usize) -> u8 { v[i] }\n";
        assert_eq!(count(src, false), 0);
        let f = scan_source("f.rs", src, true);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::Indexing);
    }

    #[test]
    fn indexing_heuristic_skips_types_attrs_and_macros() {
        let src = r#"
#[derive(Debug)]
struct S { a: [u8; 4] }
fn f(x: &[u8]) -> Vec<u8> { vec![1, 2] }
fn g() -> [u8; 2] { [0, 1] }
"#;
        assert_eq!(count(src, true), 0, "{:?}", scan_source("f.rs", src, true));
        // …but chained and call-result indexing is caught.
        assert_eq!(count("fn f() { g()[0]; }", true), 1);
        assert_eq!(count("fn f() { a[0][1]; }", true), 2);
    }

    #[test]
    fn numeric_suffixes_do_not_confuse_ranges() {
        assert_eq!(count("fn f() { for i in 0..2usize { let _ = i; } }", false), 0);
    }
}
