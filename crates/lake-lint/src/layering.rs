//! Architecture-layering checker: enforces the survey's tier DAG.
//!
//! The paper's Fig. 2 architecture maps onto the workspace as four tiers:
//!
//! | tier | role                              | crates |
//! |------|-----------------------------------|--------|
//! | 0    | core model                        | `lake-core` |
//! | 1    | storage & primitives              | `lake-formats`, `lake-store`, `lake-index`, `lake-ml` |
//! | 2    | ingestion / maintenance / exploration functions | `lake-ingest`, `lake-discovery`, `lake-organize`, `lake-integrate`, `lake-maintain`, `lake-query`, `lake-house`, `lake-sched` |
//! | 3    | facade & tooling                  | `lake`, `lake-server`, `lake-bench`, `lake-lint` |
//!
//! A crate may depend only on crates of its own tier or below (same-tier
//! edges are allowed — cargo already guarantees acyclicity); any edge that
//! *inverts* a tier is a violation. Layering violations are never
//! baselinable: they fail the check immediately.
//!
//! One exception to the tier DAG: cross-cutting **leaf utility** crates
//! ([`LEAF_UTILITIES`], e.g. `lake-obs`). These sit outside the Fig. 2
//! pipeline and may be imported from *any* tier, but in exchange may
//! themselves depend only on tier-0 crates (or other leaf utilities), so
//! an edge through them can never smuggle in a tier inversion.
//!
//! The parser is a deliberately small hand-rolled TOML-subset reader —
//! enough for the `[dependencies]` tables cargo manifests actually use.

use std::path::Path;

use crate::{Finding, Rule};

/// Tier assignment for every first-party crate. New crates must be added
/// here — the checker fails on unknown `lake*` crates so the map cannot
/// silently rot.
pub const TIERS: &[(&str, u8)] = &[
    ("lake-core", 0),
    ("lake-formats", 1),
    ("lake-store", 1),
    ("lake-index", 1),
    ("lake-ml", 1),
    ("lake-ingest", 2),
    ("lake-discovery", 2),
    ("lake-organize", 2),
    ("lake-integrate", 2),
    ("lake-maintain", 2),
    ("lake-query", 2),
    ("lake-house", 2),
    ("lake-sched", 2),
    ("lake-server", 3),
    ("lake", 3),
    ("lake-bench", 3),
    ("lake-lint", 3),
];

/// Cross-cutting leaf utility crates: importable from any tier, allowed
/// to depend only on tier-0 crates and other leaf utilities.
pub const LEAF_UTILITIES: &[&str] = &["lake-obs"];

/// Is `name` a leaf utility crate (exempt from the tier DAG as a
/// dependency, but restricted to tier-0 dependencies itself)?
pub fn is_leaf_utility(name: &str) -> bool {
    LEAF_UTILITIES.contains(&name)
}

/// Look up a crate's tier.
pub fn tier_of(name: &str) -> Option<u8> {
    TIERS.iter().find(|(n, _)| *n == name).map(|&(_, t)| t)
}

/// The `[dependencies]` of one parsed manifest.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Package name from `[package] name = …`.
    pub name: String,
    /// Names listed under `[dependencies]` (dev/build deps excluded:
    /// tests and tooling may reach across tiers).
    pub dependencies: Vec<String>,
}

/// Parse the subset of a `Cargo.toml` the layering check needs.
///
/// Handles `[package]`/`[dependencies]` tables, inline dep specs
/// (`foo = { workspace = true }`), and dotted headers
/// (`[dependencies.foo]`). Unknown sections are ignored.
pub fn parse_manifest(text: &str) -> Manifest {
    #[derive(PartialEq)]
    enum Section {
        Package,
        Dependencies,
        Other,
    }
    let mut section = Section::Other;
    let mut name = String::new();
    let mut dependencies = Vec::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            let header = header.trim();
            if header == "package" {
                section = Section::Package;
            } else if header == "dependencies" {
                section = Section::Dependencies;
            } else if let Some(dep) = header.strip_prefix("dependencies.") {
                // `[dependencies.foo]` declares foo directly.
                dependencies.push(dep.trim().to_string());
                section = Section::Other;
            } else {
                // Including [dev-dependencies], [build-dependencies],
                // [target.*], [lints], …
                section = Section::Other;
            }
            continue;
        }
        match section {
            Section::Package => {
                if let Some(v) = line.strip_prefix("name") {
                    let v = v.trim_start();
                    if let Some(v) = v.strip_prefix('=') {
                        name = v.trim().trim_matches('"').to_string();
                    }
                }
            }
            Section::Dependencies => {
                if let Some(eq) = line.find('=') {
                    let key = line[..eq].trim();
                    // `foo.workspace = true` also declares foo.
                    let key = key.split('.').next().unwrap_or(key);
                    if !key.is_empty() {
                        dependencies.push(key.trim_matches('"').to_string());
                    }
                }
            }
            Section::Other => {}
        }
    }
    Manifest { name, dependencies }
}

/// Check one manifest's dependency edges against the tier DAG.
/// `manifest_path` is the repo-relative path used in findings.
pub fn check_manifest(manifest: &Manifest, manifest_path: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    if is_leaf_utility(&manifest.name) {
        // Leaf utilities are importable from anywhere precisely because
        // their own reach is capped at tier 0.
        for dep in &manifest.dependencies {
            if !dep.starts_with("lake") || is_leaf_utility(dep) {
                continue;
            }
            if tier_of(dep) != Some(0) {
                findings.push(Finding {
                    rule: Rule::Layering,
                    file: manifest_path.to_string(),
                    line: 1,
                    message: format!(
                        "leaf utility `{}` may only depend on tier-0 crates, not `{dep}`",
                        manifest.name
                    ),
                });
            }
        }
        return findings;
    }
    let Some(own_tier) = tier_of(&manifest.name) else {
        if manifest.name.starts_with("lake") {
            findings.push(Finding {
                rule: Rule::Layering,
                file: manifest_path.to_string(),
                line: 1,
                message: format!(
                    "crate `{}` has no tier in lake-lint's TIERS map; add it",
                    manifest.name
                ),
            });
        }
        return findings;
    };
    for dep in &manifest.dependencies {
        if !dep.starts_with("lake") {
            continue; // vendored/external stand-ins are exempt
        }
        if is_leaf_utility(dep) {
            continue; // importable from any tier
        }
        match tier_of(dep) {
            Some(dep_tier) if dep_tier > own_tier => findings.push(Finding {
                rule: Rule::Layering,
                file: manifest_path.to_string(),
                line: 1,
                message: format!(
                    "tier inversion: `{}` (tier {}) depends on `{}` (tier {})",
                    manifest.name, own_tier, dep, dep_tier
                ),
            }),
            Some(_) => {}
            None => findings.push(Finding {
                rule: Rule::Layering,
                file: manifest_path.to_string(),
                line: 1,
                message: format!(
                    "dependency `{dep}` of `{}` has no tier in lake-lint's TIERS map",
                    manifest.name
                ),
            }),
        }
    }
    findings
}

/// Parse and check a manifest file on disk.
pub fn check_manifest_file(path: &Path, rel: &str) -> std::io::Result<Vec<Finding>> {
    let text = std::fs::read_to_string(path)?;
    Ok(check_manifest(&parse_manifest(&text), rel))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_workspace_style_manifest() {
        let m = parse_manifest(
            r#"
[package]
name = "lake-query"
version.workspace = true

[dependencies]
lake-core = { workspace = true }
lake-store = { workspace = true }
rand = { workspace = true }

[dev-dependencies]
proptest = { workspace = true }

[dependencies.lake-index]
workspace = true
"#,
        );
        assert_eq!(m.name, "lake-query");
        assert_eq!(m.dependencies, vec!["lake-core", "lake-store", "rand", "lake-index"]);
    }

    #[test]
    fn clean_edges_pass_and_same_tier_is_allowed() {
        let m = Manifest {
            name: "lake-store".into(),
            dependencies: vec!["lake-core".into(), "lake-formats".into()],
        };
        assert!(check_manifest(&m, "x").is_empty());
    }

    #[test]
    fn tier_inversion_is_flagged() {
        let m = Manifest {
            name: "lake-core".into(),
            dependencies: vec!["lake-query".into()],
        };
        let f = check_manifest(&m, "crates/lake-core/Cargo.toml");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("tier inversion"), "{}", f[0].message);
    }

    #[test]
    fn unknown_lake_crates_fail_loudly() {
        let unknown_self = Manifest { name: "lake-new".into(), dependencies: vec![] };
        assert_eq!(check_manifest(&unknown_self, "x").len(), 1);
        let unknown_dep = Manifest {
            name: "lake".into(),
            dependencies: vec!["lake-mystery".into()],
        };
        assert_eq!(check_manifest(&unknown_dep, "x").len(), 1);
    }

    #[test]
    fn leaf_utility_is_importable_from_every_tier() {
        for importer in ["lake-store", "lake-house", "lake-query", "lake", "lake-bench"] {
            let m = Manifest {
                name: importer.into(),
                dependencies: vec!["lake-core".into(), "lake-obs".into()],
            };
            assert!(check_manifest(&m, "x").is_empty(), "{importer} may import lake-obs");
        }
    }

    #[test]
    fn leaf_utility_reach_is_capped_at_tier_zero() {
        let ok = Manifest {
            name: "lake-obs".into(),
            dependencies: vec!["lake-core".into(), "parking_lot".into()],
        };
        assert!(check_manifest(&ok, "x").is_empty());
        let bad = Manifest {
            name: "lake-obs".into(),
            dependencies: vec!["lake-store".into()],
        };
        let f = check_manifest(&bad, "crates/lake-obs/Cargo.toml");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("tier-0"), "{}", f[0].message);
    }

    #[test]
    fn dev_dependencies_may_cross_tiers() {
        let m = parse_manifest(
            "[package]\nname = \"lake-core\"\n[dev-dependencies]\nlake-query = { workspace = true }\n",
        );
        assert!(m.dependencies.is_empty());
        assert!(check_manifest(&m, "x").is_empty());
    }
}
