//! Durability-discipline lint: journal paths must fsync what they write.
//!
//! The server's ack contract (DESIGN.md §16) is "acked means on disk":
//! a mutation's journal frame is `write_all`-ed *and* fsynced before the
//! 200 reaches the socket. A `write_all` that is never followed by
//! `sync_all`/`sync_data` keeps the contract true in every functional
//! test — the page cache serves the bytes back — and silently false on
//! power loss, which is exactly the failure the WAL exists to survive.
//! No test short of pulling the plug catches it, so the discipline has
//! to be structural.
//!
//! Scope: library sources whose repo path contains `wal` or `durable`
//! (the journal and its fsync helpers). In every `fn` of a scoped file,
//! a `.write_all(` call must be followed — later in the same function,
//! closures included — by a `.sync_all(` or `.sync_data(` call. Writes
//! that are deliberately volatile (say, a scratch file recreated on
//! boot) carry a `// lint: durability <why>` justification on the same
//! or preceding line. `#[cfg(test)]` regions are exempt, like every
//! other source lint; tests, benches, and bins are exempt via the
//! shared directory walk.

use crate::errors::{matches_at, strip_comments_and_strings};
use crate::{Finding, Rule};

/// One function body being tracked: the brace depth of its body and the
/// lines of `.write_all(` calls not yet followed by a sync.
struct FnFrame {
    body_depth: usize,
    pending: Vec<usize>,
}

/// Does this repo-relative path carry journal/fsync code the rule owns?
fn in_scope(file: &str) -> bool {
    file.contains("wal") || file.contains("durable")
}

/// Scan one library source file for unsynced journal writes.
pub fn scan_source(file: &str, src: &str) -> Vec<Finding> {
    if !in_scope(file) {
        return Vec::new();
    }
    let raw_lines: Vec<&str> = src.lines().collect();
    let stripped = strip_comments_and_strings(src);
    let chars: Vec<char> = stripped.chars().collect();
    let mut findings = Vec::new();
    let mut frames: Vec<FnFrame> = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut brace_depth = 0usize;
    let mut cfg_test_depth: Option<usize> = None;
    // Set while between a `fn` keyword and its body `{` (or a bodyless
    // `;`); tracks paren/bracket nesting so a `;` inside `[u8; 12]` in
    // the signature does not end the header early.
    let mut fn_header: Option<usize> = None;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
                continue;
            }
            '{' => {
                brace_depth += 1;
                if fn_header.take().is_some() {
                    frames.push(FnFrame { body_depth: brace_depth, pending: Vec::new() });
                }
                i += 1;
                continue;
            }
            '}' => {
                brace_depth = brace_depth.saturating_sub(1);
                if cfg_test_depth.is_some_and(|d| brace_depth < d) {
                    cfg_test_depth = None;
                }
                while frames.last().is_some_and(|f| brace_depth < f.body_depth) {
                    if let Some(frame) = frames.pop() {
                        for at in frame.pending {
                            findings.push(Finding {
                                rule: Rule::Durability,
                                file: file.to_string(),
                                line: at,
                                message: "write_all on a journal path with no following \
                                          sync_all/sync_data in this fn; the ack contract \
                                          needs the bytes on disk, not in the page cache — \
                                          fsync or justify with `// lint: durability <why>`"
                                    .to_string(),
                            });
                        }
                    }
                }
                i += 1;
                continue;
            }
            '(' | '[' => {
                if let Some(d) = fn_header.as_mut() {
                    *d += 1;
                }
            }
            ')' | ']' => {
                if let Some(d) = fn_header.as_mut() {
                    *d = d.saturating_sub(1);
                }
            }
            ';' => {
                if fn_header == Some(0) {
                    // Bodyless declaration (trait method, extern).
                    fn_header = None;
                }
            }
            _ => {}
        }
        if matches_at(&chars, i, "#[cfg(test)") {
            cfg_test_depth = Some(brace_depth);
            i += 1;
            continue;
        }
        let boundary =
            i == 0 || chars.get(i - 1).map_or(true, |p| !p.is_alphanumeric() && *p != '_');
        if boundary
            && matches_at(&chars, i, "fn")
            && chars.get(i + 2).is_some_and(|n| !n.is_alphanumeric() && *n != '_')
        {
            fn_header = Some(0);
            i += 2;
            continue;
        }
        if cfg_test_depth.is_none() {
            if matches_at(&chars, i, ".write_all(") {
                if !has_durability_justification(&raw_lines, line) {
                    if let Some(frame) = frames.last_mut() {
                        frame.pending.push(line);
                    }
                }
                i += ".write_all(".len();
                continue;
            }
            if matches_at(&chars, i, ".sync_all(") || matches_at(&chars, i, ".sync_data(") {
                if let Some(frame) = frames.last_mut() {
                    frame.pending.clear();
                }
                i += ".sync_".len();
                continue;
            }
        }
        i += 1;
    }
    findings
}

/// Is there a `lint: durability` justification on `line` or in the
/// contiguous `//` comment block immediately above it?
fn has_durability_justification(raw_lines: &[&str], line: usize) -> bool {
    let here = raw_lines.get(line.wrapping_sub(1)).copied().unwrap_or("");
    if here.contains("lint: durability") {
        return true;
    }
    let mut ln = line.wrapping_sub(1); // 0-based index of the line above
    while ln > 0 {
        ln -= 1;
        let text = raw_lines.get(ln).copied().unwrap_or("").trim_start();
        if !text.starts_with("//") {
            return false;
        }
        if text.contains("lint: durability") {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsynced_write_is_flagged_synced_write_is_not() {
        let src = r#"
pub fn synced(f: &mut std::fs::File, buf: &[u8]) -> std::io::Result<()> {
    f.write_all(buf)?;
    f.sync_data()
}
pub fn unsynced(f: &mut std::fs::File, buf: &[u8]) -> std::io::Result<()> {
    f.write_all(buf)
}
"#;
        let f = scan_source("crates/x/src/wal.rs", src);
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].rule, Rule::Durability);
        assert_eq!(f[0].line, 7, "{f:#?}");
    }

    #[test]
    fn sync_inside_a_closure_chain_counts() {
        let src = r#"
pub fn chained(f: &std::fs::File, b: &[u8]) -> std::io::Result<()> {
    (&*f).write_all(b).and_then(|()| f.sync_all())
}
"#;
        assert!(scan_source("crates/x/src/durable.rs", src).is_empty());
    }

    #[test]
    fn a_sync_before_the_write_does_not_satisfy_it() {
        let src = r#"
pub fn backwards(f: &mut std::fs::File, b: &[u8]) -> std::io::Result<()> {
    f.sync_data()?;
    f.write_all(b)
}
"#;
        assert_eq!(scan_source("crates/x/src/wal.rs", src).len(), 1);
    }

    #[test]
    fn out_of_scope_files_and_cfg_test_regions_are_exempt() {
        let src = r#"
pub fn unsynced(f: &mut std::fs::File, b: &[u8]) -> std::io::Result<()> {
    f.write_all(b)
}
"#;
        assert!(scan_source("crates/x/src/object.rs", src).is_empty());
        let test_src = r#"
#[cfg(test)]
mod tests {
    fn tear(f: &mut std::fs::File, b: &[u8]) { let _ = f.write_all(b); }
}
"#;
        assert!(scan_source("crates/x/src/wal.rs", test_src).is_empty());
    }

    #[test]
    fn justified_writes_and_array_signatures_are_handled()  {
        let src = r#"
pub fn scratch(f: &mut std::fs::File) -> std::io::Result<()> {
    // lint: durability scratch file, recreated from the journal on boot
    f.write_all(b"tmp")
}
pub fn header(f: &mut std::fs::File, b: [u8; 12]) -> std::io::Result<()> {
    f.write_all(&b)?;
    f.sync_data()
}
"#;
        assert!(scan_source("crates/x/src/wal.rs", src).is_empty());
    }
}
