//! Integration tests: fixture files with known violation counts, plus the
//! workspace-honesty test asserting the checked-in baseline matches what a
//! fresh scan of this repository produces.

use lake_lint::{baseline::Baseline, layering, scanner, Rule};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn panic_fixture_has_expected_findings() {
    let src = fixture("panic_lib.rs");

    // Cold path: panic-family findings only, no indexing.
    let cold = scanner::scan_source("fixtures/panic_lib.rs", &src, false);
    assert_eq!(cold.len(), 5, "{cold:#?}");
    assert!(cold.iter().all(|f| f.rule == Rule::Panic), "{cold:#?}");
    let unwraps = cold.iter().filter(|f| f.message.contains(".unwrap()")).count();
    let expects = cold.iter().filter(|f| f.message.contains(".expect()")).count();
    assert_eq!((unwraps, expects), (2, 1), "{cold:#?}");

    // Hot path: the same five plus two slice-indexing findings.
    let hot = scanner::scan_source("fixtures/panic_lib.rs", &src, true);
    assert_eq!(hot.len(), 7, "{hot:#?}");
    assert_eq!(hot.iter().filter(|f| f.rule == Rule::Indexing).count(), 2, "{hot:#?}");
}

#[test]
fn tier_inversion_fixture_fails_layering() {
    let manifest = layering::parse_manifest(&fixture("tier_invert.toml"));
    assert_eq!(manifest.name, "lake-store");
    // dev-dependency on lake-house must NOT be parsed as an edge.
    assert!(!manifest.dependencies.contains(&"lake-house".to_string()), "{manifest:?}");

    let findings = layering::check_manifest(&manifest, "fixtures/tier_invert.toml");
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, Rule::Layering);
    assert!(findings[0].message.contains("lake-query"), "{}", findings[0].message);

    // Layering findings can never be hidden by a baseline.
    let base = Baseline::from_findings(&findings);
    assert!(base.entries.is_empty());
    let cmp = lake_lint::baseline::compare(&findings, &base);
    assert_eq!(cmp.new_violations.len(), 1);
}

#[test]
fn string_error_fixture_has_expected_findings() {
    let src = fixture("string_error.rs");
    let findings = lake_lint::errors::scan_source("fixtures/string_error.rs", &src);
    assert_eq!(findings.len(), 2, "{findings:#?}");
    assert!(findings.iter().all(|f| f.rule == Rule::ErrorDiscipline));
    assert!(findings[0].message.contains("String"), "{}", findings[0].message);
    assert!(findings[1].message.contains("Box<dyn Error>"), "{}", findings[1].message);
}

#[test]
fn clock_misuse_fixture_has_expected_findings() {
    let src = fixture("clock_misuse.rs");
    let findings = lake_lint::clock::scan_source("fixtures/clock_misuse.rs", &src);
    assert_eq!(findings.len(), 3, "{findings:#?}");
    assert!(findings.iter().all(|f| f.rule == Rule::ClockDiscipline));
    let instants =
        findings.iter().filter(|f| f.message.contains("Instant::now")).count();
    let walls =
        findings.iter().filter(|f| f.message.contains("SystemTime::now")).count();
    assert_eq!((instants, walls), (2, 1), "{findings:#?}");
}

#[test]
fn float_ordering_fixture_has_expected_findings() {
    let src = fixture("float_ordering.rs");
    let findings = lake_lint::float::scan_source("fixtures/float_ordering.rs", &src);
    assert_eq!(findings.len(), 2, "{findings:#?}");
    assert!(findings.iter().all(|f| f.rule == Rule::FloatOrdering));
    assert!(findings[0].message.contains("unwrap"), "{}", findings[0].message);
    assert!(findings[1].message.contains("unwrap_or"), "{}", findings[1].message);
}

#[test]
fn wal_no_sync_fixture_has_expected_findings() {
    let src = fixture("wal_no_sync.rs");
    // The fixture name contains `wal`, so it is in scope…
    let findings = lake_lint::durability::scan_source("fixtures/wal_no_sync.rs", &src);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, Rule::Durability);
    assert!(findings[0].message.contains("sync_all"), "{}", findings[0].message);
    // …while the same source under a non-journal path is not.
    assert!(lake_lint::durability::scan_source("fixtures/other.rs", &src).is_empty());
}

/// Run the workspace-wide concurrency analysis over a single fixture.
fn analyze_fixture(name: &str) -> Vec<lake_lint::Finding> {
    let src = fixture(name);
    let mut conc = lake_lint::concurrency::Analysis::default();
    conc.add_source(&format!("fixtures/{name}"), &src);
    conc.finish()
}

#[test]
fn lock_cycle_fixture_inverts_and_cycles() {
    let findings = analyze_fixture("lock_cycle.rs");
    assert!(findings.iter().all(|f| f.rule == Rule::LockOrder), "{findings:#?}");
    assert_eq!(findings.len(), 3, "{findings:#?}");
    let inversions =
        findings.iter().filter(|f| f.message.contains("inversion")).count();
    let cycles = findings.iter().filter(|f| f.message.contains("cycle")).count();
    assert_eq!((inversions, cycles), (1, 2), "{findings:#?}");

    // Baseline honesty: lock-order findings can never be grandfathered —
    // regeneration drops them, and even a forged entry buys no tolerance.
    let base = Baseline::from_findings(&findings);
    assert!(base.entries.is_empty(), "{base:#?}");
    let mut forged = Baseline::default();
    for f in &findings {
        *forged.entries.entry((f.rule, f.file.clone())).or_insert(0) += 1;
    }
    let cmp = lake_lint::baseline::compare(&findings, &forged);
    assert_eq!(cmp.new_violations.len(), findings.len(), "{cmp:#?}");
}

#[test]
fn guard_across_store_fixture_flags_blocking_calls_only() {
    let findings = analyze_fixture("guard_across_store.rs");
    assert!(findings.iter().all(|f| f.rule == Rule::GuardBlocking), "{findings:#?}");
    assert_eq!(findings.len(), 3, "{findings:#?}");
    for needle in ["put", "retry_with_stats", "send"] {
        assert!(
            findings.iter().any(|f| f.message.contains(&format!("`{needle}`"))),
            "missing {needle}: {findings:#?}"
        );
    }
}

#[test]
fn stray_relaxed_fixture_flags_only_unjustified_site() {
    let findings = analyze_fixture("stray_relaxed.rs");
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, Rule::AtomicOrdering);
    assert_eq!(findings[0].line, 12, "{findings:#?}");
}

/// Rule triggers quoted inside strings, line comments, and block
/// comments must not fire for any of the eight rules.
#[test]
fn quoted_triggers_never_fire() {
    let src = fixture("strings_and_comments.rs");
    let file = "fixtures/strings_and_comments.rs";
    let mut findings = scanner::scan_source(file, &src, true);
    findings.extend(lake_lint::errors::scan_source(file, &src));
    findings.extend(lake_lint::errors::scan_atomicity(file, &src));
    findings.extend(lake_lint::clock::scan_source(file, &src));
    findings.extend(lake_lint::float::scan_source(file, &src));
    findings.extend(analyze_fixture("strings_and_comments.rs"));
    assert!(findings.is_empty(), "{findings:#?}");
}

/// Quote/brace characters in char literals must not open phantom
/// strings or corrupt brace depth: the real `.unwrap()` placed after
/// them must still be the one (and only) finding.
#[test]
fn char_literals_do_not_derail_the_scan() {
    let src = fixture("char_literals.rs");
    let findings = scanner::scan_source("fixtures/char_literals.rs", &src, false);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, Rule::Panic);
    assert!(findings[0].message.contains(".unwrap()"), "{}", findings[0].message);
    assert!(analyze_fixture("char_literals.rs").is_empty());
}

fn workspace_root() -> PathBuf {
    let manifest_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    lake_lint::find_workspace_root(manifest_dir).expect("workspace root above lake-lint")
}

/// The checked-in baseline must exactly match a fresh scan: no new
/// violations (the check would fail) and no stale entries (the baseline
/// would be lying about how much debt remains).
#[test]
fn checked_in_baseline_matches_workspace() {
    let root = workspace_root();
    let findings = lake_lint::scan_workspace(&root).expect("scan");

    let text = std::fs::read_to_string(lake_lint::baseline_path(&root))
        .expect("lake-lint.baseline.toml is checked in");
    let checked_in = Baseline::parse(&text).expect("baseline parses");
    let regenerated = Baseline::from_findings(&findings);
    assert_eq!(
        checked_in, regenerated,
        "lake-lint.baseline.toml is out of date; run `cargo run -p lake-lint -- fix-baseline`"
    );

    let cmp = lake_lint::baseline::compare(&findings, &checked_in);
    assert!(cmp.new_violations.is_empty(), "{:#?}", cmp.new_violations);
    assert!(cmp.stale.is_empty(), "{:#?}", cmp.stale);
}

/// The lakehouse ACID paths were burned down to zero: the baseline must
/// hold no lake-house entries, and a fresh scan must agree.
#[test]
fn lake_house_is_panic_free() {
    let root = workspace_root();
    let findings = lake_lint::scan_workspace(&root).expect("scan");
    let house: Vec<_> =
        findings.iter().filter(|f| f.file.starts_with("crates/lake-house/")).collect();
    assert!(house.is_empty(), "{house:#?}");
}

/// The Table-3 comparator burn-down is complete: no library source
/// forces a `partial_cmp` result open anywhere in the workspace, so the
/// float-ordering rule starts (and must stay) at a zero baseline.
#[test]
fn workspace_has_no_float_ordering_violations() {
    let root = workspace_root();
    let findings = lake_lint::scan_workspace(&root).expect("scan");
    let float: Vec<_> = findings.iter().filter(|f| f.rule == Rule::FloatOrdering).collect();
    assert!(float.is_empty(), "{float:#?}");
}

/// The concurrency rules launch at zero debt and must stay there: no
/// lock-order inversion, no guard held across blocking, and no stray
/// `Ordering::Relaxed` anywhere in the workspace.
#[test]
fn workspace_has_no_concurrency_violations() {
    let root = workspace_root();
    let findings = lake_lint::scan_workspace(&root).expect("scan");
    let conc: Vec<_> = findings
        .iter()
        .filter(|f| {
            matches!(f.rule, Rule::LockOrder | Rule::GuardBlocking | Rule::AtomicOrdering)
        })
        .collect();
    assert!(conc.is_empty(), "{conc:#?}");
}

/// The WAL shipped with its fsync discipline intact: the durability
/// rule launches at a zero baseline and must stay there — every journal
/// write in the workspace is followed by a sync in the same fn.
#[test]
fn workspace_has_no_durability_violations() {
    let root = workspace_root();
    let findings = lake_lint::scan_workspace(&root).expect("scan");
    let dur: Vec<_> = findings.iter().filter(|f| f.rule == Rule::Durability).collect();
    assert!(dur.is_empty(), "{dur:#?}");
}

/// Every first-party manifest respects the tier DAG right now.
#[test]
fn workspace_has_no_layering_violations() {
    let root = workspace_root();
    let findings = lake_lint::scan_workspace(&root).expect("scan");
    let layering: Vec<_> = findings.iter().filter(|f| f.rule == Rule::Layering).collect();
    assert!(layering.is_empty(), "{layering:#?}");
}
