//! Integration tests: fixture files with known violation counts, plus the
//! workspace-honesty test asserting the checked-in baseline matches what a
//! fresh scan of this repository produces.

use lake_lint::{baseline::Baseline, layering, scanner, Rule};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn panic_fixture_has_expected_findings() {
    let src = fixture("panic_lib.rs");

    // Cold path: panic-family findings only, no indexing.
    let cold = scanner::scan_source("fixtures/panic_lib.rs", &src, false);
    assert_eq!(cold.len(), 5, "{cold:#?}");
    assert!(cold.iter().all(|f| f.rule == Rule::Panic), "{cold:#?}");
    let unwraps = cold.iter().filter(|f| f.message.contains(".unwrap()")).count();
    let expects = cold.iter().filter(|f| f.message.contains(".expect()")).count();
    assert_eq!((unwraps, expects), (2, 1), "{cold:#?}");

    // Hot path: the same five plus two slice-indexing findings.
    let hot = scanner::scan_source("fixtures/panic_lib.rs", &src, true);
    assert_eq!(hot.len(), 7, "{hot:#?}");
    assert_eq!(hot.iter().filter(|f| f.rule == Rule::Indexing).count(), 2, "{hot:#?}");
}

#[test]
fn tier_inversion_fixture_fails_layering() {
    let manifest = layering::parse_manifest(&fixture("tier_invert.toml"));
    assert_eq!(manifest.name, "lake-store");
    // dev-dependency on lake-house must NOT be parsed as an edge.
    assert!(!manifest.dependencies.contains(&"lake-house".to_string()), "{manifest:?}");

    let findings = layering::check_manifest(&manifest, "fixtures/tier_invert.toml");
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, Rule::Layering);
    assert!(findings[0].message.contains("lake-query"), "{}", findings[0].message);

    // Layering findings can never be hidden by a baseline.
    let base = Baseline::from_findings(&findings);
    assert!(base.entries.is_empty());
    let cmp = lake_lint::baseline::compare(&findings, &base);
    assert_eq!(cmp.new_violations.len(), 1);
}

#[test]
fn string_error_fixture_has_expected_findings() {
    let src = fixture("string_error.rs");
    let findings = lake_lint::errors::scan_source("fixtures/string_error.rs", &src);
    assert_eq!(findings.len(), 2, "{findings:#?}");
    assert!(findings.iter().all(|f| f.rule == Rule::ErrorDiscipline));
    assert!(findings[0].message.contains("String"), "{}", findings[0].message);
    assert!(findings[1].message.contains("Box<dyn Error>"), "{}", findings[1].message);
}

#[test]
fn clock_misuse_fixture_has_expected_findings() {
    let src = fixture("clock_misuse.rs");
    let findings = lake_lint::clock::scan_source("fixtures/clock_misuse.rs", &src);
    assert_eq!(findings.len(), 3, "{findings:#?}");
    assert!(findings.iter().all(|f| f.rule == Rule::ClockDiscipline));
    let instants =
        findings.iter().filter(|f| f.message.contains("Instant::now")).count();
    let walls =
        findings.iter().filter(|f| f.message.contains("SystemTime::now")).count();
    assert_eq!((instants, walls), (2, 1), "{findings:#?}");
}

#[test]
fn float_ordering_fixture_has_expected_findings() {
    let src = fixture("float_ordering.rs");
    let findings = lake_lint::float::scan_source("fixtures/float_ordering.rs", &src);
    assert_eq!(findings.len(), 2, "{findings:#?}");
    assert!(findings.iter().all(|f| f.rule == Rule::FloatOrdering));
    assert!(findings[0].message.contains("unwrap"), "{}", findings[0].message);
    assert!(findings[1].message.contains("unwrap_or"), "{}", findings[1].message);
}

fn workspace_root() -> PathBuf {
    let manifest_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    lake_lint::find_workspace_root(manifest_dir).expect("workspace root above lake-lint")
}

/// The checked-in baseline must exactly match a fresh scan: no new
/// violations (the check would fail) and no stale entries (the baseline
/// would be lying about how much debt remains).
#[test]
fn checked_in_baseline_matches_workspace() {
    let root = workspace_root();
    let findings = lake_lint::scan_workspace(&root).expect("scan");

    let text = std::fs::read_to_string(lake_lint::baseline_path(&root))
        .expect("lake-lint.baseline.toml is checked in");
    let checked_in = Baseline::parse(&text).expect("baseline parses");
    let regenerated = Baseline::from_findings(&findings);
    assert_eq!(
        checked_in, regenerated,
        "lake-lint.baseline.toml is out of date; run `cargo run -p lake-lint -- fix-baseline`"
    );

    let cmp = lake_lint::baseline::compare(&findings, &checked_in);
    assert!(cmp.new_violations.is_empty(), "{:#?}", cmp.new_violations);
    assert!(cmp.stale.is_empty(), "{:#?}", cmp.stale);
}

/// The lakehouse ACID paths were burned down to zero: the baseline must
/// hold no lake-house entries, and a fresh scan must agree.
#[test]
fn lake_house_is_panic_free() {
    let root = workspace_root();
    let findings = lake_lint::scan_workspace(&root).expect("scan");
    let house: Vec<_> =
        findings.iter().filter(|f| f.file.starts_with("crates/lake-house/")).collect();
    assert!(house.is_empty(), "{house:#?}");
}

/// The Table-3 comparator burn-down is complete: no library source
/// forces a `partial_cmp` result open anywhere in the workspace, so the
/// float-ordering rule starts (and must stay) at a zero baseline.
#[test]
fn workspace_has_no_float_ordering_violations() {
    let root = workspace_root();
    let findings = lake_lint::scan_workspace(&root).expect("scan");
    let float: Vec<_> = findings.iter().filter(|f| f.rule == Rule::FloatOrdering).collect();
    assert!(float.is_empty(), "{float:#?}");
}

/// Every first-party manifest respects the tier DAG right now.
#[test]
fn workspace_has_no_layering_violations() {
    let root = workspace_root();
    let findings = lake_lint::scan_workspace(&root).expect("scan");
    let layering: Vec<_> = findings.iter().filter(|f| f.rule == Rule::Layering).collect();
    assert!(layering.is_empty(), "{layering:#?}");
}
