//! Fixture: lock guards held across blocking calls (rule 7), plus the
//! release patterns that must stay silent.

use std::sync::Mutex;

pub struct Cache {
    state: Mutex<u64>,
    store: MemoryStore,
}

impl Cache {
    pub fn bad_store_io(&self, key: &str, data: &[u8]) {
        let g = self.state.lock();
        self.store.put(key, data); // guard live across store I/O
        drop(g);
    }

    pub fn bad_retry(&self, stats: &mut RetryStats) {
        let g = self.state.lock();
        retry_with_stats(&self.policy, self.clock.as_ref(), stats, || Ok(()));
        drop(g);
    }

    pub fn bad_channel(&self, tx: &Sender<u64>) {
        let g = self.state.lock();
        tx.send(1);
        drop(g);
    }

    pub fn ok_release_first(&self, key: &str, data: &[u8]) {
        let g = self.state.lock();
        drop(g);
        self.store.put(key, data); // fine: guard released before I/O
    }

    pub fn ok_temp_guard(&self, key: &str, data: &[u8]) {
        *self.state.lock() += 1;
        self.store.put(key, data); // fine: temporary died at the `;`
    }

    pub fn ok_plain_map(&self, map: &BTreeMap<String, u64>) -> Option<u64> {
        let g = self.state.lock();
        let hit = map.get("k").copied(); // fine: not a store-ish receiver
        drop(g);
        hit
    }
}
