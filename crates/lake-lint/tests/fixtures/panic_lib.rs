//! Fixture: library code with a known number of panic-lint violations.
//! Expected findings (hot_path = false): 5 panic.
//! Expected findings (hot_path = true): 5 panic + 2 indexing.

pub fn two_unwraps(xs: &[i32]) -> i32 {
    let first = xs.first().unwrap(); // 1
    let last = xs.last().unwrap(); // 2
    first + last
}

pub fn one_expect(s: &str) -> usize {
    s.parse::<usize>().expect("fixture") // 3
}

pub fn macros(flag: bool) -> i32 {
    if flag {
        panic!("fixture"); // 4
    }
    todo!() // 5
}

pub fn indexing(xs: &[i32], i: usize) -> i32 {
    let head = xs[0]; // indexing 1 (hot paths only)
    head + xs[i] // indexing 2 (hot paths only)
}

pub fn clean(xs: &[i32]) -> Option<i32> {
    // unwrap_or and friends are fine, and strings/comments never match:
    // xs.unwrap() panic!()
    let s = "call .unwrap() here";
    xs.first().copied().map(|v| v + s.len() as i32)
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        let xs = vec![1, 2, 3];
        assert_eq!(xs[0], 1);
        xs.first().unwrap();
        "7".parse::<i32>().expect("fine in tests");
        if xs.len() > 99 {
            panic!("also fine");
        }
    }
}
