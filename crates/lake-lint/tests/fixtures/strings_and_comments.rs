//! Fixture: every rule's trigger text quoted inside string literals,
//! line comments, and block comments. All passes must stay silent.

/* block comment quoting rule triggers: x.unwrap() and v[0] and
   Instant::now() and Ordering::Relaxed and a.partial_cmp(&b).unwrap()
   and panic!("boom") and let g = self.state.lock(); */

pub fn quoted() -> usize {
    // comment: fn bad() -> Result<(), String> { unimplemented!() }
    // comment: self.store.put(key, data) under a held guard
    // comment: SystemTime::now().expect("wall clock")
    let a = "calls .unwrap() and .expect(\"x\") and panic!(\"boom\") and v[i]";
    let b = "Ordering::Relaxed and Instant::now() and unreachable!()";
    let c = "let g = self.m.lock(); retry_with_stats(); tx.send(1)";
    let d = "Result<T, String> and Box<dyn Error> and partial_cmp().unwrap_or";
    a.len() + b.len() + c.len() + d.len()
}
