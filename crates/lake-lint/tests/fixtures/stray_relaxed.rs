//! Fixture: atomic-ordering discipline (rule 8) — one stray
//! `Ordering::Relaxed`, one justified, and `std::cmp::Ordering` noise.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Hits {
    count: AtomicU64,
}

impl Hits {
    pub fn stray(&self) {
        self.count.fetch_add(1, Ordering::Relaxed); // unjustified
    }

    pub fn justified(&self) {
        // lint: ordering — standalone counter, no cross-variable order.
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    pub fn compare(a: u32, b: u32) -> std::cmp::Ordering {
        a.cmp(&b) // std::cmp::Ordering has no Relaxed; must not fire
    }
}
