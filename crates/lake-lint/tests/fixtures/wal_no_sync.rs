//! Fixture for the durability-discipline rule: one synced write (ok),
//! one unsynced write (flagged), one justified volatile write (ok).

use std::fs::File;
use std::io::Write;

pub fn synced_append(f: &mut File, buf: &[u8]) -> std::io::Result<()> {
    f.write_all(buf)?;
    f.sync_data()
}

pub fn unsynced_append(f: &mut File, buf: &[u8]) -> std::io::Result<()> {
    f.write_all(buf)
}

pub fn scratch_write(f: &mut File) -> std::io::Result<()> {
    // lint: durability scratch spill, rebuilt from the journal on boot
    f.write_all(b"scratch")
}
