//! Fixture: char and byte-char literals — including quote and brace
//! characters — must not open phantom strings or corrupt brace depth.
//! The `.unwrap()` after them proves the scan still sees real code.

pub fn after_chars(v: &[u8]) -> u8 {
    let open = b'{';
    let close = b'}';
    let quote = b'"';
    let tick = '\'';
    let escaped = '\n';
    let lifetime: &'static str = "x";
    let first = v.first().unwrap(); // the one real violation in this file
    *first
        + open
        + close
        + quote
        + (tick as u8)
        + (escaped as u8)
        + (lifetime.len() as u8)
}
