//! Fixture for the clock-discipline lint: three violations expected —
//! the two direct reads in `measure` and the one inside a non-Clock impl.
//! The `Clock` impl and the `#[cfg(test)]` helper must NOT be flagged.

use std::time::{Instant, SystemTime};

pub fn measure() -> u64 {
    let t0 = std::time::Instant::now();
    let _wall = SystemTime::now();
    t0.elapsed().as_micros() as u64
}

pub struct WallProfiler;

impl Profiler for WallProfiler {
    fn elapsed_micros(&self) -> u64 {
        Instant::now().elapsed().as_micros() as u64
    }
}

pub struct RealClock;

impl Clock for RealClock {
    fn sleep_ms(&self, ms: u64) {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }

    fn now_micros(&self) -> u64 {
        // Exempt: a Clock implementation is the designated owner of the
        // real time source.
        Instant::now().elapsed().as_micros() as u64
    }
}

// Instant::now() in a comment never fires.

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_time_themselves() {
        let _ = std::time::Instant::now();
    }
}
