//! Fixture: public functions with stringly error returns.
//! Expected findings: 2 error-discipline.

pub fn stringly(path: &str) -> Result<Vec<u8>, String> {
    std::fs::read(path).map_err(|e| e.to_string()) // 1: String error
}

pub fn boxed() -> Result<(), Box<dyn std::error::Error>> {
    Ok(()) // 2: Box<dyn Error>
}

pub fn typed() -> Result<u64, ParseError> {
    Ok(7)
}

pub fn aliased(n: u64) -> lake_core::Result<u64> {
    Ok(n)
}

fn private_stringly() -> Result<(), String> {
    Ok(()) // private fns are exempt
}

pub struct ParseError;
