//! Fixture for the float-ordering lint: two violations, several benign
//! uses. Chains are deliberately broken across lines — the workspace
//! acceptance gate greps for the comparison call and the forcing method
//! co-occurring on one line, and this fixture must not trip it.

pub fn rank(mut v: Vec<(usize, f64)>) -> Vec<(usize, f64)> {
    // Violation 1: unwrap on the next line still anchors here.
    v.sort_by(|a, b| b.1.partial_cmp(&a.1)
        .unwrap()
        .then(a.0.cmp(&b.0)));
    v
}

pub fn rank_defaulted(mut v: Vec<f64>) -> Vec<f64> {
    // Violation 2: the unwrap_or variant silently misorders NaN.
    v.sort_by(|a, b| a.partial_cmp(b)
        .unwrap_or(std::cmp::Ordering::Equal));
    v
}

pub fn rank_total(mut v: Vec<f64>) -> Vec<f64> {
    // Benign: the replacement the lint prescribes.
    v.sort_by(f64::total_cmp);
    v
}

pub fn compare(a: f64, b: f64) -> Option<std::cmp::Ordering> {
    // Benign: keeping the Option from partial_cmp is fine.
    a.partial_cmp(&b)
}

pub struct Wrapper(pub f64);

impl PartialOrd for Wrapper {
    // Benign: a PartialOrd implementation defines partial_cmp.
    fn partial_cmp(&self, other: &Wrapper) -> Option<std::cmp::Ordering> {
        self.0.partial_cmp(&other.0)
    }
}

impl PartialEq for Wrapper {
    fn eq(&self, other: &Wrapper) -> bool {
        self.0 == other.0
    }
}

#[cfg(test)]
mod tests {
    // Benign: tests may unwrap comparisons.
    #[test]
    fn t() {
        let _ = 1.0f64.partial_cmp(&2.0)
            .unwrap();
    }
}
