//! Fixture: lock-order violations — a rank inversion that also closes a
//! two-lock cycle. Never baselinable.

mod rank {
    pub const ALPHA: u32 = 10;
    pub const BETA: u32 = 20;
}

pub struct Pair {
    a: OrderedMutex<u64>,
    b: OrderedMutex<u64>,
}

impl Pair {
    pub fn new() -> Pair {
        Pair {
            a: OrderedMutex::new(0, rank::ALPHA, "fixture.a"),
            b: OrderedMutex::new(0, rank::BETA, "fixture.b"),
        }
    }

    pub fn forward(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock(); // fine: 10 -> 20 ascends
        drop(gb);
        drop(ga);
    }

    pub fn backward(&self) {
        let gb = self.b.lock();
        let ga = self.a.lock(); // inversion: 20 -> 10, and closes the a<->b cycle
        drop(ga);
        drop(gb);
    }
}
