//! Skluma: content- and context-metadata extraction from disorganized
//! science files (§5.1).
//!
//! "It first finds the name, path, size, and extension of the files; then
//! it infers file types and adds specific extractors accordingly to
//! process tabular data, free texts or null values." [`Skluma::profile`]
//! mirrors that: context metadata from the path, a format-specific content
//! extractor (tabular column profiles with null analysis; keyword topics
//! for free text; aggregate stats for documents and logs).

use lake_core::stats::NumericSummary;
use lake_core::{Dataset, Result};
use lake_formats::detect::{detect_format, parse_dataset};
use lake_formats::Format;
use std::collections::BTreeMap;

/// Context metadata: what can be known without opening the file.
#[derive(Debug, Clone, PartialEq)]
pub struct ContextMetadata {
    /// Full path as given.
    pub path: String,
    /// Base name.
    pub name: String,
    /// Extension (lowercased), if any.
    pub extension: Option<String>,
    /// Size in bytes.
    pub size: usize,
    /// Parent directory components (often encode campaign/instrument).
    pub directories: Vec<String>,
}

/// Per-column content profile for tabular files.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnProfile {
    /// Column name.
    pub name: String,
    /// Inferred type name.
    pub dtype: String,
    /// Fraction of null values.
    pub null_fraction: f64,
    /// Distinct-value count.
    pub distinct: usize,
    /// Numeric summary when the column is numeric.
    pub numeric: Option<NumericSummary>,
    /// Up to 5 most frequent values (rendered), most frequent first.
    pub top_values: Vec<(String, usize)>,
}

/// Content metadata, by file family.
#[derive(Debug, Clone, PartialEq)]
pub enum ContentMetadata {
    /// Tabular files: per-column profiles.
    Tabular {
        /// Rows observed.
        rows: usize,
        /// Column profiles.
        columns: Vec<ColumnProfile>,
    },
    /// Free text: top keywords with counts.
    FreeText {
        /// Word count.
        words: usize,
        /// Top keywords (lowercased, stopword-filtered).
        keywords: Vec<(String, usize)>,
    },
    /// Semi-structured documents: structural aggregates.
    Documents {
        /// Document count.
        count: usize,
        /// Mean leaves per document.
        mean_leaves: f64,
        /// Maximum nesting depth.
        max_depth: usize,
    },
    /// Logs: line count and distinct first tokens (log levels etc.).
    Log {
        /// Line count.
        lines: usize,
        /// Distinct leading tokens.
        leading_tokens: Vec<String>,
    },
}

/// A complete Skluma profile.
#[derive(Debug, Clone, PartialEq)]
pub struct FileProfile {
    /// Context metadata.
    pub context: ContextMetadata,
    /// Detected format.
    pub format: Format,
    /// Content metadata.
    pub content: ContentMetadata,
}

/// The Skluma profiler.
#[derive(Debug, Clone, Default)]
pub struct Skluma;

const STOPWORDS: &[&str] = &[
    "the", "a", "an", "and", "or", "of", "to", "in", "is", "it", "for", "on", "with", "as",
    "are", "was", "be", "this", "that", "by", "at", "from",
];

impl Skluma {
    /// Profile one file.
    pub fn profile(&self, path: &str, content: &[u8]) -> Result<FileProfile> {
        let name = path.rsplit('/').next().unwrap_or(path).to_string();
        let extension = name.rsplit_once('.').map(|(_, e)| e.to_ascii_lowercase());
        let directories: Vec<String> = path
            .rsplit('/')
            .skip(1)
            .map(str::to_string)
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect();
        let context = ContextMetadata {
            path: path.to_string(),
            name: name.clone(),
            extension,
            size: content.len(),
            directories,
        };
        let format = detect_format(Some(path), content);
        let dataset = parse_dataset(&name, format, content)?;
        let content_md = match &dataset {
            Dataset::Table(t) => ContentMetadata::Tabular {
                rows: t.num_rows(),
                columns: t.columns().iter().map(profile_column).collect(),
            },
            Dataset::Documents(docs) => ContentMetadata::Documents {
                count: docs.len(),
                mean_leaves: if docs.is_empty() {
                    0.0
                } else {
                    docs.iter().map(|d| d.leaf_count()).sum::<usize>() as f64 / docs.len() as f64
                },
                max_depth: docs.iter().map(|d| d.depth()).max().unwrap_or(0),
            },
            Dataset::Log(log_lines) => {
                let mut leading: Vec<String> = log_lines
                    .iter()
                    .filter_map(|l| l.split_whitespace().next())
                    .map(str::to_string)
                    .collect();
                leading.sort();
                leading.dedup();
                leading.truncate(10);
                ContentMetadata::Log { lines: log_lines.len(), leading_tokens: leading }
            }
            Dataset::Text(t) => {
                let mut counts: BTreeMap<String, usize> = BTreeMap::new();
                let mut words = 0usize;
                for w in t.split(|c: char| !c.is_alphanumeric()) {
                    if w.is_empty() {
                        continue;
                    }
                    words += 1;
                    let lw = w.to_lowercase();
                    if lw.len() > 2 && !STOPWORDS.contains(&lw.as_str()) {
                        *counts.entry(lw).or_insert(0) += 1;
                    }
                }
                let mut kw: Vec<(String, usize)> = counts.into_iter().collect();
                kw.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                kw.truncate(10);
                ContentMetadata::FreeText { words, keywords: kw }
            }
            Dataset::Graph(_) => ContentMetadata::Documents { count: 1, mean_leaves: 0.0, max_depth: 0 },
        };
        Ok(FileProfile { context, format, content: content_md })
    }
}

fn profile_column(col: &lake_core::Column) -> ColumnProfile {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for v in &col.values {
        if !v.is_null() {
            *counts.entry(v.render()).or_insert(0) += 1;
        }
    }
    let mut top: Vec<(String, usize)> = counts.into_iter().collect();
    top.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    top.truncate(5);
    let numeric_vals = col.numeric_values();
    ColumnProfile {
        name: col.name.clone(),
        dtype: col.inferred_type().name().to_string(),
        null_fraction: if col.is_empty() {
            0.0
        } else {
            col.null_count() as f64 / col.len() as f64
        },
        distinct: col.cardinality(),
        numeric: if numeric_vals.is_empty() { None } else { NumericSummary::of(&numeric_vals) },
        top_values: top,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_metadata_from_path() {
        let p = Skluma.profile("campaign1/instrumentA/readings.csv", b"a,b\n1,2\n").unwrap();
        assert_eq!(p.context.name, "readings.csv");
        assert_eq!(p.context.extension.as_deref(), Some("csv"));
        assert_eq!(p.context.directories, vec!["campaign1", "instrumentA"]);
        assert_eq!(p.context.size, 8);
    }

    #[test]
    fn tabular_profile_with_nulls_and_stats() {
        let p = Skluma
            .profile("t.csv", b"temp,site\n20.5,delft\n21.0,delft\n,paris\n")
            .unwrap();
        let ContentMetadata::Tabular { rows, columns } = &p.content else {
            panic!("expected tabular");
        };
        assert_eq!(*rows, 3);
        let temp = &columns[0];
        assert_eq!(temp.dtype, "float");
        assert!((temp.null_fraction - 1.0 / 3.0).abs() < 1e-9);
        let num = temp.numeric.unwrap();
        assert_eq!(num.min, 20.5);
        assert_eq!(num.max, 21.0);
        let site = &columns[1];
        assert_eq!(site.top_values[0], ("delft".to_string(), 2));
    }

    #[test]
    fn free_text_keywords_skip_stopwords() {
        let text = b"The reactor temperature rose. The reactor alarm fired: reactor!";
        let p = Skluma.profile("notes.md", text).unwrap();
        let ContentMetadata::FreeText { keywords, words } = &p.content else {
            panic!("expected text");
        };
        assert!(*words > 5);
        assert_eq!(keywords[0].0, "reactor");
        assert_eq!(keywords[0].1, 3);
        assert!(!keywords.iter().any(|(w, _)| w == "the"));
    }

    #[test]
    fn document_profile_aggregates_structure() {
        let p = Skluma.profile("d.json", br#"{"a": {"b": 1}, "c": [1,2,3]}"#).unwrap();
        let ContentMetadata::Documents { count, mean_leaves, max_depth } = p.content else {
            panic!("expected documents");
        };
        assert_eq!(count, 1);
        assert_eq!(mean_leaves, 4.0);
        assert_eq!(max_depth, 2);
    }

    #[test]
    fn log_profile_collects_leading_tokens() {
        let p = Skluma
            .profile("s.log", b"2024 INFO a\n2023 WARN b\n2024 INFO c\n")
            .unwrap();
        let ContentMetadata::Log { lines, leading_tokens } = &p.content else {
            panic!("expected log");
        };
        assert_eq!(*lines, 3);
        assert_eq!(leading_tokens, &vec!["2023".to_string(), "2024".to_string()]);
    }
}
