//! Streaming ingestion under bounded memory (§3.2's lake-specific
//! perspective: "a data lake often needs to ingest a large volume of data,
//! possibly also at a high velocity or even as continuous data streams,
//! which cannot be stored in full in the data lake. Not all metadata can
//! be extracted at ingestion time, but we need to continue enrichment
//! during later phases").
//!
//! [`StreamIngestor`] consumes an unbounded record stream while holding
//! O(capacity) memory:
//!
//! * a **reservoir sample** (Vitter's Algorithm R) keeps a uniform sample
//!   of all records seen, so later maintenance-tier enrichment has
//!   representative data to work on;
//! * the **schema** is unified incrementally ([`lake_core::Schema::unify`]),
//!   recording a version history as the stream drifts (§6.6);
//! * per-column **MinHash signatures** update incrementally
//!   ([`lake_index::minhash::MinHasher::update`]) so discovery indexes stay
//!   current without replaying the stream.

use lake_core::retry::{retry_with_stats, Clock, RetryPolicy, RetryStats};
use lake_core::{Field, Row, Schema, Table};
use lake_formats::columnar;
use lake_index::minhash::{MinHash, MinHasher};
use lake_obs::{Counter, Histogram, MetricsRegistry, MICROS_TO_SECONDS};
use lake_store::object::ObjectStore;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

/// Pre-registered `lake_ingest_*` handles; attached with
/// [`StreamIngestor::with_obs`].
#[derive(Debug, Clone)]
struct IngestMetrics {
    rows_total: Arc<Counter>,
    rows_quarantined_total: Arc<Counter>,
    schema_drift_total: Arc<Counter>,
    flush_total: Arc<Counter>,
    flush_rows_total: Arc<Counter>,
    flush_seconds: Arc<Histogram>,
}

impl IngestMetrics {
    fn register(registry: &MetricsRegistry) -> IngestMetrics {
        IngestMetrics {
            rows_total: registry.counter("lake_ingest_rows_total"),
            rows_quarantined_total: registry.counter("lake_ingest_rows_quarantined_total"),
            schema_drift_total: registry.counter("lake_ingest_schema_drift_total"),
            flush_total: registry.counter("lake_ingest_flush_total"),
            flush_rows_total: registry.counter("lake_ingest_flush_rows_total"),
            flush_seconds: registry.histogram("lake_ingest_flush_seconds", MICROS_TO_SECONDS),
        }
    }
}

/// A record the ingestor refused, parked for later inspection instead of
/// failing the batch.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadLetter {
    /// 1-based position in the offered stream (valid + quarantined).
    pub record_no: u64,
    /// The offending record, untouched.
    pub row: Row,
    /// Why it was quarantined.
    pub reason: String,
}

/// A bounded-memory ingestor for one record stream.
#[derive(Debug)]
pub struct StreamIngestor {
    /// Column names, fixed at creation.
    columns: Vec<String>,
    capacity: usize,
    reservoir: Vec<Row>,
    seen: u64,
    rng: StdRng,
    schema: Schema,
    schema_versions: Vec<u64>, // record counts at which the schema changed
    hasher: MinHasher,
    signatures: Vec<MinHash>,
    retry: RetryStats,
    dead_letters: Vec<DeadLetter>,
    dead_letter_capacity: usize,
    quarantined: u64,
    obs: Option<IngestMetrics>,
}

/// How many dead letters an ingestor retains by default. The *count* of
/// quarantined rows is unbounded ([`StreamIngestor::quarantined`]); only
/// the retained evidence is capped, keeping the ingestor O(capacity) even
/// when a producer goes permanently bad.
pub const DEFAULT_DEAD_LETTER_CAPACITY: usize = 64;

impl StreamIngestor {
    /// Create an ingestor for records with the given columns, keeping a
    /// uniform sample of at most `capacity` records. A zero capacity is
    /// rejected as [`lake_core::LakeError::Invalid`] — a reservoir that
    /// can hold nothing cannot sample anything.
    pub fn new(columns: &[&str], capacity: usize, seed: u64) -> lake_core::Result<StreamIngestor> {
        if capacity == 0 {
            return Err(lake_core::LakeError::invalid(
                "stream ingestor capacity must be positive",
            ));
        }
        let hasher = MinHasher::new(128, seed);
        Ok(StreamIngestor {
            columns: columns.iter().map(|s| s.to_string()).collect(),
            capacity,
            reservoir: Vec::with_capacity(capacity),
            seen: 0,
            rng: StdRng::seed_from_u64(seed),
            schema: Schema::empty(),
            schema_versions: Vec::new(),
            hasher: hasher.clone(),
            signatures: columns.iter().map(|_| hasher.signature([])).collect(),
            retry: RetryStats::default(),
            dead_letters: Vec::new(),
            dead_letter_capacity: DEFAULT_DEAD_LETTER_CAPACITY,
            quarantined: 0,
            obs: None,
        })
    }

    /// Retain at most `capacity` quarantined records as evidence (the
    /// quarantine *counter* keeps running past it). Zero keeps counting
    /// but retains nothing.
    pub fn with_dead_letter_capacity(mut self, capacity: usize) -> StreamIngestor {
        self.dead_letter_capacity = capacity;
        self.dead_letters.truncate(capacity);
        self
    }

    /// Record rows, schema drift, and flushes into a `lake-obs` registry
    /// (`lake_ingest_rows_total`, `lake_ingest_schema_drift_total`,
    /// `lake_ingest_flush_{total,rows_total,seconds}`).
    pub fn with_obs(mut self, registry: &MetricsRegistry) -> StreamIngestor {
        self.obs = Some(IngestMetrics::register(registry));
        self
    }

    /// Ingest one record. A malformed record (wrong arity) does not fail
    /// the stream: it is quarantined into the bounded dead-letter buffer
    /// ([`StreamIngestor::dead_letters`]) and the well-formed tail keeps
    /// flowing — one bad producer must not stall ingestion.
    pub fn push(&mut self, row: Row) -> lake_core::Result<()> {
        if row.len() != self.columns.len() {
            let reason =
                format!("record arity {} != {}", row.len(), self.columns.len());
            self.quarantine(row, reason);
            return Ok(());
        }
        self.seen += 1;
        if let Some(obs) = &self.obs {
            obs.rows_total.inc();
        }

        // Incremental schema unification + version tracking.
        let row_schema: Schema = self
            .columns
            .iter()
            .zip(&row)
            .map(|(n, v)| {
                let mut f = Field::new(n.clone(), v.data_type());
                f.nullable = v.is_null();
                f
            })
            .collect();
        let unified = if self.schema.is_empty() { row_schema } else { self.schema.unify(&row_schema) };
        if unified.fingerprint() != self.schema.fingerprint() {
            self.schema = unified;
            self.schema_versions.push(self.seen);
            if let Some(obs) = &self.obs {
                obs.schema_drift_total.inc();
            }
        }

        // Incremental signatures.
        for (sig, v) in self.signatures.iter_mut().zip(&row) {
            if !v.is_null() {
                self.hasher.update(sig, &v.render());
            }
        }

        // Reservoir sampling (Algorithm R).
        if self.reservoir.len() < self.capacity {
            self.reservoir.push(row);
        } else {
            let j = self.rng.random_range(0..self.seen) as usize;
            if j < self.capacity {
                self.reservoir[j] = row;
            }
        }
        Ok(())
    }

    fn quarantine(&mut self, row: Row, reason: String) {
        self.quarantined += 1;
        if let Some(obs) = &self.obs {
            obs.rows_quarantined_total.inc();
        }
        if self.dead_letters.len() < self.dead_letter_capacity {
            self.dead_letters.push(DeadLetter {
                record_no: self.seen + self.quarantined,
                row,
                reason,
            });
        }
    }

    /// Records seen so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Total records quarantined so far (including any the bounded buffer
    /// no longer retains).
    pub fn quarantined(&self) -> u64 {
        self.quarantined
    }

    /// The retained quarantined records, oldest first (at most the
    /// dead-letter capacity).
    pub fn dead_letters(&self) -> &[DeadLetter] {
        &self.dead_letters
    }

    /// The current unified schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Record counts at which the schema changed (stream drift history).
    pub fn schema_versions(&self) -> &[u64] {
        &self.schema_versions
    }

    /// The incrementally maintained per-column MinHash signatures.
    pub fn signatures(&self) -> &[MinHash] {
        &self.signatures
    }

    /// The shared hasher (for comparing signatures against other columns).
    pub fn hasher(&self) -> &MinHasher {
        &self.hasher
    }

    /// Materialize the current sample as a table (what lands in the lake).
    pub fn sample_table(&self, name: &str) -> lake_core::Result<Table> {
        let header: Vec<&str> = self.columns.iter().map(String::as_str).collect();
        Table::from_rows(name, &header, self.reservoir.clone())
    }

    /// The sample size currently held (≤ capacity).
    pub fn sample_len(&self) -> usize {
        self.reservoir.len()
    }

    /// Persist the current sample to `store` under `key` as a columnar
    /// blob, absorbing transient store failures under `policy`. Streams
    /// outlive storage hiccups: the ingestor keeps sampling while the
    /// flush retries, and the retry counters accumulate in
    /// [`StreamIngestor::retry_stats`]. Returns the rows written.
    pub fn flush_sample(
        &mut self,
        store: &dyn ObjectStore,
        key: &str,
        policy: &RetryPolicy,
        clock: &dyn Clock,
    ) -> lake_core::Result<usize> {
        let table = self.sample_table("sample")?;
        let body = columnar::encode(&table);
        let start = clock.now_micros();
        let flushed = retry_with_stats(policy, clock, &mut self.retry, || store.put(key, &body));
        if let Some(obs) = &self.obs {
            obs.flush_seconds.observe(clock.now_micros().saturating_sub(start));
            if flushed.is_ok() {
                obs.flush_total.inc();
                obs.flush_rows_total.add(table.num_rows() as u64);
            }
        }
        flushed?;
        Ok(table.num_rows())
    }

    /// Retry counters accumulated across this ingestor's flushes.
    pub fn retry_stats(&self) -> RetryStats {
        self.retry
    }
}

/// Convenience: ingest an already-parsed value stream.
pub fn ingest_stream(
    columns: &[&str],
    capacity: usize,
    seed: u64,
    records: impl IntoIterator<Item = Row>,
) -> lake_core::Result<StreamIngestor> {
    let mut ing = StreamIngestor::new(columns, capacity, seed)?;
    for r in records {
        ing.push(r)?;
    }
    Ok(ing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lake_core::{DataType, Value};

    #[test]
    fn memory_stays_bounded() {
        let mut ing = StreamIngestor::new(&["id", "v"], 100, 1).unwrap();
        for i in 0..50_000i64 {
            ing.push(vec![Value::Int(i), Value::Float(i as f64)]).unwrap();
        }
        assert_eq!(ing.seen(), 50_000);
        assert_eq!(ing.sample_len(), 100);
        let t = ing.sample_table("s").unwrap();
        assert_eq!(t.num_rows(), 100);
    }

    #[test]
    fn reservoir_is_roughly_uniform() {
        // Mean of a uniform sample of 0..N should be ≈ N/2.
        let mut ing = StreamIngestor::new(&["id"], 500, 7).unwrap();
        let n = 100_000i64;
        for i in 0..n {
            ing.push(vec![Value::Int(i)]).unwrap();
        }
        let t = ing.sample_table("s").unwrap();
        let mean: f64 = t.column("id").unwrap().numeric_values().iter().sum::<f64>() / 500.0;
        let expected = n as f64 / 2.0;
        assert!(
            (mean - expected).abs() < expected * 0.12,
            "sample mean {mean} vs {expected}"
        );
    }

    #[test]
    fn schema_drift_is_versioned() {
        let mut ing = StreamIngestor::new(&["a", "b"], 10, 1).unwrap();
        ing.push(vec![Value::Int(1), Value::str("x")]).unwrap();
        assert_eq!(ing.schema_versions().len(), 1); // initial schema
        ing.push(vec![Value::Int(2), Value::str("y")]).unwrap();
        assert_eq!(ing.schema_versions().len(), 1); // no change
        // Drift: a becomes float, b goes null.
        ing.push(vec![Value::Float(2.5), Value::Null]).unwrap();
        assert_eq!(ing.schema_versions().len(), 2);
        assert_eq!(ing.schema().field("a").unwrap().dtype, DataType::Float);
        assert!(ing.schema().field("b").unwrap().nullable);
    }

    #[test]
    fn incremental_signatures_match_batch() {
        let mut ing = StreamIngestor::new(&["k"], 10, 3).unwrap();
        let values: Vec<String> = (0..200).map(|i| format!("v{i}")).collect();
        for v in &values {
            ing.push(vec![Value::str(v.clone())]).unwrap();
        }
        let batch = ing.hasher().signature(values.iter().map(String::as_str));
        assert_eq!(ing.signatures()[0], batch);
        // The signature covers *all* seen values, not just the sample.
        assert!(ing.sample_len() < values.len());
    }

    #[test]
    fn zero_capacity_is_a_typed_error() {
        let r = StreamIngestor::new(&["a"], 0, 1);
        assert!(matches!(r, Err(lake_core::LakeError::Invalid(_))), "{r:?}");
    }

    #[test]
    fn flush_sample_retries_transients_and_surfaces_stats() {
        use lake_core::ManualClock;
        use lake_store::object::MemoryStore;
        use lake_store::{FaultPlan, FaultStore, Op};

        let mut ing = StreamIngestor::new(&["id"], 10, 1).unwrap();
        for i in 0..25i64 {
            ing.push(vec![Value::Int(i)]).unwrap();
        }
        let store = FaultStore::new(MemoryStore::new(), FaultPlan::new().fail_next(Op::Put, 2));
        let clock = ManualClock::new();
        let rows = ing
            .flush_sample(&store, "samples/s1.pql", &RetryPolicy::new(4), &clock)
            .unwrap();
        assert_eq!(rows, 10);
        let stats = ing.retry_stats();
        assert_eq!(stats.operations, 1);
        assert_eq!(stats.retries, 2, "two injected transients absorbed");
        assert_eq!(stats.gave_up, 0);
        assert_eq!(clock.sleeps().len(), 2, "backoff never really slept");
        // The sample landed despite the faults.
        assert!(store.inner().get("samples/s1.pql").is_ok());
    }

    #[test]
    fn flush_sample_exhaustion_surfaces_the_transient() {
        use lake_core::ManualClock;
        use lake_store::object::MemoryStore;
        use lake_store::{FaultPlan, FaultStore, Op};

        let mut ing = StreamIngestor::new(&["id"], 4, 1).unwrap();
        ing.push(vec![Value::Int(1)]).unwrap();
        let store = FaultStore::new(MemoryStore::new(), FaultPlan::new().fail_next(Op::Put, 10));
        let r = ing.flush_sample(&store, "s", &RetryPolicy::new(2), &ManualClock::new());
        assert!(matches!(r, Err(lake_core::LakeError::Transient(_))), "{r:?}");
        assert_eq!(ing.retry_stats().gave_up, 1);
    }

    #[test]
    fn obs_registry_tracks_rows_drift_and_flushes() {
        use lake_core::ManualClock;
        use lake_store::object::MemoryStore;

        let reg = MetricsRegistry::new();
        let mut ing = StreamIngestor::new(&["a"], 4, 1).unwrap().with_obs(&reg);
        ing.push(vec![Value::Int(1)]).unwrap();
        ing.push(vec![Value::Int(2)]).unwrap();
        ing.push(vec![Value::Float(2.5)]).unwrap(); // drift: int → float
        let store = MemoryStore::new();
        let rows = ing
            .flush_sample(&store, "s", &RetryPolicy::none(), &ManualClock::new())
            .unwrap();
        assert_eq!(rows, 3);
        let snap = reg.snapshot();
        assert_eq!(snap.counter_value("lake_ingest_rows_total"), 3);
        // Initial schema + one drift.
        assert_eq!(snap.counter_value("lake_ingest_schema_drift_total"), 2);
        assert_eq!(snap.counter_value("lake_ingest_flush_total"), 1);
        assert_eq!(snap.counter_value("lake_ingest_flush_rows_total"), 3);
        assert_eq!(
            snap.histogram("lake_ingest_flush_seconds").map(|h| h.count),
            Some(1)
        );
    }

    #[test]
    fn arity_mismatch_is_quarantined_not_fatal() {
        let mut ing = StreamIngestor::new(&["a", "b"], 10, 1).unwrap();
        ing.push(vec![Value::Int(1)]).unwrap(); // short: quarantined
        ing.push(vec![Value::Int(1), Value::Int(2)]).unwrap();
        ing.push(vec![Value::Int(1), Value::Int(2), Value::Int(3)]).unwrap(); // long
        assert_eq!(ing.seen(), 1, "only the well-formed record counts");
        assert_eq!(ing.quarantined(), 2);
        let dead = ing.dead_letters();
        assert_eq!(dead.len(), 2);
        assert_eq!(dead[0].record_no, 1);
        assert_eq!(dead[0].row, vec![Value::Int(1)]);
        assert!(dead[0].reason.contains("arity 1 != 2"), "{}", dead[0].reason);
        assert_eq!(dead[1].record_no, 3);
        // The sample only ever holds well-formed rows.
        assert_eq!(ing.sample_table("s").unwrap().num_rows(), 1);
    }

    #[test]
    fn dead_letter_buffer_is_bounded_but_count_is_not() {
        let reg = MetricsRegistry::new();
        let mut ing = StreamIngestor::new(&["a", "b"], 10, 1)
            .unwrap()
            .with_obs(&reg)
            .with_dead_letter_capacity(3);
        for i in 0..10i64 {
            ing.push(vec![Value::Int(i)]).unwrap();
        }
        assert_eq!(ing.dead_letters().len(), 3, "evidence buffer stays bounded");
        assert_eq!(ing.quarantined(), 10, "the counter keeps running");
        assert_eq!(reg.snapshot().counter_value("lake_ingest_rows_quarantined_total"), 10);
        // Retained evidence is the oldest (first failures are usually the
        // interesting ones for debugging a producer).
        assert_eq!(ing.dead_letters()[0].record_no, 1);
    }

    #[test]
    fn ingest_stream_helper() {
        let ing = ingest_stream(
            &["x"],
            5,
            2,
            (0..20).map(|i| vec![Value::Int(i)]),
        )
        .unwrap();
        assert_eq!(ing.seen(), 20);
        assert_eq!(ing.sample_len(), 5);
    }
}
