//! GEMMS: Generic and Extensible Metadata Management System (§5.1, §5.2.1).
//!
//! "For each input file, GEMMS first detects its format, then initiates a
//! corresponding parser to obtain the structural metadata (e.g., trees,
//! tables, and graphs) and metadata properties (e.g., header information).
//! A tree structure inference algorithm is implemented for structural
//! metadata extraction, which iterates semi-structured data in a
//! breadth-first manner, and detects the tree structure."
//!
//! [`Gemms::extract`] implements that pipeline on top of the
//! `lake-formats` detectors/parsers; [`infer_tree`] is the breadth-first
//! tree-structure inference that unifies the shapes of a document
//! collection into one annotated structure tree.

use lake_core::{DataType, Dataset, Json, Result, Schema};
use lake_formats::detect::{detect_format, parse_dataset};
use lake_formats::Format;
use std::collections::{BTreeMap, VecDeque};

/// A node of the inferred structure tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeNode {
    /// Path segment name (object key; `[]` for array elements; "" for root).
    pub name: String,
    /// Scalar type at this position, if it is ever a scalar.
    pub scalar: Option<DataType>,
    /// Fraction of observed occurrences where this node was present.
    pub support: f64,
    /// Child nodes, keyed by segment name.
    pub children: BTreeMap<String, TreeNode>,
}

impl TreeNode {
    fn new(name: &str) -> TreeNode {
        TreeNode { name: name.to_string(), scalar: None, support: 1.0, children: BTreeMap::new() }
    }

    /// Number of nodes in this subtree (including `self`).
    pub fn size(&self) -> usize {
        1 + self.children.values().map(TreeNode::size).sum::<usize>()
    }

    /// Depth of this subtree (leaf = 0).
    pub fn depth(&self) -> usize {
        self.children.values().map(|c| 1 + c.depth()).max().unwrap_or(0)
    }

    /// Look up a child chain by dotted path.
    pub fn at(&self, path: &str) -> Option<&TreeNode> {
        let mut cur = self;
        for seg in path.split('.') {
            cur = cur.children.get(seg)?;
        }
        Some(cur)
    }
}

/// Structural metadata extracted from a dataset.
#[derive(Debug, Clone, PartialEq)]
pub enum StructuralMetadata {
    /// Tabular data → its inferred schema.
    Table(Schema),
    /// Semi-structured data → the inferred structure tree.
    Tree(TreeNode),
    /// Graph data → node/edge counts and label inventory.
    Graph {
        /// Number of nodes.
        nodes: usize,
        /// Number of edges.
        edges: usize,
        /// Distinct node labels.
        labels: Vec<String>,
    },
    /// Log/text data → line count only (DATAMARAN handles structure).
    Opaque {
        /// Number of records/lines.
        records: usize,
    },
}

/// Metadata extracted by GEMMS for one input file.
#[derive(Debug, Clone)]
pub struct GemmsMetadata {
    /// Detected format.
    pub format: Format,
    /// Structural metadata.
    pub structure: StructuralMetadata,
    /// Metadata properties (header-ish information): key → value.
    pub properties: BTreeMap<String, String>,
    /// The parsed dataset itself (GEMMS loads while extracting).
    pub dataset: Dataset,
}

/// The GEMMS extractor.
#[derive(Debug, Clone, Default)]
pub struct Gemms;

impl Gemms {
    /// Run the GEMMS pipeline on one raw file: detect format, parse,
    /// extract structural metadata and properties.
    pub fn extract(&self, file_name: &str, content: &[u8]) -> Result<GemmsMetadata> {
        let format = detect_format(Some(file_name), content);
        let dataset = parse_dataset(file_stem(file_name), format, content)?;
        let structure = match &dataset {
            Dataset::Table(t) => StructuralMetadata::Table(t.schema()),
            Dataset::Documents(docs) => StructuralMetadata::Tree(infer_tree(docs)),
            Dataset::Graph(g) => {
                let mut labels: Vec<String> =
                    g.node_ids().map(|id| g.node(id).label.clone()).collect();
                labels.sort();
                labels.dedup();
                StructuralMetadata::Graph { nodes: g.node_count(), edges: g.edge_count(), labels }
            }
            Dataset::Log(lines) => StructuralMetadata::Opaque { records: lines.len() },
            Dataset::Text(_) => StructuralMetadata::Opaque { records: 1 },
        };
        let mut properties = BTreeMap::new();
        properties.insert("file_name".to_string(), file_name.to_string());
        properties.insert("format".to_string(), format.name().to_string());
        properties.insert("bytes".to_string(), content.len().to_string());
        properties.insert("records".to_string(), dataset.record_count().to_string());
        if let Dataset::Table(t) = &dataset {
            properties.insert(
                "header".to_string(),
                t.columns().iter().map(|c| c.name.as_str()).collect::<Vec<_>>().join(","),
            );
        }
        Ok(GemmsMetadata { format, structure, properties, dataset })
    }
}

fn file_stem(name: &str) -> &str {
    name.rsplit('/').next().unwrap_or(name).split('.').next().unwrap_or(name)
}

/// Breadth-first tree-structure inference over a document collection.
///
/// All documents are merged into one structure tree; each node records the
/// fraction of parent occurrences in which it appeared (`support`), so
/// optional fields are visible. Array elements collapse under the `[]`
/// segment, and scalar types widen via [`DataType::unify`].
pub fn infer_tree(docs: &[Json]) -> TreeNode {
    let mut root = TreeNode::new("");
    // occurrence counters per node, tracked side-table by path.
    let mut occurrences: BTreeMap<String, usize> = BTreeMap::new();
    let mut parent_occurrences: BTreeMap<String, usize> = BTreeMap::new();

    // BFS over (path, json) pairs, as GEMMS describes.
    let mut queue: VecDeque<(String, &Json)> = docs.iter().map(|d| (String::new(), d)).collect();
    *parent_occurrences.entry(String::new()).or_insert(0) += docs.len();
    while let Some((path, j)) = queue.pop_front() {
        match j {
            Json::Object(m) => {
                for (k, v) in m {
                    let child = if path.is_empty() { k.clone() } else { format!("{path}.{k}") };
                    *occurrences.entry(child.clone()).or_insert(0) += 1;
                    *parent_occurrences.entry(child.clone()).or_insert(0) += 0;
                    queue.push_back((child, v));
                }
                // Children of this object get their parent count bumped.
                for (k, _) in m {
                    let child = if path.is_empty() { k.clone() } else { format!("{path}.{k}") };
                    *parent_occurrences.entry(child).or_insert(0) += 1;
                }
            }
            Json::Array(a) => {
                let child = if path.is_empty() { "[]".to_string() } else { format!("{path}.[]") };
                for v in a {
                    *occurrences.entry(child.clone()).or_insert(0) += 1;
                    *parent_occurrences.entry(child.clone()).or_insert(0) += 1;
                    queue.push_back((child.clone(), v));
                }
            }
            scalar => {
                let node = node_at(&mut root, &path);
                let t = scalar.to_value().data_type();
                node.scalar = Some(node.scalar.map_or(t, |s| s.unify(t)));
            }
        }
        if !path.is_empty() {
            node_at(&mut root, &path);
        }
    }

    // Compute supports: occurrences / parent-object count.
    fn set_support(
        node: &mut TreeNode,
        path: &str,
        occ: &BTreeMap<String, usize>,
        total_docs: usize,
    ) {
        for (name, child) in node.children.iter_mut() {
            let cpath = if path.is_empty() { name.clone() } else { format!("{path}.{name}") };
            let parent_n = if path.is_empty() {
                total_docs
            } else {
                occ.get(path).copied().unwrap_or(1)
            };
            let n = occ.get(&cpath).copied().unwrap_or(0);
            child.support = if parent_n == 0 { 0.0 } else { (n as f64 / parent_n as f64).min(1.0) };
            set_support(child, &cpath, occ, total_docs);
        }
    }
    set_support(&mut root, "", &occurrences, docs.len().max(1));
    root
}

fn node_at<'a>(root: &'a mut TreeNode, path: &str) -> &'a mut TreeNode {
    let mut cur = root;
    if path.is_empty() {
        return cur;
    }
    for seg in path.split('.') {
        cur = cur
            .children
            .entry(seg.to_string())
            .or_insert_with(|| TreeNode::new(seg));
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use lake_formats::json::parse;

    #[test]
    fn infer_tree_merges_documents() {
        let docs = vec![
            parse(r#"{"name": "a", "age": 3, "addr": {"city": "x"}}"#).unwrap(),
            parse(r#"{"name": "b", "addr": {"city": "y", "zip": 1}}"#).unwrap(),
        ];
        let tree = infer_tree(&docs);
        assert!(tree.at("name").is_some());
        assert_eq!(tree.at("name").unwrap().scalar, Some(DataType::Str));
        assert_eq!(tree.at("age").unwrap().scalar, Some(DataType::Int));
        assert_eq!(tree.at("addr.city").unwrap().scalar, Some(DataType::Str));
        // "age" present in 1 of 2 docs.
        assert!((tree.at("age").unwrap().support - 0.5).abs() < 1e-9);
        assert!((tree.at("name").unwrap().support - 1.0).abs() < 1e-9);
        // "zip" present in 1 of 2 addr objects.
        assert!((tree.at("addr.zip").unwrap().support - 0.5).abs() < 1e-9);
    }

    #[test]
    fn infer_tree_handles_arrays_and_type_widening() {
        let docs = vec![parse(r#"{"xs": [1, 2.5, 3]}"#).unwrap()];
        let tree = infer_tree(&docs);
        let elem = tree.at("xs.[]").unwrap();
        assert_eq!(elem.scalar, Some(DataType::Float));
    }

    #[test]
    fn tree_size_and_depth() {
        let docs = vec![parse(r#"{"a": {"b": {"c": 1}}}"#).unwrap()];
        let tree = infer_tree(&docs);
        assert_eq!(tree.depth(), 3);
        assert_eq!(tree.size(), 4);
        assert!(tree.at("a.b.c").is_some());
        assert!(tree.at("a.z").is_none());
    }

    #[test]
    fn extract_csv_yields_table_schema_and_properties() {
        let g = Gemms;
        let md = g.extract("data/sales.csv", b"id,city\n1,delft\n2,paris\n").unwrap();
        assert_eq!(md.format, Format::Csv);
        match &md.structure {
            StructuralMetadata::Table(s) => {
                assert_eq!(s.field("id").unwrap().dtype, DataType::Int);
            }
            other => panic!("expected table structure, got {other:?}"),
        }
        assert_eq!(md.properties["records"], "2");
        assert_eq!(md.properties["header"], "id,city");
        assert_eq!(md.dataset.record_count(), 2);
    }

    #[test]
    fn extract_json_yields_tree() {
        let g = Gemms;
        let md = g.extract("u.json", br#"{"user": {"id": 7}}"#).unwrap();
        match &md.structure {
            StructuralMetadata::Tree(t) => {
                assert_eq!(t.at("user.id").unwrap().scalar, Some(DataType::Int));
            }
            other => panic!("expected tree, got {other:?}"),
        }
    }

    #[test]
    fn extract_log_is_opaque() {
        let g = Gemms;
        let md = g.extract("s.log", b"2024 INFO a\n2024 WARN b\n").unwrap();
        assert_eq!(md.structure, StructuralMetadata::Opaque { records: 2 });
    }

    #[test]
    fn extract_malformed_json_errors() {
        let g = Gemms;
        assert!(g.extract("bad.json", b"{nope").is_err());
    }

    #[test]
    fn empty_document_collection() {
        let tree = infer_tree(&[]);
        assert_eq!(tree.size(), 1);
        assert_eq!(tree.depth(), 0);
    }
}
