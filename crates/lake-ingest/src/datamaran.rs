//! DATAMARAN: unsupervised structure extraction from log files (§5.1).
//!
//! The survey describes a three-step pipeline over multi-line log files:
//! (1) generate candidate *structure templates* — regular-expression-like
//! abstractions of record shapes, kept in hash tables and filtered by a
//! coverage threshold; (2) prune redundant templates with a score
//! function; (3) refine the survivors. No human supervision.
//!
//! This implementation follows that pipeline:
//!
//! * A line is tokenized and abstracted: digit runs → `<NUM>`, hex-ish runs
//!   → `<HEX>`, quoted spans → `<STR>`; everything else stays literal. The
//!   resulting token sequence is the line's candidate template.
//! * Candidates are counted in a hash table; only templates whose coverage
//!   (fraction of record-starting lines they explain) meets
//!   [`DatamaranConfig::min_coverage`] survive.
//! * Score = coverage × specificity (literal-token fraction); a refinement
//!   pass merges templates that differ in exactly one position by
//!   generalizing that position to `<VAR>`.
//! * Multi-line records: unindented lines start records, indented lines
//!   continue them (the dominant convention in machine logs; DATAMARAN
//!   learns boundaries — we adopt the convention and verify it empirically
//!   in experiment E11).
//!
//! [`Datamaran::extract_records`] then parses the log into field maps
//! using the learned templates.

use std::collections::BTreeMap;
use std::fmt;

/// One token of a structure template.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Tok {
    /// Literal text that must match exactly.
    Lit(String),
    /// A run of digits (possibly with `.`/`-`/`:` separators — timestamps).
    Num,
    /// A hexadecimal-looking run (≥ 4 chars, contains a digit).
    Hex,
    /// A mixed alphanumeric token (`node3`, `req-17a`): letters + digits.
    Mixed,
    /// A quoted string.
    Str,
    /// A generalized variable position (introduced by refinement).
    Var,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Lit(s) => write!(f, "{s}"),
            Tok::Num => write!(f, "<NUM>"),
            Tok::Hex => write!(f, "<HEX>"),
            Tok::Mixed => write!(f, "<ALNUM>"),
            Tok::Str => write!(f, "<STR>"),
            Tok::Var => write!(f, "<VAR>"),
        }
    }
}

/// A structure template: an abstracted token sequence.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Template {
    /// Token sequence.
    pub tokens: Vec<Tok>,
}

impl Template {
    /// Abstract one line into its template.
    pub fn of_line(line: &str) -> Template {
        Template { tokens: tokenize(line) }
    }

    /// Whether `line` matches this template; if so, returns the values
    /// bound at variable positions (in order).
    pub fn matches(&self, line: &str) -> Option<Vec<String>> {
        let toks = tokenize_with_text(line);
        if toks.len() != self.tokens.len() {
            return None;
        }
        let mut fields = Vec::new();
        for ((tok, text), pat) in toks.into_iter().zip(&self.tokens) {
            match (pat, &tok) {
                (Tok::Lit(a), Tok::Lit(b)) if a == b => {}
                (Tok::Num, Tok::Num)
                | (Tok::Hex, Tok::Hex)
                | (Tok::Mixed, Tok::Mixed)
                | (Tok::Str, Tok::Str) => fields.push(text),
                // <HEX> positions also accept pure numbers (a digit run is
                // valid hexadecimal).
                (Tok::Hex, Tok::Num) => fields.push(text),
                (Tok::Var, _) => fields.push(text),
                _ => return None,
            }
        }
        Some(fields)
    }

    /// Fraction of tokens that are literals — the specificity term of the
    /// score function.
    pub fn specificity(&self) -> f64 {
        if self.tokens.is_empty() {
            return 0.0;
        }
        let lits = self.tokens.iter().filter(|t| matches!(t, Tok::Lit(_))).count();
        lits as f64 / self.tokens.len() as f64
    }

    /// Number of variable positions (extractable fields).
    pub fn arity(&self) -> usize {
        self.tokens.iter().filter(|t| !matches!(t, Tok::Lit(_))).count()
    }
}

impl fmt::Display for Template {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.tokens.iter().map(Tok::to_string).collect();
        write!(f, "{}", parts.join(" "))
    }
}

fn classify(word: &str) -> Tok {
    let is_num = !word.is_empty()
        && word
            .chars()
            .all(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | ':' | ',' | '%'))
        && word.chars().any(|c| c.is_ascii_digit());
    if is_num {
        return Tok::Num;
    }
    let is_hex = word.len() >= 4
        && word.chars().all(|c| c.is_ascii_hexdigit())
        && word.chars().any(|c| c.is_ascii_digit());
    if is_hex {
        return Tok::Hex;
    }
    if word.len() >= 2 && word.starts_with('"') && word.ends_with('"') {
        return Tok::Str;
    }
    // Mixed alphanumerics ("node3", "req-17a"): variable identifiers.
    if word.chars().any(|c| c.is_ascii_digit()) && word.chars().any(|c| c.is_alphabetic()) {
        return Tok::Mixed;
    }
    Tok::Lit(word.to_string())
}

fn split_words(line: &str) -> Vec<String> {
    // Whitespace split, keeping quoted spans together.
    let mut words = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    for c in line.trim().chars() {
        match c {
            '"' => {
                in_quotes = !in_quotes;
                cur.push(c);
            }
            c if c.is_whitespace() && !in_quotes => {
                if !cur.is_empty() {
                    words.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        words.push(cur);
    }
    words
}

fn tokenize(line: &str) -> Vec<Tok> {
    split_words(line).iter().map(|w| classify(w)).collect()
}

fn tokenize_with_text(line: &str) -> Vec<(Tok, String)> {
    split_words(line).into_iter().map(|w| (classify(&w), w)).collect()
}

/// Extraction configuration.
#[derive(Debug, Clone, Copy)]
pub struct DatamaranConfig {
    /// Minimum fraction of record-start lines a template must cover.
    pub min_coverage: f64,
    /// Run the one-position generalization refinement.
    pub refine: bool,
}

impl Default for DatamaranConfig {
    fn default() -> Self {
        DatamaranConfig { min_coverage: 0.05, refine: true }
    }
}

/// A learned template with its observed coverage and score.
#[derive(Debug, Clone)]
pub struct ScoredTemplate {
    /// The template.
    pub template: Template,
    /// Fraction of record-start lines it covers.
    pub coverage: f64,
    /// coverage × specificity.
    pub score: f64,
}

/// One extracted record.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    /// Index of the matched template in [`ExtractionResult::templates`].
    pub template: usize,
    /// Field values at the template's variable positions.
    pub fields: Vec<String>,
    /// Continuation lines attached to this record.
    pub continuation: Vec<String>,
}

/// Output of [`Datamaran::extract_records`].
#[derive(Debug, Clone)]
pub struct ExtractionResult {
    /// Learned templates, best score first.
    pub templates: Vec<ScoredTemplate>,
    /// Parsed records.
    pub records: Vec<LogRecord>,
    /// Record-start lines no template matched.
    pub unmatched: usize,
}

/// The DATAMARAN extractor.
#[derive(Debug, Clone, Default)]
pub struct Datamaran {
    /// Configuration.
    pub config: DatamaranConfig,
}

impl Datamaran {
    /// An extractor with the given config.
    pub fn new(config: DatamaranConfig) -> Datamaran {
        Datamaran { config }
    }

    /// Learn structure templates from raw log lines.
    pub fn learn_templates(&self, lines: &[String]) -> Vec<ScoredTemplate> {
        // Step 1: candidate generation over record-start lines.
        let starts: Vec<&String> = lines
            .iter()
            .filter(|l| is_record_start(l))
            .collect();
        if starts.is_empty() {
            return Vec::new();
        }
        let mut counts: BTreeMap<Template, usize> = BTreeMap::new();
        for line in &starts {
            *counts.entry(Template::of_line(line)).or_insert(0) += 1;
        }
        // Coverage threshold.
        let total = starts.len() as f64;
        let mut kept: Vec<(Template, usize)> = counts
            .into_iter()
            .filter(|(_, n)| *n as f64 / total >= self.config.min_coverage)
            .collect();

        // Step 3: refinement — merge templates differing in one position.
        if self.config.refine {
            kept = refine(kept);
        }

        // Step 2 (scoring happens after refinement so merged coverage counts).
        let mut scored: Vec<ScoredTemplate> = kept
            .into_iter()
            .map(|(template, n)| {
                let coverage = n as f64 / total;
                let score = coverage * (0.5 + 0.5 * template.specificity());
                ScoredTemplate { template, coverage, score }
            })
            .collect();
        scored.sort_by(|a, b| b.score.total_cmp(&a.score));
        scored
    }

    /// Learn templates, then parse the log into records.
    pub fn extract_records(&self, lines: &[String]) -> ExtractionResult {
        let templates = self.learn_templates(lines);
        let mut records: Vec<LogRecord> = Vec::new();
        let mut unmatched = 0usize;
        for line in lines {
            if is_record_start(line) {
                let hit = templates
                    .iter()
                    .enumerate()
                    .find_map(|(i, t)| t.template.matches(line).map(|f| (i, f)));
                match hit {
                    Some((template, fields)) => {
                        records.push(LogRecord { template, fields, continuation: Vec::new() })
                    }
                    None => unmatched += 1,
                }
            } else if let Some(rec) = records.last_mut() {
                rec.continuation.push(line.trim().to_string());
            }
        }
        ExtractionResult { templates, records, unmatched }
    }
}

/// Unindented non-empty lines start records; indented lines continue them.
fn is_record_start(line: &str) -> bool {
    !line.is_empty() && !line.starts_with(' ') && !line.starts_with('\t')
}

/// Merge templates that differ in exactly one position (same length),
/// generalizing the position to [`Tok::Var`]; iterate to fixpoint.
fn refine(mut templates: Vec<(Template, usize)>) -> Vec<(Template, usize)> {
    loop {
        let mut merged = false;
        'outer: for i in 0..templates.len() {
            for j in i + 1..templates.len() {
                let (a, b) = (&templates[i].0, &templates[j].0);
                if a.tokens.len() != b.tokens.len() {
                    continue;
                }
                let diffs: Vec<usize> = (0..a.tokens.len())
                    .filter(|&k| a.tokens[k] != b.tokens[k])
                    .collect();
                if diffs.len() == 1 {
                    let mut t = a.clone();
                    t.tokens[diffs[0]] = Tok::Var;
                    let n = templates[i].1 + templates[j].1;
                    templates.remove(j);
                    templates.remove(i);
                    // Merge with an existing identical template if present.
                    if let Some(existing) = templates.iter_mut().find(|(e, _)| *e == t) {
                        existing.1 += n;
                    } else {
                        templates.push((t, n));
                    }
                    merged = true;
                    break 'outer;
                }
            }
        }
        if !merged {
            return templates;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(texts: &[&str]) -> Vec<String> {
        texts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn tokenizer_classifies() {
        assert_eq!(classify("2024-01-02"), Tok::Num);
        assert_eq!(classify("12:30:01"), Tok::Num);
        assert_eq!(classify("deadbeef12"), Tok::Hex);
        assert_eq!(classify("\"hello world\""), Tok::Str);
        assert_eq!(classify("ERROR"), Tok::Lit("ERROR".into()));
        // Quoted spans hold together.
        let toks = tokenize(r#"a "b c" d"#);
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1], Tok::Str);
    }

    #[test]
    fn learns_dominant_template() {
        let log = lines(&[
            "2024-01-01 12:00:00 INFO user 101 logged in",
            "2024-01-01 12:00:05 INFO user 102 logged in",
            "2024-01-01 12:00:09 INFO user 103 logged in",
        ]);
        let d = Datamaran::default();
        let ts = d.learn_templates(&log);
        assert_eq!(ts.len(), 1);
        assert!((ts[0].coverage - 1.0).abs() < 1e-9);
        assert_eq!(ts[0].template.to_string(), "<NUM> <NUM> INFO user <NUM> logged in");
        assert_eq!(ts[0].template.arity(), 3);
    }

    #[test]
    fn refinement_merges_near_identical_templates() {
        // INFO vs WARN differ in one literal position → generalize to <VAR>.
        let log = lines(&[
            "2024-01-01 12:00:00 INFO start",
            "2024-01-01 12:00:01 WARN start",
            "2024-01-01 12:00:02 INFO start",
            "2024-01-01 12:00:03 WARN start",
        ]);
        let d = Datamaran::new(DatamaranConfig { min_coverage: 0.2, refine: true });
        let ts = d.learn_templates(&log);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].template.to_string(), "<NUM> <NUM> <VAR> start");

        // Without refinement, both survive.
        let d2 = Datamaran::new(DatamaranConfig { min_coverage: 0.2, refine: false });
        assert_eq!(d2.learn_templates(&log).len(), 2);
    }

    #[test]
    fn coverage_threshold_prunes_rare_shapes() {
        let mut texts = vec!["2024 INFO ok"; 19];
        texts.push("totally different line here now");
        let d = Datamaran::new(DatamaranConfig { min_coverage: 0.10, refine: false });
        let ts = d.learn_templates(&lines(&texts));
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn multiline_records_attach_continuations() {
        let log = lines(&[
            "2024-01-01 ERROR boom",
            "  at frame_one",
            "  at frame_two",
            "2024-01-02 ERROR bang",
            "  at frame_three",
        ]);
        let d = Datamaran::default();
        let r = d.extract_records(&log);
        assert_eq!(r.records.len(), 2);
        assert_eq!(r.records[0].continuation.len(), 2);
        assert_eq!(r.records[1].continuation, vec!["at frame_three"]);
        assert_eq!(r.unmatched, 0);
    }

    #[test]
    fn extracted_fields_carry_values() {
        let log = lines(&[
            "2024-01-01 12:00:00 INFO user 101 logged in",
            "2024-01-01 12:00:05 INFO user 102 logged in",
        ]);
        let r = Datamaran::default().extract_records(&log);
        assert_eq!(r.records[0].fields, vec!["2024-01-01", "12:00:00", "101"]);
        assert_eq!(r.records[1].fields[2], "102");
    }

    #[test]
    fn template_match_rejects_different_shapes() {
        let t = Template::of_line("a 1 b");
        assert!(t.matches("a 2 b").is_some());
        assert!(t.matches("a x b").is_none());
        assert!(t.matches("a 2").is_none());
        assert!(t.matches("a 2 b c").is_none());
    }

    #[test]
    fn empty_log_is_fine() {
        let d = Datamaran::default();
        let r = d.extract_records(&[]);
        assert!(r.templates.is_empty());
        assert!(r.records.is_empty());
    }
}
