//! # lake-ingest
//!
//! The ingestion tier (survey §5): during or right after loading raw data,
//! extract as much metadata as possible and model it, lest the lake become
//! a data swamp.
//!
//! Metadata **extraction** (§5.1):
//! * [`gemms`] — GEMMS: format detection → parser → structural metadata
//!   (tree-structure inference over semi-structured data, breadth-first)
//!   plus metadata properties, stored in an extensible metamodel.
//! * [`datamaran`] — DATAMARAN: unsupervised structure extraction from
//!   multi-line log files (candidate templates → coverage pruning → score
//!   refinement).
//! * [`skluma`] — Skluma: content/context profiling of heterogeneous
//!   science files (name/size/extension, type-specific extractors, null
//!   analysis, topic tags).
//!
//! Metadata **modeling** (§5.2):
//! * [`model::generic`] — the GEMMS generic metamodel (content, semantic
//!   and structural metadata; key-value properties; ontology annotations).
//! * [`model::handle`] — HANDLE's three-entity (data/metadata/property)
//!   graph model with zone support.
//! * [`model::vault`] — Data Vault (hubs, links, satellites) derived from
//!   table schemata, with relational materialization.
//! * [`model::graphmeta`] — graph-based metamodels: Diamantini-style
//!   lexical node merging and Sawadogo-style versioning/usage tracking.

pub mod datamaran;
pub mod gemms;
pub mod model;
pub mod skluma;
pub mod stream;

pub use datamaran::{Datamaran, DatamaranConfig, Template};
pub use gemms::{Gemms, StructuralMetadata, TreeNode};
pub use skluma::{FileProfile, Skluma};
