//! HANDLE: a generic metadata model for data lakes (§5.2.1).
//!
//! "It has three abstract entities: data, metadata, and property. HANDLE
//! enables flexibility with fine-grained levels, and it adapts the zone
//! architecture … the elements of the GEMMS model can also be mapped to
//! HANDLE. Finally, HANDLE can be used for linked data and can be
//! implemented in Neo4j."
//!
//! Implemented as a typed layer over [`PropertyGraph`]: `Data` nodes can
//! model any granularity (a lake, a dataset, a column, a single cell),
//! `Metadata` nodes attach to data nodes via `describes` edges, `Property`
//! nodes hang off metadata via `has_property`, and zones are `Zone` nodes
//! linked by `in_zone`.

use lake_core::{LakeError, NodeId, PropertyGraph, Result, Value};

/// Granularity of a data node — HANDLE's "fine-grained levels".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// The whole lake.
    Lake,
    /// One dataset.
    Dataset,
    /// One attribute/column.
    Attribute,
    /// One value/cell.
    Value,
}

impl Granularity {
    fn name(self) -> &'static str {
        match self {
            Granularity::Lake => "lake",
            Granularity::Dataset => "dataset",
            Granularity::Attribute => "attribute",
            Granularity::Value => "value",
        }
    }
}

/// A HANDLE metadata graph.
#[derive(Debug, Clone, Default)]
pub struct HandleModel {
    graph: PropertyGraph,
}

impl HandleModel {
    /// An empty model.
    pub fn new() -> HandleModel {
        HandleModel::default()
    }

    /// Add a data node at a given granularity.
    pub fn add_data(&mut self, name: &str, granularity: Granularity) -> NodeId {
        self.graph.add_node_with(
            "Data",
            vec![
                ("name", Value::str(name)),
                ("granularity", Value::str(granularity.name())),
            ],
        )
    }

    /// Nest one data node under another (e.g. attribute under dataset).
    pub fn contain(&mut self, parent: NodeId, child: NodeId) {
        self.graph.add_edge(parent, child, "contains");
    }

    /// Attach a metadata node of a given category to a data node.
    pub fn add_metadata(&mut self, data: NodeId, category: &str) -> NodeId {
        let m = self
            .graph
            .add_node_with("Metadata", vec![("category", Value::str(category))]);
        self.graph.add_edge(m, data, "describes");
        m
    }

    /// Attach a property (key-value) to a metadata node.
    pub fn add_property(&mut self, metadata: NodeId, key: &str, value: Value) -> NodeId {
        let p = self
            .graph
            .add_node_with("Property", vec![("key", Value::str(key)), ("value", value)]);
        self.graph.add_edge(metadata, p, "has_property");
        p
    }

    /// Declare a zone (the zone-architecture adaptation).
    pub fn add_zone(&mut self, name: &str) -> NodeId {
        self.graph.add_node_with("Zone", vec![("name", Value::str(name))])
    }

    /// Place a data node in a zone (replacing any previous placement is
    /// modeled by adding the newer edge; [`Self::zone_of`] returns the
    /// latest).
    pub fn place_in_zone(&mut self, data: NodeId, zone: NodeId) {
        self.graph.add_edge(data, zone, "in_zone");
    }

    /// The latest zone of a data node.
    pub fn zone_of(&self, data: NodeId) -> Option<String> {
        self.graph
            .out_edges(data)
            .filter(|e| e.label == "in_zone")
            .last()
            .and_then(|e| self.graph.node(e.to).props.get("name"))
            .and_then(|v| v.as_str().map(str::to_string))
    }

    /// All metadata categories attached to a data node.
    pub fn metadata_of(&self, data: NodeId) -> Vec<String> {
        let mut v: Vec<String> = self
            .graph
            .in_edges(data)
            .filter(|e| e.label == "describes")
            .filter_map(|e| self.graph.node(e.from).props.get("category"))
            .filter_map(|c| c.as_str().map(str::to_string))
            .collect();
        v.sort();
        v
    }

    /// Properties of a metadata node as `(key, value)` pairs.
    pub fn properties_of(&self, metadata: NodeId) -> Vec<(String, Value)> {
        self.graph
            .out_edges(metadata)
            .filter(|e| e.label == "has_property")
            .filter_map(|e| {
                let n = self.graph.node(e.to);
                let k = n.props.get("key")?.as_str()?.to_string();
                let v = n.props.get("value")?.clone();
                Some((k, v))
            })
            .collect()
    }

    /// Find a data node by name.
    pub fn find_data(&self, name: &str) -> Result<NodeId> {
        self.graph
            .nodes_with_label("Data")
            .find(|&id| self.graph.node(id).props.get("name") == Some(&Value::str(name)))
            .ok_or_else(|| LakeError::not_found(format!("data node {name}")))
    }

    /// Children contained in a data node.
    pub fn children_of(&self, data: NodeId) -> Vec<NodeId> {
        self.graph
            .out_edges(data)
            .filter(|e| e.label == "contains")
            .map(|e| e.to)
            .collect()
    }

    /// The underlying graph (e.g. to hand to the graph store — "HANDLE can
    /// be implemented in Neo4j").
    pub fn graph(&self) -> &PropertyGraph {
        &self.graph
    }

    /// Map a GEMMS entry into HANDLE (the survey notes GEMMS ⊆ HANDLE):
    /// properties become a "general" metadata node's properties; semantic
    /// annotations become "semantic" metadata on attribute-level children.
    pub fn import_gemms(
        &mut self,
        dataset_name: &str,
        entry: &super::generic::MetadataEntry,
    ) -> NodeId {
        let data = self.add_data(dataset_name, Granularity::Dataset);
        let general = self.add_metadata(data, "general");
        for (k, v) in &entry.properties {
            self.add_property(general, k, Value::str(v.clone()));
        }
        for ann in &entry.semantics {
            let attr = self.add_data(&format!("{dataset_name}.{}", ann.element), Granularity::Attribute);
            self.contain(data, attr);
            let sem = self.add_metadata(attr, "semantic");
            self.add_property(sem, "term", Value::str(ann.term.clone()));
            self.add_property(sem, "ontology", Value::str(ann.ontology.clone()));
        }
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_metadata_property_chain() {
        let mut h = HandleModel::new();
        let ds = h.add_data("sales", Granularity::Dataset);
        let md = h.add_metadata(ds, "general");
        h.add_property(md, "rows", Value::Int(100));
        h.add_property(md, "owner", Value::str("ops"));
        assert_eq!(h.metadata_of(ds), vec!["general"]);
        let props = h.properties_of(md);
        assert!(props.contains(&("rows".to_string(), Value::Int(100))));
        assert_eq!(props.len(), 2);
    }

    #[test]
    fn fine_grained_levels_nest() {
        let mut h = HandleModel::new();
        let ds = h.add_data("sales", Granularity::Dataset);
        let col = h.add_data("sales.city", Granularity::Attribute);
        h.contain(ds, col);
        assert_eq!(h.children_of(ds), vec![col]);
        let md = h.add_metadata(col, "semantic");
        h.add_property(md, "term", Value::str("schema:City"));
        assert_eq!(h.metadata_of(col), vec!["semantic"]);
    }

    #[test]
    fn zones_track_latest_placement() {
        let mut h = HandleModel::new();
        let ds = h.add_data("sales", Granularity::Dataset);
        let raw = h.add_zone("raw");
        let trusted = h.add_zone("trusted");
        h.place_in_zone(ds, raw);
        assert_eq!(h.zone_of(ds).as_deref(), Some("raw"));
        h.place_in_zone(ds, trusted);
        assert_eq!(h.zone_of(ds).as_deref(), Some("trusted"));
    }

    #[test]
    fn find_data_by_name() {
        let mut h = HandleModel::new();
        h.add_data("a", Granularity::Dataset);
        let b = h.add_data("b", Granularity::Dataset);
        assert_eq!(h.find_data("b").unwrap(), b);
        assert!(h.find_data("zz").is_err());
    }

    #[test]
    fn gemms_entries_map_into_handle() {
        use super::super::generic::GenericMetamodel;
        let mut g = GenericMetamodel::new();
        let id = lake_core::DatasetId(1);
        g.set_property(id, "format", "csv");
        g.annotate(id, "city", "schema.org", "schema:City");
        let mut h = HandleModel::new();
        let data = h.import_gemms("sales", g.entry(id).unwrap());
        assert_eq!(h.metadata_of(data), vec!["general"]);
        assert_eq!(h.children_of(data).len(), 1);
        let attr = h.children_of(data)[0];
        assert_eq!(h.metadata_of(attr), vec!["semantic"]);
    }
}
