//! The personal data lake (Walker & Alrehamy, §4.2).
//!
//! "Heterogeneous personal data fragments generated from user-web
//! interaction (structured, semi-structured, unstructured) are serialized
//! to specifically defined JSON objects. These are flattened to Neo4j
//! graph structures with extensible metadata management in the data lake,
//! categorizing for kinds of data: raw data, metadata, additional
//! semantics, and the data fragment identifiers."
//!
//! [`PersonalLake::ingest_fragment`] performs that flattening: each
//! fragment gets an identifier node, a raw-data subtree (one node per
//! scalar leaf), a metadata node (origin/kind/tick), and optional semantic
//! annotation nodes — all in one property graph that the graph store can
//! hold.

use lake_core::{Json, NodeId, PropertyGraph, Value};

/// The four node categories of the personal-lake graph model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FragmentCategory {
    /// The fragment identifier node.
    Identifier,
    /// Raw-data leaf nodes.
    RawData,
    /// Metadata nodes (origin, kind, time).
    Metadata,
    /// Additional semantics (user/AI annotations).
    Semantics,
}

impl FragmentCategory {
    /// Graph node label.
    pub fn label(self) -> &'static str {
        match self {
            FragmentCategory::Identifier => "FragmentId",
            FragmentCategory::RawData => "RawData",
            FragmentCategory::Metadata => "Metadata",
            FragmentCategory::Semantics => "Semantics",
        }
    }
}

/// A personal data lake over one property graph.
#[derive(Debug, Default)]
pub struct PersonalLake {
    graph: PropertyGraph,
    fragments: Vec<NodeId>,
}

impl PersonalLake {
    /// An empty personal lake.
    pub fn new() -> PersonalLake {
        PersonalLake::default()
    }

    /// Ingest one JSON fragment captured from a user-web interaction.
    /// Returns the fragment's identifier node.
    pub fn ingest_fragment(
        &mut self,
        origin: &str,
        kind: &str,
        tick: u64,
        fragment: &Json,
    ) -> NodeId {
        let frag_id = self.fragments.len();
        let id_node = self.graph.add_node_with(
            FragmentCategory::Identifier.label(),
            vec![("fragment", Value::Int(frag_id as i64))],
        );
        self.fragments.push(id_node);

        // Metadata node.
        let meta = self.graph.add_node_with(
            FragmentCategory::Metadata.label(),
            vec![
                ("origin", Value::str(origin)),
                ("kind", Value::str(kind)),
                ("tick", Value::Int(tick as i64)),
            ],
        );
        self.graph.add_edge(id_node, meta, "has_metadata");

        // Raw data: one node per flattened scalar leaf.
        for (path, value) in fragment.flatten() {
            let leaf = self.graph.add_node_with(
                FragmentCategory::RawData.label(),
                vec![("path", Value::str(path)), ("value", value)],
            );
            self.graph.add_edge(id_node, leaf, "has_data");
        }
        id_node
    }

    /// Attach a semantic annotation to a fragment.
    pub fn annotate(&mut self, fragment: NodeId, concept: &str, by: &str) {
        let sem = self.graph.add_node_with(
            FragmentCategory::Semantics.label(),
            vec![("concept", Value::str(concept)), ("by", Value::str(by))],
        );
        self.graph.add_edge(fragment, sem, "has_semantics");
    }

    /// All raw `(path, value)` pairs of a fragment.
    pub fn raw_data(&self, fragment: NodeId) -> Vec<(String, Value)> {
        self.graph
            .out_edges(fragment)
            .filter(|e| e.label == "has_data")
            .filter_map(|e| {
                let n = self.graph.node(e.to);
                Some((
                    n.props.get("path")?.as_str()?.to_string(),
                    n.props.get("value")?.clone(),
                ))
            })
            .collect()
    }

    /// Fragments annotated with a concept.
    pub fn fragments_with_concept(&self, concept: &str) -> Vec<NodeId> {
        self.fragments
            .iter()
            .copied()
            .filter(|&f| {
                self.graph.out_edges(f).any(|e| {
                    e.label == "has_semantics"
                        && self.graph.node(e.to).props.get("concept")
                            == Some(&Value::str(concept))
                })
            })
            .collect()
    }

    /// Fragments whose raw data contains a value rendering to `needle`
    /// (the privacy-relevant "where does my data mention X" query).
    pub fn fragments_mentioning(&self, needle: &str) -> Vec<NodeId> {
        self.fragments
            .iter()
            .copied()
            .filter(|&f| {
                self.raw_data(f)
                    .iter()
                    .any(|(_, v)| v.render().contains(needle))
            })
            .collect()
    }

    /// Number of fragments.
    pub fn len(&self) -> usize {
        self.fragments.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.fragments.is_empty()
    }

    /// The underlying graph (storable in the graph store, "implemented in
    /// Neo4j").
    pub fn graph(&self) -> &PropertyGraph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lake_formats::json::parse;

    fn lake() -> (PersonalLake, NodeId, NodeId) {
        let mut pl = PersonalLake::new();
        let browse = pl.ingest_fragment(
            "browser",
            "visit",
            1,
            &parse(r#"{"url": "shop.example", "item": {"name": "laptop", "price": 999}}"#).unwrap(),
        );
        let mail = pl.ingest_fragment(
            "email",
            "receipt",
            2,
            &parse(r#"{"from": "shop.example", "total": 999}"#).unwrap(),
        );
        (pl, browse, mail)
    }

    #[test]
    fn fragments_flatten_to_all_four_categories() {
        let (pl, browse, _) = lake();
        assert_eq!(pl.len(), 2);
        let g = pl.graph();
        assert!(g.nodes_with_label("FragmentId").count() == 2);
        assert!(g.nodes_with_label("Metadata").count() == 2);
        assert!(g.nodes_with_label("RawData").count() >= 5);
        let raw = pl.raw_data(browse);
        assert!(raw.iter().any(|(p, v)| p == "item.price" && *v == Value::Int(999)));
    }

    #[test]
    fn semantic_annotations_are_queryable() {
        let (mut pl, browse, mail) = lake();
        pl.annotate(browse, "Purchase", "ai-tagger");
        pl.annotate(mail, "Purchase", "user");
        pl.annotate(mail, "Finance", "user");
        assert_eq!(pl.fragments_with_concept("Purchase").len(), 2);
        assert_eq!(pl.fragments_with_concept("Finance"), vec![mail]);
        assert!(pl.fragments_with_concept("Travel").is_empty());
    }

    #[test]
    fn privacy_queries_find_mentions() {
        let (pl, browse, mail) = lake();
        let hits = pl.fragments_mentioning("shop.example");
        assert_eq!(hits, vec![browse, mail]);
        assert!(pl.fragments_mentioning("nothere").is_empty());
    }

    #[test]
    fn graph_is_storable_in_the_graph_store() {
        let (pl, _, _) = lake();
        let store = lake_store_stub();
        store.put_graph("personal", pl.graph().clone());
        assert_eq!(store.get_graph("personal").unwrap().node_count(), pl.graph().node_count());

        // Minimal in-test stand-in to avoid a dev-dependency cycle.
        fn lake_store_stub() -> GraphStoreStub {
            GraphStoreStub::default()
        }
        #[derive(Default)]
        struct GraphStoreStub {
            g: std::cell::RefCell<Option<PropertyGraph>>,
        }
        impl GraphStoreStub {
            fn put_graph(&self, _n: &str, g: PropertyGraph) {
                *self.g.borrow_mut() = Some(g);
            }
            fn get_graph(&self, _n: &str) -> Option<PropertyGraph> {
                self.g.borrow().clone()
            }
        }
    }
}
