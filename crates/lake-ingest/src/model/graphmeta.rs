//! Graph-based metamodels (§5.2.3) beyond Aurum's EKG (which lives in
//! `lake-discovery`, where it is built):
//!
//! * **Diamantini-style semantic network** — nodes for datasets and their
//!   fields, labeled arcs for structure, lexical merging of field nodes
//!   whose names are string-similar, and *thematic views* (the subgraph
//!   reachable from a topic node).
//! * **Sawadogo-style evolution features** — the six features their model
//!   supports: semantic enrichment (term tags), data indexing (inverted
//!   term index), link generation (similarity edges), data polymorphism
//!   (multiple stored forms of one dataset), data versioning, and usage
//!   tracking (access logs). Implemented as [`EvolutionMetadata`].

use lake_core::{DatasetId, NodeId, PropertyGraph, Value};
use lake_index::qgram::qgram_similarity;
use std::collections::BTreeMap;

/// The Diamantini-style network metadata model.
#[derive(Debug, Clone, Default)]
pub struct SemanticNetwork {
    /// Underlying labeled graph.
    pub graph: PropertyGraph,
    field_nodes: Vec<(String, NodeId)>,
}

impl SemanticNetwork {
    /// An empty network.
    pub fn new() -> SemanticNetwork {
        SemanticNetwork::default()
    }

    /// Add a dataset node with labeled field arcs.
    pub fn add_dataset(&mut self, name: &str, fields: &[&str]) -> NodeId {
        let ds = self
            .graph
            .add_node_with("Source", vec![("name", Value::str(name))]);
        for f in fields {
            let fnode = self
                .graph
                .add_node_with("Field", vec![("name", Value::str(*f))]);
            self.graph.add_edge(ds, fnode, "has_field");
            self.field_nodes.push((f.to_string(), fnode));
        }
        ds
    }

    /// Merge lexically similar field nodes: add `same_as` edges between
    /// field nodes whose name q-gram similarity ≥ `threshold`. Returns the
    /// number of merges.
    pub fn merge_lexically_similar(&mut self, threshold: f64) -> usize {
        let mut merges = 0;
        let nodes = self.field_nodes.clone();
        for i in 0..nodes.len() {
            for j in i + 1..nodes.len() {
                let (na, a) = &nodes[i];
                let (nb, b) = &nodes[j];
                if a != b && qgram_similarity(na, nb, 3) >= threshold {
                    self.graph.add_edge(*a, *b, "same_as");
                    self.graph.add_edge(*b, *a, "same_as");
                    merges += 1;
                }
            }
        }
        merges
    }

    /// Link a field to external semantic knowledge (e.g. DBpedia).
    pub fn link_semantic(&mut self, field: NodeId, kb: &str, concept: &str) {
        let c = self.graph.add_node_with(
            "Concept",
            vec![("kb", Value::str(kb)), ("name", Value::str(concept))],
        );
        self.graph.add_edge(field, c, "means");
    }

    /// A *thematic view*: names of all sources whose fields reach a
    /// concept named `topic` via `means`/`same_as` edges.
    pub fn thematic_view(&self, topic: &str) -> Vec<String> {
        // Find concept nodes with the topic name.
        let mut out = Vec::new();
        for ds in self.graph.nodes_with_label("Source") {
            let reaches = self.graph.bfs(ds, |_| true).into_iter().any(|n| {
                self.graph.node(n).label == "Concept"
                    && self.graph.node(n).props.get("name") == Some(&Value::str(topic))
            });
            if reaches {
                if let Some(Value::Str(name)) = self.graph.node(ds).props.get("name") {
                    out.push(name.clone());
                }
            }
        }
        out.sort();
        out
    }

    /// All field node ids for a given field name.
    pub fn fields_named(&self, name: &str) -> Vec<NodeId> {
        self.field_nodes
            .iter()
            .filter(|(n, _)| n == name)
            .map(|&(_, id)| id)
            .collect()
    }
}

/// One stored representation of a dataset (data polymorphism).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredForm {
    /// Format name ("csv", "pql", …).
    pub format: String,
    /// Storage location.
    pub location: String,
}

/// Sawadogo-style evolution-oriented metadata for one lake.
#[derive(Debug, Clone, Default)]
pub struct EvolutionMetadata {
    /// Semantic enrichment: dataset → tags.
    tags: BTreeMap<DatasetId, Vec<String>>,
    /// Data indexing: term → datasets.
    term_index: BTreeMap<String, Vec<DatasetId>>,
    /// Link generation: similarity edges between datasets.
    links: Vec<(DatasetId, DatasetId, f64)>,
    /// Data polymorphism: dataset → stored forms.
    forms: BTreeMap<DatasetId, Vec<StoredForm>>,
    /// Versioning: dataset → version descriptions (monotone).
    versions: BTreeMap<DatasetId, Vec<String>>,
    /// Usage tracking: dataset → (logical time, user) accesses.
    usage: BTreeMap<DatasetId, Vec<(u64, String)>>,
}

impl EvolutionMetadata {
    /// An empty store.
    pub fn new() -> EvolutionMetadata {
        EvolutionMetadata::default()
    }

    /// Tag a dataset and index the term.
    pub fn enrich(&mut self, ds: DatasetId, term: &str) {
        self.tags.entry(ds).or_default().push(term.to_string());
        let list = self.term_index.entry(term.to_string()).or_default();
        if !list.contains(&ds) {
            list.push(ds);
        }
    }

    /// Datasets indexed under a term.
    pub fn lookup(&self, term: &str) -> &[DatasetId] {
        self.term_index.get(term).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Record a similarity link.
    pub fn add_link(&mut self, a: DatasetId, b: DatasetId, similarity: f64) {
        self.links.push((a.min(b), a.max(b), similarity));
    }

    /// Links involving a dataset.
    pub fn links_of(&self, ds: DatasetId) -> Vec<(DatasetId, f64)> {
        self.links
            .iter()
            .filter_map(|&(a, b, s)| {
                if a == ds {
                    Some((b, s))
                } else if b == ds {
                    Some((a, s))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Register a stored form (polymorphism: the same dataset as CSV and
    /// as columnar binary, say).
    pub fn add_form(&mut self, ds: DatasetId, format: &str, location: &str) {
        self.forms.entry(ds).or_default().push(StoredForm {
            format: format.to_string(),
            location: location.to_string(),
        });
    }

    /// Stored forms of a dataset.
    pub fn forms_of(&self, ds: DatasetId) -> &[StoredForm] {
        self.forms.get(&ds).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Append a version description; returns the new version number (1-based).
    pub fn add_version(&mut self, ds: DatasetId, description: &str) -> usize {
        let v = self.versions.entry(ds).or_default();
        v.push(description.to_string());
        v.len()
    }

    /// Version history of a dataset.
    pub fn versions_of(&self, ds: DatasetId) -> &[String] {
        self.versions.get(&ds).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Record an access.
    pub fn track_usage(&mut self, ds: DatasetId, tick: u64, user: &str) {
        self.usage.entry(ds).or_default().push((tick, user.to_string()));
    }

    /// Access count of a dataset.
    pub fn usage_count(&self, ds: DatasetId) -> usize {
        self.usage.get(&ds).map_or(0, Vec::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexical_merge_connects_similar_fields() {
        let mut net = SemanticNetwork::new();
        net.add_dataset("a", &["customer_id", "city"]);
        net.add_dataset("b", &["customer_ids", "color"]);
        let merges = net.merge_lexically_similar(0.6);
        assert_eq!(merges, 1);
        let f = net.fields_named("customer_id")[0];
        assert!(net.graph.out_edges(f).any(|e| e.label == "same_as"));
    }

    #[test]
    fn thematic_view_follows_semantics() {
        let mut net = SemanticNetwork::new();
        net.add_dataset("sales", &["city"]);
        net.add_dataset("hr", &["salary"]);
        let city_field = net.fields_named("city")[0];
        net.link_semantic(city_field, "dbpedia", "Place");
        assert_eq!(net.thematic_view("Place"), vec!["sales"]);
        assert!(net.thematic_view("Nothing").is_empty());
    }

    #[test]
    fn thematic_view_crosses_same_as_edges() {
        let mut net = SemanticNetwork::new();
        net.add_dataset("a", &["city"]);
        net.add_dataset("b", &["citys"]);
        net.merge_lexically_similar(0.4);
        let f = net.fields_named("city")[0];
        net.link_semantic(f, "dbpedia", "Place");
        let view = net.thematic_view("Place");
        assert_eq!(view, vec!["a", "b"]);
    }

    #[test]
    fn evolution_features_roundtrip() {
        let mut em = EvolutionMetadata::new();
        let d1 = DatasetId(1);
        let d2 = DatasetId(2);
        em.enrich(d1, "finance");
        em.enrich(d2, "finance");
        em.enrich(d1, "finance"); // idempotent index
        assert_eq!(em.lookup("finance"), &[d1, d2]);

        em.add_link(d2, d1, 0.8);
        assert_eq!(em.links_of(d1), vec![(d2, 0.8)]);

        em.add_form(d1, "csv", "raw/a.csv");
        em.add_form(d1, "pql", "col/a.pql");
        assert_eq!(em.forms_of(d1).len(), 2);

        assert_eq!(em.add_version(d1, "initial load"), 1);
        assert_eq!(em.add_version(d1, "cleaned nulls"), 2);
        assert_eq!(em.versions_of(d1).len(), 2);

        em.track_usage(d1, 10, "ada");
        em.track_usage(d1, 11, "alan");
        assert_eq!(em.usage_count(d1), 2);
        assert_eq!(em.usage_count(d2), 0);
    }
}
