//! The GEMMS generic metamodel (§5.2.1).
//!
//! "The logic-based metadata model of GEMMS has different model elements
//! and allows the separation of metadata containing information about the
//! content, semantics, and structure. It captures the general metadata
//! properties in the form of key-value pairs, as well as structural
//! metadata as trees and matrices … domain-specific ontology terms can be
//! attached to metadata elements as semantic metadata."

use crate::gemms::StructuralMetadata;
use lake_core::DatasetId;
use std::collections::BTreeMap;

/// A semantic annotation: a metadata element linked to an ontology term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemanticAnnotation {
    /// The annotated element (attribute name, path, or whole dataset `""`).
    pub element: String,
    /// Ontology term IRI/curie (e.g. `schema:City`).
    pub term: String,
    /// The ontology the term belongs to.
    pub ontology: String,
}

/// One dataset's entry in the GEMMS metamodel.
#[derive(Debug, Clone)]
pub struct MetadataEntry {
    /// The dataset this metadata describes.
    pub dataset: DatasetId,
    /// General properties as key-value pairs.
    pub properties: BTreeMap<String, String>,
    /// Structural metadata (tree / schema / graph shape).
    pub structure: Option<StructuralMetadata>,
    /// Semantic annotations.
    pub semantics: Vec<SemanticAnnotation>,
}

/// The metamodel: an extensible registry of per-dataset metadata.
#[derive(Debug, Clone, Default)]
pub struct GenericMetamodel {
    entries: BTreeMap<DatasetId, MetadataEntry>,
}

impl GenericMetamodel {
    /// An empty metamodel.
    pub fn new() -> GenericMetamodel {
        GenericMetamodel::default()
    }

    /// Create (or fetch) the entry for a dataset.
    pub fn entry_mut(&mut self, dataset: DatasetId) -> &mut MetadataEntry {
        self.entries.entry(dataset).or_insert_with(|| MetadataEntry {
            dataset,
            properties: BTreeMap::new(),
            structure: None,
            semantics: Vec::new(),
        })
    }

    /// Read a dataset's entry.
    pub fn entry(&self, dataset: DatasetId) -> Option<&MetadataEntry> {
        self.entries.get(&dataset)
    }

    /// Set a property.
    pub fn set_property(&mut self, dataset: DatasetId, key: &str, value: &str) {
        self.entry_mut(dataset).properties.insert(key.to_string(), value.to_string());
    }

    /// Attach structural metadata.
    pub fn set_structure(&mut self, dataset: DatasetId, structure: StructuralMetadata) {
        self.entry_mut(dataset).structure = Some(structure);
    }

    /// Attach a semantic annotation.
    pub fn annotate(&mut self, dataset: DatasetId, element: &str, ontology: &str, term: &str) {
        self.entry_mut(dataset).semantics.push(SemanticAnnotation {
            element: element.to_string(),
            term: term.to_string(),
            ontology: ontology.to_string(),
        });
    }

    /// All datasets annotated with `term` (queryability of semantics).
    pub fn datasets_with_term(&self, term: &str) -> Vec<DatasetId> {
        self.entries
            .values()
            .filter(|e| e.semantics.iter().any(|a| a.term == term))
            .map(|e| e.dataset)
            .collect()
    }

    /// All datasets whose property `key` equals `value`.
    pub fn datasets_with_property(&self, key: &str, value: &str) -> Vec<DatasetId> {
        self.entries
            .values()
            .filter(|e| e.properties.get(key).map(String::as_str) == Some(value))
            .map(|e| e.dataset)
            .collect()
    }

    /// Number of registered datasets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lake_core::Schema;

    #[test]
    fn properties_structure_and_semantics_coexist() {
        let mut m = GenericMetamodel::new();
        let id = DatasetId(1);
        m.set_property(id, "source", "s3://raw/a.csv");
        m.set_structure(id, StructuralMetadata::Table(Schema::empty()));
        m.annotate(id, "city", "schema.org", "schema:City");
        let e = m.entry(id).unwrap();
        assert_eq!(e.properties["source"], "s3://raw/a.csv");
        assert!(matches!(e.structure, Some(StructuralMetadata::Table(_))));
        assert_eq!(e.semantics.len(), 1);
    }

    #[test]
    fn term_and_property_queries() {
        let mut m = GenericMetamodel::new();
        m.annotate(DatasetId(1), "city", "schema.org", "schema:City");
        m.annotate(DatasetId(2), "town", "schema.org", "schema:City");
        m.annotate(DatasetId(3), "x", "schema.org", "schema:Person");
        m.set_property(DatasetId(1), "zone", "raw");
        m.set_property(DatasetId(3), "zone", "raw");
        assert_eq!(m.datasets_with_term("schema:City"), vec![DatasetId(1), DatasetId(2)]);
        assert_eq!(m.datasets_with_property("zone", "raw"), vec![DatasetId(1), DatasetId(3)]);
        assert!(m.datasets_with_term("schema:Nope").is_empty());
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn entry_is_created_lazily() {
        let mut m = GenericMetamodel::new();
        assert!(m.entry(DatasetId(9)).is_none());
        m.entry_mut(DatasetId(9));
        assert!(m.entry(DatasetId(9)).is_some());
    }
}
