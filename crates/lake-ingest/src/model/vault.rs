//! Data Vault modeling for data lakes (§5.2.2).
//!
//! "It has three main element types: *hubs* representing business
//! concepts, *links* indicating the many-to-many relationships among hubs,
//! and *satellites* with descriptive properties of hubs and links."
//! Nogueira et al. show the conceptual model transforms into relational
//! logical/physical models; [`DataVault::materialize_relational`] performs
//! that transformation (hub/link/satellite tables with hash keys), and
//! [`vault_from_tables`] derives a vault from raw tables the way the
//! Giebler et al. case studies do: unique key columns become hubs,
//! co-occurrence of two hub keys in one table becomes a link, remaining
//! attributes become satellites.

use lake_core::value::fnv1a;
use lake_core::{Column, LakeError, Result, Table, Value};

/// A hub: one business concept, identified by its business key.
#[derive(Debug, Clone, PartialEq)]
pub struct Hub {
    /// Concept name (e.g. `customer`).
    pub name: String,
    /// Business-key attribute name.
    pub business_key: String,
    /// Distinct business-key values observed.
    pub keys: Vec<Value>,
}

/// A link: a many-to-many relationship between two hubs.
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    /// Link name (e.g. `customer_order`).
    pub name: String,
    /// Names of the linked hubs.
    pub hubs: (String, String),
    /// Observed key pairs.
    pub pairs: Vec<(Value, Value)>,
}

/// A satellite: descriptive attributes of one hub.
#[derive(Debug, Clone, PartialEq)]
pub struct Satellite {
    /// Satellite name (e.g. `customer_details_orders`).
    pub name: String,
    /// Owning hub.
    pub hub: String,
    /// Descriptive attribute names.
    pub attributes: Vec<String>,
    /// Rows: business key + attribute values + load source.
    pub rows: Vec<(Value, Vec<Value>, String)>,
}

/// A data vault.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DataVault {
    /// Hubs by insertion order.
    pub hubs: Vec<Hub>,
    /// Links.
    pub links: Vec<Link>,
    /// Satellites.
    pub satellites: Vec<Satellite>,
}

impl DataVault {
    /// Look up a hub by name.
    pub fn hub(&self, name: &str) -> Option<&Hub> {
        self.hubs.iter().find(|h| h.name == name)
    }

    /// Materialize the vault into relational tables (the physical model):
    /// `hub_<name>(hash_key, business_key)`,
    /// `link_<name>(hash_key, hub_a_key, hub_b_key)`,
    /// `sat_<name>(hub_hash_key, attrs…, record_source)`.
    pub fn materialize_relational(&self) -> Vec<Table> {
        let mut out = Vec::new();
        for h in &self.hubs {
            let hashes: Vec<Value> = h.keys.iter().map(|k| Value::Int(hash_key(k) as i64)).collect();
            out.push(
                Table::from_columns(
                    format!("hub_{}", h.name),
                    vec![
                        Column::new("hash_key", hashes),
                        Column::new("business_key", h.keys.clone()),
                    ],
                )
                .expect("equal length"),
            );
        }
        for l in &self.links {
            let mut hk = Vec::new();
            let mut a = Vec::new();
            let mut b = Vec::new();
            for (x, y) in &l.pairs {
                hk.push(Value::Int((hash_key(x) ^ hash_key(y).rotate_left(1)) as i64));
                a.push(Value::Int(hash_key(x) as i64));
                b.push(Value::Int(hash_key(y) as i64));
            }
            out.push(
                Table::from_columns(
                    format!("link_{}", l.name),
                    vec![
                        Column::new("hash_key", hk),
                        Column::new(format!("{}_key", l.hubs.0), a),
                        Column::new(format!("{}_key", l.hubs.1), b),
                    ],
                )
                .expect("equal length"),
            );
        }
        for s in &self.satellites {
            let mut cols: Vec<Column> = Vec::new();
            cols.push(Column::new(
                "hub_hash_key",
                s.rows.iter().map(|(k, _, _)| Value::Int(hash_key(k) as i64)).collect(),
            ));
            for (i, attr) in s.attributes.iter().enumerate() {
                cols.push(Column::new(
                    attr.clone(),
                    s.rows.iter().map(|(_, vs, _)| vs[i].clone()).collect(),
                ));
            }
            cols.push(Column::new(
                "record_source",
                s.rows.iter().map(|(_, _, src)| Value::str(src.clone())).collect(),
            ));
            out.push(Table::from_columns(format!("sat_{}", s.name), cols).expect("equal length"));
        }
        out
    }
}

fn hash_key(v: &Value) -> u64 {
    fnv1a(v.render().as_bytes())
}

/// Derive a vault from raw tables given the business-key columns.
///
/// `hub_keys` maps a hub name to the column name holding its business key.
/// For each input table: every hub whose key column appears contributes its
/// distinct keys; tables containing *two* hub keys yield a link; remaining
/// columns become a satellite on the first matching hub.
pub fn vault_from_tables(tables: &[&Table], hub_keys: &[(&str, &str)]) -> Result<DataVault> {
    let mut vault = DataVault::default();
    for (hub_name, _) in hub_keys {
        vault.hubs.push(Hub {
            name: hub_name.to_string(),
            business_key: String::new(),
            keys: Vec::new(),
        });
    }
    for table in tables {
        // Which hubs does this table mention?
        let present: Vec<(usize, &str)> = hub_keys
            .iter()
            .enumerate()
            .filter_map(|(i, (_, col))| table.column(col).map(|_| (i, *col)))
            .collect();
        if present.is_empty() {
            return Err(LakeError::schema(format!(
                "table {} contains no declared business key",
                table.name
            )));
        }
        // Collect hub keys.
        for &(hi, col) in &present {
            let hub = &mut vault.hubs[hi];
            hub.business_key = col.to_string();
            for v in table.column(col).expect("present").distinct() {
                if !hub.keys.contains(v) {
                    hub.keys.push((*v).clone());
                }
            }
        }
        // A link per hub pair co-occurring in this table.
        for i in 0..present.len() {
            for j in i + 1..present.len() {
                let (ha, ca) = (hub_keys[present[i].0].0, present[i].1);
                let (hb, cb) = (hub_keys[present[j].0].0, present[j].1);
                let mut pairs: Vec<(Value, Value)> = table
                    .column(ca)
                    .expect("present")
                    .values
                    .iter()
                    .zip(&table.column(cb).expect("present").values)
                    .filter(|(a, b)| !a.is_null() && !b.is_null())
                    .map(|(a, b)| (a.clone(), b.clone()))
                    .collect();
                pairs.sort();
                pairs.dedup();
                vault.links.push(Link {
                    name: format!("{ha}_{hb}"),
                    hubs: (ha.to_string(), hb.to_string()),
                    pairs,
                });
            }
        }
        // Satellite: remaining columns attach to the first present hub.
        let key_cols: Vec<&str> = present.iter().map(|&(_, c)| c).collect();
        let attrs: Vec<String> = table
            .columns()
            .iter()
            .filter(|c| !key_cols.contains(&c.name.as_str()))
            .map(|c| c.name.clone())
            .collect();
        if !attrs.is_empty() {
            let (hi, key_col) = present[0];
            let key_vals = &table.column(key_col).expect("present").values;
            let rows = (0..table.num_rows())
                .map(|r| {
                    let vals: Vec<Value> = attrs
                        .iter()
                        .map(|a| table.column(a).expect("attr exists").values[r].clone())
                        .collect();
                    (key_vals[r].clone(), vals, table.name.clone())
                })
                .collect();
            vault.satellites.push(Satellite {
                name: format!("{}_{}", hub_keys[hi].0, table.name),
                hub: hub_keys[hi].0.to_string(),
                attributes: attrs,
                rows,
            });
        }
    }
    Ok(vault)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn orders() -> Table {
        Table::from_rows(
            "orders",
            &["customer_id", "product_id", "qty"],
            vec![
                vec![Value::str("c1"), Value::str("p1"), Value::Int(2)],
                vec![Value::str("c1"), Value::str("p2"), Value::Int(1)],
                vec![Value::str("c2"), Value::str("p1"), Value::Int(5)],
            ],
        )
        .unwrap()
    }

    fn customers() -> Table {
        Table::from_rows(
            "customers",
            &["customer_id", "city"],
            vec![
                vec![Value::str("c1"), Value::str("delft")],
                vec![Value::str("c2"), Value::str("paris")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn builds_hubs_links_satellites() {
        let t1 = orders();
        let t2 = customers();
        let vault = vault_from_tables(
            &[&t1, &t2],
            &[("customer", "customer_id"), ("product", "product_id")],
        )
        .unwrap();
        let cust = vault.hub("customer").unwrap();
        assert_eq!(cust.keys.len(), 2);
        let prod = vault.hub("product").unwrap();
        assert_eq!(prod.keys.len(), 2);
        assert_eq!(vault.links.len(), 1);
        assert_eq!(vault.links[0].pairs.len(), 3);
        // qty satellite on customer (first hub of orders) + city satellite.
        assert_eq!(vault.satellites.len(), 2);
        let sat_city = vault.satellites.iter().find(|s| s.name.contains("customers")).unwrap();
        assert_eq!(sat_city.attributes, vec!["city"]);
    }

    #[test]
    fn materializes_relational_tables() {
        let t1 = orders();
        let vault = vault_from_tables(
            &[&t1],
            &[("customer", "customer_id"), ("product", "product_id")],
        )
        .unwrap();
        let tables = vault.materialize_relational();
        let names: Vec<&str> = tables.iter().map(|t| t.name.as_str()).collect();
        assert!(names.contains(&"hub_customer"));
        assert!(names.contains(&"link_customer_product"));
        assert!(names.iter().any(|n| n.starts_with("sat_")));
        let hub = tables.iter().find(|t| t.name == "hub_customer").unwrap();
        assert_eq!(hub.num_rows(), 2);
        assert!(hub.column("hash_key").unwrap().is_unique());
        let sat = tables.iter().find(|t| t.name.starts_with("sat_")).unwrap();
        assert!(sat.column("record_source").is_some());
    }

    #[test]
    fn table_without_keys_is_rejected() {
        let t = Table::from_rows("x", &["a"], vec![vec![Value::Int(1)]]).unwrap();
        assert!(vault_from_tables(&[&t], &[("customer", "customer_id")]).is_err());
    }

    #[test]
    fn link_pairs_dedupe_and_skip_nulls() {
        let t = Table::from_rows(
            "o",
            &["customer_id", "product_id"],
            vec![
                vec![Value::str("c1"), Value::str("p1")],
                vec![Value::str("c1"), Value::str("p1")],
                vec![Value::Null, Value::str("p2")],
            ],
        )
        .unwrap();
        let vault = vault_from_tables(
            &[&t],
            &[("customer", "customer_id"), ("product", "product_id")],
        )
        .unwrap();
        assert_eq!(vault.links[0].pairs.len(), 1);
    }
}
