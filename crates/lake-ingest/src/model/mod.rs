//! Metadata models (§5.2): how extracted metadata is structured.
//!
//! The survey categorizes proposed models into generic metamodels
//! ([`generic`], [`handle`]), data vault ([`vault`]), and graph-based
//! models ([`graphmeta`]).

pub mod generic;
pub mod graphmeta;
pub mod handle;
pub mod personal;
pub mod vault;
