//! TF-IDF weighting and cosine similarity over token bags.
//!
//! Aurum measures attribute-name relatedness with "cosine similarity
//! (TF-IDF)" (Table 3). A [`TfIdfCorpus`] is fit over all documents (e.g.
//! tokenized attribute names of the whole lake) so inverse document
//! frequencies reflect lake-wide token rarity; documents are then embedded
//! as sparse weighted vectors compared by cosine.

use std::collections::{BTreeMap, HashMap};

/// Tokenize an identifier-like string: lowercase, split on
/// non-alphanumerics *and* camelCase boundaries.
pub fn tokenize_identifier(s: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    let mut prev_lower = false;
    for c in s.chars() {
        if c.is_alphanumeric() {
            if c.is_uppercase() && prev_lower && !cur.is_empty() {
                tokens.push(std::mem::take(&mut cur));
            }
            prev_lower = c.is_lowercase() || c.is_ascii_digit();
            cur.extend(c.to_lowercase());
        } else {
            prev_lower = false;
            if !cur.is_empty() {
                tokens.push(std::mem::take(&mut cur));
            }
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

/// A fitted TF-IDF model over a document corpus.
#[derive(Debug, Clone)]
pub struct TfIdfCorpus {
    /// token → document frequency.
    doc_freq: HashMap<String, usize>,
    /// Number of documents fit.
    num_docs: usize,
}

/// A sparse TF-IDF vector (token → weight), L2-normalized.
pub type SparseVec = BTreeMap<String, f64>;

impl TfIdfCorpus {
    /// Fit over an iterator of documents, each a token list.
    pub fn fit<'a, D>(docs: D) -> TfIdfCorpus
    where
        D: IntoIterator<Item = &'a [String]>,
    {
        let mut doc_freq: HashMap<String, usize> = HashMap::new();
        let mut num_docs = 0;
        for doc in docs {
            num_docs += 1;
            let mut seen: Vec<&String> = doc.iter().collect();
            seen.sort();
            seen.dedup();
            for tok in seen {
                // Clone the token only on first sight, not once per doc.
                match doc_freq.get_mut(tok) {
                    Some(df) => *df += 1,
                    None => {
                        doc_freq.insert(tok.clone(), 1);
                    }
                }
            }
        }
        TfIdfCorpus { doc_freq, num_docs }
    }

    /// Inverse document frequency of `token` (smoothed).
    pub fn idf(&self, token: &str) -> f64 {
        let df = self.doc_freq.get(token).copied().unwrap_or(0);
        ((1.0 + self.num_docs as f64) / (1.0 + df as f64)).ln() + 1.0
    }

    /// Embed a document as an L2-normalized sparse TF-IDF vector.
    pub fn vectorize(&self, doc: &[String]) -> SparseVec {
        let mut tf: BTreeMap<String, f64> = BTreeMap::new();
        for tok in doc {
            *tf.entry(tok.clone()).or_insert(0.0) += 1.0;
        }
        let mut v: SparseVec = tf
            .into_iter()
            .map(|(tok, f)| {
                let w = f * self.idf(&tok);
                (tok, w)
            })
            .collect();
        let norm: f64 = v.values().map(|w| w * w).sum::<f64>().sqrt();
        if norm > 0.0 {
            for w in v.values_mut() {
                *w /= norm;
            }
        }
        v
    }

    /// Cosine similarity of two documents under this model.
    pub fn similarity(&self, a: &[String], b: &[String]) -> f64 {
        sparse_cosine(&self.vectorize(a), &self.vectorize(b))
    }
}

/// Cosine similarity of two normalized sparse vectors.
pub fn sparse_cosine(a: &SparseVec, b: &SparseVec) -> f64 {
    // Iterate the smaller map.
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    small
        .iter()
        .filter_map(|(tok, wa)| large.get(tok).map(|wb| wa * wb))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        tokenize_identifier(s)
    }

    #[test]
    fn tokenizer_splits_cases() {
        assert_eq!(toks("customer_id"), vec!["customer", "id"]);
        assert_eq!(toks("CustomerID"), vec!["customer", "id"]);
        assert_eq!(toks("orderDate2024"), vec!["order", "date2024"]);
        assert_eq!(toks("  weird--name  "), vec!["weird", "name"]);
        assert!(toks("___").is_empty());
    }

    #[test]
    fn identical_docs_have_similarity_one() {
        let docs = [toks("customer_id"), toks("order_id"), toks("city")];
        let refs: Vec<&[String]> = docs.iter().map(Vec::as_slice).collect();
        let model = TfIdfCorpus::fit(refs);
        assert!((model.similarity(&docs[0], &docs[0]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shared_rare_token_scores_higher_than_shared_common_token() {
        // "id" appears in many docs (common), "customer" in few (rare).
        let docs = [
            toks("customer_id"),
            toks("order_id"),
            toks("product_id"),
            toks("supplier_id"),
            toks("customer_name"),
        ];
        let refs: Vec<&[String]> = docs.iter().map(Vec::as_slice).collect();
        let model = TfIdfCorpus::fit(refs);
        let rare = model.similarity(&toks("customer_id"), &toks("customer_name"));
        let common = model.similarity(&toks("customer_id"), &toks("order_id"));
        assert!(rare > common, "rare-token match {rare} should beat common-token match {common}");
    }

    #[test]
    fn disjoint_docs_have_zero_similarity() {
        let docs = [toks("alpha"), toks("beta")];
        let refs: Vec<&[String]> = docs.iter().map(Vec::as_slice).collect();
        let model = TfIdfCorpus::fit(refs);
        assert_eq!(model.similarity(&docs[0], &docs[1]), 0.0);
    }

    #[test]
    fn empty_doc_is_zero_vector() {
        let docs = [toks("x")];
        let refs: Vec<&[String]> = docs.iter().map(Vec::as_slice).collect();
        let model = TfIdfCorpus::fit(refs);
        let v = model.vectorize(&[]);
        assert!(v.is_empty());
        assert_eq!(model.similarity(&[], &toks("x")), 0.0);
    }
}
