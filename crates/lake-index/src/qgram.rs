//! q-gram tokenization and similarity.
//!
//! D³L "transforms schemata and data instances to intermediate
//! representations of q-grams" (§6.2.1): character q-grams capture the
//! *format* of values (e.g. phone numbers vs emails) independent of exact
//! content. We also provide the format-pattern abstraction D³L uses
//! (digits → `9`, letters → `a`) so columns with the same value shape
//! compare as similar even with disjoint values.

use lake_core::stats::jaccard;
use std::collections::HashSet;

/// The character q-grams of `s` (padded with `#` at both ends so short
/// strings still produce grams).
pub fn qgrams(s: &str, q: usize) -> Vec<String> {
    assert!(q > 0);
    let padded: Vec<char> = std::iter::repeat_n('#', q - 1)
        .chain(s.chars())
        .chain(std::iter::repeat_n('#', q - 1))
        .collect();
    if padded.len() < q {
        return Vec::new();
    }
    padded.windows(q).map(|w| w.iter().collect()).collect()
}

/// Jaccard similarity of the q-gram sets of two strings.
pub fn qgram_similarity(a: &str, b: &str, q: usize) -> f64 {
    jaccard(&qgrams(a, q), &qgrams(b, q))
}

/// Abstract a value into its *format pattern*: digits → `9`, letters →
/// `a`, whitespace → `_`, everything else verbatim; runs collapsed with a
/// `+` suffix. `"+31-15-278"` → `"+9+-9+-9+"`, `"ab12"` → `"a+9+"`.
pub fn format_pattern(s: &str) -> String {
    let mut out = String::new();
    let mut last: Option<char> = None;
    let mut run = 0usize;
    let flush = |out: &mut String, c: Option<char>, run: usize| {
        if let Some(c) = c {
            out.push(c);
            if run > 1 {
                out.push('+');
            }
        }
    };
    for c in s.chars() {
        let class = if c.is_ascii_digit() {
            '9'
        } else if c.is_alphabetic() {
            'a'
        } else if c.is_whitespace() {
            '_'
        } else {
            c
        };
        if Some(class) == last {
            run += 1;
        } else {
            flush(&mut out, last, run);
            last = Some(class);
            run = 1;
        }
    }
    flush(&mut out, last, run);
    out
}

/// Similarity of two columns' value formats: Jaccard over the sets of
/// format patterns observed in each column.
pub fn format_similarity<'a>(
    a: impl IntoIterator<Item = &'a str>,
    b: impl IntoIterator<Item = &'a str>,
) -> f64 {
    let pa: HashSet<String> = a.into_iter().map(format_pattern).collect();
    let pb: HashSet<String> = b.into_iter().map(format_pattern).collect();
    if pa.is_empty() || pb.is_empty() {
        return 0.0;
    }
    let inter = pa.intersection(&pb).count();
    inter as f64 / (pa.len() + pb.len() - inter) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qgrams_with_padding() {
        let g = qgrams("ab", 3);
        assert_eq!(g, vec!["##a", "#ab", "ab#", "b##"]);
        assert_eq!(qgrams("", 3).len(), 2); // "####" has two 3-windows
        assert_eq!(qgrams("abc", 1), vec!["a", "b", "c"]);
    }

    #[test]
    fn similar_strings_share_grams() {
        let near = qgram_similarity("customer", "customers", 3);
        let far = qgram_similarity("customer", "zebra", 3);
        assert!(near > 0.6, "{near}");
        assert!(far < 0.2, "{far}");
        assert_eq!(qgram_similarity("same", "same", 2), 1.0);
    }

    #[test]
    fn format_pattern_abstracts_shape() {
        assert_eq!(format_pattern("1234"), "9+");
        assert_eq!(format_pattern("ab12"), "a+9+");
        assert_eq!(format_pattern("+31-15"), "+9+-9+");
        assert_eq!(format_pattern("a b"), "a_a");
        assert_eq!(format_pattern(""), "");
    }

    #[test]
    fn format_similarity_matches_shapes_not_values() {
        let phones_a = ["06-1234", "06-9999"];
        let phones_b = ["07-5555", "01-0000"];
        let words = ["delft", "paris"];
        assert_eq!(format_similarity(phones_a, phones_b), 1.0);
        assert_eq!(format_similarity(phones_a, words), 0.0);
        assert_eq!(format_similarity([], words), 0.0);
    }
}
