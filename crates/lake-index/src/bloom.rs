//! A Bloom filter — the auxiliary point-lookup index the survey's
//! Lakehouse section calls for ("How to design auxiliary structures such
//! as indexes over open data formats for efficient query processing?",
//! §8.3; Azure's Hyperspace indexing subsystem in §4.1).
//!
//! Min/max statistics cannot prune a file when the probe value lies
//! inside the file's range but is absent; a per-column Bloom filter can.
//! The filter serializes to bytes so the lakehouse stores it as a sidecar
//! object next to each data file.

use lake_core::value::fnv1a;

/// A serializable Bloom filter over string items.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: usize,
    hashes: u32,
}

impl BloomFilter {
    /// Size a filter for `expected` items at roughly the given
    /// false-positive rate (standard m/k formulas).
    pub fn for_items(expected: usize, fpr: f64) -> BloomFilter {
        let expected = expected.max(1) as f64;
        let fpr = fpr.clamp(1e-6, 0.5);
        let m = (-(expected * fpr.ln()) / (2f64.ln().powi(2))).ceil().max(64.0) as usize;
        let k = ((m as f64 / expected) * 2f64.ln()).round().clamp(1.0, 16.0) as u32;
        BloomFilter { bits: vec![0; m.div_ceil(64)], num_bits: m, hashes: k }
    }

    fn positions(&self, item: &str) -> impl Iterator<Item = usize> + '_ {
        // Double hashing: h_i = h1 + i·h2.
        let h1 = fnv1a(item.as_bytes());
        let h2 = fnv1a(&h1.to_le_bytes()) | 1;
        let num_bits = self.num_bits as u64;
        (0..self.hashes as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2)) % num_bits) as usize)
    }

    /// Insert an item.
    pub fn insert(&mut self, item: &str) {
        let positions: Vec<usize> = self.positions(item).collect();
        for p in positions {
            self.bits[p / 64] |= 1 << (p % 64);
        }
    }

    /// Whether the item *might* be present (false positives possible,
    /// false negatives impossible).
    pub fn may_contain(&self, item: &str) -> bool {
        self.positions(item).all(|p| self.bits[p / 64] & (1 << (p % 64)) != 0)
    }

    /// Serialize to bytes (little-endian words after a small header).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.bits.len() * 8);
        out.extend_from_slice(b"BLM1");
        out.extend_from_slice(&(self.num_bits as u32).to_le_bytes());
        out.extend_from_slice(&self.hashes.to_le_bytes());
        for w in &self.bits {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Deserialize from bytes.
    pub fn from_bytes(buf: &[u8]) -> Option<BloomFilter> {
        if buf.len() < 12 || &buf[..4] != b"BLM1" {
            return None;
        }
        let num_bits = u32::from_le_bytes(buf[4..8].try_into().ok()?) as usize;
        let hashes = u32::from_le_bytes(buf[8..12].try_into().ok()?);
        let words = num_bits.div_ceil(64);
        if buf.len() != 12 + words * 8 {
            return None;
        }
        let bits = buf[12..]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect();
        Some(BloomFilter { bits, num_bits, hashes })
    }

    /// Observed fill ratio (diagnostic).
    pub fn fill_ratio(&self) -> f64 {
        let set: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        set as f64 / self.num_bits as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut b = BloomFilter::for_items(1_000, 0.01);
        for i in 0..1_000 {
            b.insert(&format!("item{i}"));
        }
        for i in 0..1_000 {
            assert!(b.may_contain(&format!("item{i}")), "item{i}");
        }
    }

    #[test]
    fn false_positive_rate_is_near_target() {
        let mut b = BloomFilter::for_items(1_000, 0.01);
        for i in 0..1_000 {
            b.insert(&format!("item{i}"));
        }
        let fps = (0..10_000)
            .filter(|i| b.may_contain(&format!("absent{i}")))
            .count();
        let rate = fps as f64 / 10_000.0;
        assert!(rate < 0.03, "fpr {rate}");
    }

    #[test]
    fn serialization_roundtrips() {
        let mut b = BloomFilter::for_items(100, 0.01);
        for i in 0..100 {
            b.insert(&format!("v{i}"));
        }
        let bytes = b.to_bytes();
        let back = BloomFilter::from_bytes(&bytes).unwrap();
        assert_eq!(back, b);
        assert!(back.may_contain("v5"));
        // Corruption is rejected.
        assert!(BloomFilter::from_bytes(&bytes[..8]).is_none());
        assert!(BloomFilter::from_bytes(b"nope").is_none());
    }

    #[test]
    fn empty_filter_contains_nothing_claimed() {
        let b = BloomFilter::for_items(10, 0.01);
        let hits = (0..1000).filter(|i| b.may_contain(&format!("x{i}"))).count();
        assert_eq!(hits, 0);
        assert_eq!(b.fill_ratio(), 0.0);
    }
}
