//! MinHash signatures for Jaccard similarity estimation.
//!
//! Aurum "profiles each table column by adding signatures … and a
//! representation of data values (i.e., MinHash)" (§6.2.1). A signature is
//! `k` minima under `k` independent hash functions; the fraction of
//! matching positions between two signatures is an unbiased estimator of
//! the Jaccard similarity of the underlying sets.
//!
//! Hash functions are the universal family `h_i(x) = a_i·x + b_i` over the
//! stable 64-bit element hash, seeded deterministically.

use lake_core::value::fnv1a;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A family of `k` hash functions shared by all signatures being compared.
#[derive(Debug, Clone)]
pub struct MinHasher {
    coeffs: Vec<(u64, u64)>,
}

impl MinHasher {
    /// Build a hasher with `k` functions from `seed`.
    pub fn new(k: usize, seed: u64) -> MinHasher {
        let mut rng = StdRng::seed_from_u64(seed);
        let coeffs = (0..k)
            .map(|_| (rng.random::<u64>() | 1, rng.random::<u64>()))
            .collect();
        MinHasher { coeffs }
    }

    /// Number of hash functions.
    pub fn k(&self) -> usize {
        self.coeffs.len()
    }

    /// Compute the signature of a set of element hashes.
    pub fn signature_of_hashes(&self, hashes: impl IntoIterator<Item = u64> + Clone) -> MinHash {
        let mut mins = vec![u64::MAX; self.coeffs.len()];
        for h in hashes {
            // Branchless zip keeps the inner loop bounds-check-free and
            // vectorizable — this loop runs k× per distinct value across
            // every corpus build.
            for ((a, b), m) in self.coeffs.iter().zip(mins.iter_mut()) {
                let v = h.wrapping_mul(*a).wrapping_add(*b);
                *m = v.min(*m);
            }
        }
        MinHash { mins }
    }

    /// Compute the signature of a set of string elements.
    pub fn signature<'a>(&self, items: impl IntoIterator<Item = &'a str>) -> MinHash {
        let hashes: Vec<u64> = items.into_iter().map(|s| fnv1a(s.as_bytes())).collect();
        self.signature_of_hashes(hashes)
    }

    /// Merge a single new element into an existing signature — the
    /// incremental-update path Aurum uses when data changes (E4).
    pub fn update(&self, sig: &mut MinHash, item: &str) {
        let h = fnv1a(item.as_bytes());
        for ((a, b), m) in self.coeffs.iter().zip(sig.mins.iter_mut()) {
            let v = h.wrapping_mul(*a).wrapping_add(*b);
            *m = v.min(*m);
        }
    }
}

/// A MinHash signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinHash {
    mins: Vec<u64>,
}

impl MinHash {
    /// Signature length.
    pub fn len(&self) -> usize {
        self.mins.len()
    }

    /// `true` when the signature has length 0.
    pub fn is_empty(&self) -> bool {
        self.mins.is_empty()
    }

    /// Raw signature values (used by LSH banding).
    pub fn values(&self) -> &[u64] {
        &self.mins
    }

    /// `true` when this is the signature of the *empty set*: no element
    /// ever lowered any position, so every minimum is still the
    /// `u64::MAX` sentinel. Empty-domain signatures "agree" with each
    /// other at every position and would estimate Jaccard 1.0 between
    /// two all-null columns — callers (and [`MinHash::jaccard`] itself)
    /// must treat them as similar to nothing.
    pub fn is_empty_domain(&self) -> bool {
        self.mins.iter().all(|&m| m == u64::MAX)
    }

    /// Estimated Jaccard similarity with another signature from the same
    /// [`MinHasher`].
    ///
    /// The empty set is defined to have similarity 0.0 with everything,
    /// including another empty set: the raw position-agreement estimator
    /// would report 1.0 for two empty-domain signatures (all positions
    /// hold the same `u64::MAX` sentinel), creating spurious cliques of
    /// all-null columns.
    pub fn jaccard(&self, other: &MinHash) -> f64 {
        assert_eq!(self.mins.len(), other.mins.len(), "signatures from different hashers");
        if self.mins.is_empty() {
            return 0.0;
        }
        if self.is_empty_domain() || other.is_empty_domain() {
            return 0.0;
        }
        let agree = self
            .mins
            .iter()
            .zip(&other.mins)
            .filter(|(a, b)| a == b)
            .count();
        agree as f64 / self.mins.len() as f64
    }

    /// Lazo-style containment estimate: the fraction of *this* set
    /// contained in `other`, derived from the Jaccard estimate and the two
    /// set cardinalities (Fernandez et al., cited by Juneau in §6.2.2 as
    /// the scalable alternative for coupled Jaccard/containment
    /// estimation): `C(A⊆B) = J · (|A| + |B|) / (|A| · (1 + J))`.
    pub fn containment_in(&self, other: &MinHash, self_card: usize, other_card: usize) -> f64 {
        if self_card == 0 {
            return 0.0;
        }
        let j = self.jaccard(other);
        let inter = j * (self_card + other_card) as f64 / (1.0 + j);
        (inter / self_card as f64).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lake_core::stats::jaccard;

    fn set(prefix: &str, n: usize) -> Vec<String> {
        (0..n).map(|i| format!("{prefix}{i}")).collect()
    }

    #[test]
    fn identical_sets_estimate_one() {
        let h = MinHasher::new(128, 7);
        let items = set("v", 100);
        let a = h.signature(items.iter().map(String::as_str));
        let b = h.signature(items.iter().map(String::as_str));
        assert_eq!(a.jaccard(&b), 1.0);
    }

    #[test]
    fn disjoint_sets_estimate_near_zero() {
        let h = MinHasher::new(128, 7);
        let a = h.signature(set("a", 200).iter().map(String::as_str));
        let b = h.signature(set("b", 200).iter().map(String::as_str));
        assert!(a.jaccard(&b) < 0.1, "got {}", a.jaccard(&b));
    }

    #[test]
    fn estimate_tracks_true_jaccard() {
        let h = MinHasher::new(256, 11);
        // 150 shared out of 250 each → J = 150/350 ≈ 0.4286.
        let shared = set("s", 150);
        let mut sa = shared.clone();
        sa.extend(set("a", 100));
        let mut sb = shared;
        sb.extend(set("b", 100));
        let truth = jaccard(&sa, &sb);
        let est = h
            .signature(sa.iter().map(String::as_str))
            .jaccard(&h.signature(sb.iter().map(String::as_str)));
        assert!((est - truth).abs() < 0.1, "est {est} vs truth {truth}");
    }

    #[test]
    fn incremental_update_matches_batch() {
        let h = MinHasher::new(64, 3);
        let items = set("x", 50);
        let batch = h.signature(items.iter().map(String::as_str));
        let mut inc = h.signature(items[..25].iter().map(String::as_str));
        for item in &items[25..] {
            h.update(&mut inc, item);
        }
        assert_eq!(batch, inc);
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        let a = MinHasher::new(32, 5).signature(["x", "y"]);
        let b = MinHasher::new(32, 5).signature(["x", "y"]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "different hashers")]
    fn mismatched_lengths_panic() {
        let a = MinHasher::new(16, 1).signature(["x"]);
        let b = MinHasher::new(32, 1).signature(["x"]);
        let _ = a.jaccard(&b);
    }

    #[test]
    fn containment_estimate_tracks_subset_relations() {
        let h = MinHasher::new(256, 17);
        // A (50 items) fully contained in B (200 items).
        let b: Vec<String> = set("v", 200);
        let a: Vec<String> = b[..50].to_vec();
        let sa = h.signature(a.iter().map(String::as_str));
        let sb = h.signature(b.iter().map(String::as_str));
        let c_ab = sa.containment_in(&sb, 50, 200);
        assert!(c_ab > 0.85, "A⊆B containment should be ≈1, got {c_ab}");
        // B is only 25% contained in A.
        let c_ba = sb.containment_in(&sa, 200, 50);
        assert!((c_ba - 0.25).abs() < 0.12, "B in A ≈ 0.25, got {c_ba}");
        // Disjoint sets: containment ≈ 0.
        let z = h.signature(set("z", 100).iter().map(String::as_str));
        assert!(sa.containment_in(&z, 50, 100) < 0.1);
        // Degenerate cardinality.
        assert_eq!(sa.containment_in(&sb, 0, 200), 0.0);
    }

    #[test]
    fn empty_set_signature() {
        let h = MinHasher::new(8, 1);
        let e = h.signature([]);
        assert_eq!(e.values(), &[u64::MAX; 8]);
        assert!(e.is_empty_domain());
        assert!(!h.signature(["x"]).is_empty_domain());
    }

    #[test]
    fn empty_domains_are_similar_to_nothing() {
        // Regression: the raw estimator reported Jaccard 1.0 between two
        // *empty* column domains (every position agrees on the sentinel),
        // so all-null columns formed spurious cliques in Aurum's EKG.
        let h = MinHasher::new(8, 1);
        let e = h.signature([]);
        assert_eq!(e.jaccard(&h.signature([])), 0.0);
        assert_eq!(e.jaccard(&h.signature(["x", "y"])), 0.0);
        assert_eq!(h.signature(["x", "y"]).jaccard(&e), 0.0);
        // Containment of/in the empty set follows the same convention.
        assert_eq!(e.containment_in(&h.signature(["x"]), 0, 1), 0.0);
        assert_eq!(h.signature(["x"]).containment_in(&e, 1, 0), 0.0);
    }
}
