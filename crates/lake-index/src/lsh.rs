//! Banded locality-sensitive hashing over MinHash signatures.
//!
//! "When two columns have their signatures indexed into the same bucket
//! after hashing, an edge is created between corresponding nodes" (Aurum,
//! §6.2.1). Signatures are split into `bands` bands of `rows` values; each
//! band is hashed into a bucket table. Two items collide (become
//! candidates) if *any* band matches, giving the classic S-curve
//! probability `1 - (1 - s^rows)^bands` of surfacing a pair with Jaccard
//! similarity `s`. This turns quadratic all-pairs search into near-linear
//! candidate generation — the claim measured by experiment E1.

use crate::minhash::MinHash;
use lake_core::par::{self, Parallelism};
use lake_core::value::fnv1a;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

/// An LSH index mapping item ids (`usize`) to signature buckets.
#[derive(Debug, Clone)]
pub struct LshIndex {
    bands: usize,
    rows: usize,
    /// One bucket table per band: band-hash → item ids.
    tables: Vec<HashMap<u64, Vec<usize>>>,
    /// Stored signatures for candidate verification and removal.
    signatures: HashMap<usize, MinHash>,
}

impl LshIndex {
    /// Create an index for signatures of length `bands * rows`.
    pub fn new(bands: usize, rows: usize) -> LshIndex {
        assert!(bands > 0 && rows > 0);
        LshIndex {
            bands,
            rows,
            tables: vec![HashMap::new(); bands],
            signatures: HashMap::new(),
        }
    }

    /// Expected signature length.
    pub fn signature_len(&self) -> usize {
        self.bands * self.rows
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.signatures.len()
    }

    /// `true` when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.signatures.is_empty()
    }

    fn band_hash(&self, sig: &MinHash, band: usize) -> u64 {
        let start = band * self.rows;
        let mut bytes = Vec::with_capacity(self.rows * 8);
        for v in &sig.values()[start..start + self.rows] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        fnv1a(&bytes)
    }

    /// Insert (or replace) an item's signature.
    ///
    /// Buckets are kept **sorted by id**, so the index is canonical: it
    /// depends only on the final `(id, signature)` mapping, never on
    /// insertion order. That is what lets incremental maintenance
    /// (remove + re-insert on a `StreamIngestor` flush) produce an index
    /// byte-identical to a from-scratch rebuild.
    pub fn insert(&mut self, id: usize, sig: MinHash) {
        assert_eq!(sig.len(), self.signature_len(), "signature length mismatch");
        if self.signatures.contains_key(&id) {
            self.remove(id);
        }
        for band in 0..self.bands {
            let h = self.band_hash(&sig, band);
            let bucket = self.tables[band].entry(h).or_default();
            if let Err(pos) = bucket.binary_search(&id) {
                bucket.insert(pos, id);
            }
        }
        self.signatures.insert(id, sig);
    }

    /// Bulk-insert many signatures, computing the band hashes in parallel.
    ///
    /// Band hashing (FNV over `rows` values per band, `bands` bands per
    /// item) dominates index construction; it is a pure function of each
    /// signature, so it fans out over `par` workers. The bucket mutations
    /// then replay serially, landing each id at its sorted bucket
    /// position, so the resulting index is identical to one built by
    /// calling [`LshIndex::insert`] in a loop — in *any* order, since
    /// buckets are canonical (sorted by id).
    pub fn insert_batch(&mut self, items: Vec<(usize, MinHash)>, par: Parallelism) {
        for (_, sig) in &items {
            assert_eq!(sig.len(), self.signature_len(), "signature length mismatch");
        }
        let hashes: Vec<Vec<u64>> = par::map(par, &items, |(_, sig)| {
            (0..self.bands).map(|band| self.band_hash(sig, band)).collect()
        });
        for ((id, sig), band_hashes) in items.into_iter().zip(hashes) {
            if self.signatures.contains_key(&id) {
                self.remove(id);
            }
            for (band, h) in band_hashes.into_iter().enumerate() {
                let bucket = self.tables[band].entry(h).or_default();
                if let Err(pos) = bucket.binary_search(&id) {
                    bucket.insert(pos, id);
                }
            }
            self.signatures.insert(id, sig);
        }
    }

    /// Remove an item (Aurum's maintenance path: re-profile on change).
    pub fn remove(&mut self, id: usize) {
        let Some(sig) = self.signatures.remove(&id) else { return };
        for band in 0..self.bands {
            let h = self.band_hash(&sig, band);
            if let Entry::Occupied(mut e) = self.tables[band].entry(h) {
                e.get_mut().retain(|&x| x != id);
                if e.get().is_empty() {
                    e.remove();
                }
            }
        }
    }

    /// The stored signature of `id`, if indexed.
    pub fn signature(&self, id: usize) -> Option<&MinHash> {
        self.signatures.get(&id)
    }

    /// Candidate ids colliding with `sig` in at least one band
    /// (excluding nothing — the caller filters self-matches).
    pub fn query(&self, sig: &MinHash) -> Vec<usize> {
        assert_eq!(sig.len(), self.signature_len());
        let mut seen = HashSet::new();
        for band in 0..self.bands {
            let h = self.band_hash(sig, band);
            if let Some(bucket) = self.tables[band].get(&h) {
                seen.extend(bucket.iter().copied());
            }
        }
        let mut v: Vec<usize> = seen.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Candidates with their estimated Jaccard, filtered by `threshold`
    /// and sorted by similarity descending (the verify-after-LSH step).
    ///
    /// Empty-domain signatures are filtered here regardless of
    /// `threshold`: every band of an all-sentinel signature collides with
    /// every other empty signature, so banding alone would surface
    /// all-null columns as perfect candidates.
    pub fn query_verified(&self, sig: &MinHash, threshold: f64) -> Vec<(usize, f64)> {
        if sig.is_empty_domain() {
            return Vec::new();
        }
        let mut out: Vec<(usize, f64)> = self
            .query(sig)
            .into_iter()
            .filter_map(|id| {
                let stored = &self.signatures[&id];
                if stored.is_empty_domain() {
                    return None;
                }
                let est = stored.jaccard(sig);
                (est >= threshold).then_some((id, est))
            })
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Every candidate pair in the index (each pair once, `a < b`) — the
    /// bulk EKG-construction path.
    pub fn candidate_pairs(&self) -> Vec<(usize, usize)> {
        let mut pairs = HashSet::new();
        for table in &self.tables {
            for bucket in table.values() {
                for i in 0..bucket.len() {
                    for j in i + 1..bucket.len() {
                        let (a, b) = (bucket[i].min(bucket[j]), bucket[i].max(bucket[j]));
                        if a != b {
                            pairs.insert((a, b));
                        }
                    }
                }
            }
        }
        let mut v: Vec<(usize, usize)> = pairs.into_iter().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minhash::MinHasher;

    fn sig(h: &MinHasher, items: &[String]) -> MinHash {
        h.signature(items.iter().map(String::as_str))
    }

    fn set(prefix: &str, n: usize) -> Vec<String> {
        (0..n).map(|i| format!("{prefix}{i}")).collect()
    }

    #[test]
    fn similar_items_collide_dissimilar_do_not() {
        let h = MinHasher::new(128, 1);
        let mut idx = LshIndex::new(32, 4);
        let base = set("v", 200);
        let mut near = base.clone();
        near.truncate(180);
        near.extend(set("n", 20)); // J ≈ 180/220 ≈ 0.82
        let far = set("z", 200);

        idx.insert(0, sig(&h, &base));
        idx.insert(1, sig(&h, &near));
        idx.insert(2, sig(&h, &far));

        let cands = idx.query(&sig(&h, &base));
        assert!(cands.contains(&0));
        assert!(cands.contains(&1), "near-duplicate must be a candidate");
        assert!(!cands.contains(&2), "disjoint set must not collide");
    }

    #[test]
    fn query_verified_ranks_by_similarity() {
        let h = MinHasher::new(128, 1);
        let mut idx = LshIndex::new(32, 4);
        let base = set("v", 100);
        let mut mid = base[..70].to_vec();
        mid.extend(set("m", 30));
        idx.insert(10, sig(&h, &base));
        idx.insert(20, sig(&h, &mid));
        let res = idx.query_verified(&sig(&h, &base), 0.3);
        assert_eq!(res[0].0, 10);
        assert_eq!(res[0].1, 1.0);
        assert!(res.iter().any(|(id, _)| *id == 20));
    }

    #[test]
    fn remove_and_replace() {
        let h = MinHasher::new(64, 1);
        let mut idx = LshIndex::new(16, 4);
        let a = set("a", 50);
        idx.insert(0, sig(&h, &a));
        assert_eq!(idx.len(), 1);
        idx.remove(0);
        assert!(idx.is_empty());
        assert!(idx.query(&sig(&h, &a)).is_empty());
        // Re-insert with different content replaces cleanly.
        idx.insert(0, sig(&h, &a));
        idx.insert(0, sig(&h, &set("b", 50)));
        assert_eq!(idx.len(), 1);
        assert!(!idx.query(&sig(&h, &set("b", 50))).is_empty());
    }

    #[test]
    fn candidate_pairs_enumerates_once() {
        let h = MinHasher::new(64, 1);
        let mut idx = LshIndex::new(16, 4);
        let base = set("v", 100);
        idx.insert(1, sig(&h, &base));
        idx.insert(2, sig(&h, &base));
        idx.insert(3, sig(&h, &set("q", 100)));
        let pairs = idx.candidate_pairs();
        assert!(pairs.contains(&(1, 2)));
        assert!(!pairs.contains(&(2, 1)));
        assert!(!pairs.iter().any(|&(a, b)| a == b));
    }

    #[test]
    #[should_panic(expected = "signature length mismatch")]
    fn wrong_signature_length_panics() {
        let h = MinHasher::new(10, 1);
        let mut idx = LshIndex::new(16, 4);
        idx.insert(0, h.signature(["x"]));
    }

    #[test]
    fn empty_domain_signatures_never_verify() {
        // Regression: two empty-set signatures collide in *every* band
        // (all positions hold the u64::MAX sentinel), so raw banding
        // reports them as perfect candidates; verification must drop them.
        let h = MinHasher::new(64, 1);
        let mut idx = LshIndex::new(16, 4);
        let empty = h.signature([]);
        idx.insert(0, empty.clone());
        idx.insert(1, empty.clone());
        idx.insert(2, sig(&h, &set("v", 50)));
        // Banding alone cannot tell: the empties do collide…
        assert_eq!(idx.query(&empty), vec![0, 1]);
        // …but verification filters them, both as query and as candidate.
        assert!(idx.query_verified(&empty, 0.0).is_empty());
        assert!(idx
            .query_verified(&sig(&h, &set("v", 50)), 0.0)
            .iter()
            .all(|&(id, est)| id == 2 && est > 0.0));
    }

    #[test]
    fn index_is_canonical_under_insertion_order_and_replacement() {
        // The incremental-maintenance contract: the index depends only on
        // the final (id, signature) mapping. Build in ascending order,
        // descending order, and via a replace-after-stale-insert path —
        // all three must answer every query identically.
        let h = MinHasher::new(128, 1);
        let items: Vec<(usize, MinHash)> =
            (0..20).map(|i| (i, sig(&h, &set(&format!("g{}", i / 4), 40)))).collect();
        let mut asc = LshIndex::new(32, 4);
        for (id, s) in items.clone() {
            asc.insert(id, s);
        }
        let mut desc = LshIndex::new(32, 4);
        for (id, s) in items.clone().into_iter().rev() {
            desc.insert(id, s);
        }
        let mut replaced = LshIndex::new(32, 4);
        for (id, _) in &items {
            replaced.insert(*id, sig(&h, &set("stale", 40)));
        }
        for (id, s) in items.clone() {
            replaced.insert(id, s);
        }
        for idx in [&desc, &replaced] {
            assert_eq!(idx.candidate_pairs(), asc.candidate_pairs());
            for (id, s) in &items {
                assert_eq!(idx.query(s), asc.query(s), "id={id}");
                assert_eq!(idx.signature(*id), Some(s));
            }
        }
    }

    #[test]
    fn insert_batch_matches_serial_inserts() {
        let h = MinHasher::new(128, 1);
        let items: Vec<(usize, MinHash)> =
            (0..30).map(|i| (i, sig(&h, &set(&format!("p{}", i / 3), 40)))).collect();
        let mut serial = LshIndex::new(32, 4);
        for (id, s) in items.clone() {
            serial.insert(id, s);
        }
        for workers in [1, 4] {
            let mut batch = LshIndex::new(32, 4);
            batch.insert_batch(items.clone(), lake_core::Parallelism::fixed(workers));
            assert_eq!(batch.len(), serial.len());
            assert_eq!(batch.candidate_pairs(), serial.candidate_pairs());
            for (id, s) in &items {
                assert_eq!(batch.signature(*id), Some(s));
                // Bucket-internal order (and thus query output) matches too.
                assert_eq!(batch.query(s), serial.query(s), "workers={workers} id={id}");
            }
        }
    }
}
