//! The two-sample Kolmogorov–Smirnov statistic.
//!
//! Both D³L and RNLIM compare *numerical* attributes by distribution: "the
//! Kolmogorov-Smirnov statistic" (§6.2.1, §6.2.3). The statistic is the
//! maximum vertical distance between the two empirical CDFs; similarity is
//! `1 - D`, so identically distributed samples score near 1.

/// The two-sample KS statistic `D ∈ [0, 1]`. Returns 1.0 (maximal
/// difference) when either sample is empty.
pub fn ks_statistic(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 1.0;
    }
    let mut sa: Vec<f64> = a.to_vec();
    let mut sb: Vec<f64> = b.to_vec();
    sa.sort_by(f64::total_cmp);
    sb.sort_by(f64::total_cmp);
    let (na, nb) = (sa.len() as f64, sb.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < sa.len() && j < sb.len() {
        let x = sa[i].min(sb[j]);
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    d.max((1.0 - (i as f64 / na)).abs().min(1.0))
        .max((1.0 - (j as f64 / nb)).abs().min(1.0))
        .min(1.0)
}

/// Distribution similarity `1 - D` used as a discovery feature.
pub fn ks_similarity(a: &[f64], b: &[f64]) -> f64 {
    1.0 - ks_statistic(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn identical_samples_have_zero_statistic() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert!(ks_statistic(&a, &a) < 1e-12);
        assert!((ks_similarity(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_ranges_have_statistic_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [100.0, 200.0];
        assert!((ks_statistic(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn same_distribution_scores_low() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let a: Vec<f64> = (0..500).map(|_| rng.random::<f64>() * 10.0).collect();
        let b: Vec<f64> = (0..500).map(|_| rng.random::<f64>() * 10.0).collect();
        assert!(ks_statistic(&a, &b) < 0.12, "{}", ks_statistic(&a, &b));
    }

    #[test]
    fn shifted_distribution_scores_high() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let a: Vec<f64> = (0..500).map(|_| rng.random::<f64>()).collect();
        let b: Vec<f64> = (0..500).map(|_| rng.random::<f64>() + 0.8).collect();
        assert!(ks_statistic(&a, &b) > 0.6, "{}", ks_statistic(&a, &b));
    }

    #[test]
    fn empty_samples_are_maximally_different() {
        assert_eq!(ks_statistic(&[], &[1.0]), 1.0);
        assert_eq!(ks_statistic(&[1.0], &[]), 1.0);
        assert_eq!(ks_statistic(&[], &[]), 1.0);
    }

    #[test]
    fn statistic_is_symmetric() {
        let a = [1.0, 5.0, 2.0, 8.0];
        let b = [3.0, 3.0, 7.0];
        assert!((ks_statistic(&a, &b) - ks_statistic(&b, &a)).abs() < 1e-12);
    }
}
