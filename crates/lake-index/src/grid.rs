//! A PEXESO-style hierarchical grid index over unit vectors.
//!
//! PEXESO "utilizes an inverted index, and a hierarchical grid which is
//! used for partitioning the space" (§6.2.3). Vectors are quantized at
//! several resolutions; a query with a Euclidean-distance threshold τ
//! visits only grid cells whose bounding boxes can contain matches,
//! pruning most candidates before any exact distance computation.
//!
//! To keep cell keys tractable in higher dimensions, the grid quantizes a
//! fixed subset of leading dimensions per level (coarse → fine), which
//! preserves correctness (cell pruning uses only quantized dimensions —
//! an admissible lower bound on the full distance).

use std::collections::HashMap;

/// The hierarchical grid index.
#[derive(Debug, Clone)]
pub struct HierGrid {
    levels: Vec<Level>,
    vectors: Vec<Vec<f64>>,
}

#[derive(Debug, Clone)]
struct Level {
    /// Number of quantized leading dimensions.
    dims: usize,
    /// Cells per dimension over [-1, 1].
    resolution: usize,
    cells: HashMap<Vec<u32>, Vec<usize>>,
}

impl Level {
    fn cell_of(&self, v: &[f64]) -> Vec<u32> {
        (0..self.dims)
            .map(|d| {
                let x = v.get(d).copied().unwrap_or(0.0).clamp(-1.0, 1.0);
                // Map [-1,1] → [0, resolution).
                (((x + 1.0) / 2.0 * self.resolution as f64) as u32).min(self.resolution as u32 - 1)
            })
            .collect()
    }

    /// Minimum distance from `v` to cell `c` along the quantized dims — an
    /// admissible lower bound on full Euclidean distance.
    fn min_dist(&self, v: &[f64], cell: &[u32]) -> f64 {
        let width = 2.0 / self.resolution as f64;
        let mut s = 0.0;
        for d in 0..self.dims {
            let x = v.get(d).copied().unwrap_or(0.0);
            let lo = -1.0 + cell[d] as f64 * width;
            let hi = lo + width;
            let gap = if x < lo {
                lo - x
            } else if x > hi {
                x - hi
            } else {
                0.0
            };
            s += gap * gap;
        }
        s.sqrt()
    }
}

/// Count of exact distance computations in the last query — the pruning
/// metric PEXESO's evaluation reports.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GridQueryStats {
    /// Candidates whose exact distance was computed.
    pub exact_checks: usize,
    /// Grid cells inspected.
    pub cells_visited: usize,
}

impl HierGrid {
    /// Build over `vectors` (expected roughly unit-normalized) with the
    /// given levels, e.g. `&[(2, 4), (4, 8)]` = coarse 2-dim/4-cell level
    /// plus finer 4-dim/8-cell level.
    pub fn build(vectors: Vec<Vec<f64>>, levels: &[(usize, usize)]) -> HierGrid {
        let mut built = Vec::new();
        for &(dims, resolution) in levels {
            let mut level = Level { dims, resolution, cells: HashMap::new() };
            for (i, v) in vectors.iter().enumerate() {
                let c = level.cell_of(v);
                level.cells.entry(c).or_default().push(i);
            }
            built.push(level);
        }
        HierGrid { levels: built, vectors }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// `true` when no vectors are indexed.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// All vector ids within Euclidean distance `tau` of `query`, with
    /// pruning statistics. Exact and complete (pruning is admissible).
    pub fn range_query(&self, query: &[f64], tau: f64) -> (Vec<usize>, GridQueryStats) {
        let mut stats = GridQueryStats::default();
        // Use the *finest* level for pruning (most selective admissible bound).
        let Some(level) = self.levels.last() else {
            // No levels: brute force.
            let hits = self.brute(query, tau, &mut stats);
            return (hits, stats);
        };
        let mut hits = Vec::new();
        for (cell, ids) in &level.cells {
            stats.cells_visited += 1;
            if level.min_dist(query, cell) > tau {
                continue;
            }
            for &id in ids {
                stats.exact_checks += 1;
                if euclid(query, &self.vectors[id]) <= tau {
                    hits.push(id);
                }
            }
        }
        hits.sort_unstable();
        (hits, stats)
    }

    fn brute(&self, query: &[f64], tau: f64, stats: &mut GridQueryStats) -> Vec<usize> {
        let mut hits = Vec::new();
        for (id, v) in self.vectors.iter().enumerate() {
            stats.exact_checks += 1;
            if euclid(query, v) <= tau {
                hits.push(id);
            }
        }
        hits
    }
}

fn euclid(a: &[f64], b: &[f64]) -> f64 {
    lake_core::stats::euclidean(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};

    fn unit(v: Vec<f64>) -> Vec<f64> {
        let n: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        v.into_iter().map(|x| x / n).collect()
    }

    fn corpus(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| unit((0..dim).map(|_| rng.random::<f64>() * 2.0 - 1.0).collect()))
            .collect()
    }

    #[test]
    fn range_query_is_exact_vs_brute_force() {
        let vecs = corpus(300, 8, 1);
        let grid = HierGrid::build(vecs.clone(), &[(2, 4), (4, 8)]);
        let q = &vecs[0];
        for tau in [0.1, 0.5, 1.0] {
            let (hits, _) = grid.range_query(q, tau);
            let brute: Vec<usize> = vecs
                .iter()
                .enumerate()
                .filter(|(_, v)| euclid(q, v) <= tau)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(hits, brute, "tau={tau}");
        }
    }

    #[test]
    fn pruning_reduces_exact_checks() {
        let vecs = corpus(2000, 8, 2);
        let grid = HierGrid::build(vecs.clone(), &[(4, 8)]);
        let (_, stats) = grid.range_query(&vecs[0], 0.3);
        assert!(
            stats.exact_checks < vecs.len() / 2,
            "grid should prune most candidates: {} of {}",
            stats.exact_checks,
            vecs.len()
        );
    }

    #[test]
    fn self_is_always_found() {
        let vecs = corpus(50, 4, 3);
        let grid = HierGrid::build(vecs.clone(), &[(2, 4), (4, 8)]);
        for (i, v) in vecs.iter().enumerate() {
            let (hits, _) = grid.range_query(v, 1e-9);
            assert!(hits.contains(&i));
        }
    }

    #[test]
    fn empty_grid() {
        let grid = HierGrid::build(Vec::new(), &[(2, 4)]);
        assert!(grid.is_empty());
        let (hits, _) = grid.range_query(&[0.0, 0.0], 1.0);
        assert!(hits.is_empty());
    }

    #[test]
    fn no_levels_falls_back_to_brute_force() {
        let vecs = corpus(20, 4, 4);
        let grid = HierGrid::build(vecs.clone(), &[]);
        let (hits, stats) = grid.range_query(&vecs[0], 0.5);
        assert!(hits.contains(&0));
        assert_eq!(stats.exact_checks, 20);
    }
}
