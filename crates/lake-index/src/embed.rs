//! Similarity-preserving text embeddings — the word2vec/fastText/BERT
//! stand-ins (see the substitution table in DESIGN.md).
//!
//! Two encoders are provided:
//!
//! * [`HashedNgramEncoder`] — fastText-style: a string is the sum of
//!   random (but deterministic, hash-seeded) unit vectors of its character
//!   n-grams, L2-normalized. Morphologically similar strings land nearby.
//!   Used by RNLIM and by ALITE's column encoding as the "pre-trained
//!   language model" stand-in.
//! * [`CooccurrenceEmbedder`] — word2vec-style: trained on the lake's own
//!   corpus. Values that co-occur in the same row context get similar
//!   vectors via PPMI weighting of a co-occurrence matrix followed by
//!   random projection. This reproduces the *distributional hypothesis*
//!   property D³L's embedding feature relies on: semantically related
//!   values (appearing in similar row contexts) embed close together even
//!   when they share no characters.

use crate::qgram::qgrams;
use lake_core::stats::cosine;
use lake_core::value::fnv1a;
use std::collections::HashMap;

/// Deterministic pseudo-random unit-ish vector for a token hash.
fn hash_vector(h: u64, dim: usize) -> Vec<f64> {
    let mut v = Vec::with_capacity(dim);
    let mut state = h | 1;
    for _ in 0..dim {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let r = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        // Map to (-1, 1).
        v.push((r >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0);
    }
    v
}

fn l2_normalize(v: &mut [f64]) {
    let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v {
            *x /= norm;
        }
    }
}

/// A hashed character-n-gram sentence encoder (fastText stand-in).
#[derive(Debug, Clone)]
pub struct HashedNgramEncoder {
    /// Embedding dimensionality.
    pub dim: usize,
    /// n-gram size.
    pub q: usize,
}

impl Default for HashedNgramEncoder {
    fn default() -> Self {
        HashedNgramEncoder { dim: 64, q: 3 }
    }
}

impl HashedNgramEncoder {
    /// An encoder with the given dimensionality and n-gram size.
    pub fn new(dim: usize, q: usize) -> HashedNgramEncoder {
        HashedNgramEncoder { dim, q }
    }

    /// Encode a string as an L2-normalized vector.
    pub fn encode(&self, text: &str) -> Vec<f64> {
        let mut v = vec![0.0; self.dim];
        for gram in qgrams(&text.to_lowercase(), self.q) {
            let hv = hash_vector(fnv1a(gram.as_bytes()), self.dim);
            for (a, b) in v.iter_mut().zip(hv) {
                *a += b;
            }
        }
        l2_normalize(&mut v);
        v
    }

    /// Encode a bag of strings (e.g. a column's values) as the normalized
    /// mean of member encodings.
    pub fn encode_bag<'a>(&self, items: impl IntoIterator<Item = &'a str>) -> Vec<f64> {
        let mut v = vec![0.0; self.dim];
        let mut n = 0usize;
        for item in items {
            for (a, b) in v.iter_mut().zip(self.encode(item)) {
                *a += b;
            }
            n += 1;
        }
        if n > 0 {
            l2_normalize(&mut v);
        }
        v
    }
}

/// A corpus-trained co-occurrence embedder (word2vec stand-in).
///
/// Train with [`CooccurrenceEmbedder::train`] on contexts (e.g. the rows of
/// every table in the lake: each row is one context, its rendered cell
/// values are the tokens). Token vectors are the PPMI-weighted context
/// profile randomly projected to `dim` dimensions.
#[derive(Debug, Clone)]
pub struct CooccurrenceEmbedder {
    dim: usize,
    vectors: HashMap<String, Vec<f64>>,
}

impl CooccurrenceEmbedder {
    /// Train on an iterator of contexts (each context = co-occurring tokens).
    pub fn train<'a, C>(contexts: C, dim: usize) -> CooccurrenceEmbedder
    where
        C: IntoIterator,
        C::Item: IntoIterator<Item = &'a str>,
    {
        // Count pair co-occurrences and marginals.
        let mut pair: HashMap<(String, String), f64> = HashMap::new();
        let mut marginal: HashMap<String, f64> = HashMap::new();
        let mut total = 0.0;
        for ctx in contexts {
            let toks: Vec<&str> = ctx.into_iter().collect();
            for i in 0..toks.len() {
                for j in 0..toks.len() {
                    if i == j {
                        continue;
                    }
                    *pair.entry((toks[i].to_string(), toks[j].to_string())).or_insert(0.0) += 1.0;
                    total += 1.0;
                }
                *marginal.entry(toks[i].to_string()).or_insert(0.0) += (toks.len() - 1) as f64;
            }
        }
        // PPMI-weighted random-projection vectors: v(w) = Σ_c ppmi(w,c) · r(c).
        let mut vectors: HashMap<String, Vec<f64>> = HashMap::new();
        if total > 0.0 {
            for ((w, c), n_wc) in &pair {
                let pmi = ((n_wc * total) / (marginal[w] * marginal[c])).ln();
                if pmi <= 0.0 {
                    continue;
                }
                let rc = hash_vector(fnv1a(c.as_bytes()), dim);
                let v = vectors.entry(w.clone()).or_insert_with(|| vec![0.0; dim]);
                for (a, b) in v.iter_mut().zip(rc) {
                    *a += pmi * b;
                }
            }
        }
        for v in vectors.values_mut() {
            l2_normalize(v);
        }
        CooccurrenceEmbedder { dim, vectors }
    }

    /// Vector of a token; zero vector if the token was never seen.
    pub fn vector(&self, token: &str) -> Vec<f64> {
        self.vectors.get(token).cloned().unwrap_or_else(|| vec![0.0; self.dim])
    }

    /// Cosine similarity of two tokens.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        cosine(&self.vector(a), &self.vector(b))
    }

    /// Normalized mean vector of a bag of tokens.
    pub fn encode_bag<'a>(&self, items: impl IntoIterator<Item = &'a str>) -> Vec<f64> {
        let mut v = vec![0.0; self.dim];
        for item in items {
            for (a, b) in v.iter_mut().zip(self.vector(item)) {
                *a += b;
            }
        }
        l2_normalize(&mut v);
        v
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vectors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ngram_encoder_is_similarity_preserving() {
        let e = HashedNgramEncoder::default();
        let sim_near = cosine(&e.encode("customer_id"), &e.encode("customer_ids"));
        let sim_far = cosine(&e.encode("customer_id"), &e.encode("zebra"));
        assert!(sim_near > 0.7, "{sim_near}");
        assert!(sim_far < 0.4, "{sim_far}");
    }

    #[test]
    fn ngram_encoder_is_deterministic_and_normalized() {
        let e = HashedNgramEncoder::default();
        let a = e.encode("delft");
        assert_eq!(a, e.encode("delft"));
        let norm: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
        // Case-insensitive.
        assert_eq!(e.encode("Delft"), e.encode("delft"));
    }

    #[test]
    fn bag_encoding_blends_members() {
        let e = HashedNgramEncoder::default();
        let bag = e.encode_bag(["red", "green", "blue"]);
        assert!(cosine(&bag, &e.encode("red")) > cosine(&bag, &e.encode("engine")));
    }

    #[test]
    fn cooccurrence_captures_distributional_similarity() {
        // "rood" and "red" never share characters but occur in identical
        // row contexts → the distributional hypothesis should bind them.
        let contexts: Vec<Vec<&str>> = vec![
            vec!["red", "car", "fast"],
            vec!["rood", "car", "fast"],
            vec!["red", "bike", "fast"],
            vec!["rood", "bike", "fast"],
            vec!["seven", "prime", "odd"],
            vec!["eleven", "prime", "odd"],
        ];
        let emb = CooccurrenceEmbedder::train(contexts.iter().map(|c| c.iter().copied()), 32);
        let related = emb.similarity("red", "rood");
        let unrelated = emb.similarity("red", "seven");
        assert!(related > unrelated, "related {related} vs unrelated {unrelated}");
        assert!(related > 0.5, "{related}");
    }

    #[test]
    fn unseen_token_is_zero_vector() {
        let emb = CooccurrenceEmbedder::train(vec![vec!["a", "b"]], 16);
        assert_eq!(emb.vector("zzz"), vec![0.0; 16]);
        assert_eq!(emb.similarity("zzz", "a"), 0.0);
        assert_eq!(emb.vocab_size(), 2);
    }

    #[test]
    fn empty_training_is_safe() {
        let emb = CooccurrenceEmbedder::train(Vec::<Vec<&str>>::new(), 8);
        assert_eq!(emb.vocab_size(), 0);
        assert_eq!(emb.vector("x").len(), 8);
    }
}
