//! # lake-index
//!
//! Sketches and indexes: the machinery behind related-dataset discovery
//! (survey §6.2, Table 3).
//!
//! * [`minhash`] — MinHash signatures estimating Jaccard similarity
//!   (Aurum's column "signatures").
//! * [`lsh`] — banded locality-sensitive hashing over MinHash signatures:
//!   the index that turns O(n²) all-pairs comparison into ~linear candidate
//!   generation (Aurum, D³L).
//! * [`lshforest`] — LSH Forest, the self-tuning prefix-tree variant the
//!   survey cites for similarity indexes.
//! * [`inverted`] — a value→posting-list inverted index with posting
//!   lengths exposed, the substrate of JOSIE's exact top-k overlap search.
//! * [`tfidf`] — TF-IDF weighting + cosine similarity over token bags
//!   (attribute-name similarity in Aurum/D³L).
//! * [`qgram`] — q-gram tokenization and similarity (D³L's format feature).
//! * [`ks`] — the two-sample Kolmogorov–Smirnov statistic (D³L's and
//!   RNLIM's numeric-distribution feature).
//! * [`embed`] — similarity-preserving text embeddings: hashed character
//!   n-grams with random projection (fastText/BERT stand-in, per the
//!   substitution table in DESIGN.md) and corpus-trained co-occurrence
//!   embeddings (word2vec stand-in).
//! * [`grid`] — PEXESO-style hierarchical grid over unit vectors for
//!   pruned vector-similarity joins.

pub mod bloom;
pub mod embed;
pub mod grid;
pub mod inverted;
pub mod ks;
pub mod lsh;
pub mod lshforest;
pub mod minhash;
pub mod qgram;
pub mod tfidf;

pub use inverted::InvertedIndex;
pub use lsh::LshIndex;
pub use minhash::MinHash;
