//! LSH Forest: a self-tuning variant of LSH (Bawa et al., cited as the
//! survey's \[8\]) used by LSH Ensemble-style domain search.
//!
//! Instead of fixed-width bands, each of `trees` trees stores items keyed
//! by the *prefix* of a per-tree permutation of the signature. Queries
//! descend to the longest matching prefix and relax one level at a time
//! until enough candidates are found — so no global similarity threshold
//! needs tuning, mirroring how JOSIE motivates top-k over thresholds.

use crate::minhash::MinHash;
use std::collections::BTreeMap;

/// A single prefix tree, stored as a sorted map from the full per-tree
/// key sequence to item ids (prefix search via range scans).
#[derive(Debug, Clone, Default)]
struct Tree {
    entries: BTreeMap<Vec<u64>, Vec<usize>>,
}

/// An LSH Forest over MinHash signatures.
#[derive(Debug, Clone)]
pub struct LshForest {
    trees: Vec<Tree>,
    depth: usize,
}

impl LshForest {
    /// Build a forest of `trees` trees, each using `depth` signature
    /// positions. Requires signatures of length ≥ `trees * depth`.
    pub fn new(trees: usize, depth: usize) -> LshForest {
        assert!(trees > 0 && depth > 0);
        LshForest { trees: vec![Tree::default(); trees], depth }
    }

    /// Minimum signature length this forest can index.
    pub fn required_signature_len(&self) -> usize {
        self.trees.len() * self.depth
    }

    fn key(&self, sig: &MinHash, tree: usize) -> Vec<u64> {
        let start = tree * self.depth;
        sig.values()[start..start + self.depth].to_vec()
    }

    /// Insert an item.
    pub fn insert(&mut self, id: usize, sig: &MinHash) {
        assert!(sig.len() >= self.required_signature_len(), "signature too short");
        for t in 0..self.trees.len() {
            let key = self.key(sig, t);
            self.trees[t].entries.entry(key).or_default().push(id);
        }
    }

    /// Top-`k` candidates for `sig`: descend each tree to the deepest
    /// matching prefix, then relax prefixes synchronously across trees
    /// until ≥ `k` distinct candidates are collected (or the forest is
    /// exhausted). Returned ids are deduplicated, ordered by the prefix
    /// depth at which they first matched (deeper = more similar first).
    pub fn query(&self, sig: &MinHash, k: usize) -> Vec<usize> {
        let mut found: Vec<usize> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for depth in (0..=self.depth).rev() {
            for (t, tree) in self.trees.iter().enumerate() {
                let prefix = &self.key(sig, t)[..depth];
                for (key, ids) in tree.entries.range(prefix.to_vec()..) {
                    if !key.starts_with(prefix) {
                        break;
                    }
                    for &id in ids {
                        if seen.insert(id) {
                            found.push(id);
                        }
                    }
                }
            }
            if found.len() >= k {
                break;
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minhash::MinHasher;

    fn set(prefix: &str, n: usize) -> Vec<String> {
        (0..n).map(|i| format!("{prefix}{i}")).collect()
    }

    fn sig(h: &MinHasher, items: &[String]) -> MinHash {
        h.signature(items.iter().map(String::as_str))
    }

    #[test]
    fn nearest_items_surface_first() {
        let h = MinHasher::new(64, 9);
        let mut f = LshForest::new(8, 8);
        let base = set("v", 100);
        let mut near = base[..90].to_vec();
        near.extend(set("n", 10));
        let mut mid = base[..50].to_vec();
        mid.extend(set("m", 50));
        let far = set("z", 100);

        f.insert(1, &sig(&h, &near));
        f.insert(2, &sig(&h, &mid));
        f.insert(3, &sig(&h, &far));

        let top1 = f.query(&sig(&h, &base), 1);
        assert_eq!(top1[0], 1, "nearest neighbor should be found first: {top1:?}");
    }

    #[test]
    fn relaxation_eventually_returns_everything() {
        let h = MinHasher::new(64, 9);
        let mut f = LshForest::new(8, 8);
        for i in 0..5 {
            f.insert(i, &sig(&h, &set(&format!("s{i}_"), 50)));
        }
        let all = f.query(&sig(&h, &set("s0_", 50)), 5);
        assert_eq!(all.len(), 5);
        assert_eq!(all[0], 0);
    }

    #[test]
    fn exact_duplicate_always_found() {
        let h = MinHasher::new(64, 9);
        let mut f = LshForest::new(8, 8);
        let items = set("d", 30);
        f.insert(7, &sig(&h, &items));
        assert_eq!(f.query(&sig(&h, &items), 1), vec![7]);
    }

    #[test]
    #[should_panic(expected = "signature too short")]
    fn short_signature_panics() {
        let h = MinHasher::new(4, 1);
        let mut f = LshForest::new(8, 8);
        f.insert(0, &h.signature(["x"]));
    }
}
