//! A token → posting-list inverted index.
//!
//! "For returning top-k sets JOSIE has applied inverted indexes, which map
//! between the sets and their distinct values" (§6.2.1). The index stores,
//! for every distinct token, the sorted list of set ids containing it, and
//! exposes posting-list lengths — the statistic JOSIE's cost model uses to
//! decide whether reading a posting list or probing a candidate set is
//! cheaper.

use std::collections::HashMap;

/// An inverted index over sets of string tokens.
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    postings: HashMap<String, Vec<usize>>,
    set_sizes: HashMap<usize, usize>,
    /// Tokens per set, kept for probing (set id → sorted distinct tokens).
    sets: HashMap<usize, Vec<String>>,
}

impl InvertedIndex {
    /// An empty index.
    pub fn new() -> InvertedIndex {
        InvertedIndex::default()
    }

    /// Index `tokens` as set `id` (duplicates are collapsed; replaces any
    /// previous set with the same id).
    pub fn insert(&mut self, id: usize, tokens: impl IntoIterator<Item = String>) {
        let mut distinct: Vec<String> = tokens.into_iter().collect();
        distinct.sort();
        distinct.dedup();
        self.insert_sorted(id, distinct);
    }

    /// Index an **already sorted, already distinct** token list as set
    /// `id` — the fast path for callers holding a `BTreeSet`-backed
    /// domain (column profiles), skipping the re-sort/dedup. Tokens that
    /// are out of order or duplicated are dropped rather than corrupting
    /// the postings invariant.
    pub fn insert_sorted(&mut self, id: usize, tokens: impl IntoIterator<Item = String>) {
        if self.sets.contains_key(&id) {
            self.remove(id);
        }
        let mut distinct: Vec<String> = Vec::new();
        for tok in tokens {
            match distinct.last() {
                Some(prev) if *prev >= tok => continue,
                _ => distinct.push(tok),
            }
        }
        for tok in &distinct {
            let list = self.postings.entry(tok.clone()).or_default();
            match list.binary_search(&id) {
                Ok(_) => {}
                Err(pos) => list.insert(pos, id),
            }
        }
        self.set_sizes.insert(id, distinct.len());
        self.sets.insert(id, distinct);
    }

    /// Fold another index into this one (set ids must be disjoint; a
    /// colliding id keeps `other`'s tokens, mirroring [`InvertedIndex::insert`]
    /// replacement semantics).
    ///
    /// This is the reassembly half of parallel posting construction:
    /// shards built over *contiguous, ascending* id ranges merge in shard
    /// order, each posting-list append lands at (or binary-searches to)
    /// the tail, and the merged index is byte-identical to one built by a
    /// single sequential insert loop.
    pub fn merge(&mut self, other: InvertedIndex) {
        for (id, tokens) in other.sets {
            if self.sets.contains_key(&id) {
                self.remove(id);
            }
            for tok in &tokens {
                let list = self.postings.entry(tok.clone()).or_default();
                match list.binary_search(&id) {
                    Ok(_) => {}
                    Err(pos) => list.insert(pos, id),
                }
            }
            self.set_sizes.insert(id, tokens.len());
            self.sets.insert(id, tokens);
        }
    }

    /// Remove a set.
    pub fn remove(&mut self, id: usize) {
        let Some(tokens) = self.sets.remove(&id) else { return };
        self.set_sizes.remove(&id);
        for tok in tokens {
            if let Some(list) = self.postings.get_mut(&tok) {
                if let Ok(pos) = list.binary_search(&id) {
                    list.remove(pos);
                }
                if list.is_empty() {
                    self.postings.remove(&tok);
                }
            }
        }
    }

    /// Number of indexed sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Number of distinct tokens.
    pub fn num_tokens(&self) -> usize {
        self.postings.len()
    }

    /// The posting list for `token` (sorted set ids), empty if absent.
    pub fn posting(&self, token: &str) -> &[usize] {
        self.postings.get(token).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Posting-list length for `token` — the cost-model statistic.
    pub fn posting_len(&self, token: &str) -> usize {
        self.posting(token).len()
    }

    /// Size (distinct tokens) of set `id`.
    pub fn set_size(&self, id: usize) -> usize {
        self.set_sizes.get(&id).copied().unwrap_or(0)
    }

    /// The sorted distinct tokens of set `id` (empty if absent).
    pub fn set_tokens(&self, id: usize) -> &[String] {
        self.sets.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Exact overlap (intersection size) between a query token list and
    /// set `id`, by merging sorted token lists.
    pub fn overlap_with(&self, query_sorted: &[String], id: usize) -> usize {
        merge_overlap(query_sorted.iter().map(String::as_str), self.set_tokens(id))
    }

    /// Borrowed-token variant of [`InvertedIndex::overlap_with`] — lets
    /// callers probe with `&str` views of a profile domain without
    /// cloning the query tokens first.
    pub fn overlap_with_strs(&self, query_sorted: &[&str], id: usize) -> usize {
        merge_overlap(query_sorted.iter().copied(), self.set_tokens(id))
    }

    /// Accumulate overlap counts for `query` across all indexed sets by
    /// scanning posting lists — the "merge everything" baseline JOSIE's
    /// cost model improves on. Returns `(set id, overlap)` sorted by
    /// overlap descending.
    pub fn overlap_counts(&self, query: impl IntoIterator<Item = String>) -> Vec<(usize, usize)> {
        let mut distinct: Vec<String> = query.into_iter().collect();
        distinct.sort();
        distinct.dedup();
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for tok in &distinct {
            for &id in self.posting(tok) {
                *counts.entry(id).or_insert(0) += 1;
            }
        }
        let mut v: Vec<(usize, usize)> = counts.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

/// Sorted-merge intersection count of two ascending token sequences.
fn merge_overlap<'a>(query: impl Iterator<Item = &'a str>, set: &[String]) -> usize {
    let mut it = set.iter();
    let mut cur = it.next();
    let mut n = 0;
    for q in query {
        while let Some(s) = cur {
            match s.as_str().cmp(q) {
                std::cmp::Ordering::Less => cur = it.next(),
                std::cmp::Ordering::Equal => {
                    n += 1;
                    cur = it.next();
                    break;
                }
                std::cmp::Ordering::Greater => break,
            }
        }
        if cur.is_none() {
            break;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &[&str]) -> Vec<String> {
        s.iter().map(|t| t.to_string()).collect()
    }

    fn index() -> InvertedIndex {
        let mut ix = InvertedIndex::new();
        ix.insert(1, toks(&["a", "b", "c"]));
        ix.insert(2, toks(&["b", "c", "d"]));
        ix.insert(3, toks(&["x", "y"]));
        ix
    }

    #[test]
    fn postings_are_sorted_and_complete() {
        let ix = index();
        assert_eq!(ix.posting("b"), &[1, 2]);
        assert_eq!(ix.posting("x"), &[3]);
        assert_eq!(ix.posting("zz"), &[] as &[usize]);
        assert_eq!(ix.num_sets(), 3);
        assert_eq!(ix.num_tokens(), 6);
        assert_eq!(ix.posting_len("c"), 2);
    }

    #[test]
    fn duplicates_collapse() {
        let mut ix = InvertedIndex::new();
        ix.insert(9, toks(&["a", "a", "b"]));
        assert_eq!(ix.set_size(9), 2);
        assert_eq!(ix.posting("a"), &[9]);
    }

    #[test]
    fn insert_sorted_matches_insert() {
        let mut plain = InvertedIndex::new();
        plain.insert(1, toks(&["c", "a", "b", "a"]));
        let mut fast = InvertedIndex::new();
        fast.insert_sorted(1, toks(&["a", "b", "c"]));
        assert_eq!(fast.set_tokens(1), plain.set_tokens(1));
        for t in ["a", "b", "c"] {
            assert_eq!(fast.posting(t), plain.posting(t));
        }
        // Out-of-order / duplicate tokens are dropped, preserving the
        // sorted-distinct invariant instead of corrupting it.
        let mut bad = InvertedIndex::new();
        bad.insert_sorted(2, toks(&["b", "a", "b", "c"]));
        assert_eq!(bad.set_tokens(2), &["b", "c"]);
    }

    #[test]
    fn borrowed_overlap_matches_owned() {
        let ix = index();
        let q = toks(&["b", "c", "d"]);
        let qs: Vec<&str> = q.iter().map(String::as_str).collect();
        for id in [1, 2, 3, 99] {
            assert_eq!(ix.overlap_with_strs(&qs, id), ix.overlap_with(&q, id));
        }
    }

    #[test]
    fn overlap_counts_rank_by_intersection() {
        let ix = index();
        let res = ix.overlap_counts(toks(&["b", "c", "d"]));
        assert_eq!(res[0], (2, 3));
        assert_eq!(res[1], (1, 2));
        assert!(!res.iter().any(|&(id, _)| id == 3));
    }

    #[test]
    fn probe_overlap_matches_scan() {
        let ix = index();
        let mut q = toks(&["b", "c", "d"]);
        q.sort();
        assert_eq!(ix.overlap_with(&q, 2), 3);
        assert_eq!(ix.overlap_with(&q, 1), 2);
        assert_eq!(ix.overlap_with(&q, 3), 0);
        assert_eq!(ix.overlap_with(&q, 99), 0);
    }

    #[test]
    fn merge_of_contiguous_shards_matches_sequential_build() {
        let sets: Vec<Vec<String>> = (0..9)
            .map(|i| toks(&["a", "b"]).into_iter().chain([format!("t{}", i % 4)]).collect())
            .collect();
        let mut seq = InvertedIndex::new();
        for (id, s) in sets.iter().enumerate() {
            seq.insert(id, s.iter().cloned());
        }
        let mut merged = InvertedIndex::new();
        for (lo, hi) in [(0usize, 4usize), (4, 7), (7, 9)] {
            let mut shard = InvertedIndex::new();
            for id in lo..hi {
                shard.insert(id, sets[id].iter().cloned());
            }
            merged.merge(shard);
        }
        assert_eq!(merged.num_sets(), seq.num_sets());
        assert_eq!(merged.num_tokens(), seq.num_tokens());
        for tok in ["a", "b", "t0", "t1", "t2", "t3"] {
            assert_eq!(merged.posting(tok), seq.posting(tok), "token {tok}");
        }
        for id in 0..9 {
            assert_eq!(merged.set_tokens(id), seq.set_tokens(id));
            assert_eq!(merged.set_size(id), seq.set_size(id));
        }
    }

    #[test]
    fn merge_replaces_colliding_ids() {
        let mut a = InvertedIndex::new();
        a.insert(1, toks(&["x", "y"]));
        let mut b = InvertedIndex::new();
        b.insert(1, toks(&["z"]));
        a.merge(b);
        assert_eq!(a.posting("x"), &[] as &[usize]);
        assert_eq!(a.posting("z"), &[1]);
        assert_eq!(a.set_size(1), 1);
    }

    #[test]
    fn remove_and_reinsert() {
        let mut ix = index();
        ix.remove(2);
        assert_eq!(ix.posting("d"), &[] as &[usize]);
        assert_eq!(ix.posting("b"), &[1]);
        assert_eq!(ix.num_sets(), 2);
        // Replacement via same id.
        ix.insert(1, toks(&["zz"]));
        assert_eq!(ix.posting("a"), &[] as &[usize]);
        assert_eq!(ix.posting("zz"), &[1]);
    }
}
