//! A lakehouse table: ACID appends, statistics-pruned scans, compaction.
//!
//! Data files are parquet-lite objects; every append is one atomic commit.
//! Scans consult per-file column statistics *before* reading file bodies —
//! the "auxiliary structures such as indexes over open data formats"
//! direction of §8.3 — and report how many files were skipped. Compaction
//! rewrites many small files into one, committing `remove+add` atomically
//! so concurrent readers always see a consistent snapshot and concurrent
//! appends either merge or conflict cleanly.

use crate::log::{Action, Snapshot, TxnLog};
use lake_core::retry::{Clock, RetryPolicy, RetryStats};
use lake_core::{LakeError, Result, Row, Table};
use lake_formats::columnar;
use lake_formats::varint::{get_str, get_u64, put_str, put_u64};
use lake_index::bloom::BloomFilter;
use lake_store::object::ObjectStore;
use lake_store::predicate::Predicate;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Scan metrics: data-skipping effectiveness (E10).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Files whose stats allowed skipping without reading the body.
    pub files_skipped: usize,
    /// Files pruned by their Bloom sidecar (value inside the min/max range
    /// but provably absent) — the Hyperspace-style auxiliary index of §8.3.
    pub files_bloom_pruned: usize,
    /// Files actually decoded.
    pub files_read: usize,
}

/// Serialize per-column Bloom filters as a sidecar blob.
fn encode_blooms(table: &Table) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(b"BLS1");
    put_u64(&mut out, table.num_columns() as u64);
    for col in table.columns() {
        put_str(&mut out, &col.name);
        let domain = col.text_domain();
        let mut bloom = BloomFilter::for_items(domain.len().max(8), 0.01);
        for v in domain {
            bloom.insert(&v);
        }
        let bytes = bloom.to_bytes();
        put_u64(&mut out, bytes.len() as u64);
        out.extend_from_slice(&bytes);
    }
    out
}

/// Parse a sidecar blob back into `(column, filter)` pairs.
fn decode_blooms(buf: &[u8]) -> Option<Vec<(String, BloomFilter)>> {
    if buf.get(..4)? != b"BLS1" {
        return None;
    }
    let mut pos = 4;
    let n = get_u64(buf, &mut pos).ok()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let name = get_str(buf, &mut pos).ok()?;
        let len = get_u64(buf, &mut pos).ok()? as usize;
        let end = pos.checked_add(len).filter(|&e| e <= buf.len())?;
        let bloom = BloomFilter::from_bytes(buf.get(pos..end)?)?;
        pos = end;
        out.push((name, bloom));
    }
    Some(out)
}

/// A lakehouse table bound to an object store prefix.
pub struct LakeTable<'a> {
    store: &'a dyn ObjectStore,
    log: TxnLog<'a>,
    prefix: String,
    file_seq: AtomicU64,
}

impl<'a> LakeTable<'a> {
    /// Open (or create) the table at `prefix`.
    pub fn open(store: &'a dyn ObjectStore, prefix: &str) -> LakeTable<'a> {
        let prefix = prefix.trim_end_matches('/').to_string();
        LakeTable {
            store,
            log: TxnLog::open(store, &prefix),
            file_seq: AtomicU64::new(store.list(&format!("{prefix}/data/")).len() as u64),
            prefix,
        }
    }

    /// The transaction log (for version/time-travel access).
    pub fn log(&self) -> &TxnLog<'a> {
        &self.log
    }

    /// Replace the retry policy governing all of this handle's
    /// object-store I/O — log entries and data files alike.
    pub fn with_retry(mut self, policy: RetryPolicy) -> LakeTable<'a> {
        self.log = self.log.with_retry(policy);
        self
    }

    /// Replace the backoff clock (tests inject a
    /// [`lake_core::ManualClock`] so retries never sleep).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> LakeTable<'a> {
        self.log = self.log.with_clock(clock);
        self
    }

    /// Record this table's commits, retries, and appends into a
    /// `lake-obs` registry (see [`crate::obs::HouseMetrics`]).
    pub fn with_obs(mut self, obs: crate::obs::HouseMetrics) -> LakeTable<'a> {
        self.log = self.log.with_obs(obs);
        self
    }

    /// Retry counters accumulated across this handle's operations.
    pub fn retry_stats(&self) -> RetryStats {
        self.log.retry_stats()
    }

    fn new_file_key(&self) -> String {
        // lint: ordering — name uniqueness rests on fetch_add atomicity.
        let n = self.file_seq.fetch_add(1, Ordering::Relaxed);
        // Thread id keeps concurrent writers from colliding on names.
        let tid = std::thread::current().id();
        format!("{}/data/part-{n:06}-{tid:?}.pql", self.prefix)
    }

    /// Append a batch of rows (as a [`Table`] whose name is ignored) in
    /// one ACID commit. Returns the committed version.
    pub fn append(&self, batch: &Table) -> Result<u64> {
        if batch.num_rows() == 0 {
            return Err(LakeError::invalid("empty append"));
        }
        let _span = self.log.obs().and_then(|o| o.span("house.append"));
        if let Some(obs) = self.log.obs() {
            obs.append_rows_total.add(batch.num_rows() as u64);
        }
        let key = self.new_file_key();
        let body = columnar::encode(batch);
        self.log.run_retry(|| self.store.put(&key, &body))?;
        // Bloom sidecar: best-effort auxiliary index (readers tolerate its
        // absence, so a crash between the two puts is harmless).
        let bloom_key = format!("{key}.bloom");
        let sidecar = encode_blooms(batch);
        self.log.run_retry(|| self.store.put(&bloom_key, &sidecar))?;
        self.log.commit(&[Action::AddFile { path: key, rows: batch.num_rows() }])
    }

    /// Scan the latest snapshot with optional predicates, using per-file
    /// statistics to skip files that cannot match equality predicates.
    pub fn scan(&self, predicates: &[Predicate]) -> Result<(Vec<Row>, ScanStats)> {
        self.scan_at(self.log.latest_version(), predicates)
    }

    /// Scan a historical version (time travel).
    pub fn scan_at(&self, version: u64, predicates: &[Predicate]) -> Result<(Vec<Row>, ScanStats)> {
        let snap = self.log.snapshot_at(version)?;
        self.scan_snapshot(&snap, predicates)
    }

    fn scan_snapshot(&self, snap: &Snapshot, predicates: &[Predicate]) -> Result<(Vec<Row>, ScanStats)> {
        let mut stats = ScanStats::default();
        let mut rows = Vec::new();
        for (path, _) in &snap.files {
            let bytes = self.log.run_retry(|| self.store.get(path))?;
            // Data skipping: equality predicates vs min/max.
            let fstats = columnar::read_stats(&bytes)?;
            let skip = predicates.iter().any(|p| {
                p.op == lake_store::predicate::CompareOp::Eq
                    && fstats
                        .iter()
                        .find(|s| s.name == p.attribute)
                        .is_some_and(|s| s.can_skip_eq(&p.value))
            });
            if skip {
                stats.files_skipped += 1;
                continue;
            }
            // Second pruning stage: Bloom sidecars catch in-range misses.
            let eq_preds: Vec<&Predicate> = predicates
                .iter()
                .filter(|p| p.op == lake_store::predicate::CompareOp::Eq)
                .collect();
            if !eq_preds.is_empty() {
                let bloom_key = format!("{path}.bloom");
                if let Ok(side) = self.log.run_retry(|| self.store.get(&bloom_key)) {
                    if let Some(blooms) = decode_blooms(&side) {
                        let provably_absent = eq_preds.iter().any(|p| {
                            blooms
                                .iter()
                                .find(|(n, _)| *n == p.attribute)
                                .is_some_and(|(_, b)| !b.may_contain(&p.value.render()))
                        });
                        if provably_absent {
                            stats.files_bloom_pruned += 1;
                            continue;
                        }
                    }
                }
            }
            stats.files_read += 1;
            let t = columnar::decode(&bytes)?;
            let filtered = t.filter(|row| {
                predicates.iter().all(|p| {
                    t.column_index(&p.attribute)
                        .and_then(|i| row.get(i))
                        .map(|v| p.matches(v))
                        .unwrap_or(false)
                })
            });
            rows.extend(filtered.iter_rows());
        }
        Ok((rows, stats))
    }

    /// Compact all current files into one, atomically. Returns the new
    /// version, or `Conflict` when a concurrent writer interfered with the
    /// compacted files.
    pub fn compact(&self) -> Result<u64> {
        self.compact_from(self.log.snapshot()?)
    }

    /// Compact the files of a specific snapshot (the snapshot a compactor
    /// read may be stale by commit time — that race is what the conflict
    /// detection catches).
    pub fn compact_from(&self, snap: Snapshot) -> Result<u64> {
        if snap.files.len() <= 1 {
            return Ok(snap.version);
        }
        // Read and merge all live files.
        let mut merged: Option<Table> = None;
        for (path, _) in &snap.files {
            let t = columnar::decode(&self.log.run_retry(|| self.store.get(path))?)?;
            merged = Some(match merged {
                None => t,
                Some(mut acc) => {
                    for row in t.iter_rows() {
                        acc.push_row(row)?;
                    }
                    acc
                }
            });
        }
        let merged = merged
            .ok_or_else(|| LakeError::invalid("compaction snapshot lists no readable files"))?;
        let key = self.new_file_key();
        let body = columnar::encode(&merged);
        self.log.run_retry(|| self.store.put(&key, &body))?;
        let bloom_key = format!("{key}.bloom");
        let sidecar = encode_blooms(&merged);
        self.log.run_retry(|| self.store.put(&bloom_key, &sidecar))?;
        let mut actions: Vec<Action> = snap
            .files
            .iter()
            .map(|(p, _)| Action::RemoveFile { path: p.clone() })
            .collect();
        actions.push(Action::AddFile { path: key, rows: merged.num_rows() });
        self.log.commit(&actions)
    }

    /// Number of live data files.
    pub fn file_count(&self) -> Result<usize> {
        Ok(self.log.snapshot()?.files.len())
    }

    /// Delete all rows matching every predicate, as one ACID commit:
    /// affected files are rewritten without the matching rows (or removed
    /// entirely when emptied). Returns the number of rows deleted.
    pub fn delete_where(&self, predicates: &[Predicate]) -> Result<usize> {
        if predicates.is_empty() {
            return Err(LakeError::invalid(
                "refusing an unpredicated delete; use predicates or drop the table",
            ));
        }
        let snap = self.log.snapshot()?;
        let mut actions = Vec::new();
        let mut deleted = 0usize;
        for (path, rows) in &snap.files {
            let bytes = self.log.run_retry(|| self.store.get(path))?;
            // Skip files whose stats prove no row matches an Eq predicate.
            let fstats = columnar::read_stats(&bytes)?;
            let skip = predicates.iter().any(|p| {
                p.op == lake_store::predicate::CompareOp::Eq
                    && fstats
                        .iter()
                        .find(|s| s.name == p.attribute)
                        .is_some_and(|s| s.can_skip_eq(&p.value))
            });
            if skip {
                continue;
            }
            let t = columnar::decode(&bytes)?;
            let kept = t.filter(|row| {
                !predicates.iter().all(|p| {
                    t.column_index(&p.attribute)
                        .and_then(|i| row.get(i))
                        .map(|v| p.matches(v))
                        .unwrap_or(false)
                })
            });
            // Saturating: a corrupt log row count must not abort the delete.
            let removed_here = rows.saturating_sub(kept.num_rows());
            if removed_here == 0 {
                continue;
            }
            deleted += removed_here;
            actions.push(Action::RemoveFile { path: path.clone() });
            if kept.num_rows() > 0 {
                let key = self.new_file_key();
                let body = columnar::encode(&kept);
                self.log.run_retry(|| self.store.put(&key, &body))?;
                let bloom_key = format!("{key}.bloom");
                let sidecar = encode_blooms(&kept);
                self.log.run_retry(|| self.store.put(&bloom_key, &sidecar))?;
                actions.push(Action::AddFile { path: key, rows: kept.num_rows() });
            }
        }
        if !actions.is_empty() {
            self.log.commit(&actions)?;
        }
        Ok(deleted)
    }

    /// Garbage-collect data objects unreachable from the last
    /// `retain_versions` snapshots (Delta-style `VACUUM`). Time travel to
    /// versions older than the retention window stops working for vacuumed
    /// files — the documented trade-off. Returns the keys deleted.
    ///
    /// Like Delta's VACUUM, this must not run concurrently with writers:
    /// a data file whose commit is still in flight is not yet reachable
    /// from any snapshot and would be collected (production systems guard
    /// this with wall-clock retention periods; this lake uses logical time
    /// only, so the caller serializes vacuum against writes).
    pub fn vacuum(&self, retain_versions: u64) -> Result<Vec<String>> {
        let latest = self.log.latest_version();
        let from = latest.saturating_sub(retain_versions.saturating_sub(1).min(latest));
        let mut live = std::collections::BTreeSet::new();
        for v in from..=latest {
            for (path, _) in self.log.snapshot_at(v)?.files {
                live.insert(path);
            }
        }
        let mut deleted = Vec::new();
        for key in self.store.list(&format!("{}/data/", self.prefix)) {
            // A `.bloom` sidecar lives and dies with its data file.
            let owner = key.strip_suffix(".bloom").unwrap_or(&key).to_string();
            if !live.contains(&owner) {
                self.log.run_retry(|| self.store.delete(&key))?;
                deleted.push(key);
            }
        }
        Ok(deleted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lake_core::Value;
    use lake_store::object::MemoryStore;
    use lake_store::predicate::CompareOp;
    use std::sync::Arc;

    fn batch(range: std::ops::Range<i64>) -> Table {
        let rows: Vec<Row> = range
            .map(|i| vec![Value::Int(i), Value::str(format!("v{i}"))])
            .collect();
        Table::from_rows("batch", &["id", "payload"], rows).unwrap()
    }

    #[test]
    fn append_and_scan() {
        let store = MemoryStore::new();
        let t = LakeTable::open(&store, "tables/events");
        t.append(&batch(0..10)).unwrap();
        t.append(&batch(10..25)).unwrap();
        let (rows, stats) = t.scan(&[]).unwrap();
        assert_eq!(rows.len(), 25);
        assert_eq!(stats.files_read, 2);
        assert!(t.append(&Table::from_rows("e", &["a"], vec![]).unwrap()).is_err());
    }

    #[test]
    fn data_skipping_prunes_files_by_stats() {
        let store = MemoryStore::new();
        let t = LakeTable::open(&store, "t");
        t.append(&batch(0..100)).unwrap();
        t.append(&batch(100..200)).unwrap();
        t.append(&batch(200..300)).unwrap();
        let preds = [Predicate::new("id", CompareOp::Eq, 150i64)];
        let (rows, stats) = t.scan(&preds).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(stats.files_read, 1);
        assert_eq!(stats.files_skipped, 2);
    }

    #[test]
    fn time_travel_scans_history() {
        let store = MemoryStore::new();
        let t = LakeTable::open(&store, "t");
        t.append(&batch(0..5)).unwrap();
        t.append(&batch(5..9)).unwrap();
        let (v1, _) = t.scan_at(1, &[]).unwrap();
        let (v2, _) = t.scan_at(2, &[]).unwrap();
        assert_eq!(v1.len(), 5);
        assert_eq!(v2.len(), 9);
    }

    #[test]
    fn compaction_reduces_files_preserves_rows() {
        let store = MemoryStore::new();
        let t = LakeTable::open(&store, "t");
        for i in 0..5 {
            t.append(&batch(i * 10..(i + 1) * 10)).unwrap();
        }
        assert_eq!(t.file_count().unwrap(), 5);
        let before: usize = t.scan(&[]).unwrap().0.len();
        t.compact().unwrap();
        assert_eq!(t.file_count().unwrap(), 1);
        assert_eq!(t.scan(&[]).unwrap().0.len(), before);
        // Old version still shows 5 files (snapshot isolation for readers).
        assert_eq!(t.log().snapshot_at(5).unwrap().files.len(), 5);
    }

    #[test]
    fn concurrent_appends_all_land() {
        let store = Arc::new(MemoryStore::new());
        // Initialize the table once.
        LakeTable::open(store.as_ref(), "t").append(&batch(0..1)).unwrap();
        let mut handles = Vec::new();
        for i in 0..6i64 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                let t = LakeTable::open(store.as_ref(), "t");
                t.append(&batch(i * 100..i * 100 + 10)).unwrap()
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let t = LakeTable::open(store.as_ref(), "t");
        assert_eq!(t.scan(&[]).unwrap().0.len(), 1 + 60);
        assert_eq!(t.log().latest_version(), 7);
    }

    #[test]
    fn bloom_sidecar_prunes_in_range_misses() {
        let store = MemoryStore::new();
        let t = LakeTable::open(&store, "t");
        // Files with even ids only: an odd probe is inside min/max but absent.
        let rows: Vec<Row> = (0..50).map(|i| vec![Value::Int(i * 2)]).collect();
        t.append(&Table::from_rows("b", &["id"], rows).unwrap()).unwrap();
        let rows2: Vec<Row> = (100..150).map(|i| vec![Value::Int(i * 2)]).collect();
        t.append(&Table::from_rows("b", &["id"], rows2).unwrap()).unwrap();

        let (hits, stats) = t.scan(&[Predicate::new("id", CompareOp::Eq, 51i64)]).unwrap();
        assert!(hits.is_empty());
        // min/max cannot prune file 1 (51 ∈ [0, 98]) — the bloom does.
        assert_eq!(stats.files_bloom_pruned, 1);
        assert_eq!(stats.files_skipped, 1); // file 2 pruned by min/max
        assert_eq!(stats.files_read, 0);

        // A present value is never bloom-pruned (no false negatives).
        let (hits2, stats2) = t.scan(&[Predicate::new("id", CompareOp::Eq, 50i64)]).unwrap();
        assert_eq!(hits2.len(), 1);
        assert_eq!(stats2.files_read, 1);
    }

    #[test]
    fn vacuum_keeps_live_sidecars() {
        let store = MemoryStore::new();
        let t = LakeTable::open(&store, "t");
        t.append(&batch(0..10)).unwrap();
        t.append(&batch(10..20)).unwrap();
        t.compact().unwrap();
        t.vacuum(1).unwrap();
        let keys = store.list("t/data/");
        // Exactly one data file + its sidecar remain.
        assert_eq!(keys.len(), 2, "{keys:?}");
        assert!(keys.iter().any(|k| k.ends_with(".bloom")));
        // Bloom still effective after compaction+vacuum.
        let (_, stats) = t.scan(&[Predicate::new("id", CompareOp::Eq, 9999i64)]).unwrap();
        assert_eq!(stats.files_read + stats.files_bloom_pruned + stats.files_skipped, 1);
    }

    #[test]
    fn delete_where_rewrites_only_affected_files() {
        let store = MemoryStore::new();
        let t = LakeTable::open(&store, "t");
        t.append(&batch(0..10)).unwrap();
        t.append(&batch(100..110)).unwrap();
        let deleted = t
            .delete_where(&[Predicate::new("id", CompareOp::Ge, 100i64)])
            .unwrap();
        assert_eq!(deleted, 10);
        let (rows, _) = t.scan(&[]).unwrap();
        assert_eq!(rows.len(), 10);
        assert!(rows.iter().all(|r| r[0].as_i64().unwrap() < 100));
        // Old snapshot still sees everything (time travel).
        assert_eq!(t.scan_at(2, &[]).unwrap().0.len(), 20);
    }

    #[test]
    fn partial_delete_keeps_remaining_rows_in_file() {
        let store = MemoryStore::new();
        let t = LakeTable::open(&store, "t");
        t.append(&batch(0..10)).unwrap();
        let deleted = t.delete_where(&[Predicate::new("id", CompareOp::Lt, 3i64)]).unwrap();
        assert_eq!(deleted, 3);
        let (rows, _) = t.scan(&[]).unwrap();
        assert_eq!(rows.len(), 7);
        assert_eq!(t.file_count().unwrap(), 1);
    }

    #[test]
    fn unpredicated_delete_is_refused() {
        let store = MemoryStore::new();
        let t = LakeTable::open(&store, "t");
        t.append(&batch(0..5)).unwrap();
        assert!(t.delete_where(&[]).is_err());
    }

    #[test]
    fn vacuum_removes_only_unreachable_files() {
        let store = MemoryStore::new();
        let t = LakeTable::open(&store, "t");
        for i in 0..4i64 {
            t.append(&batch(i * 10..(i + 1) * 10)).unwrap();
        }
        t.compact().unwrap(); // old 4 files now unreferenced by HEAD
        let before = store.list("t/data/").len();
        assert_eq!(before, 10, "5 data files + 5 bloom sidecars");
        // Retaining all history: nothing deletable.
        let none = t.vacuum(100).unwrap();
        assert!(none.is_empty());
        // Retaining only the latest version: the 4 pre-compaction files
        // (and their sidecars) go.
        let gone = t.vacuum(1).unwrap();
        assert_eq!(gone.len(), 8);
        assert_eq!(store.list("t/data/").len(), 2);
        // Current data unaffected.
        assert_eq!(t.scan(&[]).unwrap().0.len(), 40);
    }

    #[test]
    fn compaction_racing_compaction_conflicts() {
        let store = MemoryStore::new();
        let t = LakeTable::open(&store, "t");
        t.append(&batch(0..5)).unwrap();
        t.append(&batch(5..10)).unwrap();
        // The compactor reads its snapshot, then a racer removes one of
        // the files before the compactor commits.
        let snap = t.log().snapshot().unwrap();
        let victim = snap.files[0].0.clone();
        t.log()
            .try_commit(snap.version, &[Action::RemoveFile { path: victim }])
            .unwrap();
        let r = t.compact_from(snap);
        assert!(matches!(r, Err(LakeError::Conflict(_))), "{r:?}");
    }
}
