//! # lake-house
//!
//! The Lakehouse substrate (survey §8.3): "ACID table storage over cloud
//! object stores" in the style of Delta Lake / Iceberg / Hudi —
//! transaction management, indexing (min/max statistics), and metadata
//! management layered over the plain object store.
//!
//! * [`log`] — the transaction log: ordered JSON commit entries written
//!   with the object store's atomic put-if-absent, giving optimistic
//!   concurrency; snapshots replay the log (from the latest checkpoint);
//!   time travel reads any historical version.
//! * [`table`] — [`table::LakeTable`]: an append/scan/compact table whose
//!   data files are parquet-lite objects with per-column statistics used
//!   for data skipping at scan time.
//! * [`recovery`] — crash recovery: [`log::TxnLog::recover`] quarantines
//!   torn or corrupt trailing log entries (every entry is checksummed),
//!   re-verifies checkpoints against replayed state, and restores the
//!   table to its last fully-valid version.
//! * [`obs`] — registry metrics (`lake_house_*`) and tracing spans for
//!   commits, checkpoints, retries, and recovery, attached with
//!   [`log::TxnLog::with_obs`] / [`table::LakeTable::with_obs`].

pub mod log;
pub mod obs;
pub mod recovery;
pub mod table;

pub use log::{Action, Snapshot, TxnLog};
pub use obs::HouseMetrics;
pub use recovery::RecoveryReport;
pub use table::LakeTable;
