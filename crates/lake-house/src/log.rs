//! The transaction log: ACID commits over an object store.
//!
//! Commit protocol (Delta-style): a writer reads the current version `v`,
//! prepares a list of [`Action`]s, and attempts to create
//! `_log/<v+1 padded>.json` with *put-if-absent*. The object store makes
//! exactly one concurrent writer win; losers re-read the log, check their
//! actions against the winner's (logical conflict detection), and retry
//! or abort. Snapshots replay actions; a checkpoint every
//! `checkpoint_every` commits bounds replay cost. Old versions remain
//! readable (time travel).
//!
//! Every entry carries an FNV-1a checksum over its action list, so a torn
//! or bit-rotted entry is detected at read time instead of silently
//! replaying garbage; [`TxnLog::recover`] (in [`crate::recovery`])
//! quarantines such entries. All object-store I/O runs under a
//! [`RetryPolicy`], so transient storage failures are absorbed rather
//! than surfaced to every caller.

use crate::obs::HouseMetrics;
use lake_core::retry::{retry_with_stats, Clock, RetryPolicy, RetryStats, SystemClock};
use lake_core::{Json, LakeError, Result};
use lake_formats::json as jsonfmt;
use lake_store::object::ObjectStore;
use lake_core::sync::{rank, OrderedMutex};
use std::collections::BTreeMap;
use std::sync::Arc;

/// FNV-1a 64-bit, the checksum guarding each log entry against torn or
/// corrupted writes. Rendered as 16 hex digits in the entry's `crc` field.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Parse and integrity-check one serialized log entry. Entries written
/// before checksums existed (no `crc` field) are accepted; a present but
/// mismatching checksum is a [`LakeError::Parse`], exactly like torn JSON.
pub(crate) fn validate_entry(bytes: &[u8]) -> Result<Vec<Action>> {
    let doc = jsonfmt::parse(&String::from_utf8_lossy(bytes))?;
    let actions = doc
        .get("actions")
        .and_then(Json::as_array)
        .ok_or_else(|| LakeError::parse("log entry lacks actions"))?;
    if let Some(stored) = doc.get("crc").and_then(Json::as_str) {
        let computed =
            format!("{:016x}", fnv1a64(Json::Array(actions.to_vec()).to_string().as_bytes()));
        if stored != computed {
            return Err(LakeError::parse(format!(
                "log entry checksum mismatch (stored {stored}, computed {computed})"
            )));
        }
    }
    actions.iter().map(Action::from_json).collect()
}

/// One logged action.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// A data file became part of the table.
    AddFile {
        /// Object key of the data file.
        path: String,
        /// Row count.
        rows: usize,
    },
    /// A data file was logically removed (compaction, delete).
    RemoveFile {
        /// Object key.
        path: String,
    },
    /// Table metadata was set.
    SetMeta {
        /// Key.
        key: String,
        /// Value.
        value: String,
    },
}

impl Action {
    fn to_json(&self) -> Json {
        match self {
            Action::AddFile { path, rows } => Json::obj(vec![
                ("action", Json::str("add")),
                ("path", Json::str(path.clone())),
                ("rows", Json::Num(*rows as f64)),
            ]),
            Action::RemoveFile { path } => Json::obj(vec![
                ("action", Json::str("remove")),
                ("path", Json::str(path.clone())),
            ]),
            Action::SetMeta { key, value } => Json::obj(vec![
                ("action", Json::str("meta")),
                ("key", Json::str(key.clone())),
                ("value", Json::str(value.clone())),
            ]),
        }
    }

    fn from_json(j: &Json) -> Result<Action> {
        let kind = j
            .get("action")
            .and_then(Json::as_str)
            .ok_or_else(|| LakeError::parse("log entry lacks action"))?;
        let get_str = |k: &str| -> Result<String> {
            j.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| LakeError::parse(format!("log entry lacks {k}")))
        };
        Ok(match kind {
            "add" => Action::AddFile {
                path: get_str("path")?,
                rows: j.get("rows").and_then(Json::as_f64).unwrap_or(0.0) as usize,
            },
            "remove" => Action::RemoveFile { path: get_str("path")? },
            "meta" => Action::SetMeta { key: get_str("key")?, value: get_str("value")? },
            other => return Err(LakeError::parse(format!("unknown action {other}"))),
        })
    }
}

/// A materialized table state at one version.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Version this snapshot reflects (0 = empty table, pre-first-commit).
    pub version: u64,
    /// Live data files with row counts, in add order.
    pub files: Vec<(String, usize)>,
    /// Metadata.
    pub meta: BTreeMap<String, String>,
}

impl Snapshot {
    fn apply(&mut self, actions: &[Action]) {
        for a in actions {
            match a {
                Action::AddFile { path, rows } => self.files.push((path.clone(), *rows)),
                Action::RemoveFile { path } => self.files.retain(|(p, _)| p != path),
                Action::SetMeta { key, value } => {
                    self.meta.insert(key.clone(), value.clone());
                }
            }
        }
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("version", Json::Num(self.version as f64)),
            (
                "files",
                Json::Array(
                    self.files
                        .iter()
                        .map(|(p, r)| {
                            Json::obj(vec![("path", Json::str(p.clone())), ("rows", Json::Num(*r as f64))])
                        })
                        .collect(),
                ),
            ),
            (
                "meta",
                Json::Object(
                    self.meta
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::str(v.clone())))
                        .collect(),
                ),
            ),
        ])
    }

    pub(crate) fn from_json(j: &Json) -> Result<Snapshot> {
        let version = j
            .get("version")
            .and_then(Json::as_f64)
            .ok_or_else(|| LakeError::parse("checkpoint lacks version"))? as u64;
        let files = j
            .get("files")
            .and_then(Json::as_array)
            .ok_or_else(|| LakeError::parse("checkpoint lacks files"))?
            .iter()
            .map(|f| {
                Ok((
                    f.get("path")
                        .and_then(Json::as_str)
                        .ok_or_else(|| LakeError::parse("file lacks path"))?
                        .to_string(),
                    f.get("rows").and_then(Json::as_f64).unwrap_or(0.0) as usize,
                ))
            })
            .collect::<Result<Vec<_>>>()?;
        let meta = j
            .get("meta")
            .and_then(Json::as_object)
            .map(|m| {
                m.iter()
                    .filter_map(|(k, v)| v.as_str().map(|s| (k.clone(), s.to_string())))
                    .collect()
            })
            .unwrap_or_default();
        Ok(Snapshot { version, files, meta })
    }

    /// Total live rows.
    pub fn total_rows(&self) -> usize {
        self.files.iter().map(|(_, r)| r).sum()
    }
}

/// The transaction log for one table prefix in an object store.
pub struct TxnLog<'a> {
    pub(crate) store: &'a dyn ObjectStore,
    pub(crate) prefix: String,
    /// Write a checkpoint after every N commits.
    pub checkpoint_every: u64,
    policy: RetryPolicy,
    clock: Arc<dyn Clock>,
    stats: OrderedMutex<RetryStats>,
    obs: Option<HouseMetrics>,
}

impl<'a> TxnLog<'a> {
    /// Open (or create) the log at `prefix` (e.g. `tables/orders`).
    pub fn open(store: &'a dyn ObjectStore, prefix: &str) -> TxnLog<'a> {
        TxnLog {
            store,
            prefix: prefix.trim_end_matches('/').to_string(),
            checkpoint_every: 10,
            policy: RetryPolicy::default(),
            clock: Arc::new(SystemClock),
            stats: OrderedMutex::new(
                RetryStats::default(),
                rank::HOUSE_RETRY_STATS,
                "house.log.retry_stats",
            ),
            obs: None,
        }
    }

    /// Replace the retry policy governing this handle's object-store I/O.
    pub fn with_retry(mut self, policy: RetryPolicy) -> TxnLog<'a> {
        self.policy = policy;
        self
    }

    /// Replace the backoff clock (tests inject a [`lake_core::ManualClock`]
    /// so retries never sleep).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> TxnLog<'a> {
        self.clock = clock;
        self
    }

    /// Record commits, checkpoints, recovery, and retry activity into a
    /// `lake-obs` registry (and, when the [`HouseMetrics`] carries a
    /// tracer, spans). The [`TxnLog::retry_stats`] API keeps working —
    /// registry counters are mirrored from the same deltas.
    pub fn with_obs(mut self, obs: HouseMetrics) -> TxnLog<'a> {
        self.obs = Some(obs);
        self
    }

    /// The attached observability handles, if any.
    pub(crate) fn obs(&self) -> Option<&HouseMetrics> {
        self.obs.as_ref()
    }

    /// Retry counters accumulated by this handle since it was opened.
    pub fn retry_stats(&self) -> RetryStats {
        *self.stats.lock()
    }

    /// Drive one store operation under this log's retry policy,
    /// accumulating into the handle's [`RetryStats`] (and mirroring the
    /// delta into the registry when obs is attached).
    pub(crate) fn run_retry<T>(&self, op: impl FnMut() -> Result<T>) -> Result<T> {
        // Accumulate into a local block and merge under a short lock
        // afterwards: holding the stats guard across the retried store
        // I/O (as this used to) is exactly the guard-across-blocking
        // hazard lake-lint rule 7 exists to catch.
        let mut delta = RetryStats::default();
        let out = retry_with_stats(&self.policy, self.clock.as_ref(), &mut delta, op);
        self.stats.lock().merge(&delta);
        if let Some(obs) = &self.obs {
            obs.record_retry_delta(&RetryStats::default(), &delta);
        }
        out
    }

    pub(crate) fn entry_key(&self, version: u64) -> String {
        format!("{}/_log/{version:020}.json", self.prefix)
    }

    pub(crate) fn checkpoint_key(&self, version: u64) -> String {
        format!("{}/_log/checkpoint-{version:020}.json", self.prefix)
    }

    /// Latest committed version (0 when the log is empty).
    pub fn latest_version(&self) -> u64 {
        self.store
            .list(&format!("{}/_log/", self.prefix))
            .into_iter()
            .filter_map(|k| {
                let name = k.rsplit('/').next()?;
                let digits = name.strip_suffix(".json")?;
                if digits.starts_with("checkpoint-") {
                    None
                } else {
                    digits.parse::<u64>().ok()
                }
            })
            .max()
            .unwrap_or(0)
    }

    pub(crate) fn read_entry(&self, version: u64) -> Result<Vec<Action>> {
        let key = self.entry_key(version);
        let bytes = self.run_retry(|| self.store.get(&key))?;
        validate_entry(&bytes)
    }

    /// Replay entries `1..=version` from scratch, ignoring checkpoints —
    /// the ground truth recovery verifies checkpoints against.
    pub(crate) fn replay(&self, version: u64) -> Result<Snapshot> {
        let mut snap = Snapshot::default();
        for v in 1..=version {
            let actions = self.read_entry(v)?;
            snap.apply(&actions);
            snap.version = v;
        }
        Ok(snap)
    }

    fn latest_checkpoint_at_or_before(&self, version: u64) -> Option<Snapshot> {
        let keys = self.store.list(&format!("{}/_log/checkpoint-", self.prefix));
        let mut best: Option<u64> = None;
        for k in keys {
            if let Some(v) = k
                .rsplit('/')
                .next()
                .and_then(|n| n.strip_prefix("checkpoint-"))
                .and_then(|n| n.strip_suffix(".json"))
                .and_then(|d| d.parse::<u64>().ok())
            {
                if v <= version && best.map_or(true, |b| v > b) {
                    best = Some(v);
                }
            }
        }
        let v = best?;
        let key = self.checkpoint_key(v);
        let bytes = self.run_retry(|| self.store.get(&key)).ok()?;
        let doc = jsonfmt::parse(&String::from_utf8_lossy(&bytes)).ok()?;
        Snapshot::from_json(&doc).ok()
    }

    /// The snapshot at a specific version (time travel).
    pub fn snapshot_at(&self, version: u64) -> Result<Snapshot> {
        let mut snap = self
            .latest_checkpoint_at_or_before(version)
            .unwrap_or_default();
        for v in (snap.version + 1)..=version {
            let actions = self.read_entry(v)?;
            snap.apply(&actions);
            snap.version = v;
        }
        Ok(snap)
    }

    /// The current snapshot.
    pub fn snapshot(&self) -> Result<Snapshot> {
        self.snapshot_at(self.latest_version())
    }

    /// Attempt one commit of `actions` on top of `base_version`.
    /// Returns the new version, or `Conflict` when another writer won.
    pub fn try_commit(&self, base_version: u64, actions: &[Action]) -> Result<u64> {
        let next = base_version + 1;
        let actions_json = Json::Array(actions.iter().map(Action::to_json).collect());
        let crc = format!("{:016x}", fnv1a64(actions_json.to_string().as_bytes()));
        let doc = Json::obj(vec![("actions", actions_json), ("crc", Json::str(crc))]);
        let key = self.entry_key(next);
        let payload = doc.to_string();
        match self.run_retry(|| self.store.put_if_absent(&key, payload.as_bytes())) {
            Ok(()) => {
                if self.checkpoint_every > 0 && next % self.checkpoint_every == 0 {
                    // Best-effort checkpoint (readers never require it).
                    let _span = self.obs.as_ref().and_then(|o| o.span("house.checkpoint"));
                    if let Ok(snap) = self.snapshot_at(next) {
                        let ck = self.checkpoint_key(next);
                        let body = snap.to_json().to_string();
                        if self.run_retry(|| self.store.put(&ck, body.as_bytes())).is_ok() {
                            if let Some(obs) = &self.obs {
                                obs.checkpoint_total.inc();
                            }
                        }
                    }
                }
                Ok(next)
            }
            Err(LakeError::AlreadyExists(_)) => {
                Err(LakeError::Conflict(format!("version {next} already committed")))
            }
            Err(e) => Err(e),
        }
    }

    /// Commit with optimistic retry: on conflict, re-read the interleaved
    /// commits and retry unless a *logical* conflict exists (a winner
    /// removed a file this transaction also touches). Appends (pure
    /// `AddFile`/`SetMeta`) always merge. Returns the committed version.
    pub fn commit(&self, actions: &[Action]) -> Result<u64> {
        let _span = self.obs.as_ref().and_then(|o| o.span("house.commit"));
        let start = self.clock.now_micros();
        let out = self.commit_inner(actions);
        if let Some(obs) = &self.obs {
            obs.commit_seconds
                .observe(self.clock.now_micros().saturating_sub(start));
            match &out {
                Ok(_) => obs.commit_total.inc(),
                Err(LakeError::Conflict(_)) => obs.commit_conflicts_total.inc(),
                Err(_) => {}
            }
        }
        out
    }

    fn commit_inner(&self, actions: &[Action]) -> Result<u64> {
        let mut base = self.latest_version();
        // Fail fast on a detectably corrupt tip: committing on top of a
        // torn entry would strand this commit behind garbage (recovery
        // quarantines everything past the first corrupt entry, including
        // otherwise-valid successors). Surfacing the parse error here
        // keeps torn entries trailing — the caller runs `recover()` and
        // retries. The conflict path below re-validates every interleaved
        // entry, so a tip torn *after* this check still cannot be built
        // upon.
        if base > 0 {
            self.read_entry(base)?;
        }
        for _ in 0..64 {
            // Semantic validation against the base snapshot: a removal of
            // a file that is no longer live means another transaction got
            // there first — surface it as a conflict rather than silently
            // committing a no-op removal.
            let removals: Vec<&String> = actions
                .iter()
                .filter_map(|a| match a {
                    Action::RemoveFile { path } => Some(path),
                    _ => None,
                })
                .collect();
            if !removals.is_empty() {
                let snap = self.snapshot_at(base)?;
                for path in &removals {
                    if !snap.files.iter().any(|(p, _)| p == *path) {
                        return Err(LakeError::Conflict(format!(
                            "file {path} is not live at version {base}"
                        )));
                    }
                }
            }
            match self.try_commit(base, actions) {
                Ok(v) => return Ok(v),
                Err(LakeError::Conflict(_)) => {
                    let newest = self.latest_version();
                    // Logical conflict check against interleaved commits.
                    for v in (base + 1)..=newest {
                        let winner = self.read_entry(v)?;
                        if conflicts(actions, &winner) {
                            return Err(LakeError::Conflict(format!(
                                "transaction conflicts with commit {v}"
                            )));
                        }
                    }
                    base = newest;
                }
                Err(e) => return Err(e),
            }
        }
        Err(LakeError::Conflict("retry budget exhausted".into()))
    }
}

/// Two transactions conflict when either removes a file the other touches.
fn conflicts(ours: &[Action], theirs: &[Action]) -> bool {
    let touched = |actions: &[Action]| -> Vec<String> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::AddFile { path, .. } | Action::RemoveFile { path } => Some(path.clone()),
                Action::SetMeta { .. } => None,
            })
            .collect()
    };
    let removed = |actions: &[Action]| -> Vec<String> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::RemoveFile { path } => Some(path.clone()),
                _ => None,
            })
            .collect()
    };
    let ours_touched = touched(ours);
    let theirs_touched = touched(theirs);
    removed(ours).iter().any(|p| theirs_touched.contains(p))
        || removed(theirs).iter().any(|p| ours_touched.contains(p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lake_store::object::MemoryStore;
    use std::sync::Arc;

    fn add(path: &str, rows: usize) -> Action {
        Action::AddFile { path: path.to_string(), rows }
    }

    #[test]
    fn commits_advance_versions_and_snapshots_replay() {
        let store = MemoryStore::new();
        let log = TxnLog::open(&store, "t");
        assert_eq!(log.latest_version(), 0);
        assert_eq!(log.snapshot().unwrap(), Snapshot::default());

        let v1 = log.commit(&[add("d/a.pql", 10)]).unwrap();
        let v2 = log.commit(&[add("d/b.pql", 20)]).unwrap();
        assert_eq!((v1, v2), (1, 2));
        let snap = log.snapshot().unwrap();
        assert_eq!(snap.version, 2);
        assert_eq!(snap.total_rows(), 30);
        assert_eq!(snap.files.len(), 2);
    }

    #[test]
    fn time_travel_reads_history() {
        let store = MemoryStore::new();
        let log = TxnLog::open(&store, "t");
        log.commit(&[add("a", 1)]).unwrap();
        log.commit(&[add("b", 2)]).unwrap();
        log.commit(&[Action::RemoveFile { path: "a".into() }]).unwrap();
        assert_eq!(log.snapshot_at(1).unwrap().files.len(), 1);
        assert_eq!(log.snapshot_at(2).unwrap().files.len(), 2);
        assert_eq!(log.snapshot_at(3).unwrap().files.len(), 1);
        assert_eq!(log.snapshot_at(3).unwrap().files[0].0, "b");
    }

    #[test]
    fn meta_actions_accumulate() {
        let store = MemoryStore::new();
        let log = TxnLog::open(&store, "t");
        log.commit(&[Action::SetMeta { key: "owner".into(), value: "ops".into() }]).unwrap();
        log.commit(&[Action::SetMeta { key: "owner".into(), value: "sci".into() }]).unwrap();
        assert_eq!(log.snapshot().unwrap().meta["owner"], "sci");
        assert_eq!(log.snapshot_at(1).unwrap().meta["owner"], "ops");
    }

    #[test]
    fn try_commit_detects_lost_race() {
        let store = MemoryStore::new();
        let log = TxnLog::open(&store, "t");
        let base = log.latest_version();
        log.try_commit(base, &[add("a", 1)]).unwrap();
        let r = log.try_commit(base, &[add("b", 1)]);
        assert!(matches!(r, Err(LakeError::Conflict(_))));
    }

    #[test]
    fn append_append_merges_remove_conflicts_abort() {
        let store = MemoryStore::new();
        let log = TxnLog::open(&store, "t");
        log.commit(&[add("a", 1)]).unwrap();
        // Appender vs appender: both succeed via retry.
        let base = log.latest_version();
        log.try_commit(base, &[add("b", 1)]).unwrap();
        let v = log.commit(&[add("c", 1)]).unwrap();
        assert_eq!(v, 3);
        // Remover vs concurrent remove of same file: logical conflict.
        let base = log.latest_version();
        log.try_commit(base, &[Action::RemoveFile { path: "a".into() }]).unwrap();
        let r = log.commit(&[Action::RemoveFile { path: "a".into() }]);
        assert!(matches!(r, Err(LakeError::Conflict(_))), "{r:?}");
    }

    #[test]
    fn concurrent_writers_all_commit_exactly_once() {
        let store = Arc::new(MemoryStore::new());
        let mut handles = Vec::new();
        for i in 0..8 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                let log = TxnLog::open(store.as_ref(), "t");
                log.commit(&[add(&format!("f{i}"), i)]).unwrap()
            }));
        }
        let mut versions: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        versions.sort_unstable();
        assert_eq!(versions, (1..=8).collect::<Vec<u64>>());
        let log = TxnLog::open(store.as_ref(), "t");
        assert_eq!(log.snapshot().unwrap().files.len(), 8);
    }

    #[test]
    fn entries_carry_checksums_and_tampering_is_detected() {
        let store = MemoryStore::new();
        let log = TxnLog::open(&store, "t");
        log.commit(&[add("a", 1)]).unwrap();
        let key = "t/_log/00000000000000000001.json";
        let bytes = store.get(key).unwrap();
        let text = String::from_utf8_lossy(&bytes).into_owned();
        assert!(text.contains("\"crc\""), "{text}");
        // A single corrupted byte in the payload fails validation even
        // though the tampered entry is still well-formed JSON.
        let tampered = text.replace("\"path\":\"a\"", "\"path\":\"z\"");
        assert_ne!(tampered, text);
        store.put(key, tampered.as_bytes()).unwrap();
        let r = log.read_entry(1);
        assert!(matches!(r, Err(LakeError::Parse(_))), "{r:?}");
    }

    #[test]
    fn entries_without_checksums_are_tolerated() {
        let store = MemoryStore::new();
        let log = TxnLog::open(&store, "t");
        // A pre-checksum entry, as an older writer would have produced.
        store
            .put(
                "t/_log/00000000000000000001.json",
                br#"{"actions":[{"action":"add","path":"old","rows":3}]}"#,
            )
            .unwrap();
        assert_eq!(log.snapshot().unwrap().total_rows(), 3);
    }

    #[test]
    fn commit_absorbs_transient_store_failures() {
        use lake_core::{ManualClock, RetryPolicy};
        use lake_store::{FaultPlan, FaultStore, Op};
        let store =
            FaultStore::new(MemoryStore::new(), FaultPlan::new().fail_next(Op::PutIfAbsent, 2));
        let clock = Arc::new(ManualClock::new());
        let log = TxnLog::open(&store, "t")
            .with_retry(RetryPolicy::new(4))
            .with_clock(clock.clone());
        assert_eq!(log.commit(&[add("a", 1)]).unwrap(), 1);
        let stats = log.retry_stats();
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.gave_up, 0);
        assert_eq!(clock.sleeps().len(), 2, "backoff went through the injected clock");
    }

    #[test]
    fn obs_mirrors_commits_retries_and_spans() {
        use crate::obs::HouseMetrics;
        use lake_core::{ManualClock, RetryPolicy};
        use lake_obs::{MetricsRegistry, Tracer};
        use lake_store::{FaultPlan, FaultStore, Op};

        let store =
            FaultStore::new(MemoryStore::new(), FaultPlan::new().fail_next(Op::PutIfAbsent, 2));
        let clock = Arc::new(ManualClock::new());
        let reg = MetricsRegistry::new();
        let tracer = Tracer::new(clock.clone());
        let log = TxnLog::open(&store, "t")
            .with_retry(RetryPolicy::new(4))
            .with_clock(clock.clone())
            .with_obs(HouseMetrics::register(&reg).with_tracer(tracer.clone()));

        assert_eq!(log.commit(&[add("a", 1)]).unwrap(), 1);
        // Losing a race surfaces as a conflict and is counted as one.
        let base = log.latest_version();
        log.try_commit(base, &[Action::RemoveFile { path: "a".into() }]).unwrap();
        let r = log.commit(&[Action::RemoveFile { path: "a".into() }]);
        assert!(matches!(r, Err(LakeError::Conflict(_))));

        let snap = reg.snapshot();
        assert_eq!(snap.counter_value("lake_house_commit_total"), 1);
        assert_eq!(snap.counter_value("lake_house_commit_conflicts_total"), 1);
        // Registry counters mirror the bespoke RetryStats exactly.
        let stats = log.retry_stats();
        assert_eq!(stats.retries, 2);
        assert_eq!(snap.counter_value("lake_house_retry_retries_total"), stats.retries);
        assert_eq!(snap.counter_value("lake_house_retry_attempts_total"), stats.attempts);
        assert_eq!(snap.counter_value("lake_house_retry_backoff_ms_total"), stats.backoff_ms);
        // Backoff time (virtual) shows up in the commit latency histogram.
        let hist = snap.histogram("lake_house_commit_seconds").cloned().unwrap_or_default();
        assert_eq!(hist.count, 2);
        assert!(hist.sum > 0, "manual-clock backoff measured: {}", hist.sum);
        // Spans recorded one per commit() call.
        let commits = tracer
            .finished_spans()
            .iter()
            .filter(|s| s.name == "house.commit")
            .count();
        assert_eq!(commits, 2);
    }

    #[test]
    fn checkpoints_speed_up_but_do_not_change_snapshots() {
        let store = MemoryStore::new();
        let mut log = TxnLog::open(&store, "t");
        log.checkpoint_every = 5;
        for i in 0..12 {
            log.commit(&[add(&format!("f{i}"), 1)]).unwrap();
        }
        // A checkpoint exists…
        assert!(store.list("t/_log/checkpoint-").iter().any(|k| k.contains("10")));
        // …and snapshots agree with full replay.
        let snap = log.snapshot().unwrap();
        assert_eq!(snap.files.len(), 12);
        assert_eq!(snap.version, 12);
        // Time travel before the checkpoint still works.
        assert_eq!(log.snapshot_at(3).unwrap().files.len(), 3);
    }
}
