//! Crash recovery for the transaction log.
//!
//! A writer can die between the bytes of a log entry (a torn
//! `put_if_absent` against a local filesystem), leaving a trailing entry
//! that parses as garbage — or not at all. Because every entry carries a
//! checksum ([`crate::log`]), such corruption is detectable; this module
//! makes it *repairable*: [`TxnLog::recover`] walks the log, finds the
//! longest fully-valid contiguous version prefix, moves everything after
//! it into `_log/quarantine/` (nothing is destroyed — operators can
//! inspect the torn bytes), and re-verifies every surviving checkpoint
//! against a from-scratch replay of the entries it claims to summarize.
//! After recovery the table answers reads and accepts commits again,
//! continuing from the recovered version.

use crate::log::{validate_entry, Snapshot, TxnLog};
use lake_core::Result;
use lake_formats::json as jsonfmt;

/// What [`TxnLog::recover`] found and fixed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Log entries examined.
    pub scanned: u64,
    /// Highest fully-valid contiguous version; the table's state after
    /// recovery.
    pub recovered_version: u64,
    /// Versions whose entries were torn, corrupt, or stranded beyond a
    /// corrupt entry, moved to `_log/quarantine/` (ascending).
    pub quarantined: Vec<u64>,
    /// Checkpoints that matched a from-scratch replay of their entries.
    pub checkpoints_verified: u64,
    /// Checkpoints deleted: unreadable, mismatching replayed state, or
    /// summarizing versions beyond the recovered one.
    pub checkpoints_dropped: u64,
}

impl RecoveryReport {
    /// True when the log needed no repair at all.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty() && self.checkpoints_dropped == 0
    }
}

impl<'a> TxnLog<'a> {
    fn quarantine_key(&self, version: u64) -> String {
        // `.corrupt`, not `.json`: version listing keys off the `.json`
        // suffix, so quarantined entries can never be mistaken for live
        // ones.
        format!("{}/_log/quarantine/{version:020}.corrupt", self.prefix)
    }

    /// All committed entry versions, ascending (checkpoints and
    /// quarantined entries excluded).
    fn entry_versions(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .store
            .list(&format!("{}/_log/", self.prefix))
            .into_iter()
            .filter(|k| !k.contains("/_log/quarantine/"))
            .filter_map(|k| {
                let name = k.rsplit('/').next()?;
                let digits = name.strip_suffix(".json")?;
                if digits.starts_with("checkpoint-") {
                    None
                } else {
                    digits.parse::<u64>().ok()
                }
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// All checkpoint versions, ascending.
    fn checkpoint_versions(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .store
            .list(&format!("{}/_log/checkpoint-", self.prefix))
            .into_iter()
            .filter_map(|k| {
                k.rsplit('/')
                    .next()
                    .and_then(|n| n.strip_prefix("checkpoint-"))
                    .and_then(|n| n.strip_suffix(".json"))
                    .and_then(|d| d.parse::<u64>().ok())
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Detect and repair crash damage, returning what was done.
    ///
    /// Protocol:
    /// 1. Walk entries from version 1 upward; an entry that fails to
    ///    parse, fails its checksum, or leaves a gap ends the valid
    ///    prefix.
    /// 2. Every entry beyond the valid prefix is moved (copy, then
    ///    delete) to `_log/quarantine/<version>.corrupt`.
    /// 3. Every checkpoint at or below the recovered version is
    ///    re-verified against a checkpoint-free replay of entries
    ///    `1..=v`; mismatching, unreadable, or now-unreachable
    ///    checkpoints are deleted (snapshots fall back to pure replay).
    ///
    /// Idempotent: recovering a healthy log changes nothing and reports
    /// [`RecoveryReport::is_clean`]. I/O runs under the log's retry
    /// policy; a persistent storage failure aborts recovery with the
    /// underlying error rather than quarantining readable history.
    pub fn recover(&self) -> Result<RecoveryReport> {
        let _span = self.obs().and_then(|o| o.span("house.recover"));
        let out = self.recover_inner();
        if let (Some(obs), Ok(report)) = (self.obs(), &out) {
            obs.recover_total.inc();
            obs.recover_quarantined_total.add(report.quarantined.len() as u64);
        }
        out
    }

    fn recover_inner(&self) -> Result<RecoveryReport> {
        let mut report = RecoveryReport::default();
        let versions = self.entry_versions();
        report.scanned = versions.len() as u64;

        // 1. Longest valid contiguous prefix.
        let mut expected = 1u64;
        let mut suspects: Vec<u64> = Vec::new();
        for v in &versions {
            if *v == expected && suspects.is_empty() {
                let key = self.entry_key(*v);
                let bytes = self.run_retry(|| self.store.get(&key))?;
                match validate_entry(&bytes) {
                    Ok(_) => {
                        report.recovered_version = *v;
                        expected += 1;
                    }
                    Err(_) => suspects.push(*v),
                }
            } else {
                // Either beyond a corrupt entry or beyond a gap: this
                // version's history is unreadable, so the entry cannot
                // be replayed and is quarantined with the rest.
                suspects.push(*v);
            }
        }

        // 2. Quarantine everything past the valid prefix.
        for v in suspects {
            let key = self.entry_key(v);
            let qkey = self.quarantine_key(v);
            if let Ok(bytes) = self.run_retry(|| self.store.get(&key)) {
                self.run_retry(|| self.store.put(&qkey, &bytes))?;
            }
            self.run_retry(|| self.store.delete(&key))?;
            report.quarantined.push(v);
        }

        // 3. Re-verify surviving checkpoints against pure replay.
        for cv in self.checkpoint_versions() {
            let ck = self.checkpoint_key(cv);
            if cv > report.recovered_version {
                self.run_retry(|| self.store.delete(&ck))?;
                report.checkpoints_dropped += 1;
                continue;
            }
            let replayed = self.replay(cv)?;
            let stored: Option<Snapshot> = self
                .run_retry(|| self.store.get(&ck))
                .ok()
                .and_then(|b| jsonfmt::parse(&String::from_utf8_lossy(&b)).ok())
                .and_then(|doc| Snapshot::from_json(&doc).ok());
            match stored {
                Some(s) if s == replayed => report.checkpoints_verified += 1,
                _ => {
                    self.run_retry(|| self.store.delete(&ck))?;
                    report.checkpoints_dropped += 1;
                }
            }
        }

        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::Action;
    use lake_store::object::{MemoryStore, ObjectStore};

    fn add(path: &str, rows: usize) -> Action {
        Action::AddFile { path: path.to_string(), rows }
    }

    fn seeded_log(store: &MemoryStore, commits: usize) -> TxnLog<'_> {
        let log = TxnLog::open(store, "t");
        for i in 0..commits {
            log.commit(&[add(&format!("f{i}"), i + 1)]).unwrap();
        }
        log
    }

    #[test]
    fn recovering_a_healthy_log_is_a_clean_no_op() {
        let store = MemoryStore::new();
        let log = seeded_log(&store, 5);
        let before = log.snapshot().unwrap();
        let report = log.recover().unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.scanned, 5);
        assert_eq!(report.recovered_version, 5);
        assert_eq!(log.snapshot().unwrap(), before);
    }

    #[test]
    fn hand_corrupted_trailing_entry_is_quarantined() {
        let store = MemoryStore::new();
        let log = seeded_log(&store, 4);
        // Tear the last entry in half, as a dying writer would.
        let key = "t/_log/00000000000000000004.json";
        let bytes = store.get(key).unwrap();
        let half = bytes.len() / 2;
        store.put(key, bytes.get(..half).unwrap_or(&bytes)).unwrap();
        assert!(log.snapshot().is_err(), "torn entry must fail replay");

        let report = log.recover().unwrap();
        assert_eq!(report.recovered_version, 3);
        assert_eq!(report.quarantined, vec![4]);
        assert!(!report.is_clean());
        // The table reads again, at the last valid version…
        let snap = log.snapshot().unwrap();
        assert_eq!(snap.version, 3);
        assert_eq!(snap.files.len(), 3);
        // …the torn bytes survive for inspection…
        let q = store.get("t/_log/quarantine/00000000000000000004.corrupt").unwrap();
        assert_eq!(q.len(), half);
        // …and new commits continue from the recovered version.
        assert_eq!(log.commit(&[add("again", 9)]).unwrap(), 4);
    }

    #[test]
    fn checksum_corruption_mid_history_quarantines_the_tail() {
        let store = MemoryStore::new();
        let log = seeded_log(&store, 5);
        // Flip a payload byte in entry 3: still valid JSON, bad checksum.
        let key = "t/_log/00000000000000000003.json";
        let text = String::from_utf8_lossy(&store.get(key).unwrap()).into_owned();
        store.put(key, text.replace("\"f2\"", "\"xx\"").as_bytes()).unwrap();

        let report = log.recover().unwrap();
        assert_eq!(report.recovered_version, 2);
        // Entries 4 and 5 were valid but their history is gone.
        assert_eq!(report.quarantined, vec![3, 4, 5]);
        assert_eq!(log.snapshot().unwrap().version, 2);
    }

    #[test]
    fn corrupt_checkpoint_is_dropped_and_replay_takes_over() {
        let store = MemoryStore::new();
        let mut log = TxnLog::open(&store, "t");
        log.checkpoint_every = 3;
        for i in 0..6 {
            log.commit(&[add(&format!("f{i}"), 1)]).unwrap();
        }
        // Corrupt the checkpoint at version 3; leave the one at 6 intact.
        let ck = "t/_log/checkpoint-00000000000000000003.json";
        assert!(store.exists(ck));
        store.put(ck, br#"{"version":3,"files":"not-an-array"}"#).unwrap();

        let report = log.recover().unwrap();
        assert_eq!(report.checkpoints_dropped, 1);
        assert_eq!(report.checkpoints_verified, 1);
        assert!(!store.exists(ck));
        assert_eq!(log.snapshot().unwrap().files.len(), 6);
    }

    #[test]
    fn lying_checkpoint_is_caught_by_replay_verification() {
        let store = MemoryStore::new();
        let mut log = TxnLog::open(&store, "t");
        log.checkpoint_every = 2;
        for i in 0..4 {
            log.commit(&[add(&format!("f{i}"), 1)]).unwrap();
        }
        // A well-formed checkpoint whose contents disagree with the log.
        let ck = "t/_log/checkpoint-00000000000000000002.json";
        store
            .put(ck, br#"{"version":2,"files":[{"path":"phantom","rows":999}],"meta":{}}"#)
            .unwrap();
        let report = log.recover().unwrap();
        assert_eq!(report.checkpoints_dropped, 1);
        assert!(!store.exists(ck));
        // Replay is authoritative.
        assert_eq!(log.snapshot().unwrap().total_rows(), 4);
    }

    #[test]
    fn checkpoint_beyond_recovered_version_is_dropped() {
        let store = MemoryStore::new();
        let mut log = TxnLog::open(&store, "t");
        log.checkpoint_every = 2;
        for i in 0..2 {
            log.commit(&[add(&format!("f{i}"), 1)]).unwrap();
        }
        // Corrupt entry 1: the whole log is quarantined, so the
        // checkpoint at 2 summarizes versions that no longer exist.
        store.put("t/_log/00000000000000000001.json", b"{torn").unwrap();
        let report = log.recover().unwrap();
        assert_eq!(report.recovered_version, 0);
        assert_eq!(report.quarantined, vec![1, 2]);
        assert_eq!(report.checkpoints_dropped, 1);
        assert_eq!(log.snapshot().unwrap(), Snapshot::default());
        // The table is usable again from scratch.
        assert_eq!(log.commit(&[add("fresh", 1)]).unwrap(), 1);
    }

    #[test]
    fn recover_is_idempotent_after_repair() {
        let store = MemoryStore::new();
        let log = seeded_log(&store, 3);
        store.put("t/_log/00000000000000000003.json", b"\xff\xfe garbage").unwrap();
        let first = log.recover().unwrap();
        assert!(!first.is_clean());
        let second = log.recover().unwrap();
        assert!(second.is_clean(), "{second:?}");
        assert_eq!(second.recovered_version, 2);
        assert_eq!(second.scanned, 2);
    }
}
