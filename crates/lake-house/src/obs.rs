//! Lakehouse observability: registry metrics and tracing spans for the
//! transaction log.
//!
//! [`HouseMetrics`] bundles the pre-registered handles the log's hot
//! paths update (lock-free after registration). Attach one with
//! [`TxnLog::with_obs`](crate::log::TxnLog) or
//! [`LakeTable::with_obs`](crate::table::LakeTable); an optional
//! [`Tracer`] adds hierarchical spans (`house.commit`,
//! `house.checkpoint`, `house.recover`, `house.append`) timed by the
//! log's injectable clock.
//!
//! The bespoke [`RetryStats`] surfacing survives unchanged — when obs is
//! attached, every retry delta is *mirrored* into
//! `lake_house_retry_*_total` counters, so dashboards and the existing
//! `retry_stats()` API agree by construction.

use lake_core::retry::RetryStats;
use lake_obs::{Counter, Histogram, MetricsRegistry, Span, Tracer, MICROS_TO_SECONDS};
use std::sync::Arc;

/// Pre-registered metric handles for one lakehouse log/table.
///
/// Clone is cheap (all fields are `Arc`s); clones update the same
/// underlying series.
#[derive(Clone)]
pub struct HouseMetrics {
    pub(crate) commit_total: Arc<Counter>,
    pub(crate) commit_conflicts_total: Arc<Counter>,
    pub(crate) commit_seconds: Arc<Histogram>,
    pub(crate) checkpoint_total: Arc<Counter>,
    pub(crate) append_rows_total: Arc<Counter>,
    pub(crate) retry_attempts_total: Arc<Counter>,
    pub(crate) retry_retries_total: Arc<Counter>,
    pub(crate) retry_gave_up_total: Arc<Counter>,
    pub(crate) retry_backoff_ms_total: Arc<Counter>,
    pub(crate) recover_total: Arc<Counter>,
    pub(crate) recover_quarantined_total: Arc<Counter>,
    pub(crate) tracer: Option<Tracer>,
}

impl HouseMetrics {
    /// Register the `lake_house_*` series in `registry` and return the
    /// handles. Registering twice against the same registry yields
    /// handles to the same series.
    pub fn register(registry: &MetricsRegistry) -> HouseMetrics {
        HouseMetrics {
            commit_total: registry.counter("lake_house_commit_total"),
            commit_conflicts_total: registry.counter("lake_house_commit_conflicts_total"),
            commit_seconds: registry.histogram("lake_house_commit_seconds", MICROS_TO_SECONDS),
            checkpoint_total: registry.counter("lake_house_checkpoint_total"),
            append_rows_total: registry.counter("lake_house_append_rows_total"),
            retry_attempts_total: registry.counter("lake_house_retry_attempts_total"),
            retry_retries_total: registry.counter("lake_house_retry_retries_total"),
            retry_gave_up_total: registry.counter("lake_house_retry_gave_up_total"),
            retry_backoff_ms_total: registry.counter("lake_house_retry_backoff_ms_total"),
            recover_total: registry.counter("lake_house_recover_total"),
            recover_quarantined_total: registry.counter("lake_house_recover_quarantined_total"),
            tracer: None,
        }
    }

    /// Also record spans into `tracer`.
    pub fn with_tracer(mut self, tracer: Tracer) -> HouseMetrics {
        self.tracer = Some(tracer);
        self
    }

    /// Start a span when a tracer is attached.
    pub(crate) fn span(&self, name: &str) -> Option<Span> {
        self.tracer.as_ref().map(|t| t.span(name))
    }

    /// Mirror the retry counters accumulated between `before` and
    /// `after` into the registry.
    pub(crate) fn record_retry_delta(&self, before: &RetryStats, after: &RetryStats) {
        self.retry_attempts_total
            .add(after.attempts.saturating_sub(before.attempts));
        self.retry_retries_total
            .add(after.retries.saturating_sub(before.retries));
        self.retry_gave_up_total
            .add(after.gave_up.saturating_sub(before.gave_up));
        self.retry_backoff_ms_total
            .add(after.backoff_ms.saturating_sub(before.backoff_ms));
    }
}
