//! Chaos suite: scripted fault injection against the lakehouse ACID
//! protocol.
//!
//! Every scenario drives real commits through a [`FaultStore`] with a
//! deterministic [`FaultPlan`] — transient errors, torn writes, and
//! scripted crash points — under a seeded [`RetryPolicy`] whose backoff
//! flows through a [`ManualClock`], so nothing here ever sleeps and every
//! run replays byte-for-byte per seed. The invariants asserted are the
//! ACID ones: exactly one winner per version, no committed action lost,
//! snapshot equals replay, and time travel surviving recovery.

use lake_core::{LakeError, ManualClock, RetryPolicy, Row, Table, Value};
use lake_house::{Action, HouseMetrics, LakeTable, TxnLog};
use lake_obs::MetricsRegistry;
use lake_store::object::{MemoryStore, ObjectStore};
use lake_store::{FaultPlan, FaultStore, Op};
use std::sync::Arc;

/// The three fixed seeds every seeded scenario replays under
/// (scripts/chaos.sh documents them; change them and the suite must
/// still pass — determinism is per-seed, not per-value).
const SEEDS: [u64; 3] = [7, 42, 1337];

fn add(path: &str, rows: usize) -> Action {
    Action::AddFile { path: path.to_string(), rows }
}

fn batch(range: std::ops::Range<i64>) -> Table {
    let rows: Vec<Row> = range
        .map(|i| vec![Value::Int(i), Value::str(format!("v{i}"))])
        .collect();
    Table::from_rows("batch", &["id", "payload"], rows).unwrap()
}

// ---------------------------------------------------------------- transient

#[test]
fn transient_faults_are_absorbed_with_a_deterministic_backoff_schedule() {
    for seed in SEEDS {
        let run = || {
            let faulty = FaultStore::new(
                MemoryStore::new(),
                FaultPlan::new().fail_next(Op::PutIfAbsent, 2).fail_next(Op::Get, 1),
            );
            let clock = Arc::new(ManualClock::new());
            let log = TxnLog::open(&faulty, "t")
                .with_retry(RetryPolicy::new(5).with_base_delay_ms(4).with_jitter_seed(seed))
                .with_clock(clock.clone());
            log.commit(&[add("a", 1)]).unwrap();
            log.commit(&[add("b", 2)]).unwrap();
            assert_eq!(log.snapshot().unwrap().files.len(), 2);
            (clock.sleeps(), log.retry_stats().retries)
        };
        let (sleeps_a, retries_a) = run();
        let (sleeps_b, retries_b) = run();
        assert_eq!(sleeps_a, sleeps_b, "backoff schedule must replay for seed {seed}");
        assert_eq!((retries_a, retries_b), (3, 3));
        assert!(!sleeps_a.is_empty());
    }
}

#[test]
fn torn_data_file_write_is_healed_by_retry() {
    let backend = Arc::new(MemoryStore::new());
    let faulty =
        FaultStore::new(Arc::clone(&backend), FaultPlan::new().torn_write(Op::Put, 1, 0.5));
    let clock = Arc::new(ManualClock::new());
    let table = LakeTable::open(&faulty, "t").with_retry(RetryPolicy::new(4)).with_clock(clock);
    table.append(&batch(0..10)).unwrap();
    assert_eq!(faulty.stats().torn_writes, 1);
    assert!(table.retry_stats().retries >= 1);
    // A plain put is idempotent: the retried overwrite healed the tear,
    // so a full scan decodes every row.
    let (rows, _) = table.scan(&[]).unwrap();
    assert_eq!(rows.len(), 10);
}

#[test]
fn recovery_itself_retries_transient_store_failures() {
    for seed in SEEDS {
        let backend = Arc::new(MemoryStore::new());
        let writer = TxnLog::open(backend.as_ref(), "t");
        for i in 0..3 {
            writer.commit(&[add(&format!("f{i}"), 1)]).unwrap();
        }
        let key = "t/_log/00000000000000000003.json";
        let bytes = backend.get(key).unwrap();
        backend.put(key, &bytes[..7]).unwrap();

        let faulty = FaultStore::new(
            Arc::clone(&backend),
            FaultPlan::new().seed(seed).fail_with_probability(Op::Get, 0.25),
        );
        let clock = Arc::new(ManualClock::new());
        let log = TxnLog::open(&faulty, "t")
            .with_retry(RetryPolicy::new(10).with_jitter_seed(seed))
            .with_clock(clock);
        let report = log.recover().unwrap();
        assert_eq!(report.recovered_version, 2);
        assert_eq!(report.quarantined, vec![3]);
        let again = log.recover().unwrap();
        assert!(again.is_clean(), "{again:?}");
    }
}

// ------------------------------------------------------------------- crash

#[test]
fn crash_before_log_write_leaves_the_log_clean() {
    let backend = Arc::new(MemoryStore::new());
    // Survive the data and bloom puts, die before the log entry.
    let faulty =
        FaultStore::new(Arc::clone(&backend), FaultPlan::new().crash_at(Op::PutIfAbsent, 1));
    let dying = LakeTable::open(&faulty, "t");
    let err = dying.append(&batch(0..5)).unwrap_err();
    assert!(matches!(err, LakeError::Io(_)), "{err:?}");
    assert!(faulty.is_crashed());
    // Atomicity: nothing was committed, and the log is clean.
    let clean = TxnLog::open(backend.as_ref(), "t");
    assert_eq!(clean.latest_version(), 0);
    assert!(clean.recover().unwrap().is_clean());
    // The orphaned data file and sidecar are vacuumable.
    assert_eq!(backend.list("t/data/").len(), 2);
    let table = LakeTable::open(backend.as_ref(), "t");
    assert_eq!(table.vacuum(1).unwrap().len(), 2);
    assert!(backend.list("t/data/").is_empty());
}

#[test]
fn crash_torn_log_entry_is_quarantined_with_an_accurate_report() {
    for seed in SEEDS {
        let backend = Arc::new(MemoryStore::new());
        let writer = TxnLog::open(backend.as_ref(), "t");
        for i in 0..3 {
            writer.commit(&[add(&format!("f{i}"), i as usize)]).unwrap();
        }
        let faulty = FaultStore::new(
            Arc::clone(&backend),
            FaultPlan::new().seed(seed).crash_torn(Op::PutIfAbsent, 1, 0.4),
        );
        let dying = TxnLog::open(&faulty, "t");
        assert!(dying.commit(&[add("doomed", 9)]).is_err());
        assert!(faulty.is_crashed());
        // The torn entry squats on version 4: reads fail until recovery.
        let survivor = TxnLog::open(backend.as_ref(), "t");
        assert!(survivor.snapshot().is_err());
        let report = survivor.recover().unwrap();
        assert_eq!(report.scanned, 4);
        assert_eq!(report.recovered_version, 3);
        assert_eq!(report.quarantined, vec![4]);
        assert!(!report.is_clean());
        assert_eq!(survivor.snapshot().unwrap().files.len(), 3);
        // The doomed action never committed; re-running it lands at 4.
        assert_eq!(survivor.commit(&[add("doomed", 9)]).unwrap(), 4);
    }
}

#[test]
fn hand_corrupted_table_restores_with_an_accurate_report() {
    let store = MemoryStore::new();
    let table = LakeTable::open(&store, "tbl");
    for i in 0..4i64 {
        table.append(&batch(i * 10..(i + 1) * 10)).unwrap();
    }
    // Hand-corrupt the trailing entry with garbage bytes.
    let key = "tbl/_log/00000000000000000004.json";
    store.put(key, b"\x00\xffnot json at all").unwrap();
    assert!(table.scan(&[]).is_err());

    let report = table.log().recover().unwrap();
    assert_eq!(report.scanned, 4);
    assert_eq!(report.recovered_version, 3);
    assert_eq!(report.quarantined, vec![4]);
    assert_eq!(report.checkpoints_dropped, 0);
    // The table reads again at the recovered version…
    let (rows, _) = table.scan(&[]).unwrap();
    assert_eq!(rows.len(), 30);
    // …and the corrupt bytes are preserved for inspection.
    assert!(store.exists("tbl/_log/quarantine/00000000000000000004.corrupt"));
}

#[test]
fn commit_refuses_to_build_on_a_torn_tip() {
    let store = MemoryStore::new();
    let log = TxnLog::open(&store, "t");
    log.commit(&[add("a", 1)]).unwrap();
    log.commit(&[add("b", 1)]).unwrap();
    let key = "t/_log/00000000000000000002.json";
    let bytes = store.get(key).unwrap();
    store.put(key, &bytes[..bytes.len() / 2]).unwrap();
    // A commit on top of detectable garbage must fail, not bury it —
    // otherwise recovery would quarantine this (valid) commit along with
    // the torn entry and a committed action would be lost.
    let r = log.commit(&[add("c", 1)]);
    assert!(matches!(r, Err(LakeError::Parse(_))), "{r:?}");
    log.recover().unwrap();
    assert_eq!(log.commit(&[add("c", 1)]).unwrap(), 2);
}

#[test]
fn crash_at_each_append_step_preserves_acid() {
    // One scripted crash per step of the append protocol: before the
    // data put, between data and bloom puts, before the log entry
    // (clean), and mid log entry (torn).
    let plans: [(FaultPlan, bool); 4] = [
        (FaultPlan::new().crash_at(Op::Put, 1), false),
        (FaultPlan::new().crash_at(Op::Put, 2), false),
        (FaultPlan::new().crash_at(Op::PutIfAbsent, 1), false),
        (FaultPlan::new().crash_torn(Op::PutIfAbsent, 1, 0.5), true),
    ];
    for (plan, torn) in plans {
        let backend = Arc::new(MemoryStore::new());
        LakeTable::open(backend.as_ref(), "t").append(&batch(0..5)).unwrap();
        let faulty = FaultStore::new(Arc::clone(&backend), plan);
        let dying = LakeTable::open(&faulty, "t");
        assert!(dying.append(&batch(5..10)).is_err());
        assert!(faulty.is_crashed());

        let table = LakeTable::open(backend.as_ref(), "t");
        let report = table.log().recover().unwrap();
        assert_eq!(report.quarantined.is_empty(), !torn, "{report:?}");
        // Exactly the committed append is visible; the dying one is
        // all-or-nothing gone.
        let (rows, _) = table.scan(&[]).unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(table.log().latest_version(), 1);
        // The table accepts writes again, and orphans are vacuumable.
        table.append(&batch(50..53)).unwrap();
        assert_eq!(table.scan(&[]).unwrap().0.len(), 8);
        table.vacuum(1).unwrap();
        assert_eq!(backend.list("t/data/").len(), 4, "2 live files + 2 sidecars");
    }
}

// ------------------------------------------------------------- concurrency

#[test]
fn exactly_one_winner_per_version_under_concurrent_faulty_writers() {
    for seed in SEEDS {
        let backend = Arc::new(MemoryStore::new());
        let mut handles = Vec::new();
        for w in 0..4u64 {
            let backend = Arc::clone(&backend);
            handles.push(std::thread::spawn(move || {
                let plan = FaultPlan::new()
                    .seed(seed.wrapping_mul(31).wrapping_add(w))
                    .fail_with_probability(Op::PutIfAbsent, 0.3)
                    .fail_with_probability(Op::Get, 0.2);
                let faulty = FaultStore::new(backend, plan);
                let clock = Arc::new(ManualClock::new());
                let log = TxnLog::open(&faulty, "t")
                    .with_retry(RetryPolicy::new(12).with_jitter_seed(seed + w))
                    .with_clock(clock);
                let mut committed = Vec::new();
                for c in 0..3 {
                    let path = format!("w{w}-c{c}");
                    let v = log.commit(&[add(&path, 1)]).unwrap();
                    committed.push((path, v));
                }
                committed
            }));
        }
        let mut all: Vec<(String, u64)> =
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        // Exactly one winner per version: 12 commits, versions 1..=12,
        // no duplicates.
        let mut versions: Vec<u64> = all.iter().map(|(_, v)| *v).collect();
        versions.sort_unstable();
        assert_eq!(versions, (1..=12).collect::<Vec<u64>>());
        // No committed action lost, none duplicated.
        let log = TxnLog::open(backend.as_ref(), "t");
        let snap = log.snapshot().unwrap();
        let mut snap_paths: Vec<&str> = snap.files.iter().map(|(p, _)| p.as_str()).collect();
        snap_paths.sort_unstable();
        all.sort_by(|a, b| a.0.cmp(&b.0));
        let committed_paths: Vec<&str> = all.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(snap_paths, committed_paths);
        assert!(log.recover().unwrap().is_clean());
    }
}

#[test]
fn concurrent_writer_death_is_recoverable_by_survivors() {
    for seed in SEEDS {
        let backend = Arc::new(MemoryStore::new());
        TxnLog::open(backend.as_ref(), "t").commit(&[add("seed", 1)]).unwrap();
        let mut handles = Vec::new();
        for w in 0..4u64 {
            let backend = Arc::clone(&backend);
            handles.push(std::thread::spawn(move || {
                let plan = if w == 0 {
                    // This writer dies mid log write on its first commit.
                    FaultPlan::new().crash_torn(Op::PutIfAbsent, 1, 0.6)
                } else {
                    FaultPlan::new()
                        .seed(seed ^ w)
                        .fail_with_probability(Op::PutIfAbsent, 0.2)
                };
                let faulty = FaultStore::new(backend, plan);
                let clock = Arc::new(ManualClock::new());
                let log = TxnLog::open(&faulty, "t")
                    .with_retry(RetryPolicy::new(8).with_jitter_seed(seed + w))
                    .with_clock(clock);
                let path = format!("w{w}");
                let outcome = log.commit(&[add(&path, 1)]).map(|_| ());
                (path, outcome)
            }));
        }
        let results: Vec<(String, Result<(), LakeError>)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(
            results.iter().any(|(p, r)| p == "w0" && r.is_err()),
            "the crash-scripted writer must have died"
        );
        // Survivors (or an operator) recover, then replay every failed
        // commit — failed commits are guaranteed side-effect-free.
        let log = TxnLog::open(backend.as_ref(), "t");
        log.recover().unwrap();
        for (path, outcome) in &results {
            if outcome.is_err() {
                log.commit(&[add(path, 1)]).unwrap();
            }
        }
        let snap = log.snapshot().unwrap();
        let mut paths: Vec<&str> = snap.files.iter().map(|(p, _)| p.as_str()).collect();
        paths.sort_unstable();
        assert_eq!(paths, vec!["seed", "w0", "w1", "w2", "w3"]);
        assert!(log.recover().unwrap().is_clean());
    }
}

// ---------------------------------------------------------------- replay

#[test]
fn snapshot_equals_pure_replay_after_recovery() {
    let store = MemoryStore::new();
    let mut log = TxnLog::open(&store, "t");
    log.checkpoint_every = 5;
    for i in 0..12 {
        log.commit(&[add(&format!("f{i}"), i as usize)]).unwrap();
    }
    let key = "t/_log/00000000000000000012.json";
    let bytes = store.get(key).unwrap();
    store.put(key, &bytes[..bytes.len() / 2]).unwrap();

    let report = log.recover().unwrap();
    assert_eq!(report.recovered_version, 11);
    assert_eq!(report.checkpoints_verified, 2, "checkpoints at 5 and 10 re-verified");
    let from_checkpoint = log.snapshot().unwrap();
    // Deleting the checkpoints forces a from-scratch replay; both views
    // of the table must be identical.
    for k in store.list("t/_log/checkpoint-") {
        store.delete(&k).unwrap();
    }
    let pure = log.snapshot().unwrap();
    assert_eq!(from_checkpoint, pure);
    assert_eq!(pure.version, 11);
    assert_eq!(pure.files.len(), 11);
}

#[test]
fn time_travel_after_recovery_preserves_row_level_history() {
    let store = MemoryStore::new();
    let table = LakeTable::open(&store, "t");
    table.append(&batch(0..5)).unwrap();
    table.append(&batch(5..10)).unwrap();
    table.append(&batch(10..15)).unwrap();
    store.put("t/_log/00000000000000000003.json", b"{torn mid-write").unwrap();
    table.log().recover().unwrap();

    let ids_at = |v: u64| -> Vec<i64> {
        let (rows, _) = table.scan_at(v, &[]).unwrap();
        let mut ids: Vec<i64> = rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        ids.sort_unstable();
        ids
    };
    // Row-level equality with the pre-crash versions.
    assert_eq!(ids_at(1), (0..5).collect::<Vec<i64>>());
    assert_eq!(ids_at(2), (0..10).collect::<Vec<i64>>());
    // The torn version is gone; history ends at the recovered version.
    assert_eq!(table.log().latest_version(), 2);
    assert!(table.scan_at(3, &[]).is_err());
    // New commits do not disturb recovered history.
    table.append(&batch(100..105)).unwrap();
    assert_eq!(ids_at(1), (0..5).collect::<Vec<i64>>());
    assert_eq!(ids_at(2), (0..10).collect::<Vec<i64>>());
}

#[test]
fn checkpoint_damage_is_found_and_dropped_accurately() {
    let store = MemoryStore::new();
    let mut log = TxnLog::open(&store, "t");
    log.checkpoint_every = 2;
    for i in 0..5 {
        log.commit(&[add(&format!("f{i}"), 1)]).unwrap();
    }
    // Corrupt the checkpoint at 2; tear the entry at 5.
    store.put("t/_log/checkpoint-00000000000000000002.json", b"]]junk").unwrap();
    let key = "t/_log/00000000000000000005.json";
    let bytes = store.get(key).unwrap();
    store.put(key, &bytes[..5]).unwrap();

    let report = log.recover().unwrap();
    assert_eq!(report.scanned, 5);
    assert_eq!(report.recovered_version, 4);
    assert_eq!(report.quarantined, vec![5]);
    assert_eq!(report.checkpoints_dropped, 1, "the corrupt checkpoint at 2");
    assert_eq!(report.checkpoints_verified, 1, "the intact checkpoint at 4");
    assert_eq!(log.snapshot().unwrap().files.len(), 4);
}

// ------------------------------------------------------------ observability

#[test]
fn registry_retry_metrics_match_the_scripted_fault_count() {
    // Every transient the FaultPlan injects must surface as exactly one
    // retry in the metrics registry — the observability plane may neither
    // invent faults nor swallow them.
    for seed in SEEDS {
        let scripted = 3u64; // 2 × PutIfAbsent + 1 × Get below
        let faulty = FaultStore::new(
            MemoryStore::new(),
            FaultPlan::new().fail_next(Op::PutIfAbsent, 2).fail_next(Op::Get, 1),
        );
        let clock = Arc::new(ManualClock::new());
        let registry = MetricsRegistry::new();
        let log = TxnLog::open(&faulty, "t")
            .with_retry(RetryPolicy::new(5).with_base_delay_ms(4).with_jitter_seed(seed))
            .with_clock(clock)
            .with_obs(HouseMetrics::register(&registry));
        log.commit(&[add("a", 1)]).unwrap();
        log.commit(&[add("b", 2)]).unwrap();

        let snap = registry.snapshot();
        assert_eq!(faulty.stats().transients_injected, scripted, "seed {seed}");
        assert_eq!(
            snap.counter_value("lake_house_retry_retries_total"),
            faulty.stats().transients_injected,
            "registry retries must equal injected transients for seed {seed}"
        );
        // The registry mirrors the bespoke RetryStats exactly.
        let stats = log.retry_stats();
        assert_eq!(snap.counter_value("lake_house_retry_retries_total"), stats.retries);
        assert_eq!(snap.counter_value("lake_house_retry_attempts_total"), stats.attempts);
        assert_eq!(snap.counter_value("lake_house_retry_gave_up_total"), stats.gave_up);
        assert_eq!(snap.counter_value("lake_house_retry_backoff_ms_total"), stats.backoff_ms);
        // Both commits landed and were measured.
        assert_eq!(snap.counter_value("lake_house_commit_total"), 2);
        let commit_seconds = snap.histogram("lake_house_commit_seconds").unwrap();
        assert_eq!(commit_seconds.count, 2);
    }
}

// ------------------------------------------------------------------- soak

#[test]
fn probabilistic_soak_is_deterministic_per_seed() {
    let soak = |seed: u64| {
        let faulty = FaultStore::new(
            MemoryStore::new(),
            FaultPlan::new()
                .seed(seed)
                .fail_with_probability(Op::PutIfAbsent, 0.25)
                .fail_with_probability(Op::Get, 0.15)
                .latency_ms(Op::Put, 2),
        );
        let clock = Arc::new(ManualClock::new());
        let log = TxnLog::open(&faulty, "t")
            .with_retry(RetryPolicy::new(10).with_base_delay_ms(3).with_jitter_seed(seed))
            .with_clock(clock.clone());
        for i in 0..20 {
            log.commit(&[add(&format!("f{i}"), i as usize)]).unwrap();
        }
        let snap = log.snapshot().unwrap();
        assert_eq!(snap.version, 20);
        assert_eq!(snap.files.len(), 20);
        let fstats = faulty.stats();
        (clock.sleeps(), log.retry_stats(), fstats.transients_injected, fstats.simulated_latency_ms)
    };
    for seed in SEEDS {
        let a = soak(seed);
        let b = soak(seed);
        assert_eq!(a, b, "soak must replay byte-for-byte for seed {seed}");
        assert!(a.2 > 0, "the fault plan must actually have fired for seed {seed}");
    }
}
