//! An immutable-blob object store: the HDFS / S3 / Azure Blob stand-in.
//!
//! File-based storage is "one of the most common data storage options for
//! data lakes" (§4.1). Algorithms above this layer need exactly four
//! things: write a blob, write-if-absent (the atomic primitive Delta-style
//! transaction logs rely on for optimistic concurrency, §8.3), read a
//! blob, and list keys under a prefix. Two backends are provided — an
//! in-memory map and a local directory — behind one trait, so every higher
//! layer is backend-agnostic.
//!
//! ## Decorator ordering
//!
//! Decorators ([`crate::fault::FaultStore`], [`crate::obs::ObsStore`])
//! wrap a *per-writer handle* to a shared backend (`Arc<S>`), never the
//! backend itself. The canonical stack is
//! `ObsStore<FaultStore<Arc<S>>>` — **faults inside, observation
//! outside** — which gives each layer exactly one vantage point:
//!
//! * the observer sees every attempt (including ones a fault eats
//!   before they reach the backend), so error counters and retry
//!   attempt counts line up with what the caller experienced;
//! * a `LocalDirStore` or `Polystore` shared by several writers is
//!   touched once per *surviving* call, so nothing is double-counted
//!   when each writer wraps the same `Arc<S>` in its own stack;
//! * reversing the order (`FaultStore<ObsStore<S>>`) would hide
//!   injected faults from the metrics — the observer would record a
//!   success for a call whose caller saw an error.

use lake_core::{LakeError, Result};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Blob storage with atomic conditional put.
pub trait ObjectStore: Send + Sync {
    /// Write `data` under `key`, replacing any existing blob.
    fn put(&self, key: &str, data: &[u8]) -> Result<()>;

    /// Write `data` under `key` only if `key` does not exist.
    ///
    /// Returns [`LakeError::AlreadyExists`] on conflict. This must be
    /// atomic with respect to concurrent `put_if_absent` calls on the same
    /// key — the lakehouse commit protocol depends on it.
    fn put_if_absent(&self, key: &str, data: &[u8]) -> Result<()>;

    /// Read the blob at `key`.
    fn get(&self, key: &str) -> Result<Vec<u8>>;

    /// Whether `key` exists.
    fn exists(&self, key: &str) -> bool;

    /// Delete the blob at `key` (idempotent: missing keys are fine).
    fn delete(&self, key: &str) -> Result<()>;

    /// All keys starting with `prefix`, in lexicographic order.
    fn list(&self, prefix: &str) -> Vec<String>;

    /// Size in bytes of the blob at `key`.
    ///
    /// The default reads the whole blob; backends with cheap metadata
    /// (an in-memory map, a filesystem stat) should override it.
    fn size(&self, key: &str) -> Result<usize> {
        self.get(key).map(|d| d.len())
    }
}

/// Shared handles delegate, so decorators like
/// [`crate::fault::FaultStore`] can wrap one backend per writer while all
/// writers still contend on the same blobs. `put_if_absent` atomicity is
/// exactly the inner store's: delegation adds no new race window.
impl<S: ObjectStore + ?Sized> ObjectStore for Arc<S> {
    fn put(&self, key: &str, data: &[u8]) -> Result<()> {
        (**self).put(key, data)
    }
    fn put_if_absent(&self, key: &str, data: &[u8]) -> Result<()> {
        (**self).put_if_absent(key, data)
    }
    fn get(&self, key: &str) -> Result<Vec<u8>> {
        (**self).get(key)
    }
    fn exists(&self, key: &str) -> bool {
        (**self).exists(key)
    }
    fn delete(&self, key: &str) -> Result<()> {
        (**self).delete(key)
    }
    fn list(&self, prefix: &str) -> Vec<String> {
        (**self).list(prefix)
    }
    fn size(&self, key: &str) -> Result<usize> {
        (**self).size(key)
    }
}

/// In-memory object store; the default for tests and benchmarks.
#[derive(Debug, Default)]
pub struct MemoryStore {
    blobs: RwLock<BTreeMap<String, Vec<u8>>>,
}

impl MemoryStore {
    /// A fresh, empty store.
    pub fn new() -> MemoryStore {
        MemoryStore::default()
    }

    /// Number of stored blobs.
    pub fn len(&self) -> usize {
        self.blobs.read().len()
    }

    /// `true` when no blobs are stored.
    pub fn is_empty(&self) -> bool {
        self.blobs.read().is_empty()
    }

    /// Total stored bytes.
    pub fn total_bytes(&self) -> usize {
        self.blobs.read().values().map(Vec::len).sum()
    }
}

impl ObjectStore for MemoryStore {
    fn put(&self, key: &str, data: &[u8]) -> Result<()> {
        self.blobs.write().insert(key.to_string(), data.to_vec());
        Ok(())
    }

    fn put_if_absent(&self, key: &str, data: &[u8]) -> Result<()> {
        // Atomic: the whole-map write lock makes the existence check and
        // the insert one critical section — concurrent callers serialize.
        let mut blobs = self.blobs.write();
        if blobs.contains_key(key) {
            return Err(LakeError::AlreadyExists(key.to_string()));
        }
        blobs.insert(key.to_string(), data.to_vec());
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Vec<u8>> {
        self.blobs
            .read()
            .get(key)
            .cloned()
            .ok_or_else(|| LakeError::not_found(key))
    }

    fn exists(&self, key: &str) -> bool {
        self.blobs.read().contains_key(key)
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.blobs.write().remove(key);
        Ok(())
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        self.blobs
            .read()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }

    fn size(&self, key: &str) -> Result<usize> {
        self.blobs
            .read()
            .get(key)
            .map(Vec::len)
            .ok_or_else(|| LakeError::not_found(key))
    }
}

/// Object store persisting blobs as files under a root directory.
///
/// Keys map to relative paths; `/` in keys becomes directory structure.
/// Conditional put uses `create_new`, which the OS makes atomic.
#[derive(Debug)]
pub struct LocalDirStore {
    root: PathBuf,
    tmp_seq: AtomicU64,
}

impl LocalDirStore {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<LocalDirStore> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(LocalDirStore { root, tmp_seq: AtomicU64::new(0) })
    }

    fn path_of(&self, key: &str) -> Result<PathBuf> {
        // Reject path escapes; keys are logical names, not paths.
        if key.split('/').any(|seg| seg == ".." || seg.is_empty()) || key.starts_with('/') {
            return Err(LakeError::invalid(format!("bad object key {key:?}")));
        }
        Ok(self.root.join(key))
    }

    fn collect(&self, dir: &Path, prefix: &str, out: &mut Vec<String>) {
        let Ok(entries) = std::fs::read_dir(dir) else { return };
        for entry in entries.flatten() {
            let path = entry.path();
            let rel = path
                .strip_prefix(&self.root)
                .map(|p| p.to_string_lossy().replace('\\', "/"))
                .unwrap_or_default();
            if path.is_dir() {
                self.collect(&path, prefix, out);
            } else if rel.starts_with(prefix) && !is_tmp_name(&rel) {
                out.push(rel);
            }
        }
    }
}

/// Is `rel` one of [`LocalDirStore::put`]'s in-flight temp files? Those
/// are invisible to `list` so a concurrent reader never sees a blob that
/// was not yet renamed into place.
fn is_tmp_name(rel: &str) -> bool {
    rel.rsplit('/')
        .next()
        .is_some_and(|name| name.starts_with('.') && name.contains(".tmp-"))
}

impl ObjectStore for LocalDirStore {
    /// Crash-safe overwrite: the bytes land in a fresh temp file which is
    /// then renamed over `key`. A writer dying mid-`put` can leave a stray
    /// temp file but can never leave `key` holding a torn blob — rename
    /// within one directory is atomic on POSIX filesystems.
    fn put(&self, key: &str, data: &[u8]) -> Result<()> {
        let path = self.path_of(key)?;
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file_name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "blob".to_string());
        let tmp = path.with_file_name(format!(
            ".{file_name}.tmp-{}-{}",
            std::process::id(),
            // lint: ordering — temp-name uniqueness rests on fetch_add
            // atomicity; no cross-variable ordering is implied.
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, data)?;
        if let Err(e) = std::fs::rename(&tmp, &path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e.into());
        }
        Ok(())
    }

    /// Atomic via `O_CREAT|O_EXCL` (`create_new`): the OS guarantees
    /// exactly one concurrent creator wins the key. The winner's bytes
    /// are then streamed into the claimed file, so a crash mid-write
    /// leaves a torn blob under the key — which is precisely what
    /// `TxnLog::recover` detects and quarantines.
    fn put_if_absent(&self, key: &str, data: &[u8]) -> Result<()> {
        let path = self.path_of(key)?;
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut opts = std::fs::OpenOptions::new();
        opts.write(true).create_new(true);
        match opts.open(&path) {
            Ok(mut f) => {
                use std::io::Write;
                f.write_all(data)?;
                Ok(())
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                Err(LakeError::AlreadyExists(key.to_string()))
            }
            Err(e) => Err(e.into()),
        }
    }

    fn get(&self, key: &str) -> Result<Vec<u8>> {
        let path = self.path_of(key)?;
        std::fs::read(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                LakeError::not_found(key)
            } else {
                e.into()
            }
        })
    }

    fn exists(&self, key: &str) -> bool {
        self.path_of(key).map(|p| p.is_file()).unwrap_or(false)
    }

    fn delete(&self, key: &str) -> Result<()> {
        let path = self.path_of(key)?;
        match std::fs::remove_file(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        let mut out = Vec::new();
        self.collect(&self.root.clone(), prefix, &mut out);
        out.sort();
        out
    }

    fn size(&self, key: &str) -> Result<usize> {
        let path = self.path_of(key)?;
        match std::fs::metadata(&path) {
            Ok(m) if m.is_file() => Ok(m.len() as usize),
            Ok(_) => Err(LakeError::not_found(key)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(LakeError::not_found(key))
            }
            Err(e) => Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn exercise(store: &dyn ObjectStore) {
        store.put("a/one", b"1").unwrap();
        store.put("a/two", b"22").unwrap();
        store.put("b/three", b"333").unwrap();
        assert_eq!(store.get("a/one").unwrap(), b"1");
        assert!(store.exists("a/two"));
        assert!(!store.exists("a/nope"));
        assert_eq!(store.list("a/"), vec!["a/one".to_string(), "a/two".to_string()]);
        assert_eq!(store.list(""), vec!["a/one", "a/two", "b/three"]);
        assert_eq!(store.size("b/three").unwrap(), 3);

        // Conditional put.
        assert!(matches!(
            store.put_if_absent("a/one", b"x"),
            Err(LakeError::AlreadyExists(_))
        ));
        store.put_if_absent("a/new", b"n").unwrap();
        assert_eq!(store.get("a/new").unwrap(), b"n");

        // Overwrite + delete.
        store.put("a/one", b"updated").unwrap();
        assert_eq!(store.get("a/one").unwrap(), b"updated");
        store.delete("a/one").unwrap();
        assert!(!store.exists("a/one"));
        store.delete("a/one").unwrap(); // idempotent
        assert!(matches!(store.get("a/one"), Err(LakeError::NotFound(_))));
    }

    #[test]
    fn memory_store_semantics() {
        let s = MemoryStore::new();
        exercise(&s);
        assert_eq!(s.len(), 3);
        assert!(s.total_bytes() > 0);
    }

    #[test]
    fn local_dir_store_semantics() {
        let dir = std::env::temp_dir().join(format!("lake_store_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = LocalDirStore::open(&dir).unwrap();
        exercise(&s);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn local_dir_rejects_escaping_keys() {
        let dir = std::env::temp_dir().join(format!("lake_store_esc_{}", std::process::id()));
        let s = LocalDirStore::open(&dir).unwrap();
        assert!(s.put("../evil", b"x").is_err());
        assert!(s.put("/abs", b"x").is_err());
        assert!(s.put("a//b", b"x").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `size` must agree with `get().len()` on every backend — and must
    /// not fall back to reading the body (checked indirectly: both
    /// overrides answer for keys of every size including empty).
    #[test]
    fn size_agrees_with_get_len_on_all_backends() {
        let dir = std::env::temp_dir().join(format!("lake_store_size_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let local = LocalDirStore::open(&dir).unwrap();
        let mem = MemoryStore::new();
        let stores: [&dyn ObjectStore; 2] = [&mem, &local];
        for store in stores {
            for (key, len) in [("empty", 0usize), ("small", 3), ("big", 4096)] {
                store.put(key, &vec![7u8; len]).unwrap();
                assert_eq!(store.size(key).unwrap(), store.get(key).unwrap().len());
                assert_eq!(store.size(key).unwrap(), len);
            }
            assert!(matches!(store.size("absent"), Err(LakeError::NotFound(_))));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn local_put_is_tempfile_then_rename() {
        let dir = std::env::temp_dir().join(format!("lake_store_tmp_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = LocalDirStore::open(&dir).unwrap();
        s.put("a/blob", b"first").unwrap();
        s.put("a/blob", b"second-longer-content").unwrap();
        assert_eq!(s.get("a/blob").unwrap(), b"second-longer-content");
        // No temp residue on disk and none visible through list().
        let mut names = Vec::new();
        fn walk(dir: &std::path::Path, out: &mut Vec<String>) {
            for e in std::fs::read_dir(dir).unwrap().flatten() {
                if e.path().is_dir() {
                    walk(&e.path(), out);
                } else {
                    out.push(e.file_name().to_string_lossy().into_owned());
                }
            }
        }
        walk(&dir, &mut names);
        assert_eq!(names, vec!["blob".to_string()], "{names:?}");
        assert_eq!(s.list(""), vec!["a/blob".to_string()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_local_puts_never_interleave() {
        let dir = std::env::temp_dir().join(format!("lake_store_race_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = Arc::new(LocalDirStore::open(&dir).unwrap());
        let mut handles = Vec::new();
        for i in 0..8u8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..20 {
                    s.put("contested", &vec![i; 512]).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Whole-blob atomicity: the final content is exactly one writer's
        // 512 identical bytes, never a mix.
        let got = s.get("contested").unwrap();
        assert_eq!(got.len(), 512);
        assert!(got.iter().all(|&b| b == got[0]), "interleaved write detected");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn arc_handles_share_one_backend() {
        let inner = Arc::new(MemoryStore::new());
        let a = Arc::clone(&inner);
        let b = Arc::clone(&inner);
        a.put("k", b"v").unwrap();
        assert_eq!(b.get("k").unwrap(), b"v");
        assert!(matches!(b.put_if_absent("k", b"w"), Err(LakeError::AlreadyExists(_))));
        assert_eq!(b.size("k").unwrap(), 1);
    }

    #[test]
    fn concurrent_put_if_absent_has_single_winner() {
        let s = Arc::new(MemoryStore::new());
        let mut handles = Vec::new();
        for i in 0..16 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                s.put_if_absent("race", format!("writer{i}").as_bytes()).is_ok()
            }));
        }
        let wins = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|&won| won)
            .count();
        assert_eq!(wins, 1);
    }
}
