//! A sorted key-value store with column families — the Bigtable stand-in.
//!
//! GOODS keeps its dataset catalog "stored in Bigtable" (§6.1.1): rows are
//! keyed by dataset name, and metadata lives in column families. This store
//! provides exactly that access pattern: `(row, family, column) → value`,
//! sorted row scans, and prefix scans.

use lake_core::{LakeError, Result, Value};
use parking_lot::RwLock;
use std::collections::BTreeMap;

type Row = BTreeMap<(String, String), Value>; // (family, column) → value

/// A sorted multi-family key-value store.
#[derive(Debug, Default)]
pub struct KvStore {
    rows: RwLock<BTreeMap<String, Row>>,
    families: RwLock<Vec<String>>,
}

impl KvStore {
    /// A new store with the given column families.
    pub fn with_families(families: &[&str]) -> KvStore {
        KvStore {
            rows: RwLock::new(BTreeMap::new()),
            families: RwLock::new(families.iter().map(|s| s.to_string()).collect()),
        }
    }

    /// Registered column families.
    pub fn families(&self) -> Vec<String> {
        self.families.read().clone()
    }

    fn check_family(&self, family: &str) -> Result<()> {
        if self.families.read().iter().any(|f| f == family) {
            Ok(())
        } else {
            Err(LakeError::not_found(format!("column family {family}")))
        }
    }

    /// Write one cell.
    pub fn put(&self, row: &str, family: &str, column: &str, value: Value) -> Result<()> {
        self.check_family(family)?;
        self.rows
            .write()
            .entry(row.to_string())
            .or_default()
            .insert((family.to_string(), column.to_string()), value);
        Ok(())
    }

    /// Read one cell.
    pub fn get(&self, row: &str, family: &str, column: &str) -> Option<Value> {
        self.rows
            .read()
            .get(row)
            .and_then(|r| r.get(&(family.to_string(), column.to_string())).cloned())
    }

    /// All `(column, value)` pairs of one family in one row.
    pub fn get_family(&self, row: &str, family: &str) -> Vec<(String, Value)> {
        self.rows
            .read()
            .get(row)
            .map(|r| {
                r.iter()
                    .filter(|((f, _), _)| f == family)
                    .map(|((_, c), v)| (c.clone(), v.clone()))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Delete a whole row.
    pub fn delete_row(&self, row: &str) {
        self.rows.write().remove(row);
    }

    /// Row keys in `[start, end)`, sorted.
    pub fn scan_range(&self, start: &str, end: &str) -> Vec<String> {
        self.rows
            .read()
            .range(start.to_string()..end.to_string())
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Row keys starting with `prefix`, sorted.
    pub fn scan_prefix(&self, prefix: &str) -> Vec<String> {
        self.rows
            .read()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> KvStore {
        let s = KvStore::with_families(&["basic", "content", "provenance"]);
        s.put("ds/alpha", "basic", "owner", Value::str("ops")).unwrap();
        s.put("ds/alpha", "content", "rows", Value::Int(100)).unwrap();
        s.put("ds/beta", "basic", "owner", Value::str("science")).unwrap();
        s.put("logs/x", "basic", "owner", Value::str("infra")).unwrap();
        s
    }

    #[test]
    fn cell_read_write() {
        let s = store();
        assert_eq!(s.get("ds/alpha", "basic", "owner"), Some(Value::str("ops")));
        assert_eq!(s.get("ds/alpha", "content", "rows"), Some(Value::Int(100)));
        assert_eq!(s.get("ds/alpha", "basic", "missing"), None);
        assert_eq!(s.get("nope", "basic", "owner"), None);
    }

    #[test]
    fn unknown_family_is_error() {
        let s = store();
        assert!(s.put("r", "unknown", "c", Value::Int(1)).is_err());
    }

    #[test]
    fn family_listing() {
        let s = store();
        s.put("ds/alpha", "basic", "zone", Value::str("raw")).unwrap();
        let fam = s.get_family("ds/alpha", "basic");
        assert_eq!(fam.len(), 2);
        assert!(fam.iter().any(|(c, _)| c == "zone"));
    }

    #[test]
    fn prefix_and_range_scans_are_sorted() {
        let s = store();
        assert_eq!(s.scan_prefix("ds/"), vec!["ds/alpha", "ds/beta"]);
        assert_eq!(s.scan_range("ds/alpha", "ds/b"), vec!["ds/alpha"]);
        assert_eq!(s.scan_prefix("zzz"), Vec::<String>::new());
    }

    #[test]
    fn delete_row_removes_all_cells() {
        let s = store();
        s.delete_row("ds/alpha");
        assert_eq!(s.get("ds/alpha", "basic", "owner"), None);
        assert_eq!(s.row_count(), 2);
    }

    #[test]
    fn overwrite_replaces() {
        let s = store();
        s.put("ds/alpha", "basic", "owner", Value::str("new")).unwrap();
        assert_eq!(s.get("ds/alpha", "basic", "owner"), Some(Value::str("new")));
    }
}
