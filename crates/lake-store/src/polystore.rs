//! The polystore router — Constance-style hybrid storage (§4.3).
//!
//! "Constance applies polystore, and stores the diverse raw data according
//! to its original format": tables go to the relational store, documents
//! to the document store, graphs to the graph store, and anything else
//! (logs, text, binaries) to the object store as files. The router keeps a
//! placement registry so datasets can be retrieved uniformly by id, and —
//! as Constance's UI allows — callers may override the default placement.

use crate::document::DocumentStore;
use crate::graphstore::GraphStore;
use crate::object::{MemoryStore, ObjectStore};
use crate::relational::RelationalStore;
use lake_core::retry::{retry_with_stats, Clock, RetryPolicy, RetryStats, SystemClock};
use lake_core::{Dataset, DatasetId, DatasetKind, Json, LakeError, PropertyGraph, Result};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Which underlying store holds a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreKind {
    /// Relational store.
    Relational,
    /// Document store.
    Document,
    /// Graph store.
    Graph,
    /// Object store (raw files).
    File,
}

impl StoreKind {
    /// Default placement for a dataset shape (the Constance routing rule).
    pub fn default_for(kind: DatasetKind) -> StoreKind {
        match kind {
            DatasetKind::Table => StoreKind::Relational,
            DatasetKind::Documents => StoreKind::Document,
            DatasetKind::Graph => StoreKind::Graph,
            DatasetKind::Log | DatasetKind::Text => StoreKind::File,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            StoreKind::Relational => "relational",
            StoreKind::Document => "document",
            StoreKind::Graph => "graph",
            StoreKind::File => "file",
        }
    }
}

/// Where a dataset was placed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// The store holding the data.
    pub store: StoreKind,
    /// Store-local location (table name, collection, graph name, or key).
    pub location: String,
}

/// The polystore: one instance of each substrate plus the placement map.
pub struct Polystore {
    /// Relational substrate (also queried directly by the federated executor).
    pub relational: RelationalStore,
    /// Document substrate.
    pub documents: DocumentStore,
    /// Graph substrate.
    pub graphs: GraphStore,
    /// File substrate — pluggable, so deployments can swap the in-memory
    /// default for a local directory (or a fault-injecting decorator in
    /// chaos tests).
    pub files: Box<dyn ObjectStore>,
    placements: RwLock<BTreeMap<DatasetId, Placement>>,
    retry: RetryPolicy,
    clock: Arc<dyn Clock>,
    stats: Mutex<RetryStats>,
}

impl Default for Polystore {
    fn default() -> Self {
        Polystore::new()
    }
}

impl Polystore {
    /// A polystore with empty substrates.
    pub fn new() -> Polystore {
        Polystore::with_file_store(Box::new(MemoryStore::new()))
    }

    /// A polystore whose file substrate is the given object store.
    pub fn with_file_store(files: Box<dyn ObjectStore>) -> Polystore {
        Polystore {
            relational: RelationalStore::new(),
            documents: DocumentStore::new(),
            graphs: GraphStore::new(),
            files,
            placements: RwLock::new(BTreeMap::new()),
            retry: RetryPolicy::default(),
            clock: Arc::new(SystemClock),
            stats: Mutex::new(RetryStats::default()),
        }
    }

    /// Replace the retry policy governing file-substrate I/O.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Polystore {
        self.retry = policy;
        self
    }

    /// Replace the backoff clock (tests inject a
    /// [`lake_core::ManualClock`] so retries never sleep).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Polystore {
        self.clock = clock;
        self
    }

    /// Retry counters accumulated by file-substrate routing.
    pub fn retry_stats(&self) -> RetryStats {
        *self.stats.lock()
    }

    fn run_retry<T>(&self, op: impl FnMut() -> Result<T>) -> Result<T> {
        // Accumulate into a local block and merge under a short lock
        // afterwards: holding the stats guard across the retried store
        // I/O (as this used to) is exactly the guard-across-blocking
        // hazard lake-lint rule 7 exists to catch.
        let mut delta = RetryStats::default();
        let out = retry_with_stats(&self.retry, self.clock.as_ref(), &mut delta, op);
        self.stats.lock().merge(&delta);
        out
    }

    /// Store `dataset` under `id`/`name` using the default placement rule.
    pub fn store(&self, id: DatasetId, name: &str, dataset: Dataset) -> Result<Placement> {
        let store = StoreKind::default_for(dataset.kind());
        self.store_in(id, name, dataset, store)
    }

    /// Store with an explicit placement override (Constance lets users pick
    /// the store via the UI; e.g. large tables may go to files instead).
    pub fn store_in(
        &self,
        id: DatasetId,
        name: &str,
        dataset: Dataset,
        store: StoreKind,
    ) -> Result<Placement> {
        let location = match (&dataset, store) {
            (Dataset::Table(t), StoreKind::Relational) => {
                let mut t = t.clone();
                t.name = name.to_string();
                self.relational.put_table(t);
                name.to_string()
            }
            (Dataset::Table(t), StoreKind::File) => {
                let key = format!("tables/{name}.pql");
                let body = lake_formats::columnar::encode(t);
                self.run_retry(|| self.files.put(&key, &body))?;
                key
            }
            (Dataset::Documents(docs), StoreKind::Document) => {
                self.documents.insert_many(name, docs.clone());
                name.to_string()
            }
            (Dataset::Graph(g), StoreKind::Graph) => {
                self.graphs.put_graph(name, g.clone());
                name.to_string()
            }
            (Dataset::Log(lines), StoreKind::File) => {
                let key = format!("logs/{name}.log");
                let body = lines.join("\n");
                self.run_retry(|| self.files.put(&key, body.as_bytes()))?;
                key
            }
            (Dataset::Text(t), StoreKind::File) => {
                let key = format!("texts/{name}.txt");
                self.run_retry(|| self.files.put(&key, t.as_bytes()))?;
                key
            }
            (d, s) => {
                return Err(LakeError::invalid(format!(
                    "cannot place a {} dataset in the {} store",
                    d.kind(),
                    s.name()
                )))
            }
        };
        let placement = Placement { store, location };
        self.placements.write().insert(id, placement.clone());
        Ok(placement)
    }

    /// Where a dataset lives.
    pub fn placement(&self, id: DatasetId) -> Result<Placement> {
        self.placements
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| LakeError::not_found(id))
    }

    /// Retrieve a dataset by id, whichever store it is in.
    pub fn retrieve(&self, id: DatasetId) -> Result<Dataset> {
        let p = self.placement(id)?;
        Ok(match p.store {
            StoreKind::Relational => Dataset::Table(self.relational.get_table(&p.location)?),
            StoreKind::Document => {
                let n = self.documents.count(&p.location);
                let docs: Result<Vec<Json>> =
                    (0..n).map(|i| self.documents.get(&p.location, i)).collect();
                Dataset::Documents(docs?)
            }
            StoreKind::Graph => Dataset::Graph(self.graphs.get_graph(&p.location)?),
            StoreKind::File => {
                let bytes = self.run_retry(|| self.files.get(&p.location))?;
                if p.location.ends_with(".pql") {
                    Dataset::Table(lake_formats::columnar::decode(&bytes)?)
                } else if p.location.ends_with(".log") {
                    Dataset::Log(
                        String::from_utf8_lossy(&bytes).lines().map(str::to_string).collect(),
                    )
                } else {
                    Dataset::Text(String::from_utf8_lossy(&bytes).into_owned())
                }
            }
        })
    }

    /// Remove a dataset by id, wherever it lives, releasing both the
    /// placement entry and the substrate object. Multi-tenant servers
    /// lean on this for namespace deletion: a tenant's datasets are
    /// stored under scoped locations, so removal never touches another
    /// tenant's objects.
    pub fn remove(&self, id: DatasetId) -> Result<Placement> {
        let p = self.placement(id)?;
        match p.store {
            StoreKind::Relational => self.relational.drop_table(&p.location)?,
            StoreKind::Document => self.documents.drop_collection(&p.location)?,
            StoreKind::Graph => self.graphs.drop_graph(&p.location)?,
            StoreKind::File => self.run_retry(|| self.files.delete(&p.location))?,
        }
        self.placements.write().remove(&id);
        Ok(p)
    }

    /// Count of datasets per store kind — for architecture demos.
    pub fn placement_summary(&self) -> BTreeMap<&'static str, usize> {
        let mut out = BTreeMap::new();
        for p in self.placements.read().values() {
            *out.entry(p.store.name()).or_insert(0) += 1;
        }
        out
    }
}

/// A convenience constructor for graph datasets in tests/examples.
pub fn graph_of(edges: &[(&str, &str, &str)]) -> PropertyGraph {
    let mut g = PropertyGraph::new();
    let mut ids = BTreeMap::new();
    for (a, label, b) in edges {
        let ia = *ids
            .entry(a.to_string())
            .or_insert_with(|| g.add_node_with("Entity", vec![("name", lake_core::Value::str(*a))]));
        let ib = *ids
            .entry(b.to_string())
            .or_insert_with(|| g.add_node_with("Entity", vec![("name", lake_core::Value::str(*b))]));
        g.add_edge(ia, ib, *label);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use lake_core::{Table, Value};

    fn table() -> Table {
        Table::from_rows("t", &["a"], vec![vec![Value::Int(1)]]).unwrap()
    }

    #[test]
    fn default_routing_per_kind() {
        let ps = Polystore::new();
        let p1 = ps.store(DatasetId(1), "tab", Dataset::Table(table())).unwrap();
        assert_eq!(p1.store, StoreKind::Relational);
        let p2 = ps
            .store(DatasetId(2), "docs", Dataset::Documents(vec![Json::Bool(true)]))
            .unwrap();
        assert_eq!(p2.store, StoreKind::Document);
        let p3 = ps
            .store(DatasetId(3), "g", Dataset::Graph(graph_of(&[("a", "r", "b")])))
            .unwrap();
        assert_eq!(p3.store, StoreKind::Graph);
        let p4 = ps.store(DatasetId(4), "l", Dataset::Log(vec!["x".into()])).unwrap();
        assert_eq!(p4.store, StoreKind::File);
        assert_eq!(ps.placement_summary().len(), 4);
    }

    #[test]
    fn retrieve_roundtrips_each_store() {
        let ps = Polystore::new();
        ps.store(DatasetId(1), "tab", Dataset::Table(table())).unwrap();
        ps.store(DatasetId(2), "docs", Dataset::Documents(vec![Json::Num(1.0)])).unwrap();
        ps.store(DatasetId(3), "g", Dataset::Graph(graph_of(&[("a", "r", "b")]))).unwrap();
        ps.store(DatasetId(4), "l", Dataset::Log(vec!["x".into(), "y".into()])).unwrap();
        ps.store(DatasetId(5), "txt", Dataset::Text("hello".into())).unwrap();

        assert_eq!(ps.retrieve(DatasetId(1)).unwrap().as_table().unwrap().num_rows(), 1);
        assert_eq!(ps.retrieve(DatasetId(2)).unwrap().as_documents().unwrap().len(), 1);
        assert_eq!(ps.retrieve(DatasetId(3)).unwrap().as_graph().unwrap().edge_count(), 1);
        assert_eq!(ps.retrieve(DatasetId(4)).unwrap().record_count(), 2);
        assert!(matches!(ps.retrieve(DatasetId(5)).unwrap(), Dataset::Text(t) if t == "hello"));
        assert!(ps.retrieve(DatasetId(9)).is_err());
    }

    #[test]
    fn explicit_file_placement_for_table() {
        // The Constance scalability case: route a table to the file store.
        let ps = Polystore::new();
        let p = ps
            .store_in(DatasetId(1), "big", Dataset::Table(table()), StoreKind::File)
            .unwrap();
        assert_eq!(p.store, StoreKind::File);
        assert!(p.location.ends_with(".pql"));
        let back = ps.retrieve(DatasetId(1)).unwrap();
        assert_eq!(back.as_table().unwrap().num_rows(), 1);
        // The relational store was not touched.
        assert!(ps.relational.table_names().is_empty());
    }

    #[test]
    fn pluggable_faulty_file_store_is_absorbed_by_retry() {
        use crate::fault::{FaultPlan, FaultStore, Op};
        use lake_core::ManualClock;
        use lake_core::RetryPolicy;

        let faulty = FaultStore::new(
            MemoryStore::new(),
            FaultPlan::new().fail_next(Op::Put, 1).fail_next(Op::Get, 1),
        );
        let ps = Polystore::with_file_store(Box::new(faulty))
            .with_retry(RetryPolicy::new(3))
            .with_clock(Arc::new(ManualClock::new()));
        ps.store(DatasetId(1), "l", Dataset::Log(vec!["x".into(), "y".into()])).unwrap();
        assert_eq!(ps.retrieve(DatasetId(1)).unwrap().record_count(), 2);
        let stats = ps.retry_stats();
        assert_eq!(stats.retries, 2, "one put and one get transient absorbed");
        assert_eq!(stats.gave_up, 0);
    }

    #[test]
    fn remove_releases_every_substrate() {
        let ps = Polystore::new();
        ps.store(DatasetId(1), "tab", Dataset::Table(table())).unwrap();
        ps.store(DatasetId(2), "docs", Dataset::Documents(vec![Json::Num(1.0)])).unwrap();
        ps.store(DatasetId(3), "g", Dataset::Graph(graph_of(&[("a", "r", "b")]))).unwrap();
        ps.store(DatasetId(4), "l", Dataset::Log(vec!["x".into()])).unwrap();
        for id in 1..=4u64 {
            let p = ps.remove(DatasetId(id)).unwrap();
            assert!(!p.location.is_empty());
            assert!(ps.retrieve(DatasetId(id)).is_err(), "id {id} still retrievable");
        }
        assert!(ps.placement_summary().is_empty());
        assert!(ps.relational.table_names().is_empty());
        assert!(ps.graphs.graph_names().is_empty());
        // Removing twice is a typed NotFound, not a panic.
        assert!(matches!(ps.remove(DatasetId(1)), Err(LakeError::NotFound(_))));
    }

    #[test]
    fn invalid_placement_rejected() {
        let ps = Polystore::new();
        let r = ps.store_in(
            DatasetId(1),
            "g",
            Dataset::Graph(graph_of(&[("a", "r", "b")])),
            StoreKind::Relational,
        );
        assert!(r.is_err());
    }
}
