//! A minimal relational store — the MySQL/PostgreSQL stand-in.
//!
//! Holds named tables, supports inserts and *server-side* predicate
//! evaluation. The point of evaluating predicates here rather than in the
//! mediator is that federated query push-down (Constance §6.3, Ontario
//! §7.2) becomes observable: [`RelationalStore::rows_scanned`] counts the
//! rows the store touched, and the scan result size is the data that would
//! cross the wire.

use crate::predicate::Predicate;
use lake_core::{LakeError, Result, Row, Table};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A named-table relational store with predicate scans.
#[derive(Debug, Default)]
pub struct RelationalStore {
    tables: RwLock<BTreeMap<String, Table>>,
    rows_scanned: AtomicU64,
}

impl RelationalStore {
    /// An empty store.
    pub fn new() -> RelationalStore {
        RelationalStore::default()
    }

    /// Create a table (errors if the name exists).
    pub fn create_table(&self, table: Table) -> Result<()> {
        let mut tables = self.tables.write();
        if tables.contains_key(&table.name) {
            return Err(LakeError::AlreadyExists(table.name.clone()));
        }
        tables.insert(table.name.clone(), table);
        Ok(())
    }

    /// Replace or create a table.
    pub fn put_table(&self, table: Table) {
        self.tables.write().insert(table.name.clone(), table);
    }

    /// Drop a table.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        self.tables
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| LakeError::not_found(name))
    }

    /// Table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }

    /// Clone out a full table.
    pub fn get_table(&self, name: &str) -> Result<Table> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| LakeError::not_found(name))
    }

    /// Insert one row.
    pub fn insert(&self, table: &str, row: Row) -> Result<()> {
        let mut tables = self.tables.write();
        let t = tables.get_mut(table).ok_or_else(|| LakeError::not_found(table))?;
        t.push_row(row)
    }

    /// Scan `table`, applying `predicates` *inside the store* (push-down),
    /// and optionally projecting to `columns`. Every base row inspected is
    /// counted in [`Self::rows_scanned`]; only matching (projected) rows
    /// are returned — they model the data shipped to the mediator.
    pub fn scan(
        &self,
        table: &str,
        predicates: &[Predicate],
        columns: Option<&[&str]>,
    ) -> Result<Table> {
        let tables = self.tables.read();
        let t = tables.get(table).ok_or_else(|| LakeError::not_found(table))?;
        // lint: ordering — push-down metric counter, no ordering dependency.
        self.rows_scanned.fetch_add(t.num_rows() as u64, Ordering::Relaxed);

        // Resolve predicate column indexes once.
        let idx: Vec<(usize, &Predicate)> = predicates
            .iter()
            .map(|p| {
                t.column_index(&p.attribute)
                    .map(|i| (i, p))
                    .ok_or_else(|| LakeError::not_found(format!("column {} in {table}", p.attribute)))
            })
            .collect::<Result<_>>()?;

        let filtered = t.filter(|row| idx.iter().all(|(i, p)| p.matches(row[*i])));
        match columns {
            Some(cols) => filtered.project(cols),
            None => Ok(filtered),
        }
    }

    /// Rows inspected by all scans so far (the push-down metric).
    pub fn rows_scanned(&self) -> u64 {
        // lint: ordering — metric read, approximate by design.
        self.rows_scanned.load(Ordering::Relaxed)
    }

    /// Reset the scan counter (benchmarks call this between runs).
    pub fn reset_counters(&self) {
        // lint: ordering — benchmark-only reset of a metric counter.
        self.rows_scanned.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CompareOp;
    use lake_core::Value;

    fn store() -> RelationalStore {
        let s = RelationalStore::new();
        s.create_table(
            Table::from_rows(
                "orders",
                &["id", "city", "total"],
                vec![
                    vec![Value::Int(1), Value::str("delft"), Value::Float(10.0)],
                    vec![Value::Int(2), Value::str("paris"), Value::Float(20.0)],
                    vec![Value::Int(3), Value::str("delft"), Value::Float(30.0)],
                ],
            )
            .unwrap(),
        )
        .unwrap();
        s
    }

    #[test]
    fn create_conflicts_and_drop() {
        let s = store();
        assert!(s.create_table(Table::empty("orders")).is_err());
        assert_eq!(s.table_names(), vec!["orders"]);
        s.drop_table("orders").unwrap();
        assert!(s.drop_table("orders").is_err());
    }

    #[test]
    fn scan_with_pushdown_filters_and_projects() {
        let s = store();
        let preds = [Predicate::new("city", CompareOp::Eq, "delft")];
        let r = s.scan("orders", &preds, Some(&["id", "total"])).unwrap();
        assert_eq!(r.num_rows(), 2);
        assert_eq!(r.num_columns(), 2);
        assert_eq!(s.rows_scanned(), 3);
    }

    #[test]
    fn scan_without_predicates_returns_all() {
        let s = store();
        let r = s.scan("orders", &[], None).unwrap();
        assert_eq!(r.num_rows(), 3);
    }

    #[test]
    fn scan_unknown_column_errors() {
        let s = store();
        let preds = [Predicate::new("nope", CompareOp::Eq, 1i64)];
        assert!(s.scan("orders", &preds, None).is_err());
    }

    #[test]
    fn insert_appends() {
        let s = store();
        s.insert("orders", vec![Value::Int(4), Value::str("rome"), Value::Float(40.0)])
            .unwrap();
        assert_eq!(s.get_table("orders").unwrap().num_rows(), 4);
        assert!(s.insert("nope", vec![]).is_err());
    }

    #[test]
    fn counter_reset() {
        let s = store();
        s.scan("orders", &[], None).unwrap();
        assert!(s.rows_scanned() > 0);
        s.reset_counters();
        assert_eq!(s.rows_scanned(), 0);
    }

    #[test]
    fn multiple_predicates_conjoin() {
        let s = store();
        let preds = [
            Predicate::new("city", CompareOp::Eq, "delft"),
            Predicate::new("total", CompareOp::Gt, 15.0),
        ];
        let r = s.scan("orders", &preds, None).unwrap();
        assert_eq!(r.num_rows(), 1);
        assert_eq!(r.column("id").unwrap().values[0], Value::Int(3));
    }
}
