//! Simple comparison predicates evaluated *inside* stores.
//!
//! Federated query processing over a polystore pushes selection predicates
//! down to the sources "to optimize query execution and reduce the amount
//! of data to be loaded" (Constance, §6.3). This module is the common
//! predicate language every store understands, making push-down effects
//! directly measurable (experiment E9).

use lake_core::Value;

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// Substring containment on rendered text.
    Contains,
}

impl CompareOp {
    /// Evaluate `left OP right`. Null never satisfies any comparison
    /// (SQL-style three-valued logic collapsed to false).
    pub fn eval(self, left: &Value, right: &Value) -> bool {
        if left.is_null() || right.is_null() {
            return false;
        }
        match self {
            CompareOp::Eq => left == right,
            CompareOp::Ne => left != right,
            CompareOp::Lt => left < right,
            CompareOp::Le => left <= right,
            CompareOp::Gt => left > right,
            CompareOp::Ge => left >= right,
            CompareOp::Contains => left.render().contains(&right.render()),
        }
    }

    /// SQL-ish symbol for display/parsing.
    pub fn symbol(self) -> &'static str {
        match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "!=",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
            CompareOp::Contains => "contains",
        }
    }

    /// Parse a symbol back into an operator.
    pub fn parse(sym: &str) -> Option<CompareOp> {
        Some(match sym {
            "=" | "==" => CompareOp::Eq,
            "!=" | "<>" => CompareOp::Ne,
            "<" => CompareOp::Lt,
            "<=" => CompareOp::Le,
            ">" => CompareOp::Gt,
            ">=" => CompareOp::Ge,
            "contains" => CompareOp::Contains,
            _ => return None,
        })
    }
}

/// A predicate `column OP constant` on a named attribute/path.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Attribute name (tables) or dotted path (documents).
    pub attribute: String,
    /// Comparison operator.
    pub op: CompareOp,
    /// Constant to compare against.
    pub value: Value,
}

impl Predicate {
    /// Build a predicate.
    pub fn new(attribute: impl Into<String>, op: CompareOp, value: impl Into<Value>) -> Predicate {
        Predicate { attribute: attribute.into(), op, value: value.into() }
    }

    /// Evaluate against a candidate attribute value.
    pub fn matches(&self, candidate: &Value) -> bool {
        self.op.eval(candidate, &self.value)
    }
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} {}", self.attribute, self.op.symbol(), self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparisons_work() {
        use CompareOp::*;
        assert!(Eq.eval(&Value::Int(3), &Value::Int(3)));
        assert!(Ne.eval(&Value::str("a"), &Value::str("b")));
        assert!(Lt.eval(&Value::Int(2), &Value::Float(2.5)));
        assert!(Ge.eval(&Value::Float(2.5), &Value::Int(2)));
        assert!(Contains.eval(&Value::str("data lake"), &Value::str("lake")));
    }

    #[test]
    fn null_never_matches() {
        for op in [CompareOp::Eq, CompareOp::Ne, CompareOp::Lt, CompareOp::Contains] {
            assert!(!op.eval(&Value::Null, &Value::Int(1)));
            assert!(!op.eval(&Value::Int(1), &Value::Null));
        }
    }

    #[test]
    fn symbols_roundtrip() {
        for op in [
            CompareOp::Eq,
            CompareOp::Ne,
            CompareOp::Lt,
            CompareOp::Le,
            CompareOp::Gt,
            CompareOp::Ge,
            CompareOp::Contains,
        ] {
            assert_eq!(CompareOp::parse(op.symbol()), Some(op));
        }
        assert_eq!(CompareOp::parse("<>"), Some(CompareOp::Ne));
        assert_eq!(CompareOp::parse("~"), None);
    }

    #[test]
    fn predicate_display_and_match() {
        let p = Predicate::new("price", CompareOp::Gt, 10i64);
        assert_eq!(p.to_string(), "price > 10");
        assert!(p.matches(&Value::Int(11)));
        assert!(!p.matches(&Value::Int(10)));
        assert!(!p.matches(&Value::Null));
    }
}
