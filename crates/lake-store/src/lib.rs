//! # lake-store
//!
//! The storage tier of the lake (survey §4): from-scratch substrates that
//! stand in for the systems the surveyed data lakes are built on.
//!
//! * [`object`] — an immutable-blob object store (HDFS / S3 / Azure Blob
//!   stand-in) with in-memory and local-directory backends and the
//!   conditional-put primitive the lakehouse transaction log needs.
//! * [`kv`] — a sorted key-value store with column families (Bigtable
//!   stand-in) backing the GOODS-style catalog.
//! * [`relational`] — a minimal relational store (MySQL/PostgreSQL stand-in)
//!   with server-side predicate evaluation, so federated query push-down is
//!   measurable.
//! * [`document`] — a JSON document store (MongoDB stand-in) with
//!   path-based filters.
//! * [`graphstore`] — a property-graph store (Neo4j stand-in) with a triple
//!   view for SPARQL-like access.
//! * [`polystore`] — the Constance-style router that places each ingested
//!   dataset in the store matching its original format (§4.3) and provides
//!   integrated retrieval.
//! * [`durable`] — crash-safe file primitives (checksummed frames,
//!   fsynced appends, atomic replace) backing the server's write-ahead
//!   journal.
//! * [`fault`] — a deterministic fault-injecting [`ObjectStore`]
//!   decorator (transient errors, torn writes, scripted crash points)
//!   backing the lakehouse chaos suite.
//! * [`obs`] — an observing [`ObjectStore`] decorator recording per-op
//!   counts, bytes, and latency histograms into a `lake-obs` registry.

pub mod document;
pub mod durable;
pub mod fault;
pub mod graphstore;
pub mod kv;
pub mod object;
pub mod obs;
pub mod polystore;
pub mod predicate;
pub mod relational;

pub use durable::{append_sync, atomic_write_sync, encode_frame, scan_frames, FrameScan};
pub use fault::{FaultPlan, FaultStats, FaultStore, Op};
pub use obs::ObsStore;
pub use object::{LocalDirStore, MemoryStore, ObjectStore};
pub use polystore::{Polystore, StoreKind};
pub use predicate::{CompareOp, Predicate};
