//! A JSON document store — the MongoDB stand-in.
//!
//! Constance routes JSON sources here (§4.3: "a JSON file will be stored
//! in MongoDB"); the personal data lake serializes heterogeneous fragments
//! to JSON objects (§4.2). Documents live in named collections and are
//! queried by dotted-path predicates, with the same scanned-documents
//! counter the relational store keeps, so push-down is measurable on this
//! store too.

use crate::predicate::Predicate;
use lake_core::{Json, LakeError, Result};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A collection-organized document store.
#[derive(Debug, Default)]
pub struct DocumentStore {
    collections: RwLock<BTreeMap<String, Vec<Json>>>,
    docs_scanned: AtomicU64,
}

impl DocumentStore {
    /// An empty store.
    pub fn new() -> DocumentStore {
        DocumentStore::default()
    }

    /// Insert a document into `collection` (created on first use);
    /// returns the document's index within the collection.
    pub fn insert(&self, collection: &str, doc: Json) -> usize {
        let mut cols = self.collections.write();
        let col = cols.entry(collection.to_string()).or_default();
        col.push(doc);
        col.len() - 1
    }

    /// Bulk-insert documents.
    pub fn insert_many(&self, collection: &str, docs: Vec<Json>) {
        self.collections
            .write()
            .entry(collection.to_string())
            .or_default()
            .extend(docs);
    }

    /// Collection names, sorted.
    pub fn collection_names(&self) -> Vec<String> {
        self.collections.read().keys().cloned().collect()
    }

    /// Number of documents in `collection` (0 if missing).
    pub fn count(&self, collection: &str) -> usize {
        self.collections.read().get(collection).map_or(0, Vec::len)
    }

    /// Fetch one document by index.
    pub fn get(&self, collection: &str, index: usize) -> Result<Json> {
        self.collections
            .read()
            .get(collection)
            .and_then(|c| c.get(index))
            .cloned()
            .ok_or_else(|| LakeError::not_found(format!("{collection}[{index}]")))
    }

    /// Find documents matching all `predicates`, evaluated against dotted
    /// paths inside the store (push-down). Missing paths never match.
    pub fn find(&self, collection: &str, predicates: &[Predicate]) -> Result<Vec<Json>> {
        let cols = self.collections.read();
        let col = cols
            .get(collection)
            .ok_or_else(|| LakeError::not_found(collection))?;
        // lint: ordering — push-down metric counter, no ordering dependency.
        self.docs_scanned.fetch_add(col.len() as u64, Ordering::Relaxed);
        Ok(col
            .iter()
            .filter(|d| {
                predicates.iter().all(|p| {
                    d.path(&p.attribute)
                        .map(|j| p.matches(&j.to_value()))
                        .unwrap_or(false)
                })
            })
            .cloned()
            .collect())
    }

    /// Delete all documents of a collection.
    pub fn drop_collection(&self, collection: &str) -> Result<()> {
        self.collections
            .write()
            .remove(collection)
            .map(|_| ())
            .ok_or_else(|| LakeError::not_found(collection))
    }

    /// Documents inspected by all finds so far.
    pub fn docs_scanned(&self) -> u64 {
        // lint: ordering — metric read, approximate by design.
        self.docs_scanned.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CompareOp;

    fn store() -> DocumentStore {
        let s = DocumentStore::new();
        s.insert(
            "users",
            Json::obj(vec![
                ("name", Json::str("ada")),
                ("address", Json::obj(vec![("city", Json::str("delft"))])),
                ("age", Json::Num(36.0)),
            ]),
        );
        s.insert(
            "users",
            Json::obj(vec![
                ("name", Json::str("alan")),
                ("address", Json::obj(vec![("city", Json::str("london"))])),
                ("age", Json::Num(41.0)),
            ]),
        );
        s.insert("events", Json::obj(vec![("kind", Json::str("login"))]));
        s
    }

    #[test]
    fn insert_count_get() {
        let s = store();
        assert_eq!(s.count("users"), 2);
        assert_eq!(s.count("none"), 0);
        assert_eq!(s.get("users", 1).unwrap().path("name").unwrap().as_str(), Some("alan"));
        assert!(s.get("users", 9).is_err());
    }

    #[test]
    fn find_by_nested_path() {
        let s = store();
        let hits = s
            .find("users", &[Predicate::new("address.city", CompareOp::Eq, "delft")])
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].path("name").unwrap().as_str(), Some("ada"));
        assert_eq!(s.docs_scanned(), 2);
    }

    #[test]
    fn find_numeric_and_missing_path() {
        let s = store();
        let hits = s.find("users", &[Predicate::new("age", CompareOp::Gt, 40i64)]).unwrap();
        assert_eq!(hits.len(), 1);
        let none = s.find("users", &[Predicate::new("nope.deep", CompareOp::Eq, 1i64)]).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn find_unknown_collection_errors() {
        let s = store();
        assert!(s.find("ghost", &[]).is_err());
    }

    #[test]
    fn drop_collection_works() {
        let s = store();
        s.drop_collection("events").unwrap();
        assert!(s.drop_collection("events").is_err());
        assert_eq!(s.collection_names(), vec!["users"]);
    }

    #[test]
    fn insert_many_bulk() {
        let s = DocumentStore::new();
        s.insert_many("logs", vec![Json::Null, Json::Bool(true)]);
        assert_eq!(s.count("logs"), 2);
    }
}
