//! A property-graph store — the Neo4j stand-in.
//!
//! Backs graph-shaped datasets (§4.2 personal data lake), graph metadata
//! models, and — through its *triple view* — the SPARQL-like federated
//! querying of semantic data lakes (Ontario/Squerall, §7.2): every node
//! property and edge is exposed as a `(subject, predicate, object)` triple
//! that triple patterns match against.

use lake_core::{LakeError, NodeId, PropertyGraph, Result, Value};
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// An RDF-ish triple derived from the property graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Triple {
    /// Subject: a node, rendered as `label#id` or its `name` property.
    pub subject: String,
    /// Predicate: property key or edge label.
    pub predicate: String,
    /// Object: property value or target node name.
    pub object: Value,
}

/// One component of a triple pattern: bound to a constant or a variable.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// Must equal this constant.
    Const(Value),
    /// A named variable (`?x`) to bind.
    Var(String),
}

impl Term {
    /// Parse `?name` into a variable, anything else into a constant.
    pub fn parse(s: &str) -> Term {
        if let Some(v) = s.strip_prefix('?') {
            Term::Var(v.to_string())
        } else {
            Term::Const(Value::parse_infer(s))
        }
    }

    fn matches(&self, v: &Value, binding: &BTreeMap<String, Value>) -> bool {
        match self {
            Term::Const(c) => c == v,
            Term::Var(name) => binding.get(name).map(|b| b == v).unwrap_or(true),
        }
    }

    fn bind(&self, v: &Value, binding: &mut BTreeMap<String, Value>) {
        if let Term::Var(name) = self {
            binding.entry(name.clone()).or_insert_with(|| v.clone());
        }
    }
}

/// A `(s, p, o)` pattern of [`Term`]s.
#[derive(Debug, Clone)]
pub struct TriplePattern {
    /// Subject term.
    pub s: Term,
    /// Predicate term.
    pub p: Term,
    /// Object term.
    pub o: Term,
}

/// A named-graph store over [`PropertyGraph`]s.
#[derive(Debug, Default)]
pub struct GraphStore {
    graphs: RwLock<BTreeMap<String, PropertyGraph>>,
}

impl GraphStore {
    /// An empty store.
    pub fn new() -> GraphStore {
        GraphStore::default()
    }

    /// Store (or replace) a named graph.
    pub fn put_graph(&self, name: &str, graph: PropertyGraph) {
        self.graphs.write().insert(name.to_string(), graph);
    }

    /// Clone out a named graph.
    pub fn get_graph(&self, name: &str) -> Result<PropertyGraph> {
        self.graphs
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| LakeError::not_found(name))
    }

    /// Graph names, sorted.
    pub fn graph_names(&self) -> Vec<String> {
        self.graphs.read().keys().cloned().collect()
    }

    /// Remove a named graph.
    pub fn drop_graph(&self, name: &str) -> Result<()> {
        self.graphs
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| LakeError::not_found(name))
    }

    /// Run `f` over a named graph without cloning it.
    pub fn with_graph<R>(&self, name: &str, f: impl FnOnce(&PropertyGraph) -> R) -> Result<R> {
        let graphs = self.graphs.read();
        let g = graphs.get(name).ok_or_else(|| LakeError::not_found(name))?;
        Ok(f(g))
    }

    /// Materialize the triple view of a named graph.
    ///
    /// Triples: for every node `n`, `(name(n), prop_key, prop_value)` per
    /// property plus `(name(n), "a", label)`; for every edge,
    /// `(name(from), edge_label, name(to))`.
    pub fn triples(&self, name: &str) -> Result<Vec<Triple>> {
        self.with_graph(name, |g| {
            let node_name = |id: NodeId| -> String {
                match g.node(id).props.get("name") {
                    Some(Value::Str(s)) => s.clone(),
                    _ => format!("{}#{}", g.node(id).label, id.0),
                }
            };
            let mut out = Vec::new();
            for id in g.node_ids() {
                let subj = node_name(id);
                out.push(Triple {
                    subject: subj.clone(),
                    predicate: "a".to_string(),
                    object: Value::Str(g.node(id).label.clone()),
                });
                for (k, v) in &g.node(id).props {
                    out.push(Triple { subject: subj.clone(), predicate: k.clone(), object: v.clone() });
                }
            }
            for eid in g.edge_ids() {
                let e = g.edge(eid);
                out.push(Triple {
                    subject: node_name(e.from),
                    predicate: e.label.clone(),
                    object: Value::Str(node_name(e.to)),
                });
            }
            out
        })
    }

    /// Match a conjunction of triple patterns against a named graph,
    /// returning all variable bindings (a miniature SPARQL BGP evaluator).
    pub fn match_patterns(
        &self,
        name: &str,
        patterns: &[TriplePattern],
    ) -> Result<Vec<BTreeMap<String, Value>>> {
        let triples = self.triples(name)?;
        let mut bindings: Vec<BTreeMap<String, Value>> = vec![BTreeMap::new()];
        for pat in patterns {
            let mut next = Vec::new();
            for binding in &bindings {
                for t in &triples {
                    let subj = Value::Str(t.subject.clone());
                    let pred = Value::Str(t.predicate.clone());
                    if pat.s.matches(&subj, binding)
                        && pat.p.matches(&pred, binding)
                        && pat.o.matches(&t.object, binding)
                    {
                        let mut b = binding.clone();
                        pat.s.bind(&subj, &mut b);
                        pat.p.bind(&pred, &mut b);
                        pat.o.bind(&t.object, &mut b);
                        next.push(b);
                    }
                }
            }
            next.sort();
            next.dedup();
            bindings = next;
            if bindings.is_empty() {
                break;
            }
        }
        Ok(bindings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GraphStore {
        let mut g = PropertyGraph::new();
        let ada = g.add_node_with("Person", vec![("name", Value::str("ada")), ("age", Value::Int(36))]);
        let alan = g.add_node_with("Person", vec![("name", Value::str("alan"))]);
        let delft = g.add_node_with("City", vec![("name", Value::str("delft"))]);
        g.add_edge(ada, delft, "lives_in");
        g.add_edge(alan, delft, "lives_in");
        g.add_edge(ada, alan, "knows");
        let s = GraphStore::new();
        s.put_graph("social", g);
        s
    }

    #[test]
    fn put_get_names() {
        let s = sample();
        assert_eq!(s.graph_names(), vec!["social"]);
        assert_eq!(s.get_graph("social").unwrap().node_count(), 3);
        assert!(s.get_graph("none").is_err());
    }

    #[test]
    fn triples_cover_props_labels_edges() {
        let s = sample();
        let ts = s.triples("social").unwrap();
        assert!(ts.iter().any(|t| t.subject == "ada" && t.predicate == "a" && t.object == Value::str("Person")));
        assert!(ts.iter().any(|t| t.subject == "ada" && t.predicate == "age" && t.object == Value::Int(36)));
        assert!(ts.iter().any(|t| t.subject == "ada" && t.predicate == "lives_in" && t.object == Value::str("delft")));
    }

    #[test]
    fn single_pattern_match() {
        let s = sample();
        let pats = [TriplePattern {
            s: Term::Var("p".into()),
            p: Term::Const(Value::str("lives_in")),
            o: Term::Const(Value::str("delft")),
        }];
        let res = s.match_patterns("social", &pats).unwrap();
        assert_eq!(res.len(), 2);
        let names: Vec<&Value> = res.iter().map(|b| &b["p"]).collect();
        assert!(names.contains(&&Value::str("ada")));
        assert!(names.contains(&&Value::str("alan")));
    }

    #[test]
    fn join_across_patterns() {
        let s = sample();
        // Who knows someone living in delft?
        let pats = [
            TriplePattern {
                s: Term::Var("x".into()),
                p: Term::Const(Value::str("knows")),
                o: Term::Var("y".into()),
            },
            TriplePattern {
                s: Term::Var("y".into()),
                p: Term::Const(Value::str("lives_in")),
                o: Term::Const(Value::str("delft")),
            },
        ];
        let res = s.match_patterns("social", &pats).unwrap();
        assert_eq!(res.len(), 1);
        assert_eq!(res[0]["x"], Value::str("ada"));
        assert_eq!(res[0]["y"], Value::str("alan"));
    }

    #[test]
    fn unmatched_pattern_yields_empty() {
        let s = sample();
        let pats = [TriplePattern {
            s: Term::Var("x".into()),
            p: Term::Const(Value::str("hates")),
            o: Term::Var("y".into()),
        }];
        assert!(s.match_patterns("social", &pats).unwrap().is_empty());
    }

    #[test]
    fn term_parse() {
        assert_eq!(Term::parse("?x"), Term::Var("x".into()));
        assert_eq!(Term::parse("42"), Term::Const(Value::Int(42)));
        assert_eq!(Term::parse("delft"), Term::Const(Value::str("delft")));
    }
}
