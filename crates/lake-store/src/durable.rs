//! Crash-safe file primitives: checksummed frames, fsynced appends, and
//! atomic replace — the `sync_all` discipline the server's write-ahead
//! journal is built on.
//!
//! The rest of the storage tier is content-addressed and immutable, so
//! torn writes only ever cost an orphaned object. A *journal* is the one
//! place the lake appends to a mutable file whose tail may be torn by
//! `kill -9` mid-write, so this module owns the three disciplines that
//! make that survivable:
//!
//! * **framing** — every record is `[u32 BE payload length][payload]
//!   [u64 BE FNV-1a-64(payload)]` (the same checksum family the lakehouse
//!   `TxnLog` uses for its commit entries), so a reader can detect exactly
//!   where a torn tail begins: [`scan_frames`] returns the longest valid
//!   prefix and the byte offset of the first damage;
//! * **fsync before acknowledge** — [`append_sync`] never returns before
//!   `sync_data`; lake-lint rule 9 ("durability discipline") enforces
//!   structurally that no journal path calls `write_all` without a
//!   following sync;
//! * **atomic replace** — [`atomic_write_sync`] writes a temp file in the
//!   destination directory, fsyncs it, renames over the target, and
//!   fsyncs the directory, so snapshots are always either the old or the
//!   new bytes, never a prefix.

use lake_core::{LakeError, Result};
use std::fs::File;
use std::io::Write;
use std::path::Path;

/// FNV-1a 64-bit — the workspace's standard content checksum (identical
/// constants to the lakehouse transaction log's entry crc).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The checksum rendered the way the lakehouse log stores it: 16 lowercase
/// hex digits.
pub fn checksum_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a64(bytes))
}

/// Per-frame overhead: 4-byte length prefix + 8-byte checksum suffix.
pub const FRAME_OVERHEAD: usize = 12;

/// Encode one payload as a length-prefixed, checksum-suffixed frame.
pub fn encode_frame(payload: &[u8]) -> Result<Vec<u8>> {
    let len = u32::try_from(payload.len())
        .map_err(|_| LakeError::invalid("frame payload exceeds u32::MAX"))?;
    let mut out = Vec::with_capacity(payload.len() + FRAME_OVERHEAD);
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a64(payload).to_be_bytes());
    Ok(out)
}

/// What [`scan_frames`] found in a journal image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameScan {
    /// Payloads of the longest valid frame prefix, in file order.
    pub frames: Vec<Vec<u8>>,
    /// Byte length of that valid prefix; everything past it is damage.
    pub valid_len: usize,
    /// `true` when bytes exist past `valid_len` (torn tail or corruption).
    pub torn: bool,
}

/// Walk `bytes` frame by frame, stopping at the first incomplete frame or
/// checksum mismatch. A clean file yields `torn == false` and
/// `valid_len == bytes.len()`; any damage yields the longest valid prefix
/// plus the offset recovery should truncate to.
pub fn scan_frames(bytes: &[u8]) -> FrameScan {
    let mut frames = Vec::new();
    let mut offset = 0usize;
    loop {
        let Some(header) = bytes.get(offset..offset + 4) else { break };
        let mut len_buf = [0u8; 4];
        len_buf.copy_from_slice(header);
        let len = u32::from_be_bytes(len_buf) as usize;
        let payload_end = offset + 4 + len;
        let frame_end = payload_end + 8;
        let Some(payload) = bytes.get(offset + 4..payload_end) else { break };
        let Some(crc_bytes) = bytes.get(payload_end..frame_end) else { break };
        let mut crc_buf = [0u8; 8];
        crc_buf.copy_from_slice(crc_bytes);
        if u64::from_be_bytes(crc_buf) != fnv1a64(payload) {
            break;
        }
        frames.push(payload.to_vec());
        offset = frame_end;
    }
    FrameScan { frames, valid_len: offset, torn: offset != bytes.len() }
}

/// Append `buf` to `file` and `sync_data` before returning: once this
/// returns `Ok`, the bytes survive `kill -9`. One call per group-commit
/// batch, so the fsync cost is amortized across every frame in the batch.
pub fn append_sync(file: &mut File, buf: &[u8]) -> Result<()> {
    file.write_all(buf)
        .map_err(|e| LakeError::Io(format!("journal append: {e}")))?;
    file.sync_data().map_err(|e| LakeError::Io(format!("journal sync: {e}")))
}

/// Write `bytes` to `path` crash-safely: temp file in the same directory,
/// `sync_all`, atomic rename, then directory fsync so the rename itself
/// is durable. Readers see the old content or the new, never a prefix.
pub fn atomic_write_sync(path: &Path, bytes: &[u8]) -> Result<()> {
    let dir = path
        .parent()
        .ok_or_else(|| LakeError::invalid(format!("{}: no parent directory", path.display())))?;
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| LakeError::invalid(format!("{}: no file name", path.display())))?;
    let tmp = dir.join(format!(".{name}.tmp-{}", std::process::id()));
    let mut f = File::create(&tmp)
        .map_err(|e| LakeError::Io(format!("create {}: {e}", tmp.display())))?;
    f.write_all(bytes)
        .and_then(|()| f.sync_all())
        .map_err(|e| LakeError::Io(format!("write {}: {e}", tmp.display())))?;
    drop(f);
    std::fs::rename(&tmp, path)
        .map_err(|e| LakeError::Io(format!("rename {} -> {}: {e}", tmp.display(), path.display())))?;
    // Make the rename durable: fsync the containing directory.
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| LakeError::Io(format!("sync dir {}: {e}", dir.display())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_matches_the_lakehouse_constants() {
        // Spot values pinned so the discipline stays byte-compatible with
        // the TxnLog entries' crc field.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(checksum_hex(b"").len(), 16);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
    }

    #[test]
    fn frames_round_trip() {
        let mut image = Vec::new();
        for payload in [b"one".as_slice(), b"".as_slice(), b"three".as_slice()] {
            image.extend_from_slice(&encode_frame(payload).unwrap());
        }
        let scan = scan_frames(&image);
        assert!(!scan.torn);
        assert_eq!(scan.valid_len, image.len());
        assert_eq!(scan.frames, vec![b"one".to_vec(), b"".to_vec(), b"three".to_vec()]);
    }

    #[test]
    fn torn_tail_is_detected_at_every_offset() {
        let mut image = Vec::new();
        image.extend_from_slice(&encode_frame(b"keep-me").unwrap());
        let keep_len = image.len();
        image.extend_from_slice(&encode_frame(b"torn-me").unwrap());
        for cut in keep_len..image.len() {
            let scan = scan_frames(&image[..cut]);
            assert_eq!(scan.frames, vec![b"keep-me".to_vec()], "cut at {cut}");
            assert_eq!(scan.valid_len, keep_len, "cut at {cut}");
            assert_eq!(scan.torn, cut != keep_len, "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_checksum_stops_the_scan() {
        let mut image = encode_frame(b"good").unwrap();
        let mut bad = encode_frame(b"evil").unwrap();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        let keep = image.len();
        image.extend_from_slice(&bad);
        let scan = scan_frames(&image);
        assert_eq!(scan.frames.len(), 1);
        assert_eq!(scan.valid_len, keep);
        assert!(scan.torn);
    }

    #[test]
    fn append_sync_and_scan_agree_on_disk() {
        let dir = std::env::temp_dir().join(format!("lake-durable-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.log");
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap();
        append_sync(&mut f, &encode_frame(b"alpha").unwrap()).unwrap();
        append_sync(&mut f, &encode_frame(b"beta").unwrap()).unwrap();
        let scan = scan_frames(&std::fs::read(&path).unwrap());
        assert!(!scan.torn);
        assert_eq!(scan.frames, vec![b"alpha".to_vec(), b"beta".to_vec()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn atomic_write_replaces_whole_files() {
        let dir = std::env::temp_dir().join(format!("lake-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.json");
        atomic_write_sync(&path, b"v1").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"v1");
        atomic_write_sync(&path, b"v2-longer").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"v2-longer");
        // No temp residue.
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(stray.is_empty(), "{stray:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
