//! Deterministic fault injection for object stores.
//!
//! The whole lake sits on file/blob storage (survey §4.1), and the
//! lakehouse ACID layer (§8.3) is only as trustworthy as its behavior
//! when that storage misbehaves. [`FaultStore`] decorates any
//! [`ObjectStore`] and injects *scripted, seeded* faults per operation:
//!
//! * **transient errors** — the call fails with
//!   [`LakeError::Transient`] and has no effect; models throttling /
//!   timeouts that a retry absorbs;
//! * **torn writes** — only a prefix of the blob is persisted before the
//!   error; models a connection dropped mid-upload;
//! * **crash points** — the writer "dies": the triggering operation
//!   (optionally) tears, and every subsequent call through this handle
//!   fails. No panics — the chaos harness observes the death as an
//!   error and lets *another* handle recover;
//! * **latency accounting** — per-op simulated latency totals without
//!   actually sleeping.
//!
//! All scheduling lives in a [`FaultPlan`] (builder API): one-shot faults
//! at the Nth call of an op, budgets over the next N calls, and seeded
//! per-call probabilities. A plan with a fixed seed injects the identical
//! fault sequence on every run, so chaos tests are reproducible.
//!
//! Each writer wraps its own `FaultStore` around a shared backend
//! (`Arc<MemoryStore>`, say): faults are per-writer, the blobs —
//! including torn ones — are shared, exactly like a real dying client.

use crate::object::ObjectStore;
use lake_core::{LakeError, Result};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;

/// The operations a fault can target.
///
/// `Exists` and `List` return infallible types, so they can only accrue
/// call counts and latency, never errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Op {
    /// [`ObjectStore::put`].
    Put,
    /// [`ObjectStore::put_if_absent`].
    PutIfAbsent,
    /// [`ObjectStore::get`].
    Get,
    /// [`ObjectStore::delete`].
    Delete,
    /// [`ObjectStore::list`].
    List,
    /// [`ObjectStore::exists`].
    Exists,
    /// [`ObjectStore::size`].
    Size,
}

impl Op {
    /// Display name (used in injected error messages).
    pub fn name(self) -> &'static str {
        match self {
            Op::Put => "put",
            Op::PutIfAbsent => "put_if_absent",
            Op::Get => "get",
            Op::Delete => "delete",
            Op::List => "list",
            Op::Exists => "exists",
            Op::Size => "size",
        }
    }
}

/// What a scheduled fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq)]
enum FaultKind {
    /// Fail with [`LakeError::Transient`]; the operation has no effect.
    Transient,
    /// Persist only `keep` of the blob's bytes, then fail transiently.
    /// Only meaningful on `Put`/`PutIfAbsent`.
    Torn {
        /// Fraction of the blob that lands, in `[0, 1)`.
        keep: f64,
    },
    /// The writer dies: optionally tear the write first, then every
    /// later call through this handle fails.
    Crash {
        /// `Some(f)` = persist an `f` prefix before dying (a dead
        /// winner's half-written blob); `None` = nothing lands.
        torn_keep: Option<f64>,
    },
}

/// One scripted fault: fires when `op`'s call counter reaches `at_call`.
#[derive(Debug, Clone, Copy)]
struct Scheduled {
    op: Op,
    at_call: u64,
    kind: FaultKind,
}

/// A deterministic, seeded fault schedule. Build one with the fluent
/// API, then hand it to [`FaultStore::new`].
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    scheduled: Vec<Scheduled>,
    fail_budget: BTreeMap<Op, u64>,
    probability: BTreeMap<Op, f64>,
    latency_ms: BTreeMap<Op, u64>,
}

impl FaultPlan {
    /// An empty plan (no faults) with seed 0.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Set the seed driving probabilistic faults.
    pub fn seed(mut self, seed: u64) -> FaultPlan {
        self.seed = seed;
        self
    }

    /// Fail the next `n` calls of `op` transiently (no effect, retryable).
    pub fn fail_next(mut self, op: Op, n: u64) -> FaultPlan {
        *self.fail_budget.entry(op).or_insert(0) += n;
        self
    }

    /// Fail the `call`-th (1-based) invocation of `op` transiently.
    pub fn fail_call(mut self, op: Op, call: u64) -> FaultPlan {
        self.scheduled.push(Scheduled { op, at_call: call, kind: FaultKind::Transient });
        self
    }

    /// Each call of `op` fails transiently with probability `p`, drawn
    /// from the plan's seeded generator.
    pub fn fail_with_probability(mut self, op: Op, p: f64) -> FaultPlan {
        self.probability.insert(op, p.clamp(0.0, 1.0));
        self
    }

    /// The `call`-th invocation of `op` persists only a `keep` prefix of
    /// the blob, then fails transiently. A retried plain `put` heals the
    /// tear (full overwrite); a retried `put_if_absent` finds the torn
    /// blob squatting on the key — the case `TxnLog::recover` exists for.
    pub fn torn_write(mut self, op: Op, call: u64, keep: f64) -> FaultPlan {
        self.scheduled.push(Scheduled {
            op,
            at_call: call,
            kind: FaultKind::Torn { keep: keep.clamp(0.0, 1.0) },
        });
        self
    }

    /// The writer dies at the `call`-th invocation of `op`: nothing
    /// lands, and every subsequent call through this handle fails.
    pub fn crash_at(mut self, op: Op, call: u64) -> FaultPlan {
        self.scheduled.push(Scheduled { op, at_call: call, kind: FaultKind::Crash { torn_keep: None } });
        self
    }

    /// Like [`FaultPlan::crash_at`], but a `keep` prefix of the blob
    /// lands first — the "dead winner left a half-written log entry"
    /// scenario.
    pub fn crash_torn(mut self, op: Op, call: u64, keep: f64) -> FaultPlan {
        self.scheduled.push(Scheduled {
            op,
            at_call: call,
            kind: FaultKind::Crash { torn_keep: Some(keep.clamp(0.0, 1.0)) },
        });
        self
    }

    /// Account `ms` of simulated latency per call of `op` (no sleeping —
    /// totals are read back from [`FaultStats::simulated_latency_ms`]).
    pub fn latency_ms(mut self, op: Op, ms: u64) -> FaultPlan {
        self.latency_ms.insert(op, ms);
        self
    }
}

/// Counters a [`FaultStore`] accumulates; read with [`FaultStore::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Calls per operation (including faulted ones).
    pub calls: BTreeMap<&'static str, u64>,
    /// Transient errors injected.
    pub transients_injected: u64,
    /// Torn writes injected (prefix persisted).
    pub torn_writes: u64,
    /// Whether the scripted crash point fired.
    pub crashed: bool,
    /// Calls rejected because the handle was already dead.
    pub calls_after_crash: u64,
    /// Total simulated latency accounted, in milliseconds.
    pub simulated_latency_ms: u64,
}

/// Mutable interpreter state for one plan.
#[derive(Debug)]
struct State {
    plan: FaultPlan,
    counters: BTreeMap<Op, u64>,
    rng: StdRng,
    dead: bool,
    stats: FaultStats,
}

/// What the interpreter tells an operation wrapper to do.
enum Verdict {
    /// Run the real operation.
    Proceed,
    /// Fail transiently without side effects.
    FailTransient,
    /// Persist only `keep_bytes`-prefix semantics (writes only), then
    /// fail; `then_die` marks the handle dead afterwards.
    Tear {
        keep: f64,
        then_die: bool,
    },
    /// Die now: no side effects, handle dead afterwards.
    Die,
    /// The handle was already dead before this call.
    AlreadyDead,
}

impl State {
    fn decide(&mut self, op: Op) -> Verdict {
        let n = self.counters.entry(op).or_insert(0);
        *n += 1;
        let call = *n;
        *self.stats.calls.entry(op.name()).or_insert(0) += 1;
        if let Some(ms) = self.plan.latency_ms.get(&op) {
            self.stats.simulated_latency_ms += ms;
        }
        if self.dead {
            self.stats.calls_after_crash += 1;
            return Verdict::AlreadyDead;
        }
        // Scripted one-shots take precedence (most specific first).
        if let Some(idx) = self
            .plan
            .scheduled
            .iter()
            .position(|s| s.op == op && s.at_call == call)
        {
            let kind = self.plan.scheduled[idx].kind;
            match kind {
                FaultKind::Transient => {
                    self.stats.transients_injected += 1;
                    return Verdict::FailTransient;
                }
                FaultKind::Torn { keep } => {
                    self.stats.transients_injected += 1;
                    self.stats.torn_writes += 1;
                    return Verdict::Tear { keep, then_die: false };
                }
                FaultKind::Crash { torn_keep: Some(keep) } => {
                    self.stats.crashed = true;
                    self.stats.torn_writes += 1;
                    return Verdict::Tear { keep, then_die: true };
                }
                FaultKind::Crash { torn_keep: None } => {
                    self.stats.crashed = true;
                    return Verdict::Die;
                }
            }
        }
        // Then transient budgets…
        if let Some(budget) = self.plan.fail_budget.get_mut(&op) {
            if *budget > 0 {
                *budget -= 1;
                self.stats.transients_injected += 1;
                return Verdict::FailTransient;
            }
        }
        // …then the seeded coin.
        if let Some(&p) = self.plan.probability.get(&op) {
            if p > 0.0 && self.rng.random_bool(p) {
                self.stats.transients_injected += 1;
                return Verdict::FailTransient;
            }
        }
        Verdict::Proceed
    }
}

/// A fault-injecting decorator around any [`ObjectStore`].
///
/// `put_if_absent` atomicity is the inner store's — the decorator either
/// forwards the call unchanged or, when a torn fault fires, forwards a
/// *prefix* of the bytes through the same single conditional call, so
/// the one-winner guarantee is never weakened.
pub struct FaultStore<S: ObjectStore> {
    inner: S,
    state: Mutex<State>,
}

impl<S: ObjectStore> FaultStore<S> {
    /// Wrap `inner` under `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> FaultStore<S> {
        let rng = StdRng::seed_from_u64(plan.seed);
        FaultStore {
            inner,
            state: Mutex::new(State {
                plan,
                counters: BTreeMap::new(),
                rng,
                dead: false,
                stats: FaultStats::default(),
            }),
        }
    }

    /// A transparent wrapper that never faults (useful as a control).
    pub fn transparent(inner: S) -> FaultStore<S> {
        FaultStore::new(inner, FaultPlan::new())
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> FaultStats {
        self.state.lock().stats.clone()
    }

    /// Has the scripted crash point fired (handle dead)?
    pub fn is_crashed(&self) -> bool {
        self.state.lock().dead
    }

    /// The wrapped store (e.g. to inspect blobs after a crash).
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn crash_error(op: Op) -> LakeError {
        LakeError::Io(format!("simulated crash: writer halted before {}", op.name()))
    }

    fn transient_error(op: Op) -> LakeError {
        LakeError::transient(format!("injected fault on {}", op.name()))
    }

    /// Apply the plan to a fallible, effect-free operation.
    fn guard<T>(&self, op: Op, run: impl FnOnce() -> Result<T>) -> Result<T> {
        let verdict = self.state.lock().decide(op);
        match verdict {
            Verdict::Proceed => run(),
            Verdict::FailTransient => Err(Self::transient_error(op)),
            // Tearing a read makes no sense; treat as transient.
            Verdict::Tear { then_die, .. } => {
                if then_die {
                    self.state.lock().dead = true;
                }
                Err(Self::transient_error(op))
            }
            Verdict::Die => {
                self.state.lock().dead = true;
                Err(Self::crash_error(op))
            }
            Verdict::AlreadyDead => Err(Self::crash_error(op)),
        }
    }

    /// Apply the plan to a write of `data`, supporting torn persistence.
    fn guard_write(
        &self,
        op: Op,
        data: &[u8],
        write: impl FnOnce(&[u8]) -> Result<()>,
    ) -> Result<()> {
        let verdict = self.state.lock().decide(op);
        match verdict {
            Verdict::Proceed => write(data),
            Verdict::FailTransient => Err(Self::transient_error(op)),
            Verdict::Tear { keep, then_die } => {
                let kept = ((data.len() as f64) * keep).floor() as usize;
                let kept = kept.min(data.len().saturating_sub(1));
                let partial = data.get(..kept).unwrap_or(&[]);
                // The prefix lands whether or not the caller survives.
                let _ = write(partial);
                if then_die {
                    self.state.lock().dead = true;
                    Err(Self::crash_error(op))
                } else {
                    Err(Self::transient_error(op))
                }
            }
            Verdict::Die => {
                self.state.lock().dead = true;
                Err(Self::crash_error(op))
            }
            Verdict::AlreadyDead => Err(Self::crash_error(op)),
        }
    }
}

/// Fault-free calls pass straight through, so `put_if_absent` keeps the
/// inner store's atomicity: the decorator never splits the conditional
/// put's existence check from its write — it only decides *whether* the
/// one underlying call happens (or how much of its payload does).
impl<S: ObjectStore> ObjectStore for FaultStore<S> {
    fn put(&self, key: &str, data: &[u8]) -> Result<()> {
        self.guard_write(Op::Put, data, |bytes| self.inner.put(key, bytes))
    }

    fn put_if_absent(&self, key: &str, data: &[u8]) -> Result<()> {
        self.guard_write(Op::PutIfAbsent, data, |bytes| self.inner.put_if_absent(key, bytes))
    }

    fn get(&self, key: &str) -> Result<Vec<u8>> {
        self.guard(Op::Get, || self.inner.get(key))
    }

    fn exists(&self, key: &str) -> bool {
        // Infallible signature: only count/latency-account; a dead
        // handle answers `false` for everything.
        let dead = {
            let mut st = self.state.lock();
            matches!(st.decide(Op::Exists), Verdict::AlreadyDead)
        };
        if dead {
            false
        } else {
            self.inner.exists(key)
        }
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.guard(Op::Delete, || self.inner.delete(key))
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        let dead = {
            let mut st = self.state.lock();
            matches!(st.decide(Op::List), Verdict::AlreadyDead)
        };
        if dead {
            Vec::new()
        } else {
            self.inner.list(prefix)
        }
    }

    fn size(&self, key: &str) -> Result<usize> {
        self.guard(Op::Size, || self.inner.size(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::MemoryStore;
    use std::sync::Arc;

    #[test]
    fn transparent_plan_changes_nothing() {
        let s = FaultStore::transparent(MemoryStore::new());
        s.put("k", b"v").unwrap();
        assert_eq!(s.get("k").unwrap(), b"v");
        assert_eq!(s.size("k").unwrap(), 1);
        assert!(s.exists("k"));
        assert_eq!(s.list(""), vec!["k".to_string()]);
        let stats = s.stats();
        assert_eq!(stats.transients_injected, 0);
        assert!(!stats.crashed);
        assert_eq!(stats.calls["put"], 1);
        assert_eq!(stats.calls["get"], 1);
    }

    #[test]
    fn fail_next_budget_is_consumed_then_clears() {
        let s = FaultStore::new(MemoryStore::new(), FaultPlan::new().fail_next(Op::Put, 2));
        assert!(matches!(s.put("k", b"v"), Err(LakeError::Transient(_))));
        assert!(matches!(s.put("k", b"v"), Err(LakeError::Transient(_))));
        s.put("k", b"v").unwrap();
        assert_eq!(s.get("k").unwrap(), b"v");
        assert_eq!(s.stats().transients_injected, 2);
    }

    #[test]
    fn fail_call_targets_the_exact_call() {
        let s = FaultStore::new(MemoryStore::new(), FaultPlan::new().fail_call(Op::Get, 2));
        s.put("k", b"v").unwrap();
        s.get("k").unwrap();
        assert!(matches!(s.get("k"), Err(LakeError::Transient(_))));
        s.get("k").unwrap();
    }

    #[test]
    fn transient_put_has_no_side_effect() {
        let s = FaultStore::new(MemoryStore::new(), FaultPlan::new().fail_next(Op::Put, 1));
        assert!(s.put("k", b"v").is_err());
        assert!(!s.exists("k"));
    }

    #[test]
    fn torn_write_persists_a_strict_prefix() {
        let s = FaultStore::new(MemoryStore::new(), FaultPlan::new().torn_write(Op::Put, 1, 0.5));
        let data = b"0123456789".to_vec();
        assert!(matches!(s.put("k", &data), Err(LakeError::Transient(_))));
        let torn = s.inner().get("k").unwrap();
        assert_eq!(torn, b"01234");
        // A retried put heals the tear.
        s.put("k", &data).unwrap();
        assert_eq!(s.get("k").unwrap(), data);
        assert_eq!(s.stats().torn_writes, 1);
    }

    #[test]
    fn torn_write_never_keeps_the_full_blob() {
        let s = FaultStore::new(MemoryStore::new(), FaultPlan::new().torn_write(Op::Put, 1, 1.0));
        assert!(s.put("k", b"abc").is_err());
        assert_eq!(s.inner().get("k").unwrap(), b"ab", "keep=1.0 must still tear");
    }

    #[test]
    fn crash_halts_the_handle_but_not_the_backend() {
        let shared = Arc::new(MemoryStore::new());
        let dying = FaultStore::new(Arc::clone(&shared), FaultPlan::new().crash_at(Op::Put, 2));
        dying.put("a", b"1").unwrap();
        assert!(matches!(dying.put("b", b"2"), Err(LakeError::Io(_))));
        assert!(dying.is_crashed());
        // Everything after the crash fails on this handle…
        assert!(matches!(dying.get("a"), Err(LakeError::Io(_))));
        assert!(!dying.exists("a"));
        assert!(dying.list("").is_empty());
        assert!(dying.stats().calls_after_crash >= 3);
        // …but the backend is alive and uncorrupted for other writers.
        assert_eq!(shared.get("a").unwrap(), b"1");
        assert!(!shared.exists("b"));
    }

    #[test]
    fn crash_torn_claims_the_key_with_partial_bytes() {
        let shared = Arc::new(MemoryStore::new());
        let dying =
            FaultStore::new(Arc::clone(&shared), FaultPlan::new().crash_torn(Op::PutIfAbsent, 1, 0.4));
        let r = dying.put_if_absent("race", b"0123456789");
        assert!(matches!(r, Err(LakeError::Io(_))), "{r:?}");
        assert!(dying.is_crashed());
        // The dead winner's half-written blob squats on the key.
        assert_eq!(shared.get("race").unwrap(), b"0123");
        assert!(matches!(
            shared.put_if_absent("race", b"other"),
            Err(LakeError::AlreadyExists(_))
        ));
    }

    #[test]
    fn probabilistic_faults_are_seed_deterministic() {
        let run = |seed: u64| {
            let s = FaultStore::new(
                MemoryStore::new(),
                FaultPlan::new().seed(seed).fail_with_probability(Op::Put, 0.5),
            );
            (0..64).map(|i| s.put(&format!("k{i}"), b"v").is_err()).collect::<Vec<bool>>()
        };
        assert_eq!(run(7), run(7), "same seed, same fault sequence");
        assert_ne!(run(7), run(8), "different seed, different sequence");
        assert!(run(7).iter().any(|&e| e) && run(7).iter().any(|&e| !e));
    }

    #[test]
    fn latency_accounting_accumulates_without_sleeping() {
        let s = FaultStore::new(
            MemoryStore::new(),
            FaultPlan::new().latency_ms(Op::Get, 3).latency_ms(Op::Put, 2),
        );
        s.put("k", b"v").unwrap();
        let _ = s.get("k");
        let _ = s.get("k");
        assert_eq!(s.stats().simulated_latency_ms, 2 + 3 + 3);
    }
}
