//! An observing [`ObjectStore`] decorator.
//!
//! [`ObsStore`] mirrors [`FaultStore`](crate::fault::FaultStore): it
//! wraps any store and records, per operation, a call counter, an error
//! counter, and a latency histogram into a shared
//! [`MetricsRegistry`], plus byte counters for the data moved by
//! `put`/`put_if_absent`/`get`. Latency is timed by the injectable
//! [`Clock`], so tests under `ManualClock` see exact, scripted
//! durations.
//!
//! Metric names follow the workspace convention:
//! `lake_store_<op>_total`, `lake_store_<op>_errors_total`,
//! `lake_store_<op>_seconds` (histogram, microsecond resolution), and
//! `lake_store_{put,get}_bytes_total`.
//!
//! ## Decorator ordering
//!
//! Compose **faults inside, observation outside** —
//! `ObsStore<FaultStore<S>>` — so injected faults show up in the error
//! counters exactly as real storage faults would, and every retry
//! attempt is observed as its own call. See the ordering note on
//! [`crate::object::ObjectStore`] for why the shared backend is wrapped
//! once per writer via `Arc<S>`.

use crate::fault::Op;
use crate::object::ObjectStore;
use lake_core::retry::{Clock, SystemClock};
use lake_core::Result;
use lake_obs::{Counter, Histogram, MetricsRegistry, MICROS_TO_SECONDS};
use std::sync::Arc;

/// Pre-registered handles for one operation: updates are lock-free.
struct OpMetrics {
    total: Arc<Counter>,
    errors: Arc<Counter>,
    seconds: Arc<Histogram>,
}

impl OpMetrics {
    fn register(registry: &MetricsRegistry, op: Op) -> OpMetrics {
        let name = op.name();
        OpMetrics {
            total: registry.counter(&format!("lake_store_{name}_total")),
            errors: registry.counter(&format!("lake_store_{name}_errors_total")),
            seconds: registry
                .histogram(&format!("lake_store_{name}_seconds"), MICROS_TO_SECONDS),
        }
    }
}

/// An [`ObjectStore`] decorator that meters every call.
///
/// Wrap the outermost layer of a store stack (observation outside,
/// faults inside) and share one [`MetricsRegistry`] across writers so
/// per-op series aggregate lake-wide.
pub struct ObsStore<S: ObjectStore> {
    inner: S,
    clock: Arc<dyn Clock>,
    put: OpMetrics,
    put_if_absent: OpMetrics,
    get: OpMetrics,
    delete: OpMetrics,
    list: OpMetrics,
    exists: OpMetrics,
    size: OpMetrics,
    put_bytes: Arc<Counter>,
    get_bytes: Arc<Counter>,
}

impl<S: ObjectStore> ObsStore<S> {
    /// Wrap `inner`, metering into `registry`, timed by the real clock.
    pub fn new(inner: S, registry: &MetricsRegistry) -> ObsStore<S> {
        ObsStore::with_clock(inner, registry, Arc::new(SystemClock))
    }

    /// Wrap `inner` with an explicit clock (use `ManualClock` in tests
    /// for deterministic latency histograms).
    pub fn with_clock(
        inner: S,
        registry: &MetricsRegistry,
        clock: Arc<dyn Clock>,
    ) -> ObsStore<S> {
        ObsStore {
            inner,
            clock,
            put: OpMetrics::register(registry, Op::Put),
            put_if_absent: OpMetrics::register(registry, Op::PutIfAbsent),
            get: OpMetrics::register(registry, Op::Get),
            delete: OpMetrics::register(registry, Op::Delete),
            list: OpMetrics::register(registry, Op::List),
            exists: OpMetrics::register(registry, Op::Exists),
            size: OpMetrics::register(registry, Op::Size),
            put_bytes: registry.counter("lake_store_put_bytes_total"),
            get_bytes: registry.counter("lake_store_get_bytes_total"),
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Meter a fallible call: one count, one latency sample, and an
    /// error count when it fails.
    fn timed<T>(&self, m: &OpMetrics, run: impl FnOnce() -> Result<T>) -> Result<T> {
        let start = self.clock.now_micros();
        let out = run();
        m.seconds.observe(self.clock.now_micros().saturating_sub(start));
        m.total.inc();
        if out.is_err() {
            m.errors.inc();
        }
        out
    }

    /// Meter an infallible call (`exists`/`list`).
    fn timed_ok<T>(&self, m: &OpMetrics, run: impl FnOnce() -> T) -> T {
        let start = self.clock.now_micros();
        let out = run();
        m.seconds.observe(self.clock.now_micros().saturating_sub(start));
        m.total.inc();
        out
    }
}

/// Pure pass-through: `put_if_absent` atomicity is the inner store's —
/// the decorator forwards the single conditional call unchanged (it
/// only measures around it), so the atomic one-winner guarantee is
/// never weakened.
impl<S: ObjectStore> ObjectStore for ObsStore<S> {
    fn put(&self, key: &str, data: &[u8]) -> Result<()> {
        let r = self.timed(&self.put, || self.inner.put(key, data));
        if r.is_ok() {
            self.put_bytes.add(data.len() as u64);
        }
        r
    }

    fn put_if_absent(&self, key: &str, data: &[u8]) -> Result<()> {
        let r = self.timed(&self.put_if_absent, || self.inner.put_if_absent(key, data));
        if r.is_ok() {
            self.put_bytes.add(data.len() as u64);
        }
        r
    }

    fn get(&self, key: &str) -> Result<Vec<u8>> {
        let r = self.timed(&self.get, || self.inner.get(key));
        if let Ok(bytes) = &r {
            self.get_bytes.add(bytes.len() as u64);
        }
        r
    }

    fn exists(&self, key: &str) -> bool {
        self.timed_ok(&self.exists, || self.inner.exists(key))
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.timed(&self.delete, || self.inner.delete(key))
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        self.timed_ok(&self.list, || self.inner.list(prefix))
    }

    fn size(&self, key: &str) -> Result<usize> {
        self.timed(&self.size, || self.inner.size(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultStore};
    use crate::object::MemoryStore;
    use lake_core::retry::ManualClock;

    #[test]
    fn counts_bytes_and_latency_per_op() {
        let clock = Arc::new(ManualClock::new());
        let reg = MetricsRegistry::new();
        let store = ObsStore::with_clock(MemoryStore::new(), &reg, clock.clone());
        store.put("k", b"12345").unwrap();
        assert_eq!(store.get("k").unwrap(), b"12345");
        assert!(store.exists("k"));
        assert_eq!(store.list(""), vec!["k".to_string()]);
        assert_eq!(store.size("k").unwrap(), 5);
        store.delete("k").unwrap();
        let snap = reg.snapshot();
        for op in ["put", "get", "exists", "list", "size", "delete"] {
            assert_eq!(snap.counter_value(&format!("lake_store_{op}_total")), 1, "{op}");
            assert_eq!(snap.counter_value(&format!("lake_store_{op}_errors_total")), 0);
            assert_eq!(
                snap.histogram(&format!("lake_store_{op}_seconds")).map(|h| h.count),
                Some(1),
                "{op} latency sampled"
            );
        }
        assert_eq!(snap.counter_value("lake_store_put_bytes_total"), 5);
        assert_eq!(snap.counter_value("lake_store_get_bytes_total"), 5);
    }

    #[test]
    fn manual_clock_gives_exact_latency_histograms() {
        let clock = Arc::new(ManualClock::new());
        let reg = MetricsRegistry::new();
        // A store whose inner get "takes" 100 µs of virtual time.
        struct Slow {
            inner: MemoryStore,
            clock: Arc<ManualClock>,
        }
        impl ObjectStore for Slow {
            fn put(&self, key: &str, data: &[u8]) -> Result<()> {
                self.inner.put(key, data)
            }
            /// Atomicity: delegates the single conditional call to
            /// [`MemoryStore`], whose lock makes it atomic.
            fn put_if_absent(&self, key: &str, data: &[u8]) -> Result<()> {
                self.inner.put_if_absent(key, data)
            }
            fn get(&self, key: &str) -> Result<Vec<u8>> {
                self.clock.advance_micros(100);
                self.inner.get(key)
            }
            fn exists(&self, key: &str) -> bool {
                self.inner.exists(key)
            }
            fn delete(&self, key: &str) -> Result<()> {
                self.inner.delete(key)
            }
            fn list(&self, prefix: &str) -> Vec<String> {
                self.inner.list(prefix)
            }
            fn size(&self, key: &str) -> Result<usize> {
                self.inner.size(key)
            }
        }
        let store = ObsStore::with_clock(
            Slow { inner: MemoryStore::new(), clock: clock.clone() },
            &reg,
            clock,
        );
        store.put("k", b"v").unwrap();
        let _ = store.get("k");
        let snap = reg.snapshot();
        let hist = snap.histogram("lake_store_get_seconds").cloned().unwrap_or_default();
        assert_eq!(hist.count, 1);
        assert_eq!(hist.sum, 100, "exactly the scripted 100 µs");
        // 100 µs lands in the le=128 µs bucket.
        assert_eq!(hist.quantile(0.5), 128.0 * MICROS_TO_SECONDS);
    }

    #[test]
    fn observation_outside_faults_sees_injected_errors() {
        let reg = MetricsRegistry::new();
        let clock = Arc::new(ManualClock::new());
        let faulty = FaultStore::new(MemoryStore::new(), FaultPlan::new().fail_next(Op::Put, 2));
        let store = ObsStore::with_clock(faulty, &reg, clock);
        assert!(store.put("k", b"v").is_err());
        assert!(store.put("k", b"v").is_err());
        store.put("k", b"v").unwrap();
        let snap = reg.snapshot();
        assert_eq!(snap.counter_value("lake_store_put_total"), 3, "every attempt observed");
        assert_eq!(snap.counter_value("lake_store_put_errors_total"), 2);
        assert_eq!(snap.counter_value("lake_store_put_bytes_total"), 1, "only the success moves bytes");
        assert_eq!(store.inner().stats().transients_injected, 2);
    }

    #[test]
    fn shared_backend_with_per_writer_decorators_never_double_counts() {
        // Two writers, each with its own ObsStore<FaultStore<Arc<S>>>
        // stack over ONE shared backend: per-writer registries see only
        // their own traffic, and a shared registry sums exactly once per
        // real call (the backend itself is undecorated, so nothing is
        // counted twice).
        let shared = Arc::new(MemoryStore::new());
        let reg = MetricsRegistry::new();
        let clock = Arc::new(ManualClock::new());
        let a = ObsStore::with_clock(
            FaultStore::transparent(Arc::clone(&shared)),
            &reg,
            clock.clone(),
        );
        let b = ObsStore::with_clock(FaultStore::transparent(Arc::clone(&shared)), &reg, clock);
        a.put("a", b"1").unwrap();
        b.put("b", b"22").unwrap();
        let _ = a.get("b"); // data shared via the backend
        let snap = reg.snapshot();
        assert_eq!(snap.counter_value("lake_store_put_total"), 2);
        assert_eq!(snap.counter_value("lake_store_put_bytes_total"), 3);
        assert_eq!(snap.counter_value("lake_store_get_total"), 1);
        assert_eq!(shared.list("").len(), 2);
    }
}
