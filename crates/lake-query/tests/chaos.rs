//! Chaos suite: scripted fault injection against the federated mediator's
//! degradation ladder (budget → retry → breaker → skip).
//!
//! Every scenario drives real federated queries through a seeded
//! [`FaultSource`] under a [`ManualClock`], so nothing here ever sleeps
//! and every run replays byte-for-byte per seed: simulated hangs advance
//! virtual time, breaker cooldowns elapse only when a test advances the
//! clock, and retry jitter flows from the seed. The invariants asserted
//! are the degradation ones: a skipped source never silently shrinks an
//! "exact" answer (`is_partial` is set), an open breaker never touches
//! its backend, and strict mode reproduces fail-fast semantics.

use lake_core::retry::{Clock, ManualClock, RetryPolicy};
use lake_core::{Dataset, DatasetId, LakeError, Table, Value};
use lake_obs::MetricsRegistry;
use lake_query::degrade::{BreakerConfig, BreakerState, DegradationConfig, QueryBudget, SkipReason};
use lake_query::fault::FaultSource;
use lake_query::federated::{FederatedEngine, SourceBinding};
use lake_query::parse_query;
use lake_store::{Polystore, StoreKind};
use std::sync::Arc;

/// The three fixed seeds every seeded scenario replays under
/// (scripts/chaos.sh documents them; change them and the suite must
/// still pass — determinism is per-seed, not per-value).
const SEEDS: [u64; 3] = [7, 42, 1337];

/// A polystore with the three-substrate "orders" lake the federated unit
/// tests also use: 3 relational + 2 document + 1 file row.
fn setup() -> Polystore {
    let ps = Polystore::new();
    let t = Table::from_rows(
        "orders_eu",
        &["cust", "city", "total"],
        vec![
            vec![Value::str("c1"), Value::str("delft"), Value::Float(10.0)],
            vec![Value::str("c2"), Value::str("paris"), Value::Float(80.0)],
            vec![Value::str("c3"), Value::str("delft"), Value::Float(30.0)],
        ],
    )
    .unwrap();
    ps.store(DatasetId(1), "orders_eu", Dataset::Table(t)).unwrap();
    let docs = vec![
        lake_formats::json::parse(r#"{"buyer": "c7", "addr": {"city": "rome"}, "amount": 55}"#)
            .unwrap(),
        lake_formats::json::parse(r#"{"buyer": "c8", "addr": {"city": "delft"}, "amount": 5}"#)
            .unwrap(),
    ];
    ps.store(DatasetId(2), "orders_docs", Dataset::Documents(docs)).unwrap();
    let tf = Table::from_rows(
        "orders_archive",
        &["cust", "city", "total"],
        vec![vec![Value::str("c9"), Value::str("oslo"), Value::Float(70.0)]],
    )
    .unwrap();
    ps.store_in(DatasetId(3), "orders_archive", Dataset::Table(tf), StoreKind::File).unwrap();
    ps
}

fn bind(store: StoreKind, location: &str, cols: &[(&str, &str)]) -> SourceBinding {
    SourceBinding {
        store,
        location: location.to_string(),
        columns: cols.iter().map(|(a, b)| (a.to_string(), b.to_string())).collect(),
    }
}

fn engine(ps: &Polystore) -> FederatedEngine<'_> {
    let mut fe = FederatedEngine::new(ps);
    fe.register(
        "orders",
        vec![
            bind(
                StoreKind::Relational,
                "orders_eu",
                &[("customer", "cust"), ("city", "city"), ("total", "total")],
            ),
            bind(
                StoreKind::Document,
                "orders_docs",
                &[("customer", "buyer"), ("city", "addr.city"), ("total", "amount")],
            ),
            bind(
                StoreKind::File,
                "tables/orders_archive.pql",
                &[("customer", "cust"), ("city", "city"), ("total", "total")],
            ),
        ],
    );
    fe
}

fn docs_state(fe: &FederatedEngine<'_>) -> BreakerState {
    fe.breaker_status()
        .into_iter()
        .find(|(k, _, _)| k == "orders_docs")
        .map(|(_, s, _)| s)
        .unwrap_or(BreakerState::Closed)
}

// ----------------------------------------------------------------- breaker

/// The acceptance-criterion scenario: the full Closed → Open → HalfOpen →
/// Closed cycle under `ManualClock` + seeded `FaultSource`, replaying
/// identically across all three seeds.
#[test]
fn breaker_full_cycle_replays_identically_across_seeds() {
    for seed in SEEDS {
        let run = || {
            let ps = setup();
            let clock = Arc::new(ManualClock::new());
            let fe = engine(&ps)
                .with_clock(Arc::clone(&clock) as Arc<dyn Clock>)
                .with_degradation(
                    DegradationConfig::degraded()
                        .with_retry(RetryPolicy::none().with_jitter_seed(seed))
                        .with_breaker(BreakerConfig { failure_threshold: 2, cooldown_ms: 50 }),
                )
                .with_faults(FaultSource::new().seed(seed).hard("orders_docs", 2));
            let q = parse_query("select customer, city from orders").unwrap();

            let mut trajectory = Vec::new();
            // q1: docs fails once (Closed, 1 consecutive failure).
            // q2: docs fails again → threshold reached → Open.
            // q3: open breaker denies without a fetch.
            for _ in 0..3 {
                let (t, stats) = fe.execute(&q, true).unwrap();
                trajectory.push((
                    t.num_rows(),
                    stats.completeness.is_partial,
                    stats.subqueries,
                    docs_state(&fe).name(),
                ));
            }
            // Cooldown elapses → the next query probes and heals.
            clock.advance_micros(50_000);
            let (t, stats) = fe.execute(&q, true).unwrap();
            trajectory.push((
                t.num_rows(),
                stats.completeness.is_partial,
                stats.subqueries,
                docs_state(&fe).name(),
            ));
            (trajectory, clock.sleeps(), fe.fault_stats().unwrap())
        };

        let (traj_a, sleeps_a, faults_a) = run();
        let (traj_b, sleeps_b, faults_b) = run();
        assert_eq!(traj_a, traj_b, "cycle must replay for seed {seed}");
        assert_eq!(sleeps_a, sleeps_b);
        assert_eq!(faults_a, faults_b);
        assert_eq!(
            traj_a,
            vec![
                (4, true, 3, "closed"),    // failure 1 of 2
                (4, true, 3, "open"),      // threshold tripped
                (4, true, 2, "open"),      // denied: no subquery to docs
                (6, false, 3, "closed"),   // half-open probe healed
            ],
            "seed {seed}"
        );
        // The denied query never reached the injector: exactly 3 calls
        // (q1, q2, q4-probe).
        assert_eq!(faults_a.calls_to("orders_docs"), 3);
        assert_eq!(faults_a.hard_failures, 2);
    }
}

#[test]
fn failed_half_open_probe_reopens_with_fresh_cooldown() {
    let ps = setup();
    let clock = Arc::new(ManualClock::new());
    let fe = engine(&ps)
        .with_clock(Arc::clone(&clock) as Arc<dyn Clock>)
        .with_degradation(
            DegradationConfig::degraded()
                .with_retry(RetryPolicy::none())
                .with_breaker(BreakerConfig { failure_threshold: 1, cooldown_ms: 10 }),
        )
        .with_faults(FaultSource::new().hard("orders_docs", 2));
    let q = parse_query("select customer from orders").unwrap();

    let (_, s1) = fe.execute(&q, true).unwrap(); // failure → Open
    assert_eq!(s1.completeness.skipped_for(SkipReason::Failed), 1);
    assert_eq!(docs_state(&fe), BreakerState::Open);

    clock.advance_micros(10_000);
    let (_, s2) = fe.execute(&q, true).unwrap(); // probe fails → Open again
    assert_eq!(s2.completeness.skipped_for(SkipReason::Failed), 1);
    assert_eq!(docs_state(&fe), BreakerState::Open);

    // Immediately after the failed probe the fresh cooldown denies.
    let (_, s3) = fe.execute(&q, true).unwrap();
    assert_eq!(s3.completeness.skipped_for(SkipReason::BreakerOpen), 1);

    clock.advance_micros(10_000);
    let (t4, s4) = fe.execute(&q, true).unwrap(); // second probe heals
    assert!(!s4.completeness.is_partial);
    assert_eq!(t4.num_rows(), 6);
    assert_eq!(docs_state(&fe), BreakerState::Closed);
}

#[test]
fn open_breaker_stops_hammering_a_dead_backend() {
    let ps = setup();
    let clock = Arc::new(ManualClock::new());
    let fe = engine(&ps)
        .with_clock(Arc::clone(&clock) as Arc<dyn Clock>)
        .with_degradation(
            DegradationConfig::degraded()
                .with_retry(RetryPolicy::none())
                .with_breaker(BreakerConfig { failure_threshold: 2, cooldown_ms: 1_000 }),
        )
        .with_faults(FaultSource::new().dead("orders_docs"));
    let q = parse_query("select customer from orders").unwrap();
    for _ in 0..10 {
        let (t, stats) = fe.execute(&q, true).unwrap();
        assert_eq!(t.num_rows(), 4);
        assert!(stats.completeness.is_partial);
    }
    // 10 queries, but only 2 fetches ever reached the dead backend.
    assert_eq!(fe.fault_stats().unwrap().calls_to("orders_docs"), 2);
}

// ---------------------------------------------------------------- deadlines

#[test]
fn deadline_expiry_mid_fanout_skips_the_tail_deterministically() {
    for seed in SEEDS {
        let run = || {
            let ps = setup();
            let clock = Arc::new(ManualClock::new());
            let fe = engine(&ps)
                .with_clock(Arc::clone(&clock) as Arc<dyn Clock>)
                .with_degradation(
                    DegradationConfig::degraded()
                        .with_retry(RetryPolicy::new(2).with_jitter_seed(seed))
                        .with_budget(QueryBudget::unlimited().with_total_ms(20)),
                )
                // The relational source hangs past the whole budget.
                .with_faults(FaultSource::new().seed(seed).slow("orders_eu", 25));
            let q = parse_query("select customer, city from orders").unwrap();
            let (t, stats) = fe.execute(&q, true).unwrap();
            (t.num_rows(), stats.subqueries, stats.completeness.clone(), clock.sleeps())
        };
        let (rows_a, subq_a, comp_a, sleeps_a) = run();
        let (rows_b, subq_b, comp_b, sleeps_b) = run();
        assert_eq!((rows_a, subq_a, &comp_a, &sleeps_a), (rows_b, subq_b, &comp_b, &sleeps_b));
        // The slow source still answered (no per-source deadline), but the
        // fan-out tail was cut: docs and file were never consulted.
        assert_eq!(rows_a, 3, "seed {seed}");
        assert_eq!(subq_a, 1);
        assert!(comp_a.is_partial);
        assert_eq!(comp_a.skipped_for(SkipReason::Deadline), 2);
        assert_eq!(comp_a.sources_ok, 1);
    }
}

#[test]
fn per_source_deadline_vs_retry_backoff_interplay() {
    // Backoff sleeps advance the clock, so retries themselves consume the
    // per-source budget: a transient-then-slow source can blow its
    // deadline purely through recovery time.
    let ps = setup();
    let clock = Arc::new(ManualClock::new());
    let fe = engine(&ps)
        .with_clock(Arc::clone(&clock) as Arc<dyn Clock>)
        .with_degradation(
            DegradationConfig::degraded()
                .with_retry(RetryPolicy::new(3).with_base_delay_ms(8).with_max_delay_ms(8))
                .with_budget(QueryBudget::unlimited().with_per_source_ms(10)),
        )
        // Two transients → two backoffs of ≥8ms each → >10ms deadline.
        .with_faults(FaultSource::new().transient("orders_eu", 2));
    let q = parse_query("select customer from orders").unwrap();
    let (t, stats) = fe.execute(&q, true).unwrap();
    assert_eq!(t.num_rows(), 3, "docs + file answered");
    assert_eq!(stats.completeness.timed_out(), 1);
    assert!(stats.completeness.is_partial);
    assert!(clock.total_ms() >= 16, "retry backoff drove the timeout");
}

// ------------------------------------------------------------- total outage

#[test]
fn all_sources_down_yields_an_empty_but_honest_answer() {
    let ps = setup();
    let clock = Arc::new(ManualClock::new());
    let faults = || {
        FaultSource::new()
            .dead("orders_eu")
            .dead("orders_docs")
            .dead("tables/orders_archive.pql")
    };
    let fe = engine(&ps)
        .with_clock(Arc::clone(&clock) as Arc<dyn Clock>)
        .with_degradation(DegradationConfig::degraded().with_retry(RetryPolicy::none()))
        .with_faults(faults());
    let q = parse_query("select customer, city from orders").unwrap();
    let (t, stats) = fe.execute(&q, true).unwrap();
    assert_eq!(t.num_rows(), 0);
    assert_eq!(stats.completeness.sources_ok, 0);
    assert_eq!(stats.completeness.skipped.len(), 3);
    assert!(stats.completeness.is_partial);
    assert_eq!(stats.completeness.skipped_for(SkipReason::Failed), 3);

    // Strict mode turns the same outage into an error.
    let strict = engine(&ps)
        .with_clock(Arc::new(ManualClock::new()) as Arc<dyn Clock>)
        .with_degradation(DegradationConfig::strict().with_retry(RetryPolicy::none()))
        .with_faults(faults());
    let r = strict.execute(&q, true);
    assert!(matches!(r, Err(LakeError::Io(_))), "{r:?}");
}

// ------------------------------------------------------------- equivalence

#[test]
fn strict_and_degraded_agree_when_nothing_fails() {
    let ps = setup();
    let q = parse_query("select customer, city, total from orders").unwrap();
    let plain = engine(&ps);
    let (pt, pstats) = plain.execute(&q, true).unwrap();

    for cfg in [DegradationConfig::degraded(), DegradationConfig::strict()] {
        let fe = engine(&ps)
            .with_clock(Arc::new(ManualClock::new()) as Arc<dyn Clock>)
            .with_degradation(cfg);
        let (t, stats) = fe.execute(&q, true).unwrap();
        assert_eq!(t, pt, "healthy sources: degraded == strict == plain");
        assert_eq!(stats.rows_moved, pstats.rows_moved);
        assert_eq!(stats.subqueries, pstats.subqueries);
        assert!(!stats.completeness.is_partial);
        assert_eq!(stats.completeness.sources_ok, 3);
    }
}

#[test]
fn strict_mode_equivalence_under_pure_transients() {
    // Transients below the retry budget are invisible in both modes: the
    // answers and the retry counters agree.
    for seed in SEEDS {
        let mk = |strict: bool| {
            let ps = setup();
            let clock = Arc::new(ManualClock::new());
            let cfg = if strict { DegradationConfig::strict() } else { DegradationConfig::degraded() };
            let fe = engine(&ps)
                .with_clock(Arc::clone(&clock) as Arc<dyn Clock>)
                .with_degradation(cfg.with_retry(RetryPolicy::new(4).with_jitter_seed(seed)))
                .with_faults(
                    FaultSource::new().seed(seed).transient("orders_eu", 2).transient("orders_docs", 1),
                );
            let q = parse_query("select customer from orders").unwrap();
            let (t, stats) = fe.execute(&q, true).unwrap();
            (t, stats.completeness.is_partial, fe.retry_stats().retries, clock.sleeps())
        };
        let (dt, dp, dr, ds) = mk(false);
        let (st, sp, sr, ss) = mk(true);
        assert_eq!(dt, st, "seed {seed}");
        assert_eq!((dp, sp), (false, false));
        assert_eq!(dr, sr);
        assert_eq!(ds, ss, "identical backoff schedules, seed {seed}");
        assert_eq!(dr, 3, "three injected transients absorbed");
    }
}

// ------------------------------------------------------------------- joins

#[test]
fn join_over_a_degraded_side_is_partial_not_wrong() {
    let ps = setup();
    let profiles = vec![
        lake_formats::json::parse(r#"{"who": "c1", "tier": "gold"}"#).unwrap(),
        lake_formats::json::parse(r#"{"who": "c3", "tier": "silver"}"#).unwrap(),
    ];
    ps.documents.insert_many("profiles", profiles);
    let mut fe = engine(&ps);
    fe.register(
        "tiers",
        vec![bind(StoreKind::Document, "profiles", &[("who", "who"), ("tier", "tier")])],
    );
    let fe = fe
        .with_clock(Arc::new(ManualClock::new()) as Arc<dyn Clock>)
        .with_degradation(DegradationConfig::degraded().with_retry(RetryPolicy::none()))
        // Kill one of the *orders* sources: the join still produces the
        // rows it can prove, flagged partial.
        .with_faults(FaultSource::new().dead("orders_eu"));
    let q = lake_query::ast::parse_join_query(
        "select tier, city from orders join tiers on customer = who",
    )
    .unwrap();
    let (t, stats) = fe.execute_join(&q, true).unwrap();
    // c1/c3 live in the dead relational source; no join rows survive,
    // and the report says exactly which source is to blame.
    assert_eq!(t.num_rows(), 0);
    assert!(stats.completeness.is_partial);
    assert_eq!(stats.completeness.skipped.len(), 1);
    assert_eq!(stats.completeness.skipped[0].location, "orders_eu");
    assert_eq!(stats.completeness.sources_ok, 3, "docs + file + profiles answered");
}

// ------------------------------------------------------------ observability

#[test]
fn skip_counters_match_completeness_reports() {
    let ps = setup();
    let registry = MetricsRegistry::new();
    let clock = Arc::new(ManualClock::new());
    let fe = engine(&ps)
        .with_obs(&registry, Arc::clone(&clock) as Arc<dyn Clock>)
        .with_degradation(
            DegradationConfig::degraded()
                .with_retry(RetryPolicy::none())
                .with_breaker(BreakerConfig { failure_threshold: 2, cooldown_ms: 1_000 }),
        )
        .with_faults(FaultSource::new().dead("orders_docs"));
    let q = parse_query("select customer from orders").unwrap();
    let mut skipped_total = 0usize;
    let mut partials = 0u64;
    for _ in 0..5 {
        let (_, stats) = fe.execute(&q, true).unwrap();
        skipped_total += stats.completeness.skipped.len();
        partials += u64::from(stats.completeness.is_partial);
    }
    let snap = registry.snapshot();
    assert_eq!(snap.counter_value("lake_query_source_skipped_total"), skipped_total as u64);
    assert_eq!(snap.counter_value("lake_query_partial_total"), partials);
    assert_eq!(partials, 5);
    // breaker gauge for the dead source reads Open.
    let open = snap.gauges.iter().any(|(id, v)| {
        id.name == "lake_query_breaker_state"
            && id.labels.iter().any(|(k, val)| k == "source" && val == "orders_docs")
            && *v == 1
    });
    assert!(open, "breaker gauge must export Open for the dead source");
}

// -------------------------------------------------------------------- soak

#[test]
fn seeded_soak_replays_deterministically() {
    for seed in SEEDS {
        let run = || {
            let ps = setup();
            let clock = Arc::new(ManualClock::new());
            let fe = engine(&ps)
                .with_clock(Arc::clone(&clock) as Arc<dyn Clock>)
                .with_degradation(
                    DegradationConfig::degraded()
                        .with_retry(RetryPolicy::new(2).with_base_delay_ms(2).with_jitter_seed(seed))
                        .with_breaker(BreakerConfig { failure_threshold: 3, cooldown_ms: 15 }),
                )
                .with_faults(
                    FaultSource::new()
                        .seed(seed)
                        .transient_probability("orders_eu", 0.45)
                        .transient_probability("orders_docs", 0.45)
                        .hang("tables/orders_archive.pql", 5, 4),
                );
            let q = parse_query("select customer, total from orders").unwrap();
            let mut trajectory = Vec::new();
            for i in 0..30u64 {
                let (t, stats) = fe.execute(&q, true).unwrap();
                trajectory.push((
                    t.num_rows(),
                    stats.completeness.is_partial,
                    stats.subqueries,
                    stats
                        .completeness
                        .skipped
                        .iter()
                        .map(|s| (s.location.clone(), s.reason.name()))
                        .collect::<Vec<_>>(),
                ));
                if i % 4 == 0 {
                    clock.advance_micros(9_000);
                }
            }
            (trajectory, clock.sleeps(), fe.retry_stats(), fe.fault_stats().unwrap())
        };
        let (traj_a, sleeps_a, retry_a, faults_a) = run();
        let (traj_b, sleeps_b, retry_b, faults_b) = run();
        assert_eq!(traj_a, traj_b, "soak must replay for seed {seed}");
        assert_eq!(sleeps_a, sleeps_b);
        assert_eq!(retry_a, retry_b);
        assert_eq!(faults_a, faults_b);
        // The soak is non-trivial: transients actually flew, and at
        // least one query of the thirty saw degradation or recovery.
        assert!(faults_a.transients > 0, "seed {seed} injected nothing");
        assert!(retry_a.retries > 0);
        assert!(traj_a.iter().any(|(_, partial, _, _)| *partial), "seed {seed}: no partials");
        assert!(traj_a.iter().any(|(_, partial, _, _)| !*partial), "seed {seed}: no exact answers");
    }
}
