//! Seeded fault injection for federated sources, mirroring
//! `lake_store::FaultStore`'s [`lake_store::FaultPlan`] idiom at the
//! mediator level.
//!
//! A [`FaultSource`] sits between the [`crate::federated::FederatedEngine`]
//! and its source fetches: before each real fetch the engine calls
//! [`FaultSource::intercept`] with the source's location, and the plan
//! decides — deterministically, per seed — whether that call experiences
//! a simulated **hang** (the clock advances via
//! [`lake_core::retry::Clock::sleep_ms`], so a `ManualClock` records it
//! without wall time), a **transient** error (retryable, absorbed by the
//! engine's retry policy), or a **hard** failure (non-retryable, feeding
//! the circuit breaker). This is how every breaker transition and
//! degradation path in the chaos suite is exercised without a single
//! flaky backend.

use lake_core::retry::Clock;
use lake_core::{LakeError, Result};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;
use lake_core::sync::{rank, OrderedMutex};

#[derive(Debug, Clone, Default)]
struct LocationPlan {
    /// Transient-error budget: the next `n` calls fail retryably.
    transient_budget: u64,
    /// Probability any call fails with a transient (seeded coin).
    transient_probability: f64,
    /// Hard-failure budget: the next `n` calls fail non-retryably.
    hard_budget: u64,
    /// Every call fails non-retryably (a dead backend).
    dead: bool,
    /// 1-based call numbers that hang for the given milliseconds before
    /// proceeding.
    hangs: BTreeMap<u64, u64>,
    /// Every call hangs this long (slow backend).
    slow_ms: u64,
}

/// Observed injection counts, for asserting plans actually fired.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSourceStats {
    /// Intercepted calls per location.
    pub calls: BTreeMap<String, u64>,
    /// Transient errors injected.
    pub transients: u64,
    /// Hard (non-retryable) errors injected.
    pub hard_failures: u64,
    /// Hangs injected.
    pub hangs: u64,
    /// Total simulated hang time, in milliseconds.
    pub hang_ms: u64,
}

impl FaultSourceStats {
    /// Intercepted calls to `location`.
    pub fn calls_to(&self, location: &str) -> u64 {
        self.calls.get(location).copied().unwrap_or(0)
    }
}

#[derive(Debug, Default)]
struct State {
    /// 1-based call counters per location.
    counters: BTreeMap<String, u64>,
    stats: FaultSourceStats,
}

/// A deterministic per-source fault injector. Build it with the
/// `FaultPlan`-style chainable constructors, attach it with
/// [`crate::federated::FederatedEngine::with_faults`].
#[derive(Debug)]
pub struct FaultSource {
    seed: u64,
    plans: BTreeMap<String, LocationPlan>,
    state: OrderedMutex<State>,
}

impl Default for FaultSource {
    fn default() -> FaultSource {
        FaultSource::new()
    }
}

impl FaultSource {
    /// An injector with no scripted faults (every call proceeds).
    pub fn new() -> FaultSource {
        FaultSource {
            seed: 0,
            plans: BTreeMap::new(),
            state: OrderedMutex::new(State::default(), rank::QUERY_FAULT, "query.fault.state"),
        }
    }

    /// Seed for the probabilistic coin (same seed ⇒ same fault schedule).
    pub fn seed(mut self, seed: u64) -> FaultSource {
        self.seed = seed;
        self
    }

    fn plan_mut(&mut self, location: &str) -> &mut LocationPlan {
        self.plans.entry(location.to_string()).or_default()
    }

    /// The next `n` calls to `location` fail with a retryable transient.
    pub fn transient(mut self, location: &str, n: u64) -> FaultSource {
        self.plan_mut(location).transient_budget += n;
        self
    }

    /// Each call to `location` fails transiently with probability `p`
    /// (seeded, deterministic).
    pub fn transient_probability(mut self, location: &str, p: f64) -> FaultSource {
        self.plan_mut(location).transient_probability = p.clamp(0.0, 1.0);
        self
    }

    /// The next `n` calls to `location` fail hard (non-retryable).
    pub fn hard(mut self, location: &str, n: u64) -> FaultSource {
        self.plan_mut(location).hard_budget += n;
        self
    }

    /// Every call to `location` fails hard: a dead backend.
    pub fn dead(mut self, location: &str) -> FaultSource {
        self.plan_mut(location).dead = true;
        self
    }

    /// Call number `call` (1-based) to `location` hangs for `ms`
    /// milliseconds before proceeding.
    pub fn hang(mut self, location: &str, call: u64, ms: u64) -> FaultSource {
        self.plan_mut(location).hangs.insert(call, ms);
        self
    }

    /// Every call to `location` hangs for `ms` milliseconds: a slow
    /// backend.
    pub fn slow(mut self, location: &str, ms: u64) -> FaultSource {
        self.plan_mut(location).slow_ms = ms;
        self
    }

    /// Counters of everything injected so far.
    pub fn stats(&self) -> FaultSourceStats {
        self.state.lock().stats.clone()
    }

    /// Decide the fate of one call to `location`: possibly advance the
    /// clock (hang), then possibly fail. Scheduled budgets take
    /// precedence over the probabilistic coin, mirroring `FaultPlan`.
    pub fn intercept(&self, location: &str, clock: &dyn Clock) -> Result<()> {
        let plan = match self.plans.get(location) {
            Some(p) => p,
            None => return Ok(()),
        };
        let (call, verdict, hang) = {
            let mut st = self.state.lock();
            let call = st.counters.entry(location.to_string()).or_insert(0);
            *call += 1;
            let call = *call;
            *st.stats.calls.entry(location.to_string()).or_insert(0) += 1;

            let hang = plan.hangs.get(&call).copied().unwrap_or(0).max(plan.slow_ms);
            if hang > 0 {
                st.stats.hangs += 1;
                st.stats.hang_ms += hang;
            }

            let verdict = if plan.dead || plan.hard_budget >= call {
                st.stats.hard_failures += 1;
                Verdict::Hard
            } else if plan.transient_budget + plan.hard_budget >= call {
                st.stats.transients += 1;
                Verdict::Transient
            } else if plan.transient_probability > 0.0 {
                // Per-call derived stream: deterministic regardless of
                // interleaving with other locations.
                let mut rng = StdRng::seed_from_u64(
                    self.seed ^ call.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ fnv(location),
                );
                if rng.random_range(0.0..1.0) < plan.transient_probability {
                    st.stats.transients += 1;
                    Verdict::Transient
                } else {
                    Verdict::Proceed
                }
            } else {
                Verdict::Proceed
            };
            (call, verdict, hang)
        };
        // Sleep outside the lock so a hanging source never blocks other
        // locations' bookkeeping.
        if hang > 0 {
            clock.sleep_ms(hang);
        }
        match verdict {
            Verdict::Proceed => Ok(()),
            Verdict::Transient => Err(LakeError::transient(format!(
                "injected transient on {location} (call {call})"
            ))),
            Verdict::Hard => {
                Err(LakeError::Io(format!("injected hard failure on {location} (call {call})")))
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Verdict {
    Proceed,
    Transient,
    Hard,
}

/// FNV-1a 64 over the location name, to decorrelate per-location streams.
fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use lake_core::retry::ManualClock;

    #[test]
    fn transient_budget_spends_then_proceeds() {
        let clock = ManualClock::new();
        let f = FaultSource::new().transient("a", 2);
        assert!(matches!(f.intercept("a", &clock), Err(LakeError::Transient(_))));
        assert!(matches!(f.intercept("a", &clock), Err(LakeError::Transient(_))));
        assert!(f.intercept("a", &clock).is_ok());
        assert!(f.intercept("other", &clock).is_ok());
        let stats = f.stats();
        assert_eq!(stats.transients, 2);
        assert_eq!(stats.calls_to("a"), 3);
    }

    #[test]
    fn dead_location_always_fails_hard() {
        let clock = ManualClock::new();
        let f = FaultSource::new().dead("x");
        for _ in 0..5 {
            let r = f.intercept("x", &clock);
            assert!(matches!(r, Err(LakeError::Io(_))), "{r:?}");
        }
        assert_eq!(f.stats().hard_failures, 5);
    }

    #[test]
    fn hard_budget_precedes_transients() {
        let clock = ManualClock::new();
        let f = FaultSource::new().hard("a", 1).transient("a", 1);
        assert!(matches!(f.intercept("a", &clock), Err(LakeError::Io(_))));
        assert!(matches!(f.intercept("a", &clock), Err(LakeError::Transient(_))));
        assert!(f.intercept("a", &clock).is_ok());
    }

    #[test]
    fn hangs_advance_the_clock() {
        let clock = ManualClock::new();
        let f = FaultSource::new().hang("a", 2, 30).slow("b", 5);
        assert!(f.intercept("a", &clock).is_ok()); // call 1: no hang
        assert!(f.intercept("a", &clock).is_ok()); // call 2: 30ms hang
        assert!(f.intercept("b", &clock).is_ok()); // always 5ms
        assert_eq!(clock.sleeps(), vec![30, 5]);
        let stats = f.stats();
        assert_eq!(stats.hangs, 2);
        assert_eq!(stats.hang_ms, 35);
    }

    #[test]
    fn probabilistic_faults_replay_per_seed() {
        let run = |seed: u64| {
            let clock = ManualClock::new();
            let f = FaultSource::new().seed(seed).transient_probability("a", 0.5);
            (0..32).map(|_| f.intercept("a", &clock).is_err()).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7), "same seed must replay");
        assert_ne!(run(7), run(8), "different seeds must differ");
        assert!(run(7).iter().any(|&e| e), "p=0.5 over 32 calls should inject");
        assert!(run(7).iter().any(|&e| !e), "p=0.5 over 32 calls should pass some");
    }
}
