//! Federated query processing over the polystore (§7.2).
//!
//! Ontario "profiles each dataset with its metadata … Given an input
//! SPARQL query, Ontario first decomposes the query. Then it uses the
//! profiles to generate subqueries for each dataset"; Squerall maps source
//! schemata to a mediator and joins/transforms retrieved entities;
//! Constance pushes selection predicates down to the sources. The
//! [`FederatedEngine`] does all three over the `lake-store` substrates:
//!
//! * a *mediated table* unions one or more sources (relational tables,
//!   document collections with path→column mappings, or columnar files in
//!   the object store);
//! * queries ([`crate::ast::Query`]) are decomposed into per-source plans;
//! * predicates are evaluated inside each source when `pushdown` is on
//!   (the measurable E9 toggle), or at the mediator otherwise;
//! * SPARQL-like triple patterns pass through to the graph store.

use crate::ast::Query;
use lake_core::retry::Clock;
use lake_core::{Column, Json, LakeError, Result, Table, Value};
use lake_obs::{Counter, Histogram, MetricsRegistry, MICROS_TO_SECONDS};
use lake_store::graphstore::TriplePattern;
use lake_store::predicate::Predicate;
use lake_store::{Polystore, StoreKind};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Pre-registered `lake_query_*` handles plus the clock timing
/// per-backend fan-out; attached with [`FederatedEngine::with_obs`].
struct QueryMetrics {
    clock: Arc<dyn Clock>,
    execute_total: Arc<Counter>,
    subqueries_total: Arc<Counter>,
    rows_moved_total: Arc<Counter>,
    relational_seconds: Arc<Histogram>,
    document_seconds: Arc<Histogram>,
    file_seconds: Arc<Histogram>,
}

impl QueryMetrics {
    fn register(registry: &MetricsRegistry, clock: Arc<dyn Clock>) -> QueryMetrics {
        let source = |kind: &str| {
            registry.histogram_with(
                "lake_query_source_seconds",
                &[("kind", kind)],
                MICROS_TO_SECONDS,
            )
        };
        QueryMetrics {
            clock,
            execute_total: registry.counter("lake_query_execute_total"),
            subqueries_total: registry.counter("lake_query_subqueries_total"),
            rows_moved_total: registry.counter("lake_query_rows_moved_total"),
            relational_seconds: source("relational"),
            document_seconds: source("document"),
            file_seconds: source("file"),
        }
    }

    fn source_seconds(&self, kind: StoreKind) -> Option<&Histogram> {
        match kind {
            StoreKind::Relational => Some(&self.relational_seconds),
            StoreKind::Document => Some(&self.document_seconds),
            StoreKind::File => Some(&self.file_seconds),
            StoreKind::Graph => None,
        }
    }
}

/// One source backing a mediated table.
#[derive(Debug, Clone)]
pub struct SourceBinding {
    /// Which substrate holds it.
    pub store: StoreKind,
    /// Table name / collection name / object key.
    pub location: String,
    /// mediated column → source column or dotted document path.
    pub columns: BTreeMap<String, String>,
}

/// Execution metrics of one federated query (the E9 measurements).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Rows/documents shipped from sources to the mediator.
    pub rows_moved: usize,
    /// Subqueries issued.
    pub subqueries: usize,
}

/// The mediator.
pub struct FederatedEngine<'a> {
    store: &'a Polystore,
    mediated: BTreeMap<String, Vec<SourceBinding>>,
    obs: Option<QueryMetrics>,
}

impl<'a> FederatedEngine<'a> {
    /// A mediator over a polystore.
    pub fn new(store: &'a Polystore) -> FederatedEngine<'a> {
        FederatedEngine { store, mediated: BTreeMap::new(), obs: None }
    }

    /// Attach a metrics registry: `execute` then records
    /// `lake_query_execute_total`, `lake_query_subqueries_total`,
    /// `lake_query_rows_moved_total` counters and a per-backend
    /// `lake_query_source_seconds{kind=...}` fan-out latency histogram
    /// timed with `clock` (pass a `ManualClock` for deterministic tests).
    pub fn with_obs(
        mut self,
        registry: &MetricsRegistry,
        clock: Arc<dyn Clock>,
    ) -> FederatedEngine<'a> {
        self.obs = Some(QueryMetrics::register(registry, clock));
        self
    }

    /// Register a mediated table.
    pub fn register(&mut self, name: &str, sources: Vec<SourceBinding>) {
        self.mediated.insert(name.to_string(), sources);
    }

    /// Registered mediated tables.
    pub fn mediated_tables(&self) -> Vec<&str> {
        self.mediated.keys().map(String::as_str).collect()
    }

    /// Execute a query; returns the merged table and execution stats.
    pub fn execute(&self, query: &Query, pushdown: bool) -> Result<(Table, ExecStats)> {
        let sources = self
            .mediated
            .get(&query.table)
            .ok_or_else(|| LakeError::not_found(format!("mediated table {}", query.table)))?;
        let mut stats = ExecStats::default();
        let select: Vec<String> = if query.select.is_empty() {
            sources
                .first()
                .map(|s| s.columns.keys().cloned().collect())
                .unwrap_or_default()
        } else {
            query.select.clone()
        };

        let mut out_cols: Vec<Column> =
            select.iter().map(|n| Column::new(n.clone(), Vec::new())).collect();

        for src in sources {
            stats.subqueries += 1;
            let started = self.obs.as_ref().map(|o| o.clock.now_micros());
            let fetched = self.fetch(src, &select, &query.filters, pushdown, &mut stats);
            if let (Some(obs), Some(start)) = (self.obs.as_ref(), started) {
                if let Some(hist) = obs.source_seconds(src.store) {
                    hist.observe(obs.clock.now_micros().saturating_sub(start));
                }
            }
            for row in fetched? {
                for (c, v) in out_cols.iter_mut().zip(row) {
                    c.values.push(v);
                }
            }
        }
        if let Some(obs) = self.obs.as_ref() {
            obs.execute_total.inc();
            obs.subqueries_total.add(stats.subqueries as u64);
            obs.rows_moved_total.add(stats.rows_moved as u64);
        }
        let mut t = Table::from_columns(query.table.clone(), out_cols)?;
        if let Some(limit) = query.limit {
            let mut i = 0;
            t = t.filter(|_| {
                i += 1;
                i <= limit
            });
        }
        Ok((t, stats))
    }

    fn fetch(
        &self,
        src: &SourceBinding,
        select: &[String],
        filters: &[Predicate],
        pushdown: bool,
        stats: &mut ExecStats,
    ) -> Result<Vec<Vec<Value>>> {
        // Map mediated attribute → source attribute.
        let map_attr = |a: &str| -> Result<String> {
            src.columns
                .get(a)
                .cloned()
                .ok_or_else(|| LakeError::query(format!("source {} lacks attribute {a}", src.location)))
        };
        let mapped_filters: Vec<Predicate> = filters
            .iter()
            .map(|p| {
                Ok(Predicate {
                    attribute: map_attr(&p.attribute)?,
                    op: p.op,
                    value: p.value.clone(),
                })
            })
            .collect::<Result<_>>()?;
        let mapped_select: Vec<String> =
            select.iter().map(|s| map_attr(s)).collect::<Result<_>>()?;

        match src.store {
            StoreKind::Relational => {
                let refs: Vec<&str> = mapped_select.iter().map(String::as_str).collect();
                let t = if pushdown {
                    self.store.relational.scan(&src.location, &mapped_filters, Some(&refs))?
                } else {
                    self.store.relational.scan(&src.location, &[], None)?
                };
                let mut rows: Vec<Vec<Value>> = t.iter_rows().collect();
                stats.rows_moved += rows.len();
                if !pushdown {
                    // Mediator-side filtering + projection.
                    let full = t;
                    rows = full
                        .iter_rows()
                        .filter(|row| {
                            mapped_filters.iter().all(|p| {
                                full.column_index(&p.attribute)
                                    .map(|i| p.matches(&row[i]))
                                    .unwrap_or(false)
                            })
                        })
                        .map(|row| {
                            mapped_select
                                .iter()
                                .map(|c| full.column_index(c).map(|i| row[i].clone()).unwrap_or(Value::Null))
                                .collect()
                        })
                        .collect();
                }
                Ok(rows)
            }
            StoreKind::Document => {
                let docs: Vec<Json> = if pushdown {
                    self.store.documents.find(&src.location, &mapped_filters)?
                } else {
                    let all = self.store.documents.find(&src.location, &[])?;
                    all.into_iter()
                        .filter(|d| {
                            mapped_filters.iter().all(|p| {
                                d.path(&p.attribute)
                                    .map(|j| p.matches(&j.to_value()))
                                    .unwrap_or(false)
                            })
                        })
                        .collect()
                };
                stats.rows_moved += if pushdown {
                    docs.len()
                } else {
                    self.store.documents.count(&src.location)
                };
                Ok(docs
                    .into_iter()
                    .map(|d| {
                        mapped_select
                            .iter()
                            .map(|p| d.path(p).map(Json::to_value).unwrap_or(Value::Null))
                            .collect()
                    })
                    .collect())
            }
            StoreKind::File => {
                // Columnar files: data skipping via stats when pushing down.
                let bytes = self.store.files.get(&src.location)?;
                if pushdown {
                    let file_stats = lake_formats::columnar::read_stats(&bytes)?;
                    let skippable = mapped_filters.iter().any(|p| {
                        p.op == lake_store::predicate::CompareOp::Eq
                            && file_stats
                                .iter()
                                .find(|s| s.name == p.attribute)
                                .is_some_and(|s| s.can_skip_eq(&p.value))
                    });
                    if skippable {
                        return Ok(Vec::new()); // pruned without decoding
                    }
                }
                let t = lake_formats::columnar::decode(&bytes)?;
                if !pushdown {
                    // Without pushdown the whole file ships to the
                    // mediator; with it, a source-side service (Ontario's
                    // Spark connector for HDFS files) filters first, so
                    // only matching rows count as moved (added below).
                    stats.rows_moved += t.num_rows();
                }
                let filtered = t.filter(|row| {
                    mapped_filters.iter().all(|p| {
                        t.column_index(&p.attribute)
                            .map(|i| p.matches(row[i]))
                            .unwrap_or(false)
                    })
                });
                if pushdown {
                    stats.rows_moved += filtered.num_rows();
                }
                Ok(filtered
                    .iter_rows()
                    .map(|row| {
                        mapped_select
                            .iter()
                            .map(|c| {
                                filtered
                                    .column_index(c)
                                    .map(|i| row[i].clone())
                                    .unwrap_or(Value::Null)
                            })
                            .collect()
                    })
                    .collect())
            }
            StoreKind::Graph => Err(LakeError::query(
                "graph sources are queried via triple patterns (see sparql)",
            )),
        }
    }

    /// Execute a two-table join query: each side runs as its own
    /// (push-down-enabled) single-table plan with the filters it can bind;
    /// the mediator hash-joins the streams (Squerall: retrieved entities
    /// "are joined and transformed to form the final query results").
    pub fn execute_join(
        &self,
        query: &crate::ast::JoinQuery,
        pushdown: bool,
    ) -> Result<(Table, ExecStats)> {
        let binds = |table: &str, attr: &str| -> bool {
            self.mediated
                .get(table)
                .and_then(|srcs| srcs.first())
                .map(|s| s.columns.contains_key(attr))
                .unwrap_or(false)
        };
        // Route filters to the side that binds them; error on neither.
        let mut left_filters = Vec::new();
        let mut right_filters = Vec::new();
        for p in &query.filters {
            if binds(&query.left, &p.attribute) {
                left_filters.push(p.clone());
            } else if binds(&query.right, &p.attribute) {
                right_filters.push(p.clone());
            } else {
                return Err(LakeError::query(format!(
                    "attribute {} bound by neither {} nor {}",
                    p.attribute, query.left, query.right
                )));
            }
        }
        // Route selected attributes similarly (left wins ties).
        let mut left_select = vec![query.on.0.clone()];
        let mut right_select = vec![query.on.1.clone()];
        for s in &query.select {
            if binds(&query.left, s) {
                left_select.push(s.clone());
            } else if binds(&query.right, s) {
                right_select.push(s.clone());
            } else {
                return Err(LakeError::query(format!("unknown attribute {s}")));
            }
        }

        let (lt, lstats) = self.execute(
            &Query {
                select: left_select.clone(),
                table: query.left.clone(),
                filters: left_filters,
                limit: None,
            },
            pushdown,
        )?;
        let (rt, rstats) = self.execute(
            &Query {
                select: right_select.clone(),
                table: query.right.clone(),
                filters: right_filters,
                limit: None,
            },
            pushdown,
        )?;

        // Hash join on the ON attributes (both sit at column 0 by
        // construction above). Build on the smaller side — the classic
        // physical-design optimization of federated mediators (Ontario's
        // follow-up work on optimizing federated queries).
        let build_left = lt.num_rows() < rt.num_rows();
        let (build, probe) = if build_left { (&lt, &rt) } else { (&rt, &lt) };
        let mut hash: std::collections::HashMap<Value, Vec<usize>> =
            std::collections::HashMap::new();
        for i in 0..build.num_rows() {
            let key = build.columns()[0].values[i].clone();
            if !key.is_null() {
                hash.entry(key).or_default().push(i);
            }
        }
        let mut cols: Vec<Column> = query
            .select
            .iter()
            .map(|s| Column::new(s.clone(), Vec::new()))
            .collect();
        // When resolving a selected name, prefer the left table; the ON
        // column of each side sits at index 0 and must not shadow a
        // same-named payload column.
        let resolve = |t: &Table, name: &str, on_attr: &str, row: usize| -> Option<Value> {
            t.column_index(name)
                .filter(|&i| i != 0 || name == on_attr)
                .map(|i| t.columns()[i].values[row].clone())
        };
        let mut emitted = 0usize;
        'outer: for pi in 0..probe.num_rows() {
            let key = &probe.columns()[0].values[pi];
            let Some(matches) = hash.get(key) else { continue };
            for &bi in matches {
                let (li, ri) = if build_left { (bi, pi) } else { (pi, bi) };
                for (c, name) in cols.iter_mut().zip(&query.select) {
                    let v = resolve(&lt, name, &query.on.0, li)
                        .or_else(|| resolve(&rt, name, &query.on.1, ri))
                        .unwrap_or(Value::Null);
                    c.values.push(v);
                }
                emitted += 1;
                if query.limit.is_some_and(|l| emitted >= l) {
                    break 'outer;
                }
            }
        }
        let stats = ExecStats {
            rows_moved: lstats.rows_moved + rstats.rows_moved,
            subqueries: lstats.subqueries + rstats.subqueries,
        };
        Ok((Table::from_columns(format!("{}⋈{}", query.left, query.right), cols)?, stats))
    }

    /// SPARQL-like passthrough: match triple patterns on a named graph.
    pub fn sparql(
        &self,
        graph: &str,
        patterns: &[TriplePattern],
    ) -> Result<Vec<BTreeMap<String, Value>>> {
        self.store.graphs.match_patterns(graph, patterns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_query;
    use lake_core::Dataset;
    use lake_core::DatasetId;

    fn setup() -> Polystore {
        let ps = Polystore::new();
        // Relational source.
        let t = Table::from_rows(
            "orders_eu",
            &["cust", "city", "total"],
            vec![
                vec![Value::str("c1"), Value::str("delft"), Value::Float(10.0)],
                vec![Value::str("c2"), Value::str("paris"), Value::Float(80.0)],
                vec![Value::str("c3"), Value::str("delft"), Value::Float(30.0)],
            ],
        )
        .unwrap();
        ps.store(DatasetId(1), "orders_eu", Dataset::Table(t)).unwrap();
        // Document source.
        let docs = vec![
            lake_formats::json::parse(r#"{"buyer": "c7", "addr": {"city": "rome"}, "amount": 55}"#)
                .unwrap(),
            lake_formats::json::parse(r#"{"buyer": "c8", "addr": {"city": "delft"}, "amount": 5}"#)
                .unwrap(),
        ];
        ps.store(DatasetId(2), "orders_docs", Dataset::Documents(docs)).unwrap();
        // Columnar file source.
        let tf = Table::from_rows(
            "orders_archive",
            &["cust", "city", "total"],
            vec![vec![Value::str("c9"), Value::str("oslo"), Value::Float(70.0)]],
        )
        .unwrap();
        ps.store_in(DatasetId(3), "orders_archive", Dataset::Table(tf), StoreKind::File)
            .unwrap();
        ps
    }

    fn engine(ps: &Polystore) -> FederatedEngine<'_> {
        let mut fe = FederatedEngine::new(ps);
        let rel = SourceBinding {
            store: StoreKind::Relational,
            location: "orders_eu".into(),
            columns: [
                ("customer".to_string(), "cust".to_string()),
                ("city".to_string(), "city".to_string()),
                ("total".to_string(), "total".to_string()),
            ]
            .into(),
        };
        let doc = SourceBinding {
            store: StoreKind::Document,
            location: "orders_docs".into(),
            columns: [
                ("customer".to_string(), "buyer".to_string()),
                ("city".to_string(), "addr.city".to_string()),
                ("total".to_string(), "amount".to_string()),
            ]
            .into(),
        };
        let file = SourceBinding {
            store: StoreKind::File,
            location: "tables/orders_archive.pql".into(),
            columns: [
                ("customer".to_string(), "cust".to_string()),
                ("city".to_string(), "city".to_string()),
                ("total".to_string(), "total".to_string()),
            ]
            .into(),
        };
        fe.register("orders", vec![rel, doc, file]);
        fe
    }

    #[test]
    fn query_unions_heterogeneous_sources() {
        let ps = setup();
        let fe = engine(&ps);
        let q = parse_query("select customer, city from orders").unwrap();
        let (t, stats) = fe.execute(&q, true).unwrap();
        assert_eq!(t.num_rows(), 6);
        assert_eq!(stats.subqueries, 3);
        let cities = t.column("city").unwrap();
        assert!(cities.values.contains(&Value::str("rome")));
        assert!(cities.values.contains(&Value::str("oslo")));
    }

    #[test]
    fn predicates_filter_across_stores() {
        let ps = setup();
        let fe = engine(&ps);
        let q = parse_query("select customer from orders where city = 'delft'").unwrap();
        let (t, _) = fe.execute(&q, true).unwrap();
        let custs: Vec<String> = t.column("customer").unwrap().values.iter().map(Value::render).collect();
        assert_eq!(custs, vec!["c1", "c3", "c8"]);
    }

    #[test]
    fn pushdown_moves_fewer_rows_same_answer() {
        let ps = setup();
        let fe = engine(&ps);
        let q = parse_query("select customer from orders where total > 50").unwrap();
        let (with, s_with) = fe.execute(&q, true).unwrap();
        ps.relational.reset_counters();
        let (without, s_without) = fe.execute(&q, false).unwrap();
        let mut a: Vec<String> = with.column("customer").unwrap().values.iter().map(Value::render).collect();
        let mut b: Vec<String> = without.column("customer").unwrap().values.iter().map(Value::render).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert!(
            s_with.rows_moved < s_without.rows_moved,
            "pushdown should move fewer rows: {} vs {}",
            s_with.rows_moved,
            s_without.rows_moved
        );
    }

    #[test]
    fn data_skipping_prunes_columnar_files() {
        let ps = setup();
        let fe = engine(&ps);
        // cust = 'zz' is outside the archive file's min/max → skipped.
        let q = parse_query("select customer from orders where customer = 'zzz'").unwrap();
        let (t, _) = fe.execute(&q, true).unwrap();
        assert_eq!(t.num_rows(), 0);
    }

    #[test]
    fn limit_and_unknown_table() {
        let ps = setup();
        let fe = engine(&ps);
        let q = parse_query("select customer from orders limit 2").unwrap();
        let (t, _) = fe.execute(&q, true).unwrap();
        assert_eq!(t.num_rows(), 2);
        let bad = parse_query("select x from ghost").unwrap();
        assert!(fe.execute(&bad, true).is_err());
    }

    #[test]
    fn join_across_mediated_tables() {
        let ps = setup();
        // Second mediated table over the document store keyed by buyer.
        let mut fe = engine(&ps);
        let profiles = vec![
            lake_formats::json::parse(r#"{"who": "c1", "tier": "gold"}"#).unwrap(),
            lake_formats::json::parse(r#"{"who": "c3", "tier": "silver"}"#).unwrap(),
        ];
        ps.documents.insert_many("profiles", profiles);
        fe.register(
            "tiers",
            vec![SourceBinding {
                store: StoreKind::Document,
                location: "profiles".into(),
                columns: [
                    ("who".to_string(), "who".to_string()),
                    ("tier".to_string(), "tier".to_string()),
                ]
                .into(),
            }],
        );
        let q = crate::ast::parse_join_query(
            "select tier, city from orders join tiers on customer = who where city = 'delft'",
        )
        .unwrap();
        let (t, stats) = fe.execute_join(&q, true).unwrap();
        // delft customers: c1 (relational), c3 (relational), c8 (docs);
        // tiers exist for c1 and c3.
        assert_eq!(t.num_rows(), 2);
        let tiers: Vec<String> = t.column("tier").unwrap().values.iter().map(Value::render).collect();
        assert!(tiers.contains(&"gold".to_string()));
        assert!(tiers.contains(&"silver".to_string()));
        assert!(stats.subqueries >= 4);

        // Limit applies to joined output.
        let q2 = crate::ast::parse_join_query(
            "select tier from orders join tiers on customer = who limit 1",
        )
        .unwrap();
        let (t2, _) = fe.execute_join(&q2, true).unwrap();
        assert_eq!(t2.num_rows(), 1);

        // Unroutable attribute errors.
        let q3 = crate::ast::parse_join_query(
            "select nope from orders join tiers on customer = who",
        )
        .unwrap();
        assert!(fe.execute_join(&q3, true).is_err());
    }

    #[test]
    fn join_agrees_with_and_without_pushdown() {
        let ps = setup();
        let mut fe = engine(&ps);
        ps.documents.insert_many(
            "profiles",
            vec![lake_formats::json::parse(r#"{"who": "c2", "tier": "basic"}"#).unwrap()],
        );
        fe.register(
            "tiers",
            vec![SourceBinding {
                store: StoreKind::Document,
                location: "profiles".into(),
                columns: [
                    ("who".to_string(), "who".to_string()),
                    ("tier".to_string(), "tier".to_string()),
                ]
                .into(),
            }],
        );
        let q = crate::ast::parse_join_query(
            "select customer, tier from orders join tiers on customer = who where total > 50",
        )
        .unwrap();
        let (a, sa) = fe.execute_join(&q, true).unwrap();
        let (b, sb) = fe.execute_join(&q, false).unwrap();
        assert_eq!(a, b);
        assert!(sa.rows_moved <= sb.rows_moved);
    }

    #[test]
    fn sparql_passthrough() {
        let ps = setup();
        let mut g = lake_core::PropertyGraph::new();
        let a = g.add_node_with("Person", vec![("name", Value::str("ada"))]);
        let b = g.add_node_with("City", vec![("name", Value::str("delft"))]);
        g.add_edge(a, b, "lives_in");
        ps.graphs.put_graph("people", g);
        let fe = engine(&ps);
        let pats = [TriplePattern {
            s: lake_store::graphstore::Term::Var("p".into()),
            p: lake_store::graphstore::Term::Const(Value::str("lives_in")),
            o: lake_store::graphstore::Term::Var("c".into()),
        }];
        let res = fe.sparql("people", &pats).unwrap();
        assert_eq!(res.len(), 1);
        assert_eq!(res[0]["c"], Value::str("delft"));
    }

    #[test]
    fn obs_times_each_backend_and_counts_fanout() {
        use lake_core::retry::ManualClock;

        let ps = setup();
        let registry = MetricsRegistry::new();
        let clock = Arc::new(ManualClock::new());
        let fe = engine(&ps).with_obs(&registry, clock);
        let q = parse_query("select customer, city, total from orders").unwrap();
        let (t, stats) = fe.execute(&q, true).unwrap();
        assert_eq!(t.num_rows(), 6);

        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("lake_query_execute_total"), 1);
        assert_eq!(
            snap.counter_value("lake_query_subqueries_total"),
            stats.subqueries as u64
        );
        assert_eq!(
            snap.counter_value("lake_query_rows_moved_total"),
            stats.rows_moved as u64
        );
        // One timed fetch per backend kind.
        for kind in ["relational", "document", "file"] {
            let hist = snap
                .histograms
                .iter()
                .find(|(id, _)| {
                    id.name == "lake_query_source_seconds"
                        && id.labels.iter().any(|(k, v)| k == "kind" && v == kind)
                })
                .map(|(_, h)| h)
                .unwrap_or_else(|| panic!("missing source_seconds for {kind}"));
            assert_eq!(hist.count, 1, "kind={kind}");
        }

        // A second query keeps accumulating in the same registry.
        let (_, stats2) = fe.execute(&q, false).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("lake_query_execute_total"), 2);
        assert_eq!(
            snap.counter_value("lake_query_rows_moved_total"),
            (stats.rows_moved + stats2.rows_moved) as u64
        );
    }
}
