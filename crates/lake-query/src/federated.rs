//! Federated query processing over the polystore (§7.2).
//!
//! Ontario "profiles each dataset with its metadata … Given an input
//! SPARQL query, Ontario first decomposes the query. Then it uses the
//! profiles to generate subqueries for each dataset"; Squerall maps source
//! schemata to a mediator and joins/transforms retrieved entities;
//! Constance pushes selection predicates down to the sources. The
//! [`FederatedEngine`] does all three over the `lake-store` substrates:
//!
//! * a *mediated table* unions one or more sources (relational tables,
//!   document collections with path→column mappings, or columnar files in
//!   the object store);
//! * queries ([`crate::ast::Query`]) are decomposed into per-source plans;
//! * predicates are evaluated inside each source when `pushdown` is on
//!   (the measurable E9 toggle), or at the mediator otherwise;
//! * SPARQL-like triple patterns pass through to the graph store.
//!
//! With a [`DegradationConfig`] attached ([`FederatedEngine::with_degradation`])
//! the engine degrades gracefully instead of failing fast: each source
//! fetch walks the **budget → retry → breaker → skip** ladder (see
//! [`crate::degrade`]) and a skipped source is recorded in the
//! [`Completeness`] report on [`ExecStats`] rather than aborting the
//! query. `strict` mode keeps the protection machinery but surfaces every
//! skip as an error — the pre-degradation semantics.

use crate::ast::Query;
use crate::degrade::{
    Admission, BreakerState, CircuitBreaker, Completeness, DegradationConfig, SkipReason,
    SkippedSource,
};
use crate::fault::FaultSource;
use lake_core::retry::{retry_with_stats, Clock, RetryStats, SystemClock};
use lake_core::{Column, Json, LakeError, Result, Table, Value};
use lake_obs::{Counter, Histogram, MetricsRegistry, MICROS_TO_SECONDS};
use lake_store::graphstore::TriplePattern;
use lake_store::predicate::Predicate;
use lake_store::{Polystore, StoreKind};
use std::collections::BTreeMap;
use lake_core::sync::{rank, OrderedMutex};
use std::sync::Arc;

/// Pre-registered `lake_query_*` handles plus the registry itself (for
/// per-source breaker gauges and labelled skip counters created as
/// backends are first consulted); attached with
/// [`FederatedEngine::with_obs`].
struct QueryMetrics<'a> {
    registry: &'a MetricsRegistry,
    execute_total: Arc<Counter>,
    subqueries_total: Arc<Counter>,
    rows_moved_total: Arc<Counter>,
    partial_total: Arc<Counter>,
    relational_seconds: Arc<Histogram>,
    document_seconds: Arc<Histogram>,
    file_seconds: Arc<Histogram>,
}

impl<'a> QueryMetrics<'a> {
    fn register(registry: &'a MetricsRegistry) -> QueryMetrics<'a> {
        let source = |kind: &str| {
            registry.histogram_with(
                "lake_query_source_seconds",
                &[("kind", kind)],
                MICROS_TO_SECONDS,
            )
        };
        QueryMetrics {
            registry,
            execute_total: registry.counter("lake_query_execute_total"),
            subqueries_total: registry.counter("lake_query_subqueries_total"),
            rows_moved_total: registry.counter("lake_query_rows_moved_total"),
            partial_total: registry.counter("lake_query_partial_total"),
            relational_seconds: source("relational"),
            document_seconds: source("document"),
            file_seconds: source("file"),
        }
    }

    fn source_seconds(&self, kind: StoreKind) -> Option<&Histogram> {
        match kind {
            StoreKind::Relational => Some(&self.relational_seconds),
            StoreKind::Document => Some(&self.document_seconds),
            StoreKind::File => Some(&self.file_seconds),
            StoreKind::Graph => None,
        }
    }

    fn skipped(&self, reason: SkipReason) {
        self.registry
            .counter_with("lake_query_source_skipped_total", &[("reason", reason.name())])
            .inc();
    }

    fn breaker_state(&self, key: &str, state: BreakerState) {
        self.registry
            .gauge_with("lake_query_breaker_state", &[("source", key)])
            .set(state.gauge_value());
    }
}

/// One source backing a mediated table.
#[derive(Debug, Clone)]
pub struct SourceBinding {
    /// Which substrate holds it.
    pub store: StoreKind,
    /// Table name / collection name / object key.
    pub location: String,
    /// mediated column → source column or dotted document path.
    pub columns: BTreeMap<String, String>,
}

/// Execution metrics of one federated query (the E9 measurements), plus
/// the completeness report distinguishing exact from degraded answers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Rows/documents shipped from sources to the mediator.
    pub rows_moved: usize,
    /// Subqueries issued (breaker-denied sources issue none).
    pub subqueries: usize,
    /// Which sources answered, which were skipped and why.
    pub completeness: Completeness,
}

/// The mediator.
pub struct FederatedEngine<'a> {
    store: &'a Polystore,
    mediated: BTreeMap<String, Vec<SourceBinding>>,
    obs: Option<QueryMetrics<'a>>,
    clock: Arc<dyn Clock>,
    degradation: Option<DegradationConfig>,
    breakers: CircuitBreaker,
    faults: Option<FaultSource>,
    retry_stats: OrderedMutex<RetryStats>,
}

impl<'a> FederatedEngine<'a> {
    /// A mediator over a polystore.
    pub fn new(store: &'a Polystore) -> FederatedEngine<'a> {
        FederatedEngine {
            store,
            mediated: BTreeMap::new(),
            obs: None,
            clock: Arc::new(SystemClock),
            degradation: None,
            breakers: CircuitBreaker::new(),
            faults: None,
            retry_stats: OrderedMutex::new(
                RetryStats::default(),
                rank::QUERY_RETRY_STATS,
                "query.federated.retry_stats",
            ),
        }
    }

    /// Attach a metrics registry: `execute` then records
    /// `lake_query_execute_total`, `lake_query_subqueries_total`,
    /// `lake_query_rows_moved_total`, `lake_query_partial_total` counters,
    /// a per-backend `lake_query_source_seconds{kind=...}` fan-out latency
    /// histogram timed with `clock` (pass a `ManualClock` for
    /// deterministic tests), and — under degradation — per-reason
    /// `lake_query_source_skipped_total` counters plus per-source
    /// `lake_query_breaker_state` gauges (0 closed / 1 open / 2 half-open).
    pub fn with_obs(
        mut self,
        registry: &'a MetricsRegistry,
        clock: Arc<dyn Clock>,
    ) -> FederatedEngine<'a> {
        self.obs = Some(QueryMetrics::register(registry));
        self.clock = clock;
        self
    }

    /// Replace the engine clock (deadlines, fan-out timing, breaker
    /// cooldowns). [`FederatedEngine::with_obs`] also sets it.
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> FederatedEngine<'a> {
        self.clock = clock;
        self
    }

    /// Enable the degradation ladder: deadlines from the budget, retries
    /// for transient source errors, per-backend circuit breakers, and —
    /// unless `config.strict` — skip-and-report semantics for failing
    /// sources.
    pub fn with_degradation(mut self, config: DegradationConfig) -> FederatedEngine<'a> {
        self.degradation = Some(config);
        self
    }

    /// Attach a seeded fault injector intercepting every source fetch
    /// (tests / chaos suites; see [`crate::fault::FaultSource`]).
    pub fn with_faults(mut self, faults: FaultSource) -> FederatedEngine<'a> {
        self.faults = Some(faults);
        self
    }

    /// Register a mediated table.
    pub fn register(&mut self, name: &str, sources: Vec<SourceBinding>) {
        self.mediated.insert(name.to_string(), sources);
    }

    /// Registered mediated tables.
    pub fn mediated_tables(&self) -> Vec<&str> {
        self.mediated.keys().map(String::as_str).collect()
    }

    /// Per-backend breaker snapshot: (source, state, consecutive failures).
    /// Empty until sources have been consulted under degradation.
    pub fn breaker_status(&self) -> Vec<(String, BreakerState, u32)> {
        self.breakers.status()
    }

    /// Retry counters accumulated across this engine's source fetches.
    pub fn retry_stats(&self) -> RetryStats {
        *self.retry_stats.lock()
    }

    /// The attached fault injector's counters, if any.
    pub fn fault_stats(&self) -> Option<crate::fault::FaultSourceStats> {
        self.faults.as_ref().map(|f| f.stats())
    }

    fn merge_retry(&self, stats: &RetryStats) {
        self.retry_stats.lock().merge(stats);
    }

    fn export_breaker(&self, key: &str, state: BreakerState) {
        if let Some(obs) = &self.obs {
            obs.breaker_state(key, state);
        }
    }

    /// Execute a query; returns the merged table and execution stats.
    /// Under degradation, failing sources are skipped and recorded in
    /// `stats.completeness` instead of aborting (unless `strict`).
    pub fn execute(&self, query: &Query, pushdown: bool) -> Result<(Table, ExecStats)> {
        let sources = self
            .mediated
            .get(&query.table)
            .ok_or_else(|| LakeError::not_found(format!("mediated table {}", query.table)))?;
        let mut stats = ExecStats::default();
        let select: Vec<String> = if query.select.is_empty() {
            sources
                .first()
                .map(|s| s.columns.keys().cloned().collect())
                .unwrap_or_default()
        } else {
            query.select.clone()
        };

        let mut out_cols: Vec<Column> =
            select.iter().map(|n| Column::new(n.clone(), Vec::new())).collect();

        let q_start = self.clock.now_micros();
        for src in sources {
            if let Some(rows) =
                self.consult(src, &select, &query.filters, pushdown, q_start, &mut stats)?
            {
                stats.completeness.sources_ok += 1;
                for row in rows {
                    for (c, v) in out_cols.iter_mut().zip(row) {
                        c.values.push(v);
                    }
                }
            }
        }
        stats.completeness.is_partial = !stats.completeness.skipped.is_empty();
        if let Some(obs) = self.obs.as_ref() {
            obs.execute_total.inc();
            obs.subqueries_total.add(stats.subqueries as u64);
            obs.rows_moved_total.add(stats.rows_moved as u64);
            if stats.completeness.is_partial {
                obs.partial_total.inc();
            }
        }
        let mut t = Table::from_columns(query.table.clone(), out_cols)?;
        if let Some(limit) = query.limit {
            let mut i = 0;
            t = t.filter(|_| {
                i += 1;
                i <= limit
            });
        }
        Ok((t, stats))
    }

    /// Consult one source through the degradation ladder. `Ok(Some(rows))`
    /// merges; `Ok(None)` means the source was skipped and recorded in
    /// `stats.completeness`; `Err` aborts the query (no degradation
    /// configured, or strict mode).
    fn consult(
        &self,
        src: &SourceBinding,
        select: &[String],
        filters: &[Predicate],
        pushdown: bool,
        q_start_us: u64,
        stats: &mut ExecStats,
    ) -> Result<Option<Vec<Vec<Value>>>> {
        let Some(cfg) = self.degradation.as_ref() else {
            // No degradation: fail-fast, but faults still intercept so
            // the decorator works standalone.
            stats.subqueries += 1;
            let started = self.clock.now_micros();
            let fetched = self.intercepted_fetch(src, select, filters, pushdown);
            self.observe_source(src.store, started);
            let (rows, moved) = fetched?;
            stats.rows_moved += moved;
            return Ok(Some(rows));
        };

        // 1. Total budget: sources not reached before the deadline are
        //    skipped without touching the backend (or its breaker).
        let now = self.clock.now_micros();
        if let Some(total) = cfg.budget.total_ms {
            if now.saturating_sub(q_start_us) > total.saturating_mul(1_000) {
                return self.skip(
                    src,
                    SkipReason::Deadline,
                    cfg,
                    stats,
                    LakeError::transient(format!(
                        "query deadline ({total}ms) expired before consulting {}",
                        src.location
                    )),
                );
            }
        }

        // 2. Breaker admission: an open breaker rejects without a fetch.
        match self.breakers.admit(&src.location, &cfg.breaker, now) {
            Admission::Deny => {
                return self.skip(
                    src,
                    SkipReason::BreakerOpen,
                    cfg,
                    stats,
                    LakeError::transient(format!("circuit open for {}", src.location)),
                );
            }
            Admission::Allow | Admission::Probe => {}
        }

        // 3. The fetch itself, under the retry policy (transients only);
        //    backoff sleeps advance the clock, so they consume budget.
        stats.subqueries += 1;
        let started = self.clock.now_micros();
        let mut rstats = RetryStats::default();
        let fetched = retry_with_stats(&cfg.retry, self.clock.as_ref(), &mut rstats, || {
            self.intercepted_fetch(src, select, filters, pushdown)
        });
        self.merge_retry(&rstats);
        let elapsed_us = self.clock.now_micros().saturating_sub(started);
        self.observe_source(src.store, started);

        // 4. Outcome → breaker + completeness.
        match fetched {
            Err(e) => {
                let state =
                    self.breakers.record(&src.location, &cfg.breaker, self.clock.now_micros(), false);
                self.export_breaker(&src.location, state);
                self.skip(src, SkipReason::Failed, cfg, stats, e)
            }
            Ok((rows, moved)) => {
                stats.rows_moved += moved;
                let late = cfg
                    .budget
                    .per_source_ms
                    .is_some_and(|ms| elapsed_us > ms.saturating_mul(1_000));
                if late {
                    // The rows shipped but arrived past the per-source
                    // deadline: discard them and count the source slow.
                    let state = self.breakers.record(
                        &src.location,
                        &cfg.breaker,
                        self.clock.now_micros(),
                        false,
                    );
                    self.export_breaker(&src.location, state);
                    self.skip(
                        src,
                        SkipReason::Timeout,
                        cfg,
                        stats,
                        LakeError::transient(format!(
                            "source {} exceeded its {}ms deadline",
                            src.location,
                            cfg.budget.per_source_ms.unwrap_or(0)
                        )),
                    )
                } else {
                    let state = self.breakers.record(
                        &src.location,
                        &cfg.breaker,
                        self.clock.now_micros(),
                        true,
                    );
                    self.export_breaker(&src.location, state);
                    Ok(Some(rows))
                }
            }
        }
    }

    /// Record a skip (degraded) or surface it as the error (strict).
    fn skip(
        &self,
        src: &SourceBinding,
        reason: SkipReason,
        cfg: &DegradationConfig,
        stats: &mut ExecStats,
        err: LakeError,
    ) -> Result<Option<Vec<Vec<Value>>>> {
        if cfg.strict {
            return Err(err);
        }
        if let Some(obs) = &self.obs {
            obs.skipped(reason);
        }
        stats.completeness.skipped.push(SkippedSource {
            location: src.location.clone(),
            kind: src.store,
            reason,
        });
        Ok(None)
    }

    fn observe_source(&self, kind: StoreKind, started_us: u64) {
        if let Some(obs) = self.obs.as_ref() {
            if let Some(hist) = obs.source_seconds(kind) {
                hist.observe(self.clock.now_micros().saturating_sub(started_us));
            }
        }
    }

    /// One fetch attempt with the fault injector (if any) in front.
    fn intercepted_fetch(
        &self,
        src: &SourceBinding,
        select: &[String],
        filters: &[Predicate],
        pushdown: bool,
    ) -> Result<(Vec<Vec<Value>>, usize)> {
        if let Some(f) = &self.faults {
            f.intercept(&src.location, self.clock.as_ref())?;
        }
        self.fetch(src, select, filters, pushdown)
    }

    /// Fetch rows from one source; returns `(rows, rows_moved)` where the
    /// second component is the E9 data-movement count for this subquery.
    fn fetch(
        &self,
        src: &SourceBinding,
        select: &[String],
        filters: &[Predicate],
        pushdown: bool,
    ) -> Result<(Vec<Vec<Value>>, usize)> {
        // Map mediated attribute → source attribute.
        let map_attr = |a: &str| -> Result<String> {
            src.columns
                .get(a)
                .cloned()
                .ok_or_else(|| LakeError::query(format!("source {} lacks attribute {a}", src.location)))
        };
        let mapped_filters: Vec<Predicate> = filters
            .iter()
            .map(|p| {
                Ok(Predicate {
                    attribute: map_attr(&p.attribute)?,
                    op: p.op,
                    value: p.value.clone(),
                })
            })
            .collect::<Result<_>>()?;
        let mapped_select: Vec<String> =
            select.iter().map(|s| map_attr(s)).collect::<Result<_>>()?;

        match src.store {
            StoreKind::Relational => {
                let refs: Vec<&str> = mapped_select.iter().map(String::as_str).collect();
                let t = if pushdown {
                    self.store.relational.scan(&src.location, &mapped_filters, Some(&refs))?
                } else {
                    self.store.relational.scan(&src.location, &[], None)?
                };
                let moved = t.num_rows();
                let rows: Vec<Vec<Value>> = if pushdown {
                    t.iter_rows().collect()
                } else {
                    // Mediator-side filtering + projection. Column
                    // positions are fixed for the whole table, so resolve
                    // each name once instead of per row.
                    let full = t;
                    let filter_idx: Vec<Option<usize>> = mapped_filters
                        .iter()
                        .map(|p| full.column_index(&p.attribute))
                        .collect();
                    let select_idx: Vec<Option<usize>> =
                        mapped_select.iter().map(|c| full.column_index(c)).collect();
                    full.iter_rows()
                        .filter(|row| {
                            mapped_filters.iter().zip(&filter_idx).all(|(p, i)| {
                                i.map(|i| p.matches(&row[i])).unwrap_or(false)
                            })
                        })
                        .map(|row| {
                            select_idx
                                .iter()
                                .map(|i| i.map(|i| row[i].clone()).unwrap_or(Value::Null))
                                .collect()
                        })
                        .collect()
                };
                Ok((rows, moved))
            }
            StoreKind::Document => {
                let docs: Vec<Json> = if pushdown {
                    self.store.documents.find(&src.location, &mapped_filters)?
                } else {
                    let all = self.store.documents.find(&src.location, &[])?;
                    all.into_iter()
                        .filter(|d| {
                            mapped_filters.iter().all(|p| {
                                d.path(&p.attribute)
                                    .map(|j| p.matches(&j.to_value()))
                                    .unwrap_or(false)
                            })
                        })
                        .collect()
                };
                let moved = if pushdown {
                    docs.len()
                } else {
                    self.store.documents.count(&src.location)
                };
                Ok((
                    docs.into_iter()
                        .map(|d| {
                            mapped_select
                                .iter()
                                .map(|p| d.path(p).map(Json::to_value).unwrap_or(Value::Null))
                                .collect()
                        })
                        .collect(),
                    moved,
                ))
            }
            StoreKind::File => {
                // Columnar files: data skipping via stats when pushing down.
                let bytes = self.store.files.get(&src.location)?;
                if pushdown {
                    let file_stats = lake_formats::columnar::read_stats(&bytes)?;
                    let skippable = mapped_filters.iter().any(|p| {
                        p.op == lake_store::predicate::CompareOp::Eq
                            && file_stats
                                .iter()
                                .find(|s| s.name == p.attribute)
                                .is_some_and(|s| s.can_skip_eq(&p.value))
                    });
                    if skippable {
                        return Ok((Vec::new(), 0)); // pruned without decoding
                    }
                }
                let t = lake_formats::columnar::decode(&bytes)?;
                let mut moved = 0usize;
                if !pushdown {
                    // Without pushdown the whole file ships to the
                    // mediator; with it, a source-side service (Ontario's
                    // Spark connector for HDFS files) filters first, so
                    // only matching rows count as moved (added below).
                    moved += t.num_rows();
                }
                // Resolve filter/projection positions once, not per row.
                let filter_idx: Vec<Option<usize>> = mapped_filters
                    .iter()
                    .map(|p| t.column_index(&p.attribute))
                    .collect();
                let filtered = t.filter(|row| {
                    mapped_filters.iter().zip(&filter_idx).all(|(p, i)| {
                        i.map(|i| p.matches(row[i])).unwrap_or(false)
                    })
                });
                if pushdown {
                    moved += filtered.num_rows();
                }
                let select_idx: Vec<Option<usize>> =
                    mapped_select.iter().map(|c| filtered.column_index(c)).collect();
                Ok((
                    filtered
                        .iter_rows()
                        .map(|row| {
                            select_idx
                                .iter()
                                .map(|i| i.map(|i| row[i].clone()).unwrap_or(Value::Null))
                                .collect()
                        })
                        .collect(),
                    moved,
                ))
            }
            StoreKind::Graph => Err(LakeError::query(
                "graph sources are queried via triple patterns (see sparql)",
            )),
        }
    }

    /// Execute a two-table join query: each side runs as its own
    /// (push-down-enabled) single-table plan with the filters it can bind;
    /// the mediator hash-joins the streams (Squerall: retrieved entities
    /// "are joined and transformed to form the final query results").
    ///
    /// Under degradation each side may itself be partial; the joined
    /// result's completeness merges both sides, so a join over a degraded
    /// input is *flagged* partial rather than silently missing rows.
    pub fn execute_join(
        &self,
        query: &crate::ast::JoinQuery,
        pushdown: bool,
    ) -> Result<(Table, ExecStats)> {
        let binds = |table: &str, attr: &str| -> bool {
            self.mediated
                .get(table)
                .and_then(|srcs| srcs.first())
                .map(|s| s.columns.contains_key(attr))
                .unwrap_or(false)
        };
        // Route filters to the side that binds them; error on neither.
        let mut left_filters = Vec::new();
        let mut right_filters = Vec::new();
        for p in &query.filters {
            if binds(&query.left, &p.attribute) {
                left_filters.push(p.clone());
            } else if binds(&query.right, &p.attribute) {
                right_filters.push(p.clone());
            } else {
                return Err(LakeError::query(format!(
                    "attribute {} bound by neither {} nor {}",
                    p.attribute, query.left, query.right
                )));
            }
        }
        // Route selected attributes similarly (left wins ties).
        let mut left_select = vec![query.on.0.clone()];
        let mut right_select = vec![query.on.1.clone()];
        for s in &query.select {
            if binds(&query.left, s) {
                left_select.push(s.clone());
            } else if binds(&query.right, s) {
                right_select.push(s.clone());
            } else {
                return Err(LakeError::query(format!("unknown attribute {s}")));
            }
        }

        let (lt, lstats) = self.execute(
            &Query {
                select: left_select,
                table: query.left.clone(),
                filters: left_filters,
                limit: None,
            },
            pushdown,
        )?;
        let (rt, rstats) = self.execute(
            &Query {
                select: right_select,
                table: query.right.clone(),
                filters: right_filters,
                limit: None,
            },
            pushdown,
        )?;

        // Hash join on the ON attributes (both sit at column 0 by
        // construction above). Build on the smaller side — the classic
        // physical-design optimization of federated mediators (Ontario's
        // follow-up work on optimizing federated queries).
        let build_left = lt.num_rows() < rt.num_rows();
        let (build, probe) = if build_left { (&lt, &rt) } else { (&rt, &lt) };
        // Keys borrow from the build side — the table outlives the hash
        // map, so there is no need to clone every join value.
        let mut hash: std::collections::HashMap<&Value, Vec<usize>> =
            std::collections::HashMap::new();
        for (i, key) in build.columns()[0].values.iter().enumerate() {
            if !key.is_null() {
                hash.entry(key).or_default().push(i);
            }
        }
        let mut cols: Vec<Column> = query
            .select
            .iter()
            .map(|s| Column::new(s.clone(), Vec::new()))
            .collect();
        // When resolving a selected name, prefer the left table; the ON
        // column of each side sits at index 0 and must not shadow a
        // same-named payload column.
        let resolve = |t: &Table, name: &str, on_attr: &str, row: usize| -> Option<Value> {
            t.column_index(name)
                .filter(|&i| i != 0 || name == on_attr)
                .map(|i| t.columns()[i].values[row].clone())
        };
        let mut emitted = 0usize;
        'outer: for pi in 0..probe.num_rows() {
            let key = &probe.columns()[0].values[pi];
            let Some(matches) = hash.get(key) else { continue };
            for &bi in matches {
                let (li, ri) = if build_left { (bi, pi) } else { (pi, bi) };
                for (c, name) in cols.iter_mut().zip(&query.select) {
                    let v = resolve(&lt, name, &query.on.0, li)
                        .or_else(|| resolve(&rt, name, &query.on.1, ri))
                        .unwrap_or(Value::Null);
                    c.values.push(v);
                }
                emitted += 1;
                if query.limit.is_some_and(|l| emitted >= l) {
                    break 'outer;
                }
            }
        }
        let mut completeness = lstats.completeness.clone();
        completeness.merge(&rstats.completeness);
        let stats = ExecStats {
            rows_moved: lstats.rows_moved + rstats.rows_moved,
            subqueries: lstats.subqueries + rstats.subqueries,
            completeness,
        };
        Ok((Table::from_columns(format!("{}⋈{}", query.left, query.right), cols)?, stats))
    }

    /// SPARQL-like passthrough: match triple patterns on a named graph.
    ///
    /// Under degradation the graph backend is protected like any other
    /// source — breaker key `graph:<name>`, transient retries under the
    /// policy — but as the query's *only* source there is nothing to
    /// degrade to: a skip surfaces as the error in both modes (and an
    /// open breaker fails fast without touching the store).
    pub fn sparql(
        &self,
        graph: &str,
        patterns: &[TriplePattern],
    ) -> Result<Vec<BTreeMap<String, Value>>> {
        let key = format!("graph:{graph}");
        let Some(cfg) = self.degradation.as_ref() else {
            if let Some(f) = &self.faults {
                f.intercept(&key, self.clock.as_ref())?;
            }
            return self.store.graphs.match_patterns(graph, patterns);
        };
        let now = self.clock.now_micros();
        match self.breakers.admit(&key, &cfg.breaker, now) {
            Admission::Deny => {
                if let Some(obs) = &self.obs {
                    obs.skipped(SkipReason::BreakerOpen);
                }
                return Err(LakeError::transient(format!("circuit open for {key}")));
            }
            Admission::Allow | Admission::Probe => {}
        }
        let mut rstats = RetryStats::default();
        let res = retry_with_stats(&cfg.retry, self.clock.as_ref(), &mut rstats, || {
            if let Some(f) = &self.faults {
                f.intercept(&key, self.clock.as_ref())?;
            }
            self.store.graphs.match_patterns(graph, patterns)
        });
        self.merge_retry(&rstats);
        let state = self.breakers.record(&key, &cfg.breaker, self.clock.now_micros(), res.is_ok());
        self.export_breaker(&key, state);
        if res.is_err() {
            if let Some(obs) = &self.obs {
                obs.skipped(SkipReason::Failed);
            }
        }
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_query;
    use crate::degrade::{BreakerConfig, QueryBudget};
    use lake_core::retry::{ManualClock, RetryPolicy};
    use lake_core::Dataset;
    use lake_core::DatasetId;

    fn setup() -> Polystore {
        let ps = Polystore::new();
        // Relational source.
        let t = Table::from_rows(
            "orders_eu",
            &["cust", "city", "total"],
            vec![
                vec![Value::str("c1"), Value::str("delft"), Value::Float(10.0)],
                vec![Value::str("c2"), Value::str("paris"), Value::Float(80.0)],
                vec![Value::str("c3"), Value::str("delft"), Value::Float(30.0)],
            ],
        )
        .unwrap();
        ps.store(DatasetId(1), "orders_eu", Dataset::Table(t)).unwrap();
        // Document source.
        let docs = vec![
            lake_formats::json::parse(r#"{"buyer": "c7", "addr": {"city": "rome"}, "amount": 55}"#)
                .unwrap(),
            lake_formats::json::parse(r#"{"buyer": "c8", "addr": {"city": "delft"}, "amount": 5}"#)
                .unwrap(),
        ];
        ps.store(DatasetId(2), "orders_docs", Dataset::Documents(docs)).unwrap();
        // Columnar file source.
        let tf = Table::from_rows(
            "orders_archive",
            &["cust", "city", "total"],
            vec![vec![Value::str("c9"), Value::str("oslo"), Value::Float(70.0)]],
        )
        .unwrap();
        ps.store_in(DatasetId(3), "orders_archive", Dataset::Table(tf), StoreKind::File)
            .unwrap();
        ps
    }

    fn engine(ps: &Polystore) -> FederatedEngine<'_> {
        let mut fe = FederatedEngine::new(ps);
        let rel = SourceBinding {
            store: StoreKind::Relational,
            location: "orders_eu".into(),
            columns: [
                ("customer".to_string(), "cust".to_string()),
                ("city".to_string(), "city".to_string()),
                ("total".to_string(), "total".to_string()),
            ]
            .into(),
        };
        let doc = SourceBinding {
            store: StoreKind::Document,
            location: "orders_docs".into(),
            columns: [
                ("customer".to_string(), "buyer".to_string()),
                ("city".to_string(), "addr.city".to_string()),
                ("total".to_string(), "amount".to_string()),
            ]
            .into(),
        };
        let file = SourceBinding {
            store: StoreKind::File,
            location: "tables/orders_archive.pql".into(),
            columns: [
                ("customer".to_string(), "cust".to_string()),
                ("city".to_string(), "city".to_string()),
                ("total".to_string(), "total".to_string()),
            ]
            .into(),
        };
        fe.register("orders", vec![rel, doc, file]);
        fe
    }

    /// Registers the "tiers" mediated table over a document collection.
    fn register_tiers(ps: &Polystore, fe: &mut FederatedEngine<'_>) {
        let profiles = vec![
            lake_formats::json::parse(r#"{"who": "c1", "tier": "gold"}"#).unwrap(),
            lake_formats::json::parse(r#"{"who": "c3", "tier": "silver"}"#).unwrap(),
        ];
        ps.documents.insert_many("profiles", profiles);
        fe.register(
            "tiers",
            vec![SourceBinding {
                store: StoreKind::Document,
                location: "profiles".into(),
                columns: [
                    ("who".to_string(), "who".to_string()),
                    ("tier".to_string(), "tier".to_string()),
                ]
                .into(),
            }],
        );
    }

    #[test]
    fn query_unions_heterogeneous_sources() {
        let ps = setup();
        let fe = engine(&ps);
        let q = parse_query("select customer, city from orders").unwrap();
        let (t, stats) = fe.execute(&q, true).unwrap();
        assert_eq!(t.num_rows(), 6);
        assert_eq!(stats.subqueries, 3);
        assert!(!stats.completeness.is_partial);
        assert_eq!(stats.completeness.sources_ok, 3);
        let cities = t.column("city").unwrap();
        assert!(cities.values.contains(&Value::str("rome")));
        assert!(cities.values.contains(&Value::str("oslo")));
    }

    #[test]
    fn predicates_filter_across_stores() {
        let ps = setup();
        let fe = engine(&ps);
        let q = parse_query("select customer from orders where city = 'delft'").unwrap();
        let (t, _) = fe.execute(&q, true).unwrap();
        let custs: Vec<String> = t.column("customer").unwrap().values.iter().map(Value::render).collect();
        assert_eq!(custs, vec!["c1", "c3", "c8"]);
    }

    #[test]
    fn pushdown_moves_fewer_rows_same_answer() {
        let ps = setup();
        let fe = engine(&ps);
        let q = parse_query("select customer from orders where total > 50").unwrap();
        let (with, s_with) = fe.execute(&q, true).unwrap();
        ps.relational.reset_counters();
        let (without, s_without) = fe.execute(&q, false).unwrap();
        let mut a: Vec<String> = with.column("customer").unwrap().values.iter().map(Value::render).collect();
        let mut b: Vec<String> = without.column("customer").unwrap().values.iter().map(Value::render).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert!(
            s_with.rows_moved < s_without.rows_moved,
            "pushdown should move fewer rows: {} vs {}",
            s_with.rows_moved,
            s_without.rows_moved
        );
    }

    #[test]
    fn data_skipping_prunes_columnar_files() {
        let ps = setup();
        let fe = engine(&ps);
        // cust = 'zz' is outside the archive file's min/max → skipped.
        let q = parse_query("select customer from orders where customer = 'zzz'").unwrap();
        let (t, _) = fe.execute(&q, true).unwrap();
        assert_eq!(t.num_rows(), 0);
    }

    #[test]
    fn limit_and_unknown_table() {
        let ps = setup();
        let fe = engine(&ps);
        let q = parse_query("select customer from orders limit 2").unwrap();
        let (t, _) = fe.execute(&q, true).unwrap();
        assert_eq!(t.num_rows(), 2);
        let bad = parse_query("select x from ghost").unwrap();
        assert!(fe.execute(&bad, true).is_err());
    }

    #[test]
    fn join_across_mediated_tables() {
        let ps = setup();
        // Second mediated table over the document store keyed by buyer.
        let mut fe = engine(&ps);
        register_tiers(&ps, &mut fe);
        let q = crate::ast::parse_join_query(
            "select tier, city from orders join tiers on customer = who where city = 'delft'",
        )
        .unwrap();
        let (t, stats) = fe.execute_join(&q, true).unwrap();
        // delft customers: c1 (relational), c3 (relational), c8 (docs);
        // tiers exist for c1 and c3.
        assert_eq!(t.num_rows(), 2);
        let tiers: Vec<String> = t.column("tier").unwrap().values.iter().map(Value::render).collect();
        assert!(tiers.contains(&"gold".to_string()));
        assert!(tiers.contains(&"silver".to_string()));
        assert!(stats.subqueries >= 4);
        assert!(!stats.completeness.is_partial);

        // Limit applies to joined output.
        let q2 = crate::ast::parse_join_query(
            "select tier from orders join tiers on customer = who limit 1",
        )
        .unwrap();
        let (t2, _) = fe.execute_join(&q2, true).unwrap();
        assert_eq!(t2.num_rows(), 1);

        // Unroutable attribute errors.
        let q3 = crate::ast::parse_join_query(
            "select nope from orders join tiers on customer = who",
        )
        .unwrap();
        assert!(fe.execute_join(&q3, true).is_err());
    }

    #[test]
    fn join_agrees_with_and_without_pushdown() {
        let ps = setup();
        let mut fe = engine(&ps);
        ps.documents.insert_many(
            "profiles",
            vec![lake_formats::json::parse(r#"{"who": "c2", "tier": "basic"}"#).unwrap()],
        );
        fe.register(
            "tiers",
            vec![SourceBinding {
                store: StoreKind::Document,
                location: "profiles".into(),
                columns: [
                    ("who".to_string(), "who".to_string()),
                    ("tier".to_string(), "tier".to_string()),
                ]
                .into(),
            }],
        );
        let q = crate::ast::parse_join_query(
            "select customer, tier from orders join tiers on customer = who where total > 50",
        )
        .unwrap();
        let (a, sa) = fe.execute_join(&q, true).unwrap();
        let (b, sb) = fe.execute_join(&q, false).unwrap();
        assert_eq!(a, b);
        assert!(sa.rows_moved <= sb.rows_moved);
    }

    #[test]
    fn sparql_passthrough() {
        let ps = setup();
        let mut g = lake_core::PropertyGraph::new();
        let a = g.add_node_with("Person", vec![("name", Value::str("ada"))]);
        let b = g.add_node_with("City", vec![("name", Value::str("delft"))]);
        g.add_edge(a, b, "lives_in");
        ps.graphs.put_graph("people", g);
        let fe = engine(&ps);
        let pats = [TriplePattern {
            s: lake_store::graphstore::Term::Var("p".into()),
            p: lake_store::graphstore::Term::Const(Value::str("lives_in")),
            o: lake_store::graphstore::Term::Var("c".into()),
        }];
        let res = fe.sparql("people", &pats).unwrap();
        assert_eq!(res.len(), 1);
        assert_eq!(res[0]["c"], Value::str("delft"));
    }

    #[test]
    fn obs_times_each_backend_and_counts_fanout() {
        use lake_core::retry::ManualClock;

        let ps = setup();
        let registry = MetricsRegistry::new();
        let clock = Arc::new(ManualClock::new());
        let fe = engine(&ps).with_obs(&registry, clock);
        let q = parse_query("select customer, city, total from orders").unwrap();
        let (t, stats) = fe.execute(&q, true).unwrap();
        assert_eq!(t.num_rows(), 6);

        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("lake_query_execute_total"), 1);
        assert_eq!(
            snap.counter_value("lake_query_subqueries_total"),
            stats.subqueries as u64
        );
        assert_eq!(
            snap.counter_value("lake_query_rows_moved_total"),
            stats.rows_moved as u64
        );
        // One timed fetch per backend kind.
        for kind in ["relational", "document", "file"] {
            let hist = snap
                .histograms
                .iter()
                .find(|(id, _)| {
                    id.name == "lake_query_source_seconds"
                        && id.labels.iter().any(|(k, v)| k == "kind" && v == kind)
                })
                .map(|(_, h)| h)
                .unwrap_or_else(|| panic!("missing source_seconds for {kind}"));
            assert_eq!(hist.count, 1, "kind={kind}");
        }

        // A second query keeps accumulating in the same registry.
        let (_, stats2) = fe.execute(&q, false).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("lake_query_execute_total"), 2);
        assert_eq!(
            snap.counter_value("lake_query_rows_moved_total"),
            (stats.rows_moved + stats2.rows_moved) as u64
        );
    }

    #[test]
    fn dead_backend_degrades_to_partial_answer() {
        let ps = setup();
        let clock = Arc::new(ManualClock::new());
        let fe = engine(&ps)
            .with_clock(clock)
            .with_degradation(
                DegradationConfig::degraded().with_retry(RetryPolicy::none()),
            )
            .with_faults(FaultSource::new().dead("orders_docs"));
        let q = parse_query("select customer, city from orders").unwrap();
        let (t, stats) = fe.execute(&q, true).unwrap();
        // Relational (3) + file (1) rows; the document source is gone.
        assert_eq!(t.num_rows(), 4);
        assert!(stats.completeness.is_partial);
        assert_eq!(stats.completeness.sources_ok, 2);
        assert_eq!(stats.completeness.skipped.len(), 1);
        assert_eq!(stats.completeness.skipped[0].location, "orders_docs");
        assert_eq!(stats.completeness.skipped[0].reason, SkipReason::Failed);
    }

    #[test]
    fn strict_mode_preserves_fail_fast() {
        let ps = setup();
        let clock = Arc::new(ManualClock::new());
        let fe = engine(&ps)
            .with_clock(clock)
            .with_degradation(DegradationConfig::strict().with_retry(RetryPolicy::none()))
            .with_faults(FaultSource::new().dead("orders_docs"));
        let q = parse_query("select customer from orders").unwrap();
        let r = fe.execute(&q, true);
        assert!(matches!(r, Err(LakeError::Io(_))), "{r:?}");
    }

    #[test]
    fn transients_are_absorbed_by_the_retry_policy() {
        let ps = setup();
        let clock = Arc::new(ManualClock::new());
        let fe = engine(&ps)
            .with_clock(Arc::clone(&clock) as Arc<dyn Clock>)
            .with_degradation(
                DegradationConfig::degraded().with_retry(RetryPolicy::new(3)),
            )
            .with_faults(FaultSource::new().transient("orders_eu", 2));
        let q = parse_query("select customer from orders").unwrap();
        let (t, stats) = fe.execute(&q, true).unwrap();
        assert_eq!(t.num_rows(), 6, "all rows despite transients");
        assert!(!stats.completeness.is_partial);
        assert_eq!(fe.retry_stats().retries, 2);
        assert_eq!(clock.sleeps().len(), 2, "two backoffs recorded");
    }

    #[test]
    fn join_with_one_side_degraded_is_flagged_partial() {
        let ps = setup();
        let clock = Arc::new(ManualClock::new());
        let mut fe = engine(&ps);
        register_tiers(&ps, &mut fe);
        let fe = fe
            .with_clock(clock)
            .with_degradation(
                DegradationConfig::degraded().with_retry(RetryPolicy::none()),
            )
            .with_faults(FaultSource::new().dead("profiles"));
        let q = crate::ast::parse_join_query(
            "select tier, city from orders join tiers on customer = who where city = 'delft'",
        )
        .unwrap();
        let (t, stats) = fe.execute_join(&q, true).unwrap();
        // The tiers side is dead: no join rows can be produced — but the
        // answer says so instead of pretending to be exact.
        assert_eq!(t.num_rows(), 0);
        assert!(stats.completeness.is_partial, "join over a degraded side must be flagged");
        assert_eq!(stats.completeness.skipped[0].location, "profiles");
        // The healthy side still answered.
        assert_eq!(stats.completeness.sources_ok, 3);
    }

    #[test]
    fn sparql_is_protected_by_the_breaker() {
        let ps = setup();
        let mut g = lake_core::PropertyGraph::new();
        let a = g.add_node_with("Person", vec![("name", Value::str("ada"))]);
        let b = g.add_node_with("City", vec![("name", Value::str("delft"))]);
        g.add_edge(a, b, "lives_in");
        ps.graphs.put_graph("people", g);
        let clock = Arc::new(ManualClock::new());
        let fe = engine(&ps)
            .with_clock(Arc::clone(&clock) as Arc<dyn Clock>)
            .with_degradation(
                DegradationConfig::degraded()
                    .with_retry(RetryPolicy::none())
                    .with_breaker(BreakerConfig { failure_threshold: 2, cooldown_ms: 100 }),
            )
            .with_faults(FaultSource::new().hard("graph:people", 2));
        let pats = [TriplePattern {
            s: lake_store::graphstore::Term::Var("p".into()),
            p: lake_store::graphstore::Term::Const(Value::str("lives_in")),
            o: lake_store::graphstore::Term::Var("c".into()),
        }];
        // Two hard failures trip the breaker…
        assert!(fe.sparql("people", &pats).is_err());
        assert!(fe.sparql("people", &pats).is_err());
        assert_eq!(
            fe.breaker_status(),
            vec![("graph:people".to_string(), BreakerState::Open, 2)]
        );
        // …so the next call fails fast without reaching the injector.
        let calls_before = fe.fault_stats().map(|s| s.calls_to("graph:people")).unwrap_or(0);
        assert!(fe.sparql("people", &pats).is_err());
        assert_eq!(
            fe.fault_stats().map(|s| s.calls_to("graph:people")),
            Some(calls_before),
            "open breaker must not touch the backend"
        );
        // After the cooldown the half-open probe succeeds and closes.
        clock.advance_micros(100_000);
        let res = fe.sparql("people", &pats).unwrap();
        assert_eq!(res.len(), 1);
        assert_eq!(fe.breaker_status()[0].1, BreakerState::Closed);
    }

    #[test]
    fn per_source_deadline_discards_late_rows() {
        let ps = setup();
        let clock = Arc::new(ManualClock::new());
        let fe = engine(&ps)
            .with_clock(clock)
            .with_degradation(
                DegradationConfig::degraded()
                    .with_retry(RetryPolicy::none())
                    .with_budget(QueryBudget::unlimited().with_per_source_ms(10)),
            )
            .with_faults(FaultSource::new().slow("orders_eu", 50));
        let q = parse_query("select customer from orders").unwrap();
        let (t, stats) = fe.execute(&q, true).unwrap();
        // The relational source hung 50ms > 10ms deadline: its 3 rows
        // shipped but were discarded.
        assert_eq!(t.num_rows(), 3, "docs (2) + file (1)");
        assert!(stats.completeness.is_partial);
        assert_eq!(stats.completeness.timed_out(), 1);
        assert_eq!(stats.completeness.skipped[0].reason, SkipReason::Timeout);
    }

    #[test]
    fn total_deadline_skips_remaining_sources() {
        let ps = setup();
        let clock = Arc::new(ManualClock::new());
        let fe = engine(&ps)
            .with_clock(clock)
            .with_degradation(
                DegradationConfig::degraded()
                    .with_retry(RetryPolicy::none())
                    .with_budget(QueryBudget::unlimited().with_total_ms(20)),
            )
            // The first source consumes the whole budget.
            .with_faults(FaultSource::new().slow("orders_eu", 30));
        let q = parse_query("select customer from orders").unwrap();
        let (t, stats) = fe.execute(&q, true).unwrap();
        // orders_eu answered (slow but no per-source deadline); the two
        // remaining sources were never consulted.
        assert_eq!(t.num_rows(), 3);
        assert_eq!(stats.subqueries, 1, "deadline-skipped sources issue no subquery");
        assert_eq!(stats.completeness.skipped_for(SkipReason::Deadline), 2);
        assert!(stats.completeness.is_partial);
    }

    #[test]
    fn degradation_metrics_are_registered() {
        let ps = setup();
        let registry = MetricsRegistry::new();
        let clock = Arc::new(ManualClock::new());
        let fe = engine(&ps)
            .with_obs(&registry, clock)
            .with_degradation(
                DegradationConfig::degraded()
                    .with_retry(RetryPolicy::none())
                    .with_breaker(BreakerConfig { failure_threshold: 1, cooldown_ms: 1_000 }),
            )
            .with_faults(FaultSource::new().dead("orders_docs"));
        let q = parse_query("select customer from orders").unwrap();
        let (_, stats) = fe.execute(&q, true).unwrap();
        assert!(stats.completeness.is_partial);
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("lake_query_partial_total"), 1);
        assert_eq!(snap.counter_value("lake_query_source_skipped_total"), 1);
        // The dead source's breaker gauge reads Open (1).
        let gauge = snap
            .gauges
            .iter()
            .find(|(id, _)| {
                id.name == "lake_query_breaker_state"
                    && id.labels.iter().any(|(k, v)| k == "source" && v == "orders_docs")
            })
            .map(|(_, v)| *v);
        assert_eq!(gauge, Some(1));
        // Second query: the open breaker denies without a fetch.
        let (_, stats2) = fe.execute(&q, true).unwrap();
        assert_eq!(stats2.subqueries, 2, "breaker-denied source issues no subquery");
        assert_eq!(stats2.completeness.skipped_for(SkipReason::BreakerOpen), 1);
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("lake_query_source_skipped_total"), 2);
    }
}
