//! Aurum's discovery-primitive query language (§6.2.1, §7.1).
//!
//! "In its primitive-based query language, an Aurum user can compose
//! queries to search schemata or data values with keywords to find
//! specific columns, tables, or paths. Users can specify criteria and
//! obtain ranked querying results in a flexible manner, i.e., they can
//! obtain the ranking results of different criteria without re-running
//! the query."
//!
//! Syntax: a pipeline of primitives separated by `|`:
//!
//! ```text
//! similar_content(table.column)
//! similar_name(table.column)
//! pkfk_of(table.column)
//! keyword(term)            -- columns whose name contains term
//! intersect                 -- keep candidates present in both branches
//! ```
//!
//! Execution returns a [`ResultSet`] holding *per-criterion* scores, so
//! [`ResultSet::ranked_by`] re-ranks without re-running the search.

use lake_core::{LakeError, Result};
use lake_discovery::aurum::Aurum;
use lake_discovery::corpus::{ColumnRef, TableCorpus};
use std::collections::BTreeMap;

/// A parsed primitive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Primitive {
    /// Content-similar columns of the argument.
    SimilarContent(String),
    /// Name-similar columns of the argument.
    SimilarName(String),
    /// PK-FK partners of the argument.
    PkfkOf(String),
    /// Columns whose name contains the keyword.
    Keyword(String),
    /// Set intersection with the accumulated result.
    Intersect,
}

/// Scores per criterion per candidate column.
#[derive(Debug, Clone, Default)]
pub struct ResultSet {
    /// candidate → criterion → score.
    pub scores: BTreeMap<ColumnRef, BTreeMap<&'static str, f64>>,
}

impl ResultSet {
    fn add(&mut self, at: ColumnRef, criterion: &'static str, score: f64) {
        let entry = self.scores.entry(at).or_default().entry(criterion).or_insert(0.0);
        if score > *entry {
            *entry = score;
        }
    }

    /// Candidates ranked by one criterion, descending (re-rankable without
    /// re-executing the query — Aurum's flexibility claim).
    pub fn ranked_by(&self, criterion: &str) -> Vec<(ColumnRef, f64)> {
        let mut v: Vec<(ColumnRef, f64)> = self
            .scores
            .iter()
            .filter_map(|(at, m)| m.get(criterion).map(|&s| (*at, s)))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Candidates ranked by their best score across all criteria.
    pub fn ranked_overall(&self) -> Vec<(ColumnRef, f64)> {
        let mut v: Vec<(ColumnRef, f64)> = self
            .scores
            .iter()
            .map(|(at, m)| (*at, m.values().copied().fold(0.0, f64::max)))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// `true` when no candidate matched.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }
}

/// Parse an SRQL pipeline.
pub fn parse(text: &str) -> Result<Vec<Primitive>> {
    text.split('|')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|part| {
            if part == "intersect" {
                return Ok(Primitive::Intersect);
            }
            let (name, rest) = part
                .split_once('(')
                .ok_or_else(|| LakeError::query(format!("expected primitive(arg): {part}")))?;
            let arg = rest
                .strip_suffix(')')
                .ok_or_else(|| LakeError::query(format!("missing ')': {part}")))?
                .trim()
                .to_string();
            match name.trim() {
                "similar_content" => Ok(Primitive::SimilarContent(arg)),
                "similar_name" => Ok(Primitive::SimilarName(arg)),
                "pkfk_of" => Ok(Primitive::PkfkOf(arg)),
                "keyword" => Ok(Primitive::Keyword(arg)),
                other => Err(LakeError::query(format!("unknown primitive {other}"))),
            }
        })
        .collect()
}

fn resolve(corpus: &TableCorpus, arg: &str) -> Result<ColumnRef> {
    let (t, c) = arg
        .split_once('.')
        .ok_or_else(|| LakeError::query(format!("expected table.column, got {arg}")))?;
    let ti = corpus
        .table_index(t)
        .ok_or_else(|| LakeError::not_found(format!("table {t}")))?;
    let ci = corpus.tables()[ti]
        .column_index(c)
        .ok_or_else(|| LakeError::not_found(format!("column {c} in {t}")))?;
    Ok(ColumnRef { table: ti, column: ci })
}

/// Execute a pipeline against a built Aurum EKG.
pub fn execute(
    aurum: &Aurum,
    corpus: &TableCorpus,
    pipeline: &[Primitive],
) -> Result<ResultSet> {
    let mut acc = ResultSet::default();
    let mut first_branch = true;
    for p in pipeline {
        match p {
            Primitive::Intersect => {
                first_branch = false;
                continue;
            }
            _ => {}
        }
        let mut branch = ResultSet::default();
        match p {
            Primitive::SimilarContent(arg) => {
                let at = resolve(corpus, arg)?;
                for (c, s) in aurum.similar_content_to(corpus, at) {
                    branch.add(c, "content", s);
                }
            }
            Primitive::SimilarName(arg) => {
                let at = resolve(corpus, arg)?;
                for (c, s) in aurum.similar_name_to(corpus, at) {
                    branch.add(c, "name", s);
                }
            }
            Primitive::PkfkOf(arg) => {
                let at = resolve(corpus, arg)?;
                for (c, s) in aurum.pkfk_of(corpus, at) {
                    branch.add(c, "pkfk", s);
                }
            }
            Primitive::Keyword(term) => {
                let lower = term.to_lowercase();
                for prof in corpus.profiles() {
                    if prof.name.to_lowercase().contains(&lower) {
                        branch.add(prof.at, "keyword", 1.0);
                    }
                }
            }
            Primitive::Intersect => unreachable!("handled above"),
        }
        if first_branch {
            // Union criteria scores.
            for (at, crits) in branch.scores {
                for (k, v) in crits {
                    acc.add(at, k, v);
                }
            }
        } else {
            // Intersect: keep candidates present in both, merging scores.
            let keep: Vec<ColumnRef> = acc
                .scores
                .keys()
                .filter(|at| branch.scores.contains_key(at))
                .copied()
                .collect();
            acc.scores.retain(|at, _| keep.contains(at));
            for at in keep {
                if let Some(crits) = branch.scores.get(&at) {
                    for (k, v) in crits {
                        acc.add(at, k, *v);
                    }
                }
            }
            first_branch = true;
        }
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lake_core::synth::{generate_lake, LakeGenConfig};
    use lake_discovery::DiscoverySystem;

    fn setup() -> (TableCorpus, Aurum) {
        let lake = generate_lake(&LakeGenConfig::default());
        let corpus = TableCorpus::new(lake.tables);
        let mut aurum = Aurum::default();
        aurum.build(&corpus);
        (corpus, aurum)
    }

    #[test]
    fn parse_pipeline() {
        let p = parse("similar_content(g0_t0.customer_id) | intersect | keyword(cust)").unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p[1], Primitive::Intersect);
        assert!(parse("bogus(x)").is_err());
        assert!(parse("similar_content(x").is_err());
    }

    #[test]
    fn content_primitive_finds_joinable_columns() {
        let (corpus, aurum) = setup();
        // Key column of g0_t0 (index 0 by construction).
        let key = corpus.tables()[corpus.table_index("g0_t0").unwrap()].columns()[0]
            .name
            .clone();
        let rs = execute(&aurum, &corpus, &parse(&format!("similar_content(g0_t0.{key})")).unwrap())
            .unwrap();
        assert!(!rs.is_empty());
        let top = rs.ranked_by("content");
        assert!(top[0].1 > 0.2);
    }

    #[test]
    fn keyword_primitive_matches_names() {
        let (corpus, aurum) = setup();
        let rs = execute(&aurum, &corpus, &parse("keyword(price)").unwrap()).unwrap();
        for (at, _) in rs.ranked_by("keyword") {
            assert!(corpus.profile(at).unwrap().name.contains("price"));
        }
    }

    #[test]
    fn intersect_narrows_results() {
        let (corpus, aurum) = setup();
        let key = corpus.tables()[corpus.table_index("g0_t0").unwrap()].columns()[0]
            .name
            .clone();
        let broad = execute(&aurum, &corpus, &parse(&format!("similar_content(g0_t0.{key})")).unwrap())
            .unwrap();
        let narrowed = execute(
            &aurum,
            &corpus,
            &parse(&format!("similar_content(g0_t0.{key}) | intersect | keyword(id)")).unwrap(),
        )
        .unwrap();
        assert!(narrowed.len() <= broad.len());
        for (at, _) in narrowed.ranked_overall() {
            assert!(corpus.profile(at).unwrap().name.contains("id"));
        }
    }

    #[test]
    fn reranking_without_rerun() {
        let (corpus, aurum) = setup();
        let key = corpus.tables()[corpus.table_index("g0_t0").unwrap()].columns()[0]
            .name
            .clone();
        let rs = execute(
            &aurum,
            &corpus,
            &parse(&format!("similar_content(g0_t0.{key}) | similar_name(g0_t0.{key})")).unwrap(),
        )
        .unwrap();
        // Two independent rankings from one execution.
        let by_content = rs.ranked_by("content");
        let by_name = rs.ranked_by("name");
        assert!(!by_content.is_empty());
        // Both rankings draw from the same candidate pool.
        assert!(by_name.len() <= rs.len());
    }

    #[test]
    fn bad_references_error() {
        let (corpus, aurum) = setup();
        assert!(execute(&aurum, &corpus, &parse("similar_content(ghost.c)").unwrap()).is_err());
        assert!(execute(&aurum, &corpus, &parse("similar_content(noarg)").unwrap()).is_err());
    }
}
