//! A small SQL-ish query language.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! SELECT <col>[, <col>…] | *
//! FROM <table>
//! [WHERE <col> <op> <literal> [AND …]]
//! [LIMIT <n>]
//! ```
//!
//! Literals parse via schema-on-read inference (`42` → int, `'x'`/bare
//! word → string). Operators: `= != <> < <= > >= contains`.

use lake_core::{LakeError, Result, Value};
use lake_store::predicate::{CompareOp, Predicate};

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Projected columns; empty = `*`.
    pub select: Vec<String>,
    /// Source (mediated) table name.
    pub table: String,
    /// Conjunctive predicates.
    pub filters: Vec<Predicate>,
    /// Optional row limit.
    pub limit: Option<usize>,
}

/// A two-table join query over mediated tables
/// (`SELECT … FROM a JOIN b ON x = y [WHERE …] [LIMIT n]`).
///
/// Attributes are unqualified; the executor resolves each to whichever
/// side's mediation binds it (the join attributes `on.0`/`on.1` bind to
/// the left/right table respectively).
#[derive(Debug, Clone, PartialEq)]
pub struct JoinQuery {
    /// Projected attributes (resolved left-first).
    pub select: Vec<String>,
    /// Left mediated table.
    pub left: String,
    /// Right mediated table.
    pub right: String,
    /// Join attributes: (left attribute, right attribute).
    pub on: (String, String),
    /// Conjunctive predicates (routed to the side binding the attribute).
    pub filters: Vec<Predicate>,
    /// Optional row limit.
    pub limit: Option<usize>,
}

/// Parse a join query string.
pub fn parse_join_query(text: &str) -> Result<JoinQuery> {
    let toks = tokenize(text);
    let mut pos = 0usize;
    expect_kw(&toks, &mut pos, "select")?;
    let mut select = Vec::new();
    if peek(&toks, pos) == Some("*") {
        pos += 1;
    } else {
        loop {
            select.push(next(&toks, &mut pos)?.to_string());
            if peek(&toks, pos) == Some(",") {
                pos += 1;
            } else {
                break;
            }
        }
    }
    expect_kw(&toks, &mut pos, "from")?;
    let left = next(&toks, &mut pos)?.to_string();
    expect_kw(&toks, &mut pos, "join")?;
    let right = next(&toks, &mut pos)?.to_string();
    expect_kw(&toks, &mut pos, "on")?;
    let l_attr = next(&toks, &mut pos)?.to_string();
    let eq = next(&toks, &mut pos)?;
    if eq != "=" {
        return Err(LakeError::query(format!("expected '=' in ON clause, found {eq}")));
    }
    let r_attr = next(&toks, &mut pos)?.to_string();

    let mut filters = Vec::new();
    if peek_kw(&toks, pos, "where") {
        pos += 1;
        loop {
            let attr = next(&toks, &mut pos)?.to_string();
            let op_tok = next(&toks, &mut pos)?;
            let op = CompareOp::parse(&op_tok.to_lowercase())
                .ok_or_else(|| LakeError::query(format!("unknown operator {op_tok}")))?;
            let lit = next(&toks, &mut pos)?;
            filters.push(Predicate { attribute: attr, op, value: literal(lit) });
            if peek_kw(&toks, pos, "and") {
                pos += 1;
            } else {
                break;
            }
        }
    }
    let mut limit = None;
    if peek_kw(&toks, pos, "limit") {
        pos += 1;
        let n = next(&toks, &mut pos)?;
        limit = Some(n.parse().map_err(|_| LakeError::query(format!("bad LIMIT value {n}")))?);
    }
    if pos != toks.len() {
        return Err(LakeError::query(format!("unexpected trailing tokens: {:?}", &toks[pos..])));
    }
    Ok(JoinQuery { select, left, right, on: (l_attr, r_attr), filters, limit })
}

/// Parse a query string.
pub fn parse_query(text: &str) -> Result<Query> {
    let toks = tokenize(text);
    let mut pos = 0usize;
    expect_kw(&toks, &mut pos, "select")?;

    let mut select = Vec::new();
    if peek(&toks, pos) == Some("*") {
        pos += 1;
    } else {
        loop {
            let col = next(&toks, &mut pos)?;
            select.push(col.to_string());
            if peek(&toks, pos) == Some(",") {
                pos += 1;
            } else {
                break;
            }
        }
    }

    expect_kw(&toks, &mut pos, "from")?;
    let table = next(&toks, &mut pos)?.to_string();

    let mut filters = Vec::new();
    if peek_kw(&toks, pos, "where") {
        pos += 1;
        loop {
            let attr = next(&toks, &mut pos)?.to_string();
            let op_tok = next(&toks, &mut pos)?;
            let op = CompareOp::parse(&op_tok.to_lowercase())
                .ok_or_else(|| LakeError::query(format!("unknown operator {op_tok}")))?;
            let lit = next(&toks, &mut pos)?;
            filters.push(Predicate { attribute: attr, op, value: literal(lit) });
            if peek_kw(&toks, pos, "and") {
                pos += 1;
            } else {
                break;
            }
        }
    }

    let mut limit = None;
    if peek_kw(&toks, pos, "limit") {
        pos += 1;
        let n = next(&toks, &mut pos)?;
        limit = Some(
            n.parse()
                .map_err(|_| LakeError::query(format!("bad LIMIT value {n}")))?,
        );
    }
    if pos != toks.len() {
        return Err(LakeError::query(format!("unexpected trailing tokens: {:?}", &toks[pos..])));
    }
    Ok(Query { select, table, filters, limit })
}

fn literal(tok: &str) -> Value {
    if let Some(stripped) = tok.strip_prefix('\'').and_then(|t| t.strip_suffix('\'')) {
        return Value::str(stripped);
    }
    Value::parse_infer(tok)
}

fn tokenize(text: &str) -> Vec<String> {
    let mut toks = Vec::new();
    let mut cur = String::new();
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\'' => {
                // Quoted literal, kept with quotes.
                let mut s = String::from("'");
                for c in chars.by_ref() {
                    s.push(c);
                    if c == '\'' {
                        break;
                    }
                }
                toks.push(s);
            }
            ',' => {
                if !cur.is_empty() {
                    toks.push(std::mem::take(&mut cur));
                }
                toks.push(",".into());
            }
            '<' | '>' | '=' | '!' => {
                if !cur.is_empty() {
                    toks.push(std::mem::take(&mut cur));
                }
                let mut op = String::from(c);
                if matches!(chars.peek(), Some('=' | '>')) {
                    op.push(chars.next().expect("peeked"));
                }
                toks.push(op);
            }
            c if c.is_whitespace() => {
                if !cur.is_empty() {
                    toks.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        toks.push(cur);
    }
    toks
}

fn peek(toks: &[String], pos: usize) -> Option<&str> {
    toks.get(pos).map(String::as_str)
}

fn peek_kw(toks: &[String], pos: usize, kw: &str) -> bool {
    peek(toks, pos).is_some_and(|t| t.eq_ignore_ascii_case(kw))
}

fn next<'a>(toks: &'a [String], pos: &mut usize) -> Result<&'a str> {
    let t = toks
        .get(*pos)
        .map(String::as_str)
        .ok_or_else(|| LakeError::query("unexpected end of query"))?;
    *pos += 1;
    Ok(t)
}

fn expect_kw(toks: &[String], pos: &mut usize, kw: &str) -> Result<()> {
    let t = next(toks, pos)?;
    if t.eq_ignore_ascii_case(kw) {
        Ok(())
    } else {
        Err(LakeError::query(format!("expected {kw}, found {t}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_query() {
        let q = parse_query("SELECT city, total FROM orders WHERE total > 10 AND city = 'delft' LIMIT 5")
            .unwrap();
        assert_eq!(q.select, vec!["city", "total"]);
        assert_eq!(q.table, "orders");
        assert_eq!(q.filters.len(), 2);
        assert_eq!(q.filters[0].op, CompareOp::Gt);
        assert_eq!(q.filters[0].value, Value::Int(10));
        assert_eq!(q.filters[1].value, Value::str("delft"));
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn star_select_and_bare_words() {
        let q = parse_query("select * from t where name = alice").unwrap();
        assert!(q.select.is_empty());
        assert_eq!(q.filters[0].value, Value::str("alice"));
        assert_eq!(q.limit, None);
    }

    #[test]
    fn operators_parse() {
        for (src, op) in [
            ("a = 1", CompareOp::Eq),
            ("a != 1", CompareOp::Ne),
            ("a <> 1", CompareOp::Ne),
            ("a <= 1", CompareOp::Le),
            ("a >= 1", CompareOp::Ge),
            ("a contains x", CompareOp::Contains),
        ] {
            let q = parse_query(&format!("select * from t where {src}")).unwrap();
            assert_eq!(q.filters[0].op, op, "{src}");
        }
    }

    #[test]
    fn malformed_queries_error() {
        for bad in [
            "",
            "select",
            "select a from",
            "select a from t where",
            "select a from t where a ~ 1",
            "select a from t limit x",
            "select a from t garbage",
        ] {
            assert!(parse_query(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn quoted_strings_keep_spaces() {
        let q = parse_query("select * from t where city = 'new york'").unwrap();
        assert_eq!(q.filters[0].value, Value::str("new york"));
    }

    #[test]
    fn join_query_parses() {
        let q = parse_join_query(
            "select name, total from customers join orders on customer_id = cust where total > 5 limit 3",
        )
        .unwrap();
        assert_eq!(q.left, "customers");
        assert_eq!(q.right, "orders");
        assert_eq!(q.on, ("customer_id".to_string(), "cust".to_string()));
        assert_eq!(q.select, vec!["name", "total"]);
        assert_eq!(q.filters.len(), 1);
        assert_eq!(q.limit, Some(3));
    }

    #[test]
    fn join_query_rejects_malformed() {
        for bad in [
            "select a from t1 join",
            "select a from t1 join t2",
            "select a from t1 join t2 on x",
            "select a from t1 join t2 on x != y",
        ] {
            assert!(parse_join_query(bad).is_err(), "{bad:?}");
        }
    }
}
