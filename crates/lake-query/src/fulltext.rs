//! Full-text search over the lake — the Elasticsearch stand-in behind
//! CoreDB's unified interface (§7.2: "It applies Elasticsearch for the
//! underlying full-text search").
//!
//! Every dataset is indexed as one document: table cell values + column
//! names, flattened JSON leaves, log tokens, or prose words. Queries are
//! ranked by summed TF-IDF weight of matched terms, so rare terms dominate
//! — the behaviour that makes "find the dataset mentioning `<entity>`"
//! useful in a big lake.

use lake_core::{Dataset, DatasetId, Json};
use lake_index::tfidf::{tokenize_identifier, TfIdfCorpus};
use std::collections::BTreeMap;

/// A ranked search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// The matching dataset.
    pub dataset: DatasetId,
    /// Summed TF-IDF score of matched query terms.
    pub score: f64,
    /// Which query terms matched.
    pub matched_terms: Vec<String>,
}

/// The lake-wide full-text index.
#[derive(Debug, Default)]
pub struct FullTextIndex {
    docs: BTreeMap<DatasetId, Vec<String>>,
    model: Option<TfIdfCorpus>,
    /// Sorted-dedup token lists, rebuilt with the model in
    /// [`FullTextIndex::refit`] so [`FullTextIndex::search`] does
    /// membership tests by binary search with no per-query allocation.
    sorted: BTreeMap<DatasetId, Vec<String>>,
}

/// Extract the searchable token bag of a dataset.
pub fn dataset_tokens(dataset: &Dataset) -> Vec<String> {
    let mut toks = Vec::new();
    match dataset {
        Dataset::Table(t) => {
            for col in t.columns() {
                toks.extend(tokenize_identifier(&col.name));
                for v in col.text_domain() {
                    toks.extend(tokenize_identifier(&v));
                }
            }
        }
        Dataset::Documents(docs) => {
            fn walk(j: &Json, out: &mut Vec<String>) {
                match j {
                    Json::Str(s) => out.extend(tokenize_identifier(s)),
                    Json::Array(a) => a.iter().for_each(|x| walk(x, out)),
                    Json::Object(m) => {
                        for (k, v) in m {
                            out.extend(tokenize_identifier(k));
                            walk(v, out);
                        }
                    }
                    _ => {}
                }
            }
            docs.iter().for_each(|d| walk(d, &mut toks));
        }
        Dataset::Log(lines) => {
            for l in lines {
                toks.extend(tokenize_identifier(l));
            }
        }
        Dataset::Text(t) => toks.extend(tokenize_identifier(t)),
        Dataset::Graph(g) => {
            for id in g.node_ids() {
                toks.extend(tokenize_identifier(&g.node(id).label));
                for v in g.node(id).props.values() {
                    toks.extend(tokenize_identifier(&v.render()));
                }
            }
        }
    }
    toks
}

impl FullTextIndex {
    /// An empty index.
    pub fn new() -> FullTextIndex {
        FullTextIndex::default()
    }

    /// Index (or re-index) a dataset. Call [`FullTextIndex::refit`] after
    /// a batch of inserts to update IDF weights.
    pub fn index(&mut self, id: DatasetId, dataset: &Dataset) {
        self.docs.insert(id, dataset_tokens(dataset));
        self.model = None;
    }

    /// Fit TF-IDF weights over the indexed corpus (lazy; [`Self::search`]
    /// calls it automatically when stale).
    pub fn refit(&mut self) {
        let refs: Vec<&[String]> = self.docs.values().map(Vec::as_slice).collect();
        self.model = Some(TfIdfCorpus::fit(refs));
        self.sorted = self
            .docs
            .iter()
            .map(|(&id, toks)| {
                let mut s = toks.clone();
                s.sort_unstable();
                s.dedup();
                (id, s)
            })
            .collect();
    }

    /// Number of indexed datasets.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// `true` when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Ranked search: datasets containing any query term, scored by
    /// summed TF-IDF of matched terms.
    pub fn search(&mut self, query: &str, k: usize) -> Vec<Hit> {
        if self.model.is_none() {
            self.refit();
        }
        let model = self.model.as_ref().expect("fitted above");
        let terms: Vec<String> = tokenize_identifier(query);
        let mut hits = Vec::new();
        for (&id, toks) in &self.sorted {
            let mut score = 0.0;
            let mut matched = Vec::new();
            for term in &terms {
                if toks.binary_search(term).is_ok() {
                    score += model.idf(term);
                    matched.push(term.clone());
                }
            }
            if score > 0.0 {
                hits.push(Hit { dataset: id, score, matched_terms: matched });
            }
        }
        hits.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.dataset.cmp(&b.dataset)));
        hits.truncate(k);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lake_core::{Table, Value};

    fn index() -> FullTextIndex {
        let mut ix = FullTextIndex::new();
        let sales = Table::from_rows(
            "sales",
            &["customer_id", "city"],
            vec![
                vec![Value::str("c1"), Value::str("delft")],
                vec![Value::str("c2"), Value::str("paris")],
            ],
        )
        .unwrap();
        ix.index(DatasetId(1), &Dataset::Table(sales));
        ix.index(
            DatasetId(2),
            &Dataset::Text("quarterly revenue report for the delft office".into()),
        );
        ix.index(
            DatasetId(3),
            &Dataset::Log(vec!["2024 ERROR reactor overheat".into(), "2024 INFO ok".into()]),
        );
        ix
    }

    #[test]
    fn search_finds_datasets_by_content() {
        let mut ix = index();
        let hits = ix.search("delft", 5);
        assert_eq!(hits.len(), 2);
        let ids: Vec<DatasetId> = hits.iter().map(|h| h.dataset).collect();
        assert!(ids.contains(&DatasetId(1)));
        assert!(ids.contains(&DatasetId(2)));
    }

    #[test]
    fn rare_terms_rank_above_common_ones() {
        let mut ix = index();
        // "reactor" appears in one dataset, "2024" effectively common.
        let hits = ix.search("reactor 2024", 5);
        assert_eq!(hits[0].dataset, DatasetId(3));
        assert!(hits[0].matched_terms.contains(&"reactor".to_string()));
    }

    #[test]
    fn misses_return_empty() {
        let mut ix = index();
        assert!(ix.search("zzzznotthere", 5).is_empty());
        assert!(ix.search("", 5).is_empty());
    }

    #[test]
    fn reindexing_replaces_content() {
        let mut ix = index();
        ix.index(DatasetId(2), &Dataset::Text("now about amsterdam".into()));
        let hits = ix.search("delft", 5);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].dataset, DatasetId(1));
        let hits2 = ix.search("amsterdam", 5);
        assert_eq!(hits2[0].dataset, DatasetId(2));
    }

    #[test]
    fn multi_term_scores_accumulate() {
        let mut ix = index();
        let both = ix.search("delft paris", 5);
        let one = ix.search("paris", 5);
        // The sales table matches both terms and must outrank its
        // single-term score.
        assert_eq!(both[0].dataset, DatasetId(1));
        assert!(both[0].score > one[0].score);
    }
}
