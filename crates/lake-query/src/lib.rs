//! # lake-query
//!
//! The exploration tier (survey §7): getting information *out* of the lake.
//!
//! * [`ast`] — a small SQL-ish query language (`SELECT … FROM … WHERE …
//!   LIMIT …`) with a text parser, shared by the federated engine.
//! * [`federated`] — heterogeneous data querying (§7.2): a mediator that
//!   decomposes a query over sources living in different polystore
//!   substrates, pushes predicates down (Constance/Ontario/Squerall), and
//!   merges results; SPARQL-like triple patterns pass through to the graph
//!   store.
//! * [`explore`] — query-driven data discovery (§7.1): the three
//!   exploration input/output modes — (1) joinable tables for a given
//!   column (JOSIE-style), (2) related tables for a given table with
//!   coverage extension (D³L-style), (3) task-driven search
//!   (Juneau-style).
//! * [`srql`] — Aurum's discovery-primitive query language: composable
//!   primitives over the EKG with re-rankable results.
//! * [`degrade`] / [`fault`] — graceful degradation for the mediator:
//!   per-query deadlines, per-backend circuit breakers, partial-result
//!   completeness reporting, and a seeded per-source fault injector that
//!   makes every degradation path deterministically testable.

pub mod ast;
pub mod browse;
pub mod degrade;
pub mod explore;
pub mod fault;
pub mod fulltext;
pub mod federated;
pub mod srql;

pub use ast::{parse_query, Query};
pub use degrade::{
    BreakerConfig, BreakerState, CircuitBreaker, Completeness, DegradationConfig, QueryBudget,
    QuotaConfig, QuotaDecision, QuotaLedger, QuotaUsage, SkipReason, SkippedSource,
};
pub use fault::{FaultSource, FaultSourceStats};
pub use federated::FederatedEngine;
