//! Query-driven data discovery (§7.1): the three exploration modes.
//!
//! "There are three ways of exploration. (1) Given the user-specified
//! table T and a column c of T, the system returns top-k tables that are
//! most related to T, e.g., JOSIE. (2) Given a table T, the system returns
//! top-k tables that contain relevant attributes for populating T … if a
//! table Sᵢ is not in the top-k result set, yet it can be joined with some
//! table(s) in Sᵏ and improve the attribute coverage of T, D³L also
//! includes Sᵢ in the result. (3) Given the user-specified table T and the
//! search type τ … the system returns top-k tables … based on the
//! relatedness measurements associated to τ, e.g., Juneau."

use lake_discovery::corpus::{ColumnRef, TableCorpus};
use lake_discovery::d3l::D3l;
use lake_discovery::josie::Josie;
use lake_discovery::juneau::{Juneau, SearchType};
use lake_discovery::DiscoverySystem;

/// One ranked answer.
#[derive(Debug, Clone, PartialEq)]
pub struct Answer {
    /// Candidate table index.
    pub table: usize,
    /// Relatedness score (mode-specific scale).
    pub score: f64,
    /// Whether the table entered via the coverage-extension step (mode 2).
    pub via_extension: bool,
}

/// Mode 1: joinable tables for `(table, column)` via JOSIE's exact top-k
/// overlap search.
pub fn joinable_for_column(
    corpus: &TableCorpus,
    table: usize,
    column: usize,
    k: usize,
) -> Vec<Answer> {
    let mut josie = Josie::default();
    josie.build(corpus);
    let Some(profile) = corpus.profile(ColumnRef { table, column }) else {
        return Vec::new();
    };
    let exclude: Vec<usize> = corpus
        .table_profiles(table)
        .filter_map(|p| corpus.profile_index(p.at))
        .collect();
    let query: Vec<String> = profile.domain.iter().cloned().collect();
    let (hits, _) = josie.top_k_overlap(&query, k * 3, &exclude);
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::new();
    for (pi, overlap) in hits {
        let t = corpus.profiles()[pi].at.table;
        if t != table && seen.insert(t) {
            out.push(Answer { table: t, score: overlap as f64, via_extension: false });
            if out.len() == k {
                break;
            }
        }
    }
    out
}

/// Mode 2: related tables for `table` via D³L, extended with tables that
/// join into the top-k *and* add attribute coverage for the query table.
pub fn related_for_table(corpus: &TableCorpus, table: usize, k: usize) -> Vec<Answer> {
    let mut d3l = D3l::default();
    d3l.build(corpus);
    let top = d3l.top_k_related(corpus, table, k);
    let mut answers: Vec<Answer> = top
        .iter()
        .map(|&(t, s)| Answer { table: t, score: s, via_extension: false })
        .collect();

    // Coverage extension: attribute names the query table lacks.
    let qnames: std::collections::BTreeSet<&str> =
        corpus.table_profiles(table).map(|p| p.name.as_str()).collect();
    let covered: std::collections::BTreeSet<&str> = answers
        .iter()
        .flat_map(|a| corpus.table_profiles(a.table).map(|p| p.name.as_str()))
        .collect();
    let in_result: Vec<usize> = answers.iter().map(|a| a.table).collect();
    for cand in 0..corpus.len() {
        if cand == table || in_result.contains(&cand) {
            continue;
        }
        // Must join with some top-k table…
        let joins = in_result.iter().any(|&t| {
            corpus.table_profiles(cand).any(|pc| {
                corpus
                    .table_profiles(t)
                    .any(|pt| pc.jaccard_est(pt) > 0.3)
            })
        });
        if !joins {
            continue;
        }
        // …and add a new attribute.
        let adds = corpus
            .table_profiles(cand)
            .any(|p| !qnames.contains(p.name.as_str()) && !covered.contains(p.name.as_str()));
        if adds {
            answers.push(Answer { table: cand, score: 0.0, via_extension: true });
        }
    }
    answers
}

/// Mode 3: task-driven search via Juneau.
pub fn related_for_task(
    corpus: &TableCorpus,
    table: usize,
    task: SearchType,
    k: usize,
) -> Vec<Answer> {
    let juneau = Juneau::for_task(task);
    juneau
        .top_k_related(corpus, table, k)
        .into_iter()
        .map(|(t, s)| Answer { table: t, score: s, via_extension: false })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lake_core::synth::{generate_lake, LakeGenConfig};

    fn setup() -> (TableCorpus, lake_core::synth::GroundTruth) {
        let lake = generate_lake(&LakeGenConfig::default());
        (TableCorpus::new(lake.tables), lake.truth)
    }

    #[test]
    fn mode1_finds_joinable_tables_on_key_column() {
        let (corpus, truth) = setup();
        let t = corpus.table_index("g0_t0").unwrap();
        let answers = joinable_for_column(&corpus, t, 0, 2);
        assert!(!answers.is_empty());
        for a in &answers {
            let name = &corpus.tables()[a.table].name;
            assert!(truth.tables_related("g0_t0", name), "{name}");
            assert!(a.score > 0.0);
        }
    }

    #[test]
    fn mode1_unknown_column_is_empty() {
        let (corpus, _) = setup();
        assert!(joinable_for_column(&corpus, 0, 99, 3).is_empty());
    }

    #[test]
    fn mode2_returns_topk_plus_extensions() {
        let (corpus, _) = setup();
        let t = corpus.table_index("g1_t1").unwrap();
        let answers = related_for_table(&corpus, t, 2);
        assert!(answers.len() >= 2);
        let core: Vec<&Answer> = answers.iter().filter(|a| !a.via_extension).collect();
        assert_eq!(core.len(), 2);
        // Extensions, when present, must join with a core table.
        for ext in answers.iter().filter(|a| a.via_extension) {
            assert_ne!(ext.table, t);
        }
    }

    #[test]
    fn mode3_task_changes_ranking() {
        let (corpus, _) = setup();
        let t = corpus.table_index("g2_t0").unwrap();
        let clean = related_for_task(&corpus, t, SearchType::Cleaning, 4);
        let aug = related_for_task(&corpus, t, SearchType::AugmentTraining, 4);
        assert!(!clean.is_empty());
        assert!(!aug.is_empty());
        // The same candidate scores differently under different tasks:
        // build a pair with a clear key column and fresh instances so the
        // key-match and new-instance signals fire.
        use lake_core::{Table, Value};
        let q = Table::from_rows(
            "q",
            &["id", "city"],
            vec![
                vec![Value::str("k1"), Value::str("delft")],
                vec![Value::str("k2"), Value::str("paris")],
            ],
        )
        .unwrap();
        let cand = Table::from_rows(
            "cand",
            &["id", "city"],
            vec![
                vec![Value::str("k1"), Value::str("delft")],
                vec![Value::str("k3"), Value::str("rome")],
            ],
        )
        .unwrap();
        let small = TableCorpus::new(vec![q, cand]);
        let s_clean =
            lake_discovery::juneau::Juneau::for_task(SearchType::Cleaning).table_score(&small, 0, 1);
        let s_aug = lake_discovery::juneau::Juneau::for_task(SearchType::AugmentTraining)
            .table_score(&small, 0, 1);
        assert_ne!(s_clean, s_aug);
    }
}
