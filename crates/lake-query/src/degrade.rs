//! Graceful degradation for the federated mediator (§7.2 robustness).
//!
//! Real federated engines in the Constance/GEMMS lineage must answer even
//! when individual backends are slow or failing; one bad source must not
//! take down every mediated query. This module holds the three pieces of
//! the degradation ladder the [`crate::federated::FederatedEngine`] walks
//! per source:
//!
//! 1. a [`QueryBudget`] — a total deadline for the whole fan-out plus a
//!    per-source deadline, measured on the injectable
//!    [`lake_core::retry::Clock`] so tests replay deterministically;
//! 2. a [`lake_core::retry::RetryPolicy`] absorbing transient source
//!    errors (carried in [`DegradationConfig`]);
//! 3. a per-backend [`CircuitBreaker`]: Closed → Open after a run of
//!    consecutive failures, Open → HalfOpen probe once a cooldown has
//!    elapsed, HalfOpen → Closed on probe success (or back to Open on
//!    probe failure). Breaker state is shared across queries via the
//!    engine, so a dead backend stops being hammered after a few queries.
//!
//! What a skipped source *means* is recorded in a [`Completeness`] report
//! on [`crate::federated::ExecStats`], so callers can distinguish exact
//! answers from degraded ones instead of being silently short-changed.

use lake_store::StoreKind;
use std::collections::BTreeMap;
use lake_core::sync::{rank, OrderedMutex};

/// Why a source contributed nothing to a degraded answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SkipReason {
    /// The source's circuit breaker was open; no fetch was attempted.
    BreakerOpen,
    /// The fetch completed but took longer than the per-source deadline;
    /// its rows arrived too late to merge.
    Timeout,
    /// The query's total deadline expired before this source was reached.
    Deadline,
    /// The fetch failed (after exhausting the retry budget, if the error
    /// was transient).
    Failed,
}

impl SkipReason {
    /// Stable label used in metrics and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            SkipReason::BreakerOpen => "breaker_open",
            SkipReason::Timeout => "timeout",
            SkipReason::Deadline => "deadline",
            SkipReason::Failed => "failed",
        }
    }
}

/// One source that was skipped during a degraded execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkippedSource {
    /// The source's location (table / collection / object key).
    pub location: String,
    /// Which substrate it lives in.
    pub kind: StoreKind,
    /// Why it was skipped.
    pub reason: SkipReason,
}

/// Completeness report of one federated execution: which sources
/// answered, which were skipped and why, and whether the merged table may
/// therefore be missing rows.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Completeness {
    /// Sources that answered within budget.
    pub sources_ok: usize,
    /// Sources skipped (for any [`SkipReason`]).
    pub skipped: Vec<SkippedSource>,
    /// True when any source was skipped: rows that source would have
    /// contributed are absent from the answer.
    pub is_partial: bool,
}

impl Completeness {
    /// Sources skipped for `reason`.
    pub fn skipped_for(&self, reason: SkipReason) -> usize {
        self.skipped.iter().filter(|s| s.reason == reason).count()
    }

    /// Sources whose answer arrived after the per-source deadline.
    pub fn timed_out(&self) -> usize {
        self.skipped_for(SkipReason::Timeout)
    }

    /// Total sources consulted (answered + skipped).
    pub fn sources_total(&self) -> usize {
        self.sources_ok + self.skipped.len()
    }

    /// Fold another report into this one (used by joins, whose two sides
    /// execute as independent fan-outs).
    pub fn merge(&mut self, other: &Completeness) {
        self.sources_ok += other.sources_ok;
        self.skipped.extend(other.skipped.iter().cloned());
        self.is_partial |= other.is_partial;
    }

    /// One-line human rendering: `3/4 sources (skipped orders_docs: failed)`.
    pub fn render(&self) -> String {
        if self.skipped.is_empty() {
            return format!("{}/{} sources", self.sources_ok, self.sources_total());
        }
        let detail: Vec<String> = self
            .skipped
            .iter()
            .map(|s| format!("{}: {}", s.location, s.reason.name()))
            .collect();
        format!(
            "{}/{} sources (skipped {})",
            self.sources_ok,
            self.sources_total(),
            detail.join(", ")
        )
    }
}

/// Deadlines for one federated execution, measured on the engine's clock.
/// `None` disables the respective check.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryBudget {
    /// Upper bound on the whole fan-out, in milliseconds. Sources not yet
    /// consulted when it expires are skipped with [`SkipReason::Deadline`].
    pub total_ms: Option<u64>,
    /// Upper bound on a single source fetch (including its retries), in
    /// milliseconds. A fetch that finishes late is discarded with
    /// [`SkipReason::Timeout`] and counts as a breaker failure.
    pub per_source_ms: Option<u64>,
}

impl QueryBudget {
    /// No deadlines at all.
    pub fn unlimited() -> QueryBudget {
        QueryBudget::default()
    }

    /// Set the total fan-out deadline.
    pub fn with_total_ms(mut self, ms: u64) -> QueryBudget {
        self.total_ms = Some(ms);
        self
    }

    /// Set the per-source deadline.
    pub fn with_per_source_ms(mut self, ms: u64) -> QueryBudget {
        self.per_source_ms = Some(ms);
        self
    }
}

/// Breaker thresholds shared by all backends of one engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip a Closed breaker to Open.
    pub failure_threshold: u32,
    /// How long an Open breaker rejects before allowing one HalfOpen
    /// probe, in milliseconds.
    pub cooldown_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig { failure_threshold: 3, cooldown_ms: 1_000 }
    }
}

/// A breaker's observable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow; failures are counted.
    Closed,
    /// Requests are rejected without touching the backend.
    Open,
    /// The cooldown elapsed; exactly the next request probes the backend.
    HalfOpen,
}

impl BreakerState {
    /// Stable label used in gauges and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    /// Gauge encoding: 0 = closed, 1 = open, 2 = half-open.
    pub fn gauge_value(self) -> i64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }
}

/// The admission decision for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Breaker closed: proceed normally.
    Allow,
    /// Breaker half-open: proceed, but this is the single probe — its
    /// outcome decides whether the breaker closes or re-opens.
    Probe,
    /// Breaker open: do not touch the backend.
    Deny,
}

#[derive(Debug, Clone)]
struct BreakerCell {
    state: BreakerState,
    consecutive_failures: u32,
    /// Virtual time (micros) at which the breaker last opened.
    opened_at_us: u64,
}

impl Default for BreakerCell {
    fn default() -> BreakerCell {
        BreakerCell { state: BreakerState::Closed, consecutive_failures: 0, opened_at_us: 0 }
    }
}

/// A set of per-backend circuit breakers keyed by source location.
///
/// All transitions happen synchronously inside [`CircuitBreaker::admit`] /
/// [`CircuitBreaker::record`] driven by the caller's clock reading, so the
/// state machine is fully deterministic under a
/// [`lake_core::retry::ManualClock`]: no background timers, no wall time.
#[derive(Debug)]
pub struct CircuitBreaker {
    cells: OrderedMutex<BTreeMap<String, BreakerCell>>,
}

impl Default for CircuitBreaker {
    fn default() -> CircuitBreaker {
        CircuitBreaker::new()
    }
}

impl CircuitBreaker {
    /// A breaker set with every backend Closed.
    pub fn new() -> CircuitBreaker {
        CircuitBreaker {
            cells: OrderedMutex::new(BTreeMap::new(), rank::QUERY_BREAKER, "query.breaker.cells"),
        }
    }

    /// Should a request to `key` proceed at virtual time `now_us`?
    /// An Open breaker whose cooldown has elapsed transitions to HalfOpen
    /// here and admits the request as the probe.
    pub fn admit(&self, key: &str, cfg: &BreakerConfig, now_us: u64) -> Admission {
        let mut cells = self.cells.lock();
        let cell = cells.entry(key.to_string()).or_default();
        match cell.state {
            BreakerState::Closed => Admission::Allow,
            BreakerState::HalfOpen => Admission::Probe,
            BreakerState::Open => {
                let cooldown_us = cfg.cooldown_ms.saturating_mul(1_000);
                if now_us.saturating_sub(cell.opened_at_us) >= cooldown_us {
                    cell.state = BreakerState::HalfOpen;
                    Admission::Probe
                } else {
                    Admission::Deny
                }
            }
        }
    }

    /// Record the outcome of an admitted request; returns the resulting
    /// state so callers can export it as a gauge.
    pub fn record(
        &self,
        key: &str,
        cfg: &BreakerConfig,
        now_us: u64,
        success: bool,
    ) -> BreakerState {
        let mut cells = self.cells.lock();
        let cell = cells.entry(key.to_string()).or_default();
        if success {
            cell.state = BreakerState::Closed;
            cell.consecutive_failures = 0;
        } else {
            cell.consecutive_failures = cell.consecutive_failures.saturating_add(1);
            let tripped = match cell.state {
                // A failed probe re-opens immediately.
                BreakerState::HalfOpen => true,
                BreakerState::Closed => cell.consecutive_failures >= cfg.failure_threshold,
                BreakerState::Open => true,
            };
            if tripped {
                cell.state = BreakerState::Open;
                cell.opened_at_us = now_us;
            }
        }
        cell.state
    }

    /// The state of `key`'s breaker (Closed if never consulted).
    pub fn state(&self, key: &str) -> BreakerState {
        self.cells.lock().get(key).map(|c| c.state).unwrap_or(BreakerState::Closed)
    }

    /// Snapshot of every breaker: (key, state, consecutive failures).
    pub fn status(&self) -> Vec<(String, BreakerState, u32)> {
        self.cells.lock()
            .iter()
            .map(|(k, c)| (k.clone(), c.state, c.consecutive_failures))
            .collect()
    }
}

/// Resource budget for one quota key (a tenant, a source, a principal).
/// `None` disables the respective limit.
///
/// Quotas are **count-based**, not time-based: a ledger charged with the
/// same multiset of requests always ends in the same state regardless of
/// thread interleaving, which is what makes multi-tenant admission
/// replayable under the chaos harnesses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuotaConfig {
    /// Upper bound on granted requests for the key.
    pub max_requests: Option<u64>,
    /// Upper bound on granted payload bytes for the key.
    pub max_bytes: Option<u64>,
}

impl QuotaConfig {
    /// No limits.
    pub fn unlimited() -> QuotaConfig {
        QuotaConfig::default()
    }

    /// Cap the number of granted requests.
    pub fn with_max_requests(mut self, n: u64) -> QuotaConfig {
        self.max_requests = Some(n);
        self
    }

    /// Cap the granted payload bytes.
    pub fn with_max_bytes(mut self, n: u64) -> QuotaConfig {
        self.max_bytes = Some(n);
        self
    }
}

/// The outcome of charging one request against a key's quota.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuotaDecision {
    /// The request fits; the ledger consumed one request and its bytes.
    Granted,
    /// The key's request budget is exhausted; nothing was consumed.
    RequestsExhausted,
    /// The key's byte budget cannot fit this payload; nothing was consumed.
    BytesExhausted,
}

impl QuotaDecision {
    /// Stable label used in metrics and typed rejections.
    pub fn name(self) -> &'static str {
        match self {
            QuotaDecision::Granted => "granted",
            QuotaDecision::RequestsExhausted => "quota_requests",
            QuotaDecision::BytesExhausted => "quota_bytes",
        }
    }

    /// `true` when the request may proceed.
    pub fn is_granted(self) -> bool {
        matches!(self, QuotaDecision::Granted)
    }
}

/// Consumption recorded for one quota key.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuotaUsage {
    /// Requests granted so far.
    pub requests: u64,
    /// Payload bytes granted so far.
    pub bytes: u64,
    /// Requests rejected (for either exhausted budget).
    pub rejected: u64,
}

/// A per-key quota ledger: each key (tenant, source, …) consumes from its
/// own [`QuotaConfig`] budget, so one abusive key cannot starve others.
///
/// All accounting happens under one short lock, and decisions depend only
/// on the key's own totals — never on wall time or arrival order across
/// keys — so for a fixed per-key request multiset the final
/// [`QuotaUsage`] is deterministic under any interleaving. The server's
/// `quota_prop` suite replays this property across seeds and worker
/// counts.
#[derive(Debug)]
pub struct QuotaLedger {
    cells: OrderedMutex<BTreeMap<String, QuotaUsage>>,
}

impl Default for QuotaLedger {
    fn default() -> QuotaLedger {
        QuotaLedger::new()
    }
}

impl QuotaLedger {
    /// A ledger with no consumption recorded.
    pub fn new() -> QuotaLedger {
        QuotaLedger {
            cells: OrderedMutex::new(BTreeMap::new(), rank::QUERY_QUOTA, "query.quota.cells"),
        }
    }

    /// Charge one request of `bytes` payload against `key` under `cfg`.
    /// Request budget is checked before byte budget; a rejection consumes
    /// nothing (beyond the `rejected` count).
    pub fn charge(&self, key: &str, cfg: &QuotaConfig, bytes: u64) -> QuotaDecision {
        let mut cells = self.cells.lock();
        let cell = cells.entry(key.to_string()).or_default();
        if cfg.max_requests.is_some_and(|max| cell.requests >= max) {
            cell.rejected = cell.rejected.saturating_add(1);
            return QuotaDecision::RequestsExhausted;
        }
        if cfg.max_bytes.is_some_and(|max| cell.bytes.saturating_add(bytes) > max) {
            cell.rejected = cell.rejected.saturating_add(1);
            return QuotaDecision::BytesExhausted;
        }
        cell.requests += 1;
        cell.bytes = cell.bytes.saturating_add(bytes);
        QuotaDecision::Granted
    }

    /// Consumption recorded for `key` (zeroes if never charged).
    pub fn usage(&self, key: &str) -> QuotaUsage {
        self.cells.lock().get(key).copied().unwrap_or_default()
    }

    /// Snapshot of every key's consumption, sorted by key.
    pub fn snapshot(&self) -> Vec<(String, QuotaUsage)> {
        self.cells.lock().iter().map(|(k, u)| (k.clone(), *u)).collect()
    }
}

/// The full degradation configuration attached to an engine with
/// [`crate::federated::FederatedEngine::with_degradation`].
#[derive(Debug, Clone)]
pub struct DegradationConfig {
    /// Deadlines for each execution.
    pub budget: QueryBudget,
    /// Breaker thresholds (state itself lives on the engine).
    pub breaker: BreakerConfig,
    /// Retry policy for transient source errors.
    pub retry: lake_core::retry::RetryPolicy,
    /// When true, any would-be skip surfaces as an error instead —
    /// today's fail-fast semantics, with the budget/breaker machinery
    /// still protecting the backends.
    pub strict: bool,
}

impl Default for DegradationConfig {
    fn default() -> DegradationConfig {
        DegradationConfig {
            budget: QueryBudget::unlimited(),
            breaker: BreakerConfig::default(),
            retry: lake_core::retry::RetryPolicy::default(),
            strict: false,
        }
    }
}

impl DegradationConfig {
    /// Degraded (skip-and-report) mode with default thresholds.
    pub fn degraded() -> DegradationConfig {
        DegradationConfig::default()
    }

    /// Fail-fast mode: budget and breaker still run, but every skip is an
    /// error.
    pub fn strict() -> DegradationConfig {
        DegradationConfig { strict: true, ..DegradationConfig::default() }
    }

    /// Replace the budget.
    pub fn with_budget(mut self, budget: QueryBudget) -> DegradationConfig {
        self.budget = budget;
        self
    }

    /// Replace the breaker thresholds.
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> DegradationConfig {
        self.breaker = breaker;
        self
    }

    /// Replace the retry policy.
    pub fn with_retry(mut self, retry: lake_core::retry::RetryPolicy) -> DegradationConfig {
        self.retry = retry;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CFG: BreakerConfig = BreakerConfig { failure_threshold: 2, cooldown_ms: 10 };

    #[test]
    fn breaker_trips_after_consecutive_failures() {
        let br = CircuitBreaker::new();
        assert_eq!(br.admit("s", &CFG, 0), Admission::Allow);
        assert_eq!(br.record("s", &CFG, 0, false), BreakerState::Closed);
        assert_eq!(br.admit("s", &CFG, 0), Admission::Allow);
        assert_eq!(br.record("s", &CFG, 0, false), BreakerState::Open);
        assert_eq!(br.admit("s", &CFG, 1_000), Admission::Deny);
    }

    #[test]
    fn success_resets_the_failure_run() {
        let br = CircuitBreaker::new();
        br.record("s", &CFG, 0, false);
        br.record("s", &CFG, 0, true);
        // The run restarts: one more failure is below the threshold.
        assert_eq!(br.record("s", &CFG, 0, false), BreakerState::Closed);
    }

    #[test]
    fn cooldown_elapses_into_half_open_probe() {
        let br = CircuitBreaker::new();
        br.record("s", &CFG, 0, false);
        br.record("s", &CFG, 0, false); // open at t=0
        assert_eq!(br.admit("s", &CFG, 9_999), Admission::Deny);
        assert_eq!(br.admit("s", &CFG, 10_000), Admission::Probe);
        assert_eq!(br.state("s"), BreakerState::HalfOpen);
        // Probe success closes.
        assert_eq!(br.record("s", &CFG, 10_000, true), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens_with_fresh_cooldown() {
        let br = CircuitBreaker::new();
        br.record("s", &CFG, 0, false);
        br.record("s", &CFG, 0, false);
        assert_eq!(br.admit("s", &CFG, 10_000), Admission::Probe);
        assert_eq!(br.record("s", &CFG, 10_000, false), BreakerState::Open);
        // Cooldown restarts from the re-open time.
        assert_eq!(br.admit("s", &CFG, 19_999), Admission::Deny);
        assert_eq!(br.admit("s", &CFG, 20_000), Admission::Probe);
    }

    #[test]
    fn breakers_are_independent_per_key() {
        let br = CircuitBreaker::new();
        br.record("a", &CFG, 0, false);
        br.record("a", &CFG, 0, false);
        assert_eq!(br.state("a"), BreakerState::Open);
        assert_eq!(br.state("b"), BreakerState::Closed);
        assert_eq!(br.admit("b", &CFG, 0), Admission::Allow);
        let status = br.status();
        assert_eq!(status.len(), 2);
    }

    #[test]
    fn quota_ledger_charges_and_rejects_per_key() {
        let ledger = QuotaLedger::new();
        let cfg = QuotaConfig::unlimited().with_max_requests(2).with_max_bytes(100);
        assert_eq!(ledger.charge("t1", &cfg, 40), QuotaDecision::Granted);
        assert_eq!(ledger.charge("t1", &cfg, 40), QuotaDecision::Granted);
        // Request budget hit before byte budget.
        assert_eq!(ledger.charge("t1", &cfg, 1), QuotaDecision::RequestsExhausted);
        let u = ledger.usage("t1");
        assert_eq!((u.requests, u.bytes, u.rejected), (2, 80, 1));
        // Keys are independent.
        assert_eq!(ledger.charge("t2", &cfg, 99), QuotaDecision::Granted);
        assert_eq!(ledger.charge("t2", &cfg, 2), QuotaDecision::BytesExhausted);
        assert_eq!(ledger.usage("t2").bytes, 99, "rejection consumes nothing");
        assert_eq!(ledger.snapshot().len(), 2);
        // An unlimited config never rejects.
        let open = QuotaConfig::unlimited();
        for _ in 0..10 {
            assert!(ledger.charge("t3", &open, u64::MAX / 4).is_granted());
        }
        assert_eq!(ledger.usage("t3").rejected, 0);
    }

    #[test]
    fn quota_decision_names_are_stable() {
        assert_eq!(QuotaDecision::Granted.name(), "granted");
        assert_eq!(QuotaDecision::RequestsExhausted.name(), "quota_requests");
        assert_eq!(QuotaDecision::BytesExhausted.name(), "quota_bytes");
        assert!(QuotaDecision::Granted.is_granted());
        assert!(!QuotaDecision::BytesExhausted.is_granted());
    }

    #[test]
    fn completeness_merge_and_render() {
        let mut a = Completeness { sources_ok: 2, skipped: vec![], is_partial: false };
        let b = Completeness {
            sources_ok: 1,
            skipped: vec![SkippedSource {
                location: "orders_docs".into(),
                kind: StoreKind::Document,
                reason: SkipReason::Failed,
            }],
            is_partial: true,
        };
        a.merge(&b);
        assert_eq!(a.sources_ok, 3);
        assert!(a.is_partial);
        assert_eq!(a.sources_total(), 4);
        assert_eq!(a.skipped_for(SkipReason::Failed), 1);
        assert_eq!(a.render(), "3/4 sources (skipped orders_docs: failed)");
        let clean = Completeness { sources_ok: 3, ..Completeness::default() };
        assert_eq!(clean.render(), "3/3 sources");
    }
}
