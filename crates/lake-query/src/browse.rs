//! Incremental exploration (Constance, §7.2): "a user can first browse
//! the existing data sources, including their description, statistics,
//! and schema; then she can write a query for a single dataset."
//!
//! [`DatasetSummary`] is the browse card for one dataset — enough for a
//! user to decide whether to query it, without loading it wholesale.

use lake_core::stats::NumericSummary;
use lake_core::{Dataset, Schema};

/// The per-column statistics shown while browsing.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStat {
    /// Column name.
    pub name: String,
    /// Type name.
    pub dtype: String,
    /// Distinct values.
    pub distinct: usize,
    /// Null fraction.
    pub null_fraction: f64,
    /// Numeric range, when applicable.
    pub numeric: Option<NumericSummary>,
    /// A few example values (rendered).
    pub examples: Vec<String>,
}

/// The browse card for one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSummary {
    /// Dataset shape ("table", "documents", …).
    pub kind: String,
    /// Record count.
    pub records: usize,
    /// Inferred schema (tables) or None.
    pub schema: Option<Schema>,
    /// Per-column statistics (tables only).
    pub columns: Vec<ColumnStat>,
    /// A short free-text description of structure for non-tabular data.
    pub structure_note: String,
}

/// Build the browse card for a dataset.
pub fn summarize(dataset: &Dataset) -> DatasetSummary {
    match dataset {
        Dataset::Table(t) => {
            let columns = t
                .columns()
                .iter()
                .map(|c| {
                    let numeric_vals = c.numeric_values();
                    let mut examples: Vec<String> =
                        c.text_domain().into_iter().take(3).collect();
                    examples.sort();
                    ColumnStat {
                        name: c.name.clone(),
                        dtype: c.inferred_type().name().to_string(),
                        distinct: c.cardinality(),
                        null_fraction: if c.is_empty() {
                            0.0
                        } else {
                            c.null_count() as f64 / c.len() as f64
                        },
                        numeric: NumericSummary::of(&numeric_vals),
                        examples,
                    }
                })
                .collect();
            DatasetSummary {
                kind: "table".into(),
                records: t.num_rows(),
                schema: Some(t.schema()),
                columns,
                structure_note: format!("{} columns × {} rows", t.num_columns(), t.num_rows()),
            }
        }
        Dataset::Documents(docs) => DatasetSummary {
            kind: "documents".into(),
            records: docs.len(),
            schema: None,
            columns: Vec::new(),
            structure_note: format!(
                "{} documents, max depth {}, mean leaves {:.1}",
                docs.len(),
                docs.iter().map(|d| d.depth()).max().unwrap_or(0),
                if docs.is_empty() {
                    0.0
                } else {
                    docs.iter().map(|d| d.leaf_count()).sum::<usize>() as f64 / docs.len() as f64
                }
            ),
        },
        Dataset::Graph(g) => DatasetSummary {
            kind: "graph".into(),
            records: g.node_count(),
            schema: None,
            columns: Vec::new(),
            structure_note: format!("{} nodes, {} edges", g.node_count(), g.edge_count()),
        },
        Dataset::Log(lines) => DatasetSummary {
            kind: "log".into(),
            records: lines.len(),
            schema: None,
            columns: Vec::new(),
            structure_note: format!("{} log lines", lines.len()),
        },
        Dataset::Text(t) => DatasetSummary {
            kind: "text".into(),
            records: 1,
            schema: None,
            columns: Vec::new(),
            structure_note: format!("{} characters of free text", t.len()),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lake_core::{Table, Value};

    #[test]
    fn table_summary_has_stats_and_schema() {
        let t = Table::from_rows(
            "t",
            &["city", "pop"],
            vec![
                vec![Value::str("delft"), Value::Int(100)],
                vec![Value::str("paris"), Value::Null],
                vec![Value::str("delft"), Value::Int(300)],
            ],
        )
        .unwrap();
        let s = summarize(&Dataset::Table(t));
        assert_eq!(s.kind, "table");
        assert_eq!(s.records, 3);
        let city = &s.columns[0];
        assert_eq!(city.distinct, 2);
        assert!(city.examples.contains(&"delft".to_string()));
        let pop = &s.columns[1];
        assert!((pop.null_fraction - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(pop.numeric.unwrap().max, 300.0);
        assert!(s.schema.is_some());
    }

    #[test]
    fn non_tabular_summaries_describe_structure() {
        let docs = Dataset::Documents(vec![
            lake_core::Json::obj(vec![("a", lake_core::Json::Num(1.0))]),
        ]);
        let s = summarize(&docs);
        assert_eq!(s.kind, "documents");
        assert!(s.structure_note.contains("max depth 1"));

        let s2 = summarize(&Dataset::Log(vec!["x".into(), "y".into()]));
        assert_eq!(s2.records, 2);
        let s3 = summarize(&Dataset::Text("hello".into()));
        assert!(s3.structure_note.contains("5 characters"));
    }
}
