//! Property suite for the simulator's three load-bearing invariants:
//!
//! 1. **Virtual-time order** — the engine never processes an event at an
//!    earlier virtual time than one it already processed, for any
//!    workload shape, seed, policy, and worker count.
//! 2. **Determinism** — the same seed replays byte-identically whether
//!    the policy comparison fans out over 1, 2, 4, or 8 host workers
//!    (simulated worker count is part of the scenario; *host* fan-out
//!    must never be observable).
//! 3. **Conservation** — `submitted == completed + rejected` for every
//!    policy, including under a finite queue capacity that forces real
//!    rejections.

use lake_core::par::Parallelism;
use lake_core::ManualClock;
use lake_sched::{
    compare, run, synthesize, CostModel, PolicyKind, SimConfig, TraceShape,
};
use proptest::prelude::*;

const HOST_WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn shape_for(pick: u8) -> TraceShape {
    match pick % 3 {
        0 => TraceShape::Uniform,
        1 => TraceShape::Bursty,
        _ => TraceShape::HeavyTail,
    }
}

proptest! {
    // Events never process out of virtual-time order, and the clock the
    // engine drives ends exactly at the makespan.
    #[test]
    fn events_process_in_virtual_time_order(
        seed in any::<u64>(),
        jobs in 1usize..150,
        tenants in 1usize..9,
        sim_workers in 1usize..9,
        pick in 0u8..3,
    ) {
        let trace = synthesize(shape_for(pick), seed, jobs, tenants, &CostModel::server_default());
        for kind in PolicyKind::all() {
            let clock = ManualClock::new();
            let mut policy = kind.build();
            let r = run(
                &SimConfig { workers: sim_workers, queue_capacity: 0 },
                policy.as_mut(),
                trace.to_jobs(Some(4)),
                &clock,
            );
            prop_assert!(
                r.event_times.windows(2).all(|w| w[0] <= w[1]),
                "{:?} processed events out of order: {:?}", kind, r.event_times
            );
            prop_assert_eq!(r.event_times.last().copied().unwrap_or(0), r.makespan_us);
            prop_assert_eq!(r.completed, jobs as u64);
        }
    }

    // The comparison table is a pure function of the traces: any host
    // worker count produces the same bytes, rendered and serialized.
    #[test]
    fn same_seed_replay_is_byte_identical_across_host_workers(
        seed in any::<u64>(),
        jobs in 1usize..120,
        tenants in 1usize..7,
        pick in 0u8..3,
    ) {
        let shape = shape_for(pick);
        let trace = synthesize(shape, seed, jobs, tenants, &CostModel::server_default());
        let traces = vec![(shape.name().to_string(), trace.to_jobs(Some(4)))];
        let cfg = SimConfig { workers: 4, queue_capacity: 0 };
        let baseline = compare(&traces, &PolicyKind::all(), &cfg, Parallelism::fixed(1));
        let baseline_json = baseline.to_json().to_string();
        let baseline_text = baseline.render();
        for w in HOST_WORKER_COUNTS {
            let other = compare(&traces, &PolicyKind::all(), &cfg, Parallelism::fixed(w));
            prop_assert_eq!(&other.to_json().to_string(), &baseline_json);
            prop_assert_eq!(&other.render(), &baseline_text);
        }
    }

    // submitted == completed + rejected for every policy, with a queue
    // capacity small enough to reject under bursts; nothing vanishes and
    // nothing is double-counted.
    #[test]
    fn jobs_are_conserved_under_capacity_pressure(
        seed in any::<u64>(),
        jobs in 1usize..150,
        tenants in 1usize..9,
        sim_workers in 1usize..5,
        capacity in 1usize..8,
        pick in 0u8..3,
    ) {
        let trace = synthesize(shape_for(pick), seed, jobs, tenants, &CostModel::server_default());
        for kind in PolicyKind::all() {
            let mut policy = kind.build();
            let r = run(
                &SimConfig { workers: sim_workers, queue_capacity: capacity },
                policy.as_mut(),
                trace.to_jobs(None),
                &ManualClock::new(),
            );
            prop_assert_eq!(r.submitted, jobs as u64);
            prop_assert!(r.is_conserved(), "{:?}: {} != {} + {}",
                kind, r.submitted, r.completed, r.rejected);
            // The queue never held more than `capacity`, so every
            // sojourn is bounded by (capacity + 1) service maxima.
            prop_assert_eq!(r.sojourns_us.len(), r.completed as usize);
        }
    }
}
