//! The policy-comparison harness: run every (trace × policy) cell,
//! collect one [`PolicyRow`] per cell, and render/serialize the result
//! deterministically.
//!
//! [`compare`] fans the cross product out through `lake_core::par`, which
//! reassembles results in submission order regardless of the host worker
//! count — so the table is byte-identical under `RUSTLAKE_WORKERS=1` and
//! `=8`, which `scripts/sched.sh` gates on. Every rendered number is an
//! integer (the fairness index is pre-scaled ×1000 in the engine), so no
//! float formatting can perturb the bytes.

use crate::cost::Job;
use crate::policy::PolicyKind;
use crate::sim::{run, SimConfig, SimResult};
use lake_core::par::{self, Parallelism};
use lake_core::{Json, ManualClock};
use lake_obs::MetricsRegistry;
use std::fmt::Write as _;

/// One (trace, policy) cell of the comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyRow {
    /// Trace label (`"swarm"`, `"uniform"`, …).
    pub trace: String,
    /// The full simulation measurement for this cell.
    pub result: SimResult,
}

impl PolicyRow {
    /// Canonical JSON for the summary fields (per-job vectors stay out of
    /// the envelope — they are measurement internals, not table data).
    pub fn to_json(&self) -> Json {
        let n = |v: u64| Json::Num(v as f64);
        Json::obj(vec![
            ("completed", n(self.result.completed)),
            ("deadline_misses", n(self.result.deadline_misses)),
            ("fairness_millis", n(self.result.fairness_millis)),
            ("makespan_us", n(self.result.makespan_us)),
            ("mean_sojourn_us", n(self.result.mean_sojourn_us)),
            ("p50_sojourn_us", n(self.result.p50_sojourn_us)),
            ("p99_sojourn_us", n(self.result.p99_sojourn_us)),
            ("policy", Json::str(self.result.policy.clone())),
            ("rejected", n(self.result.rejected)),
            ("submitted", n(self.result.submitted)),
            ("trace", Json::str(self.trace.clone())),
            ("workers", n(self.result.workers as u64)),
        ])
    }
}

/// The full comparison: one row per (trace × policy) cell, in the
/// deterministic order traces-major, policies-minor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PolicyTable {
    /// The rows.
    pub rows: Vec<PolicyRow>,
}

impl PolicyTable {
    /// Canonical JSON envelope (`{"rows": [...]}`)
    pub fn to_json(&self) -> Json {
        Json::obj(vec![(
            "rows",
            Json::Array(self.rows.iter().map(PolicyRow::to_json).collect()),
        )])
    }

    /// Fixed-width text table, integers only — byte-stable across runs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<12} {:<9} {:>4} {:>6} {:>6} {:>5} {:>12} {:>9} {:>9} {:>9} {:>6} {:>7}",
            "trace",
            "policy",
            "wrk",
            "jobs",
            "done",
            "rej",
            "makespan_us",
            "mean_us",
            "p50_us",
            "p99_us",
            "miss",
            "fair_m",
        );
        for row in &self.rows {
            let r = &row.result;
            let _ = writeln!(
                out,
                "{:<12} {:<9} {:>4} {:>6} {:>6} {:>5} {:>12} {:>9} {:>9} {:>9} {:>6} {:>7}",
                row.trace,
                r.policy,
                r.workers,
                r.submitted,
                r.completed,
                r.rejected,
                r.makespan_us,
                r.mean_sojourn_us,
                r.p50_sojourn_us,
                r.p99_sojourn_us,
                r.deadline_misses,
                r.fairness_millis,
            );
        }
        out
    }

    /// Record every row into `registry` under the `lake_sched_*` family.
    pub fn record_to(&self, registry: &MetricsRegistry) {
        for row in &self.rows {
            row.result.record_to(registry);
        }
    }
}

/// Simulate every trace under every policy on `cfg.workers` simulated
/// workers, fanning the cells out across `host_par` host workers. Each
/// cell gets a fresh policy and a fresh [`ManualClock`], so cells are
/// independent and the fan-out order cannot leak between them; `par::map`
/// reassembles in cross-product order, so the table is identical for any
/// host worker count.
pub fn compare(
    traces: &[(String, Vec<Job>)],
    policies: &[PolicyKind],
    cfg: &SimConfig,
    host_par: Parallelism,
) -> PolicyTable {
    let cells: Vec<(usize, PolicyKind)> = (0..traces.len())
        .flat_map(|t| policies.iter().map(move |p| (t, *p)))
        .collect();
    let rows = par::map(host_par, &cells, |(t, kind)| {
        let (name, jobs) = match traces.get(*t) {
            Some(cell) => (cell.0.clone(), cell.1.clone()),
            None => (String::new(), Vec::new()),
        };
        let clock = ManualClock::new();
        let mut policy = kind.build();
        let result = run(cfg, policy.as_mut(), jobs, &clock);
        PolicyRow { trace: name, result }
    });
    PolicyTable { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::trace::{synthesize, TraceShape};

    fn traces() -> Vec<(String, Vec<Job>)> {
        let model = CostModel::server_default();
        [TraceShape::Uniform, TraceShape::Bursty, TraceShape::HeavyTail]
            .iter()
            .map(|s| {
                let t = synthesize(*s, 42, 120, 6, &model);
                (s.name().to_string(), t.to_jobs(Some(4)))
            })
            .collect()
    }

    #[test]
    fn table_covers_the_cross_product_in_order() {
        let table = compare(
            &traces(),
            &PolicyKind::all(),
            &SimConfig { workers: 4, queue_capacity: 0 },
            Parallelism::sequential(),
        );
        assert_eq!(table.rows.len(), 12);
        let labels: Vec<(String, String)> = table
            .rows
            .iter()
            .map(|r| (r.trace.clone(), r.result.policy.clone()))
            .collect();
        assert_eq!(labels[0], ("uniform".to_string(), "fifo".to_string()));
        assert_eq!(labels[3], ("uniform".to_string(), "deadline".to_string()));
        assert_eq!(labels[4], ("bursty".to_string(), "fifo".to_string()));
        assert_eq!(labels[11], ("heavy_tail".to_string(), "deadline".to_string()));
    }

    #[test]
    fn table_bytes_are_identical_across_host_worker_counts() {
        let cfg = SimConfig { workers: 4, queue_capacity: 0 };
        let traces = traces();
        let baseline = compare(&traces, &PolicyKind::all(), &cfg, Parallelism::fixed(1));
        for w in [2usize, 4, 8] {
            let other = compare(&traces, &PolicyKind::all(), &cfg, Parallelism::fixed(w));
            assert_eq!(
                other.to_json().to_string(),
                baseline.to_json().to_string(),
                "host workers {w}"
            );
            assert_eq!(other.render(), baseline.render(), "host workers {w}");
        }
    }

    #[test]
    fn render_is_integer_only_and_aligned() {
        let table = compare(
            &traces(),
            &[PolicyKind::Fifo],
            &SimConfig { workers: 2, queue_capacity: 0 },
            Parallelism::sequential(),
        );
        let text = table.render();
        assert!(text.contains("trace"), "header present");
        assert!(!text.contains('.'), "no float formatting anywhere");
        let widths: Vec<usize> = text.lines().map(str::len).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "aligned rows: {widths:?}");
    }

    #[test]
    fn record_to_accumulates_all_rows() {
        let registry = MetricsRegistry::new();
        let table = compare(
            &traces(),
            &PolicyKind::all(),
            &SimConfig { workers: 4, queue_capacity: 0 },
            Parallelism::sequential(),
        );
        table.record_to(&registry);
        let snap = registry.snapshot();
        // 3 traces × 120 jobs per policy label.
        assert_eq!(snap.counter_value_with("lake_sched_jobs_total", &[("policy", "fifo")]), 360);
        assert_eq!(snap.counter_value_with("lake_sched_jobs_total", &[("policy", "sjf")]), 360);
    }
}
