//! Pluggable scheduling policies behind the [`SchedPolicy`] trait.
//!
//! A policy owns the ready queue: the simulator hands it every arrived
//! job ([`SchedPolicy::submit`]) and asks for the next job to run when a
//! worker frees up ([`SchedPolicy::next`]). All four built-ins are
//! non-preemptive and **deterministic**: every ordering ties on the
//! job's unique id, so a replay of the same job multiset produces the
//! same dispatch sequence on every run and host worker count.
//!
//! * [`FifoPolicy`] — arrival order; the baseline every server queue is.
//! * [`SjfPolicy`] — shortest service demand first; minimizes mean
//!   sojourn on heavy-tailed mixes at the price of starving elephants.
//! * [`FairSharePolicy`] — round-robin across tenants (one job per
//!   tenant per cycle, FIFO within a tenant); bounds how far one greedy
//!   tenant can push everyone else's delay.
//! * [`DeadlinePolicy`] — earliest deadline first; jobs without
//!   deadlines run after every deadlined job, in arrival order.

use crate::cost::Job;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

/// The contract the simulator drives: buffer arrivals, yield the next
/// job to dispatch. `now_us` is passed so future policies can be
/// time-aware (aging, deadline dropping); the built-ins ignore it.
pub trait SchedPolicy {
    /// Stable policy label used in tables and metrics.
    fn name(&self) -> &'static str;

    /// Accept an arrived job into the ready queue.
    fn submit(&mut self, job: Job);

    /// Yield the next job to run at virtual time `now_us`, if any.
    fn next(&mut self, now_us: u64) -> Option<Job>;

    /// Jobs currently queued (admission capacity checks).
    fn queued(&self) -> usize;
}

/// First-in, first-out.
#[derive(Debug, Default)]
pub struct FifoPolicy {
    queue: VecDeque<Job>,
}

impl SchedPolicy for FifoPolicy {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn submit(&mut self, job: Job) {
        self.queue.push_back(job);
    }

    fn next(&mut self, _now_us: u64) -> Option<Job> {
        self.queue.pop_front()
    }

    fn queued(&self) -> usize {
        self.queue.len()
    }
}

/// Shortest job (service demand) first, ties by id.
#[derive(Debug, Default)]
pub struct SjfPolicy {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    jobs: BTreeMap<u64, Job>,
}

impl SchedPolicy for SjfPolicy {
    fn name(&self) -> &'static str {
        "sjf"
    }

    fn submit(&mut self, job: Job) {
        self.heap.push(Reverse((job.service_us, job.id)));
        self.jobs.insert(job.id, job);
    }

    fn next(&mut self, _now_us: u64) -> Option<Job> {
        let Reverse((_, id)) = self.heap.pop()?;
        self.jobs.remove(&id)
    }

    fn queued(&self) -> usize {
        self.jobs.len()
    }
}

/// Round-robin fair share across tenants: cycle tenants in name order,
/// serving one job (FIFO within the tenant) per visit.
#[derive(Debug, Default)]
pub struct FairSharePolicy {
    queues: BTreeMap<String, VecDeque<Job>>,
    /// Tenant served most recently; the next pick starts strictly after
    /// it in cyclic name order.
    cursor: Option<String>,
    queued: usize,
}

impl SchedPolicy for FairSharePolicy {
    fn name(&self) -> &'static str {
        "fair"
    }

    fn submit(&mut self, job: Job) {
        self.queues.entry(job.tenant.clone()).or_default().push_back(job);
        self.queued += 1;
    }

    fn next(&mut self, _now_us: u64) -> Option<Job> {
        if self.queued == 0 {
            return None;
        }
        // Candidate tenants strictly after the cursor, then wrap. BTreeMap
        // range scans keep this deterministic in tenant-name order.
        let after: Vec<String> = match &self.cursor {
            Some(c) => self
                .queues
                .range::<String, _>((
                    std::ops::Bound::Excluded(c.clone()),
                    std::ops::Bound::Unbounded,
                ))
                .filter(|(_, q)| !q.is_empty())
                .map(|(t, _)| t.clone())
                .take(1)
                .collect(),
            None => Vec::new(),
        };
        let tenant = after.into_iter().next().or_else(|| {
            self.queues
                .iter()
                .filter(|(_, q)| !q.is_empty())
                .map(|(t, _)| t.clone())
                .next()
        })?;
        let job = self.queues.get_mut(&tenant).and_then(VecDeque::pop_front)?;
        self.cursor = Some(tenant);
        self.queued -= 1;
        Some(job)
    }

    fn queued(&self) -> usize {
        self.queued
    }
}

/// Earliest deadline first; deadline-free jobs sort after all deadlined
/// jobs (treated as deadline `u64::MAX`), then by submit time, then id.
#[derive(Debug, Default)]
pub struct DeadlinePolicy {
    heap: BinaryHeap<Reverse<(u64, u64, u64)>>,
    jobs: BTreeMap<u64, Job>,
}

impl SchedPolicy for DeadlinePolicy {
    fn name(&self) -> &'static str {
        "deadline"
    }

    fn submit(&mut self, job: Job) {
        let key = (job.deadline_us.unwrap_or(u64::MAX), job.submit_us, job.id);
        self.heap.push(Reverse(key));
        self.jobs.insert(job.id, job);
    }

    fn next(&mut self, _now_us: u64) -> Option<Job> {
        let Reverse((_, _, id)) = self.heap.pop()?;
        self.jobs.remove(&id)
    }

    fn queued(&self) -> usize {
        self.jobs.len()
    }
}

/// Nameable policy constructors — the comparison harness fans out over
/// these, building a fresh stateful policy per simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// [`FifoPolicy`]
    Fifo,
    /// [`SjfPolicy`]
    Sjf,
    /// [`FairSharePolicy`]
    FairShare,
    /// [`DeadlinePolicy`]
    Deadline,
}

impl PolicyKind {
    /// Every built-in policy, in canonical table order.
    pub fn all() -> [PolicyKind; 4] {
        [PolicyKind::Fifo, PolicyKind::Sjf, PolicyKind::FairShare, PolicyKind::Deadline]
    }

    /// Stable label (matches the built policy's [`SchedPolicy::name`]).
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Fifo => "fifo",
            PolicyKind::Sjf => "sjf",
            PolicyKind::FairShare => "fair",
            PolicyKind::Deadline => "deadline",
        }
    }

    /// Construct a fresh policy instance.
    pub fn build(self) -> Box<dyn SchedPolicy + Send> {
        match self {
            PolicyKind::Fifo => Box::new(FifoPolicy::default()),
            PolicyKind::Sjf => Box::new(SjfPolicy::default()),
            PolicyKind::FairShare => Box::new(FairSharePolicy::default()),
            PolicyKind::Deadline => Box::new(DeadlinePolicy::default()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::JobKind;

    fn job(id: u64, tenant: &str, submit: u64, service: u64) -> Job {
        Job::new(id, tenant, JobKind::Query, submit, service)
    }

    fn drain(p: &mut dyn SchedPolicy) -> Vec<u64> {
        let mut out = Vec::new();
        while let Some(j) = p.next(0) {
            out.push(j.id);
        }
        out
    }

    #[test]
    fn fifo_yields_submission_order() {
        let mut p = FifoPolicy::default();
        for id in [3u64, 1, 2] {
            p.submit(job(id, "t", id * 10, 100));
        }
        assert_eq!(p.queued(), 3);
        assert_eq!(drain(&mut p), vec![3, 1, 2]);
        assert_eq!(p.queued(), 0);
    }

    #[test]
    fn sjf_yields_shortest_first_with_id_ties() {
        let mut p = SjfPolicy::default();
        p.submit(job(1, "t", 0, 500));
        p.submit(job(2, "t", 0, 100));
        p.submit(job(3, "t", 0, 100));
        p.submit(job(4, "t", 0, 50));
        assert_eq!(drain(&mut p), vec![4, 2, 3, 1]);
    }

    #[test]
    fn fair_share_cycles_tenants_in_name_order() {
        let mut p = FairSharePolicy::default();
        p.submit(job(1, "b", 0, 1));
        p.submit(job(2, "a", 0, 1));
        p.submit(job(3, "a", 0, 1));
        p.submit(job(4, "c", 0, 1));
        p.submit(job(5, "a", 0, 1));
        // Cycle: a, b, c, a (wrap), a.
        assert_eq!(drain(&mut p), vec![2, 1, 4, 3, 5]);
    }

    #[test]
    fn deadline_orders_by_deadline_then_submit() {
        let mut p = DeadlinePolicy::default();
        p.submit(job(1, "t", 0, 100)); // no deadline → last
        p.submit(job(2, "t", 0, 100).with_deadline_slack(9)); // deadline 900
        p.submit(job(3, "t", 0, 100).with_deadline_slack(2)); // deadline 200
        p.submit(job(4, "t", 0, 100)); // no deadline, later id
        assert_eq!(drain(&mut p), vec![3, 2, 1, 4]);
    }

    #[test]
    fn kinds_build_their_named_policies() {
        for kind in PolicyKind::all() {
            let p = kind.build();
            assert_eq!(p.name(), kind.name());
            assert_eq!(p.queued(), 0);
        }
    }
}
