//! The discrete-event engine: virtual time, a binary-heap event queue,
//! simulated workers, and per-run statistics.
//!
//! Eudoxia-style: the lake is modeled as `workers` identical servers fed
//! by one ready queue owned by a [`SchedPolicy`]. Two event kinds exist —
//! a job **arrival** (enters the queue, or is rejected if the queue is at
//! capacity) and a job **completion** (frees its worker). The event heap
//! orders by `(virtual time, insertion sequence)`, so simultaneous events
//! process in a deterministic order and the whole run is a pure function
//! of `(config, policy, job list)` — no wall clock, no thread timing.
//!
//! Virtual time *is* the injectable [`lake_core::ManualClock`]: the
//! engine advances the clock it is given as it pops events, so spans or
//! metrics recorded against that clock during a simulation see the same
//! timeline the simulator reports. The `sim_prop` suite pins the two
//! invariants everything else leans on: events never process out of
//! virtual-time order, and jobs are conserved (`submitted == completed +
//! rejected`).

use crate::cost::Job;
use crate::policy::SchedPolicy;
use crate::trace::percentile;
use lake_core::retry::Clock;
use lake_core::ManualClock;
use lake_obs::{MetricsRegistry, MICROS_TO_SECONDS};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// Shape of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Simulated worker count (clamped to ≥ 1). Sized like the server's
    /// pool — callers typically pass `Parallelism::workers()` output or a
    /// fixed count for replay gates.
    pub workers: usize,
    /// Ready-queue capacity; `0` means unbounded. Arrivals beyond it are
    /// rejected (typed, counted — never silently dropped), mirroring the
    /// server's admission shed.
    pub queue_capacity: usize,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig { workers: 4, queue_capacity: 0 }
    }
}

/// What one simulation run measured. All durations are virtual
/// microseconds; everything is an integer so serialized tables are
/// byte-stable (the fairness index is stored ×1000).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimResult {
    /// Which policy ran.
    pub policy: String,
    /// Simulated worker count.
    pub workers: usize,
    /// Jobs offered to the queue.
    pub submitted: u64,
    /// Jobs that finished service.
    pub completed: u64,
    /// Jobs rejected at the capacity bound (conservation:
    /// `submitted == completed + rejected`).
    pub rejected: u64,
    /// Virtual time of the last processed event.
    pub makespan_us: u64,
    /// Mean sojourn (arrival → completion) over completed jobs.
    pub mean_sojourn_us: u64,
    /// Median sojourn.
    pub p50_sojourn_us: u64,
    /// 99th-percentile sojourn.
    pub p99_sojourn_us: u64,
    /// Median service demand over completed jobs (calibration gate).
    pub p50_service_us: u64,
    /// 99th-percentile service demand.
    pub p99_service_us: u64,
    /// Completed jobs that finished after their deadline.
    pub deadline_misses: u64,
    /// Jain fairness index over per-tenant mean sojourn, ×1000 (1000 =
    /// perfectly equal delay across tenants).
    pub fairness_millis: u64,
    /// Completed jobs per tenant.
    pub per_tenant_completed: BTreeMap<String, u64>,
    /// Sojourn of every completed job, sorted ascending.
    pub sojourns_us: Vec<u64>,
    /// Virtual time of every processed event, in processing order — the
    /// `sim_prop` suite asserts this is non-decreasing.
    pub event_times: Vec<u64>,
}

impl SimResult {
    /// `submitted == completed + rejected` — no job is ever lost.
    pub fn is_conserved(&self) -> bool {
        self.submitted == self.completed.saturating_add(self.rejected)
    }

    /// Record this run into a metrics registry under the `lake_sched_*`
    /// family, labeled by policy.
    pub fn record_to(&self, registry: &MetricsRegistry) {
        let labels = [("policy", self.policy.as_str())];
        registry.counter_with("lake_sched_jobs_total", &labels).add(self.submitted);
        registry.counter_with("lake_sched_completed_total", &labels).add(self.completed);
        registry.counter_with("lake_sched_rejected_total", &labels).add(self.rejected);
        registry
            .counter_with("lake_sched_deadline_misses_total", &labels)
            .add(self.deadline_misses);
        registry
            .gauge_with("lake_sched_fairness_millis", &labels)
            .set(i64::try_from(self.fairness_millis).unwrap_or(i64::MAX));
        let hist = registry.histogram_with("lake_sched_sojourn_seconds", &labels, MICROS_TO_SECONDS);
        for s in &self.sojourns_us {
            hist.observe(*s);
        }
    }
}

enum EventKind {
    Arrival(Job),
    Completion { worker: usize, job: Job },
}

struct Scheduled {
    time_us: u64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Scheduled) -> bool {
        (self.time_us, self.seq) == (other.time_us, other.seq)
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Scheduled) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Scheduled) -> std::cmp::Ordering {
        (self.time_us, self.seq).cmp(&(other.time_us, other.seq))
    }
}

/// Run `jobs` under `policy` on `cfg.workers` simulated workers,
/// advancing `clock` through virtual time. Jobs may arrive in any order;
/// the heap serializes them. Returns the full measurement set.
pub fn run(
    cfg: &SimConfig,
    policy: &mut dyn SchedPolicy,
    jobs: Vec<Job>,
    clock: &ManualClock,
) -> SimResult {
    let workers = cfg.workers.max(1);
    let mut heap: BinaryHeap<Reverse<Scheduled>> = BinaryHeap::with_capacity(jobs.len() * 2);
    let mut seq = 0u64;
    for job in jobs {
        heap.push(Reverse(Scheduled { time_us: job.submit_us, seq, kind: EventKind::Arrival(job) }));
        seq += 1;
    }

    // Free workers, lowest id first, for a deterministic assignment.
    let mut idle: BinaryHeap<Reverse<usize>> = (0..workers).map(Reverse).collect();
    let origin_us = clock.now_micros();
    let mut now_us = 0u64;
    let mut submitted = 0u64;
    let mut completed = 0u64;
    let mut rejected = 0u64;
    let mut deadline_misses = 0u64;
    let mut sojourns_us: Vec<u64> = Vec::new();
    let mut services_us: Vec<u64> = Vec::new();
    let mut event_times: Vec<u64> = Vec::new();
    let mut per_tenant_completed: BTreeMap<String, u64> = BTreeMap::new();
    let mut per_tenant_sojourn: BTreeMap<String, u64> = BTreeMap::new();

    while let Some(Reverse(ev)) = heap.pop() {
        // The heap guarantees non-decreasing pop times; saturating keeps
        // the engine total even if a caller hands in a corrupt schedule.
        let delta = ev.time_us.saturating_sub(now_us);
        clock.advance_micros(delta);
        now_us = now_us.max(ev.time_us);
        event_times.push(now_us);
        match ev.kind {
            EventKind::Arrival(job) => {
                submitted += 1;
                if cfg.queue_capacity > 0 && policy.queued() >= cfg.queue_capacity {
                    rejected += 1;
                } else {
                    policy.submit(job);
                }
            }
            EventKind::Completion { worker, job } => {
                completed += 1;
                let sojourn = now_us.saturating_sub(job.submit_us);
                sojourns_us.push(sojourn);
                services_us.push(job.service_us);
                if job.deadline_us.is_some_and(|d| now_us > d) {
                    deadline_misses += 1;
                }
                *per_tenant_completed.entry(job.tenant.clone()).or_insert(0) += 1;
                let cell = per_tenant_sojourn.entry(job.tenant).or_insert(0);
                *cell = cell.saturating_add(sojourn);
                idle.push(Reverse(worker));
            }
        }
        // Dispatch as many queued jobs as there are free workers.
        while let Some(Reverse(worker)) = idle.pop() {
            match policy.next(now_us) {
                Some(job) => {
                    let done_at = now_us.saturating_add(job.service_us);
                    heap.push(Reverse(Scheduled {
                        time_us: done_at,
                        seq,
                        kind: EventKind::Completion { worker, job },
                    }));
                    seq += 1;
                }
                None => {
                    idle.push(Reverse(worker));
                    break;
                }
            }
        }
    }

    sojourns_us.sort_unstable();
    services_us.sort_unstable();
    let mean_sojourn_us = if sojourns_us.is_empty() {
        0
    } else {
        sojourns_us.iter().fold(0u64, |a, &b| a.saturating_add(b)) / sojourns_us.len() as u64
    };
    let fairness_millis = jain_millis(&per_tenant_completed, &per_tenant_sojourn);
    debug_assert_eq!(clock.now_micros().saturating_sub(origin_us), now_us);
    SimResult {
        policy: policy.name().to_string(),
        workers,
        submitted,
        completed,
        rejected,
        makespan_us: now_us,
        mean_sojourn_us,
        p50_sojourn_us: percentile(&sojourns_us, 50),
        p99_sojourn_us: percentile(&sojourns_us, 99),
        p50_service_us: percentile(&services_us, 50),
        p99_service_us: percentile(&services_us, 99),
        deadline_misses,
        fairness_millis,
        per_tenant_completed,
        sojourns_us,
        event_times,
    }
}

/// Jain's fairness index over per-tenant mean sojourn, scaled ×1000:
/// `J = (Σx)² / (n·Σx²)` ∈ [1/n, 1]. 1000 means every tenant waits the
/// same on average; small values mean a few tenants absorb all the delay.
/// Tenants with no completions are excluded; an empty or zero-delay run
/// is perfectly fair by convention.
fn jain_millis(completed: &BTreeMap<String, u64>, sojourn_sums: &BTreeMap<String, u64>) -> u64 {
    let means: Vec<f64> = completed
        .iter()
        .filter(|(_, c)| **c > 0)
        .map(|(tenant, c)| {
            let sum = sojourn_sums.get(tenant).copied().unwrap_or(0);
            sum as f64 / *c as f64
        })
        .collect();
    let n = means.len() as f64;
    let sum: f64 = means.iter().sum();
    let sum_sq: f64 = means.iter().map(|x| x * x).sum();
    if means.is_empty() || sum_sq == 0.0 {
        return 1000;
    }
    let j = (sum * sum) / (n * sum_sq);
    // Clamp against float drift before scaling to integer millis.
    (j.clamp(0.0, 1.0) * 1000.0).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::JobKind;
    use crate::policy::{FairSharePolicy, FifoPolicy, PolicyKind, SjfPolicy};

    fn job(id: u64, tenant: &str, submit: u64, service: u64) -> Job {
        Job::new(id, tenant, JobKind::Query, submit, service)
    }

    #[test]
    fn single_worker_fifo_serializes_jobs() {
        let clock = ManualClock::new();
        let jobs = vec![job(0, "a", 0, 100), job(1, "a", 10, 100), job(2, "a", 20, 100)];
        let mut policy = FifoPolicy::default();
        let r = run(&SimConfig { workers: 1, queue_capacity: 0 }, &mut policy, jobs, &clock);
        assert_eq!(r.completed, 3);
        assert_eq!(r.rejected, 0);
        assert!(r.is_conserved());
        // Back-to-back service: completions at 100, 200, 300.
        assert_eq!(r.makespan_us, 300);
        assert_eq!(r.sojourns_us, vec![100, 190, 280]);
        assert_eq!(clock.now_micros(), 300, "clock advanced through virtual time");
    }

    #[test]
    fn more_workers_shorten_the_makespan() {
        let jobs: Vec<Job> = (0..8).map(|i| job(i, "a", 0, 100)).collect();
        let one = run(
            &SimConfig { workers: 1, queue_capacity: 0 },
            &mut FifoPolicy::default(),
            jobs.clone(),
            &ManualClock::new(),
        );
        let four = run(
            &SimConfig { workers: 4, queue_capacity: 0 },
            &mut FifoPolicy::default(),
            jobs,
            &ManualClock::new(),
        );
        assert_eq!(one.makespan_us, 800);
        assert_eq!(four.makespan_us, 200);
    }

    #[test]
    fn capacity_bound_rejects_and_conserves() {
        // 1 worker busy for 1000us; 10 arrivals at t=0..9 with queue cap 3:
        // first occupies the worker, 3 queue, rest reject.
        let jobs: Vec<Job> = (0..10).map(|i| job(i, "a", i, 1_000)).collect();
        let r = run(
            &SimConfig { workers: 1, queue_capacity: 3 },
            &mut FifoPolicy::default(),
            jobs,
            &ManualClock::new(),
        );
        assert_eq!(r.submitted, 10);
        assert_eq!(r.completed, 4);
        assert_eq!(r.rejected, 6);
        assert!(r.is_conserved());
    }

    #[test]
    fn sjf_beats_fifo_on_mean_sojourn_with_an_elephant() {
        // A short blocker occupies the single worker; an elephant and a
        // herd of mice queue behind it. FIFO then runs the elephant first
        // (it arrived first) and every mouse waits; SJF runs the mice.
        let mut jobs = vec![job(0, "a", 0, 50), job(1, "a", 1, 10_000)];
        jobs.extend((2..21).map(|i| job(i, "a", 2, 100)));
        let fifo = run(
            &SimConfig { workers: 1, queue_capacity: 0 },
            &mut FifoPolicy::default(),
            jobs.clone(),
            &ManualClock::new(),
        );
        let sjf = run(
            &SimConfig { workers: 1, queue_capacity: 0 },
            &mut SjfPolicy::default(),
            jobs,
            &ManualClock::new(),
        );
        assert!(
            sjf.mean_sojourn_us < fifo.mean_sojourn_us / 2,
            "sjf {} vs fifo {}",
            sjf.mean_sojourn_us,
            fifo.mean_sojourn_us
        );
        assert_eq!(sjf.makespan_us, fifo.makespan_us, "work conserved either way");
    }

    #[test]
    fn fair_share_is_fairer_than_fifo_under_a_greedy_tenant() {
        // Five tenants with equal demand (6 × 500us each), but tenant a
        // submits its whole batch first. FIFO drains a's batch before
        // touching anyone else; fair share cycles tenants, so per-tenant
        // mean delay evens out and the Jain index rises.
        let mut jobs: Vec<Job> = (0..6).map(|i| job(i, "a", 0, 500)).collect();
        let mut id = 6u64;
        for round in 0..6 {
            for t in ["b", "c", "d", "e"] {
                jobs.push(job(id, t, 1 + round, 500));
                id += 1;
            }
        }
        let fifo = run(
            &SimConfig { workers: 2, queue_capacity: 0 },
            &mut FifoPolicy::default(),
            jobs.clone(),
            &ManualClock::new(),
        );
        let fair = run(
            &SimConfig { workers: 2, queue_capacity: 0 },
            &mut FairSharePolicy::default(),
            jobs,
            &ManualClock::new(),
        );
        assert!(
            fair.fairness_millis > fifo.fairness_millis,
            "fair {} vs fifo {}",
            fair.fairness_millis,
            fifo.fairness_millis
        );
    }

    #[test]
    fn deadline_policy_misses_fewer_deadlines() {
        // Two short blockers hold both workers; loose-deadline elephants
        // then tight-deadline mice queue behind them. FIFO runs the
        // elephants first and every mouse blows its deadline; EDF runs
        // the mice first and they all make it.
        let mut jobs: Vec<Job> = (0..2).map(|i| job(i, "a", 0, 100)).collect();
        jobs.extend((2..8).map(|i| job(i, "a", 1, 2_000).with_deadline_slack(20)));
        jobs.extend((8..20).map(|i| job(i, "a", 2, 100).with_deadline_slack(8)));
        let fifo = run(
            &SimConfig { workers: 2, queue_capacity: 0 },
            &mut FifoPolicy::default(),
            jobs.clone(),
            &ManualClock::new(),
        );
        let mut edf = PolicyKind::Deadline.build();
        let deadline = run(
            &SimConfig { workers: 2, queue_capacity: 0 },
            edf.as_mut(),
            jobs,
            &ManualClock::new(),
        );
        assert!(
            deadline.deadline_misses < fifo.deadline_misses,
            "edf {} vs fifo {}",
            deadline.deadline_misses,
            fifo.deadline_misses
        );
    }

    #[test]
    fn event_times_are_monotone_and_replays_are_identical() {
        let trace = crate::trace::synthesize(
            crate::trace::TraceShape::Bursty,
            42,
            300,
            8,
            &crate::cost::CostModel::server_default(),
        );
        let jobs = trace.to_jobs(Some(4));
        for kind in PolicyKind::all() {
            let a = run(
                &SimConfig { workers: 8, queue_capacity: 0 },
                kind.build().as_mut(),
                jobs.clone(),
                &ManualClock::new(),
            );
            let b = run(
                &SimConfig { workers: 8, queue_capacity: 0 },
                kind.build().as_mut(),
                jobs.clone(),
                &ManualClock::new(),
            );
            assert_eq!(a, b, "replay must be identical for {:?}", kind);
            assert!(a.event_times.windows(2).all(|w| w[0] <= w[1]), "monotone time");
            assert!(a.is_conserved());
            assert_eq!(a.completed, 300);
        }
    }

    #[test]
    fn metrics_record_the_run() {
        let registry = MetricsRegistry::new();
        let jobs = vec![job(0, "a", 0, 100), job(1, "b", 0, 200)];
        let r = run(
            &SimConfig { workers: 1, queue_capacity: 0 },
            &mut FifoPolicy::default(),
            jobs,
            &ManualClock::new(),
        );
        r.record_to(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value_with("lake_sched_jobs_total", &[("policy", "fifo")]), 2);
        assert_eq!(
            snap.counter_value_with("lake_sched_completed_total", &[("policy", "fifo")]),
            2
        );
        assert!(snap.histogram("lake_sched_sojourn_seconds{policy=\"fifo\"}").is_some()
            || snap.histogram("lake_sched_sojourn_seconds").is_some());
    }
}
