//! Workload traces: canonical capture, replay, and seeded synthesis.
//!
//! A [`WorkloadTrace`] is the simulator's exchange format with the real
//! world: the `lake-server` swarm harness records one (per-request
//! tenant, verb, virtual arrival, virtual cost), and the generators here
//! synthesize three more shapes (uniform, bursty, heavy-tailed — the
//! DLBench mix) from a seed. Both paths produce **canonical** traces:
//! records sorted by `(arrival_us, tenant, verb, cost_us)` and serialized
//! through [`lake_core::Json`]'s `BTreeMap` objects, so a trace written
//! twice — or captured twice from the same seed — is byte-identical,
//! which is what lets `scripts/sched.sh` and `e17_sched` gate on bytes.

use crate::cost::{CostModel, Job, JobKind};
use lake_core::{Json, LakeError, Result};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One traced request: who asked for what, when (virtual), and how much
/// service it demands under the calibrated cost model.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct TraceRecord {
    /// Virtual arrival time, microseconds from trace start.
    pub arrival_us: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Server verb or job-kind label ([`JobKind::from_verb`] maps it).
    pub verb: String,
    /// Virtual service demand, microseconds.
    pub cost_us: u64,
}

impl TraceRecord {
    /// JSON envelope (canonical: object keys sort alphabetically).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("arrival_us", Json::Num(self.arrival_us as f64)),
            ("cost_us", Json::Num(self.cost_us as f64)),
            ("tenant", Json::str(self.tenant.clone())),
            ("verb", Json::str(self.verb.clone())),
        ])
    }

    /// Decode one record.
    pub fn from_json(j: &Json) -> Result<TraceRecord> {
        let num = |key: &str| -> Result<u64> {
            let v = j
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| LakeError::parse(format!("trace record missing \"{key}\"")))?;
            if v.is_finite() && v >= 0.0 {
                Ok(v as u64)
            } else {
                Err(LakeError::parse(format!("trace record \"{key}\" is not a count: {v}")))
            }
        };
        let text = |key: &str| -> Result<String> {
            j.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| LakeError::parse(format!("trace record missing \"{key}\"")))
        };
        Ok(TraceRecord {
            arrival_us: num("arrival_us")?,
            tenant: text("tenant")?,
            verb: text("verb")?,
            cost_us: num("cost_us")?,
        })
    }
}

/// An ordered multiset of traced requests plus its provenance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkloadTrace {
    /// Where the trace came from (`"swarm"`, `"uniform"`, …) — carried in
    /// the JSON so replays can name their source.
    pub source: String,
    /// Seed the workload was generated from (0 for captured traces whose
    /// seed lives in the capturing config).
    pub seed: u64,
    /// The records, canonically ordered after [`WorkloadTrace::canonicalize`].
    pub records: Vec<TraceRecord>,
}

impl WorkloadTrace {
    /// An empty trace labeled with its provenance.
    pub fn new(source: &str, seed: u64) -> WorkloadTrace {
        WorkloadTrace { source: source.to_string(), seed, records: Vec::new() }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no records were captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Sort records into the canonical `(arrival, tenant, verb, cost)`
    /// order. Full-record ties are identical records, so the order within
    /// a tie cannot affect serialized bytes — after this call the trace
    /// is a pure function of its multiset, not of capture interleaving.
    pub fn canonicalize(&mut self) {
        self.records.sort();
    }

    /// Canonical JSON envelope.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("records", Json::Array(self.records.iter().map(TraceRecord::to_json).collect())),
            ("seed", Json::Num(self.seed as f64)),
            ("source", Json::str(self.source.clone())),
        ])
    }

    /// Decode a trace envelope.
    pub fn from_json(j: &Json) -> Result<WorkloadTrace> {
        let records = j
            .get("records")
            .and_then(Json::as_array)
            .ok_or_else(|| LakeError::parse("trace missing \"records\" array"))?
            .iter()
            .map(TraceRecord::from_json)
            .collect::<Result<Vec<TraceRecord>>>()?;
        let seed = j.get("seed").and_then(Json::as_f64).unwrap_or(0.0);
        Ok(WorkloadTrace {
            source: j.get("source").and_then(Json::as_str).unwrap_or("unknown").to_string(),
            seed: if seed.is_finite() && seed >= 0.0 { seed as u64 } else { 0 },
            records,
        })
    }

    /// Parse a serialized trace.
    pub fn parse(text: &str) -> Result<WorkloadTrace> {
        WorkloadTrace::from_json(&lake_formats::json::parse(text)?)
    }

    /// Convert to simulator jobs in canonical order. Service times are
    /// the recorded costs (for captured traces those *are* the calibrated
    /// model's outputs); `deadline_slack` attaches `slack × service`
    /// deadlines when given.
    pub fn to_jobs(&self, deadline_slack: Option<u64>) -> Vec<Job> {
        let mut sorted = self.records.clone();
        sorted.sort();
        sorted
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let job = Job::new(
                    i as u64,
                    &r.tenant,
                    JobKind::from_verb(&r.verb),
                    r.arrival_us,
                    r.cost_us,
                );
                match deadline_slack {
                    Some(slack) => job.with_deadline_slack(slack),
                    None => job,
                }
            })
            .collect()
    }

    /// Exact order-statistic percentiles `(p50, p99)` over record costs —
    /// the same statistic the server swarm reports over its measured
    /// virtual costs, which is what the calibration gate compares.
    pub fn cost_percentiles(&self) -> (u64, u64) {
        let mut costs: Vec<u64> = self.records.iter().map(|r| r.cost_us).collect();
        costs.sort_unstable();
        (percentile(&costs, 50), percentile(&costs, 99))
    }
}

/// Exact order statistic: the `q`-th percentile of a sorted slice (the
/// rank-`⌈qn/100⌉` element), 0 for an empty slice. Re-exported from the
/// workspace-wide definition so every caller (scheduler, server swarm,
/// benches) pins identical edge semantics.
pub use lake_core::stats::percentile_u64 as percentile;

/// The three synthetic workload shapes (DLBench-style mix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceShape {
    /// Arrivals uniform over the window, kinds uniform, modest payloads.
    Uniform,
    /// Most arrivals packed into short periodic bursts, query-heavy.
    Bursty,
    /// Geometric (heavy-tailed) payload sizes, ingest-heavy: a few jobs
    /// dominate total service — the regime where SJF and FIFO diverge.
    HeavyTail,
}

impl TraceShape {
    /// Stable label used as the trace `source`.
    pub fn name(self) -> &'static str {
        match self {
            TraceShape::Uniform => "uniform",
            TraceShape::Bursty => "bursty",
            TraceShape::HeavyTail => "heavy_tail",
        }
    }
}

/// Deterministically synthesize `jobs` records of the given shape across
/// `tenants` tenants, with service demands from `model`. Same arguments,
/// same bytes — the generator draws everything from one seeded `StdRng`
/// stream and canonicalizes before returning.
pub fn synthesize(
    shape: TraceShape,
    seed: u64,
    jobs: usize,
    tenants: usize,
    model: &CostModel,
) -> WorkloadTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = WorkloadTrace::new(shape.name(), seed);
    let tenants = tenants.max(1);
    // Virtual window sized so the lake is moderately loaded: ~500us of
    // arrival spacing per job on average.
    let window_us = (jobs as u64).saturating_mul(500).max(1);
    for i in 0..jobs {
        let tenant = format!("tenant{}", i % tenants);
        let (kind, bytes, arrival_us) = match shape {
            TraceShape::Uniform => {
                let kind = pick_kind(&mut rng, [25, 25, 25, 25]);
                let bytes: u64 = rng.random_range(0..2048u64);
                (kind, bytes, rng.random_range(0..window_us))
            }
            TraceShape::Bursty => {
                // 80% of jobs land inside 2ms bursts that open every 50ms.
                let kind = pick_kind(&mut rng, [20, 50, 15, 15]);
                let bytes: u64 = rng.random_range(0..1024u64);
                let in_burst: u8 = rng.random_range(0..100u8);
                let arrival = if in_burst < 80 {
                    let burst = rng.random_range(0..(window_us / 50_000).max(1));
                    burst * 50_000 + rng.random_range(0..2_000u64)
                } else {
                    rng.random_range(0..window_us)
                };
                (kind, bytes, arrival)
            }
            TraceShape::HeavyTail => {
                let kind = pick_kind(&mut rng, [15, 25, 45, 15]);
                // Geometric size ladder: each extra doubling is half as
                // likely, capped at 64 KiB << 4.
                let mut bytes: u64 = 64;
                while bytes < (64 << 14) && rng.random_range(0..2u8) == 0 {
                    bytes <<= 1;
                }
                (kind, bytes, rng.random_range(0..window_us))
            }
        };
        trace.records.push(TraceRecord {
            arrival_us,
            tenant,
            verb: kind.name().to_string(),
            cost_us: model.service_us(kind, bytes),
        });
    }
    trace.canonicalize();
    trace
}

/// Weighted draw over the four kinds; `weights` must sum to 100.
fn pick_kind(rng: &mut StdRng, weights: [u8; 4]) -> JobKind {
    let roll: u8 = rng.random_range(0..100u8);
    let mut acc = 0u8;
    for (kind, w) in JobKind::all().iter().zip(weights.iter()) {
        acc = acc.saturating_add(*w);
        if roll < acc {
            return *kind;
        }
    }
    JobKind::Maintain
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip_through_json() {
        let mut trace = WorkloadTrace::new("swarm", 42);
        trace.records.push(TraceRecord {
            arrival_us: 10,
            tenant: "acme".to_string(),
            verb: "get".to_string(),
            cost_us: 450,
        });
        trace.records.push(TraceRecord {
            arrival_us: 0,
            tenant: "acme".to_string(),
            verb: "put".to_string(),
            cost_us: 650,
        });
        trace.canonicalize();
        let text = trace.to_json().to_string();
        let back = WorkloadTrace::parse(&text).unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.to_json().to_string(), text, "canonical round-trip");
        assert_eq!(back.records.first().map(|r| r.arrival_us), Some(0), "sorted by arrival");
    }

    #[test]
    fn canonicalize_makes_capture_order_irrelevant() {
        let rec = |a: u64, t: &str| TraceRecord {
            arrival_us: a,
            tenant: t.to_string(),
            verb: "get".to_string(),
            cost_us: 400,
        };
        let mut a = WorkloadTrace::new("x", 1);
        a.records = vec![rec(5, "t1"), rec(0, "t0"), rec(5, "t0")];
        let mut b = WorkloadTrace::new("x", 1);
        b.records = vec![rec(5, "t0"), rec(5, "t1"), rec(0, "t0")];
        a.canonicalize();
        b.canonicalize();
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
    }

    #[test]
    fn synthesis_is_deterministic_per_seed_and_shape() {
        let model = CostModel::server_default();
        for shape in [TraceShape::Uniform, TraceShape::Bursty, TraceShape::HeavyTail] {
            let a = synthesize(shape, 7, 200, 8, &model);
            let b = synthesize(shape, 7, 200, 8, &model);
            assert_eq!(a.to_json().to_string(), b.to_json().to_string(), "{shape:?}");
            let c = synthesize(shape, 8, 200, 8, &model);
            assert_ne!(a.to_json().to_string(), c.to_json().to_string(), "{shape:?} seeds differ");
            assert_eq!(a.len(), 200);
        }
    }

    #[test]
    fn jobs_carry_kinds_deadlines_and_canonical_ids() {
        let trace = synthesize(TraceShape::Uniform, 42, 50, 4, &CostModel::server_default());
        let jobs = trace.to_jobs(Some(4));
        assert_eq!(jobs.len(), 50);
        for (i, job) in jobs.iter().enumerate() {
            assert_eq!(job.id, i as u64);
            assert_eq!(
                job.deadline_us,
                Some(job.submit_us + job.service_us * 4),
                "slack-4 deadline"
            );
        }
        // Arrival-sorted.
        for w in jobs.windows(2) {
            assert!(w[0].submit_us <= w[1].submit_us);
        }
        let no_deadlines = trace.to_jobs(None);
        assert!(no_deadlines.iter().all(|j| j.deadline_us.is_none()));
    }

    #[test]
    fn percentiles_are_exact_order_statistics() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[7], 99), 7);
    }

    #[test]
    fn heavy_tail_actually_has_a_tail() {
        let trace = synthesize(TraceShape::HeavyTail, 1337, 400, 8, &CostModel::server_default());
        let (p50, p99) = trace.cost_percentiles();
        assert!(p99 > p50.saturating_mul(2), "p99 {p99} should dwarf p50 {p50}");
    }
}
