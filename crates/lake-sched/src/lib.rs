//! `lake-sched` — a discrete-event lake-workload simulator.
//!
//! The survey frames a data lake as one shared service answering four
//! kinds of demand — discovery scans, queries, ingest, maintenance — and
//! the scheduling question that raises: *which job runs next when the
//! workers are busy?* This crate answers it offline, Eudoxia-style: a
//! deterministic discrete-event simulator on virtual time replays a
//! workload trace under pluggable policies and reports the numbers the
//! choice actually moves (makespan, mean/p99 sojourn, deadline misses,
//! per-tenant fairness).
//!
//! The pieces:
//!
//! * [`cost`] — the [`Job`](cost::Job) model and a JOSIE-style
//!   [`CostModel`](cost::CostModel) (per-kind base + linear volume term)
//!   calibrated against `lake-server`'s `virtual_cost_us` latency model.
//! * [`trace`] — canonical [`WorkloadTrace`](trace::WorkloadTrace)
//!   capture/replay JSON plus seeded synthetic shapes (uniform, bursty,
//!   heavy-tailed). The `lake-server` swarm writes this format under
//!   `--trace`.
//! * [`policy`] — FIFO, SJF, round-robin fair share, and
//!   earliest-deadline-first behind the
//!   [`SchedPolicy`](policy::SchedPolicy) trait; all deterministic with
//!   id tie-breaks.
//! * [`sim`] — the engine: binary-heap event queue over
//!   `(virtual time, seq)`, simulated workers, a capacity-bounded ready
//!   queue, and a [`SimResult`](sim::SimResult) with conservation
//!   (`submitted == completed + rejected`) pinned by property tests.
//! * [`report`] — the (trace × policy) comparison
//!   [`PolicyTable`](report::PolicyTable), fanned out via
//!   `lake_core::par` and byte-identical across runs and host worker
//!   counts.
//!
//! ```
//! use lake_core::par::Parallelism;
//! use lake_sched::{compare, synthesize, CostModel, PolicyKind, SimConfig, TraceShape};
//!
//! let model = CostModel::server_default();
//! let trace = synthesize(TraceShape::HeavyTail, 42, 200, 8, &model);
//! let traces = vec![("heavy_tail".to_string(), trace.to_jobs(Some(4)))];
//! let table = compare(
//!     &traces,
//!     &PolicyKind::all(),
//!     &SimConfig { workers: 4, queue_capacity: 0 },
//!     Parallelism::auto(),
//! );
//! assert_eq!(table.rows.len(), 4);
//! print!("{}", table.render());
//! ```

pub mod cost;
pub mod policy;
pub mod report;
pub mod sim;
pub mod trace;

pub use cost::{CostModel, Job, JobKind};
pub use policy::{DeadlinePolicy, FairSharePolicy, FifoPolicy, PolicyKind, SchedPolicy, SjfPolicy};
pub use report::{compare, PolicyRow, PolicyTable};
pub use sim::{run, SimConfig, SimResult};
pub use trace::{percentile, synthesize, TraceRecord, TraceShape, WorkloadTrace};
