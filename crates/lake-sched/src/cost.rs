//! The job model and the JOSIE-style cost model.
//!
//! A [`Job`] is one unit of lake work — a discovery scan, a query, an
//! ingest, or a maintenance pass — with a virtual submit time and a
//! virtual service demand. Service demands come from a [`CostModel`]:
//! a fixed per-kind base charge plus a linear data-volume term, the same
//! shape as JOSIE's prefix-cost estimate (base work per candidate set +
//! work proportional to posting bytes scanned) and, deliberately, the
//! same shape as `lake-server`'s `virtual_cost_us` latency model.
//!
//! [`CostModel::server_default`] is *calibrated* against the server: for
//! each kind it uses the base charge of the server verb that kind maps
//! back to (see [`JobKind::from_verb`]) and the server's `bytes / 2`
//! volume term, so a replayed server trace simulates with exactly the
//! service times the swarm measured. The parity test lives in
//! `crates/lake-server/tests/sched_calibration.rs`, where both sides of
//! the equation are importable.

/// The four workload classes the survey's shared-service framing names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum JobKind {
    /// Dataset/table discovery: related-table scans, listings, search.
    Discovery,
    /// Point and federated reads.
    Query,
    /// Writes: dataset puts, deletes, streaming flushes.
    Ingest,
    /// Everything operational: stats, metrics scrapes, compaction.
    Maintain,
}

impl JobKind {
    /// All kinds, in canonical order.
    pub fn all() -> [JobKind; 4] {
        [JobKind::Discovery, JobKind::Query, JobKind::Ingest, JobKind::Maintain]
    }

    /// Stable label used in traces, tables, and metrics.
    pub fn name(self) -> &'static str {
        match self {
            JobKind::Discovery => "discovery",
            JobKind::Query => "query",
            JobKind::Ingest => "ingest",
            JobKind::Maintain => "maintain",
        }
    }

    /// Map a `lake-server` protocol verb (or a job-kind label) onto a
    /// workload class. Unknown labels land in `Maintain`, the cheapest
    /// class, so a trace from a newer server degrades mildly instead of
    /// failing to replay.
    pub fn from_verb(verb: &str) -> JobKind {
        match verb {
            "list" | "search" | "discovery" => JobKind::Discovery,
            "get" | "query" | "select" => JobKind::Query,
            "put" | "del" | "ingest" => JobKind::Ingest,
            _ => JobKind::Maintain,
        }
    }
}

/// One schedulable unit of work, in virtual microseconds throughout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Job {
    /// Unique per simulation; ties in every policy break on this, which
    /// is what makes replays order-deterministic.
    pub id: u64,
    /// Owning tenant (fairness accounting groups by this).
    pub tenant: String,
    /// Workload class.
    pub kind: JobKind,
    /// Virtual arrival time.
    pub submit_us: u64,
    /// Virtual service demand on one worker.
    pub service_us: u64,
    /// Completion deadline, if the job has one (deadline-aware policy
    /// orders by it; every policy counts misses against it).
    pub deadline_us: Option<u64>,
}

impl Job {
    /// A job with no deadline.
    pub fn new(id: u64, tenant: &str, kind: JobKind, submit_us: u64, service_us: u64) -> Job {
        Job {
            id,
            tenant: tenant.to_string(),
            kind,
            submit_us,
            service_us,
            deadline_us: None,
        }
    }

    /// Attach a deadline of `slack` × service after submit: a job is
    /// allowed `slack − 1` service times of queueing before it misses.
    pub fn with_deadline_slack(mut self, slack: u64) -> Job {
        self.deadline_us =
            Some(self.submit_us.saturating_add(self.service_us.saturating_mul(slack.max(1))));
        self
    }
}

/// Per-kind base charge + linear volume term, in virtual microseconds:
/// `service = base(kind) + bytes * num / den`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Base charge for a discovery job.
    pub discovery_base_us: u64,
    /// Base charge for a query job.
    pub query_base_us: u64,
    /// Base charge for an ingest job.
    pub ingest_base_us: u64,
    /// Base charge for a maintenance job.
    pub maintain_base_us: u64,
    /// Volume term numerator (microseconds per `den` bytes).
    pub per_byte_num: u64,
    /// Volume term denominator (never 0; [`CostModel::service_us`] guards).
    pub per_byte_den: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel::server_default()
    }
}

impl CostModel {
    /// The model calibrated against `lake_server::protocol::virtual_cost_us`:
    /// each kind's base is the base charge of its representative server
    /// verb (`list` → discovery, `get` → query, `put` → ingest, `stats` →
    /// maintain) and the volume term is the server's `bytes / 2`. The
    /// parity is pinned by `crates/lake-server/tests/sched_calibration.rs`.
    pub fn server_default() -> CostModel {
        CostModel {
            discovery_base_us: 250,
            query_base_us: 400,
            ingest_base_us: 600,
            maintain_base_us: 150,
            per_byte_num: 1,
            per_byte_den: 2,
        }
    }

    /// Virtual service demand for `bytes` of data under `kind`.
    pub fn service_us(&self, kind: JobKind, bytes: u64) -> u64 {
        let base = match kind {
            JobKind::Discovery => self.discovery_base_us,
            JobKind::Query => self.query_base_us,
            JobKind::Ingest => self.ingest_base_us,
            JobKind::Maintain => self.maintain_base_us,
        };
        base.saturating_add(
            bytes.saturating_mul(self.per_byte_num) / self.per_byte_den.max(1),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbs_map_to_kinds() {
        assert_eq!(JobKind::from_verb("list"), JobKind::Discovery);
        assert_eq!(JobKind::from_verb("get"), JobKind::Query);
        assert_eq!(JobKind::from_verb("put"), JobKind::Ingest);
        assert_eq!(JobKind::from_verb("del"), JobKind::Ingest);
        assert_eq!(JobKind::from_verb("stats"), JobKind::Maintain);
        assert_eq!(JobKind::from_verb("health"), JobKind::Maintain);
        assert_eq!(JobKind::from_verb("anything-else"), JobKind::Maintain);
    }

    #[test]
    fn model_is_monotone_in_bytes_and_matches_server_shape() {
        let m = CostModel::server_default();
        assert_eq!(m.service_us(JobKind::Query, 0), 400);
        assert_eq!(m.service_us(JobKind::Query, 100), 450);
        assert_eq!(m.service_us(JobKind::Ingest, 100), 650);
        assert!(m.service_us(JobKind::Discovery, 1000) > m.service_us(JobKind::Discovery, 10));
    }

    #[test]
    fn deadline_slack_is_service_multiples_after_submit() {
        let j = Job::new(1, "t", JobKind::Query, 100, 400).with_deadline_slack(4);
        assert_eq!(j.deadline_us, Some(100 + 1600));
        let zero_slack = Job::new(2, "t", JobKind::Query, 0, 10).with_deadline_slack(0);
        assert_eq!(zero_slack.deadline_us, Some(10), "slack clamps to 1");
    }
}
