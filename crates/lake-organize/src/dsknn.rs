//! DS-Prox / DS-kNN: classification-model-based dataset organization
//! (§6.1.2).
//!
//! "DS-kNN incrementally adds every dataset into a new or existing
//! category by applying k-nearest-neighbour search. Before the step of
//! classification, DS-kNN first conducts data preparation by feature
//! extraction. For each attribute, depending on whether its values are
//! continuous or discrete, DS-kNN extracts statistical or
//! distribution-based features respectively … together with other
//! features based on extracted metadata, e.g., the number of attributes,
//! and types of each attribute. … Finally, the datasets in the lake can
//! be visualized as a graph: each node is a dataset, and edges between two
//! nodes are labeled with the similarity of the two datasets."
//!
//! The purpose is *pre-filtering for schema matching* (DS-Prox): only
//! datasets in the same category are worth matching in detail.

use lake_core::stats::NumericSummary;
use lake_core::Table;
use lake_ml::knn::KnnClassifier;

/// The fixed-length feature vector extracted from one dataset.
pub fn dataset_features(table: &Table) -> Vec<f64> {
    let ncols = table.num_columns().max(1) as f64;
    let mut numeric_cols = 0.0;
    let mut text_cols = 0.0;
    let mut mean_cardinality_ratio = 0.0;
    let mut mean_null_frac = 0.0;
    let mut mean_numeric_mean = 0.0;
    let mut mean_value_len = 0.0;
    for col in table.columns() {
        let rows = col.len().max(1) as f64;
        let nums = col.numeric_values();
        if !nums.is_empty() {
            numeric_cols += 1.0;
            if let Some(s) = NumericSummary::of(&nums) {
                // Scale-free statistical feature (avg numeric mean, §6.1.2,
                // squashed so huge ids don't dominate distances).
                mean_numeric_mean += s.mean.abs().ln_1p();
            }
        } else {
            text_cols += 1.0;
            let total_len: usize = col
                .values
                .iter()
                .filter(|v| !v.is_null())
                .map(|v| v.render().len())
                .sum();
            let non_null = (col.len() - col.null_count()).max(1);
            mean_value_len += total_len as f64 / non_null as f64;
        }
        mean_cardinality_ratio += col.cardinality() as f64 / rows;
        mean_null_frac += col.null_count() as f64 / rows;
    }
    vec![
        (table.num_columns() as f64).ln_1p(),
        (table.num_rows() as f64).ln_1p(),
        numeric_cols / ncols,
        text_cols / ncols,
        mean_cardinality_ratio / ncols,
        mean_null_frac / ncols,
        mean_numeric_mean / ncols,
        (mean_value_len / ncols).ln_1p(),
    ]
}

/// A category assignment produced by the organizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// Dataset (by insertion order).
    pub dataset: usize,
    /// Assigned category id.
    pub category: usize,
    /// Whether a new category was opened for it.
    pub opened_new: bool,
}

/// The incremental DS-kNN organizer.
#[derive(Debug)]
pub struct DsKnn {
    /// Neighbours consulted per assignment.
    pub k: usize,
    /// Distance above which a new category opens.
    pub new_category_dist: f64,
    classifier: KnnClassifier,
    next_category: usize,
    assignments: Vec<Assignment>,
    features: Vec<Vec<f64>>,
}

impl Default for DsKnn {
    fn default() -> Self {
        DsKnn {
            k: 3,
            new_category_dist: 0.8,
            classifier: KnnClassifier::new(),
            next_category: 0,
            assignments: Vec::new(),
            features: Vec::new(),
        }
    }
}

impl DsKnn {
    /// Add one dataset; returns its assignment.
    pub fn add(&mut self, table: &Table) -> Assignment {
        let feats = dataset_features(table);
        let (category, opened_new) = self.classifier.assign_category(
            feats.clone(),
            self.k,
            self.new_category_dist,
            self.next_category,
        );
        if opened_new {
            self.next_category = category + 1;
        }
        let a = Assignment { dataset: self.assignments.len(), category, opened_new };
        self.assignments.push(a.clone());
        self.features.push(feats);
        a
    }

    /// All assignments so far.
    pub fn assignments(&self) -> &[Assignment] {
        &self.assignments
    }

    /// Number of categories opened.
    pub fn num_categories(&self) -> usize {
        self.next_category
    }

    /// The similarity graph view: `(a, b, similarity)` for all dataset
    /// pairs, similarity = `1 / (1 + distance)`.
    pub fn similarity_graph(&self) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::new();
        for a in 0..self.features.len() {
            for b in a + 1..self.features.len() {
                let d = lake_core::stats::euclidean(&self.features[a], &self.features[b]);
                out.push((a, b, 1.0 / (1.0 + d)));
            }
        }
        out
    }

    /// DS-Prox pre-filtering: dataset pairs worth full schema matching —
    /// those sharing a category.
    pub fn matching_candidates(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for a in 0..self.assignments.len() {
            for b in a + 1..self.assignments.len() {
                if self.assignments[a].category == self.assignments[b].category {
                    out.push((a, b));
                }
            }
        }
        out
    }

    /// Stored feature vector of dataset `i` (insertion order).
    pub fn features_of(&self, i: usize) -> &[f64] {
        &self.features[i]
    }
}

/// The supervised DS-Prox variant ("a later work uses supervised ensemble
/// models to obtain the similarity values between dataset pairs",
/// §6.1.2): a random forest over the absolute feature differences of a
/// dataset pair predicts whether the pair is proximate — replacing the
/// fixed Euclidean distance with a learned notion of proximity.
#[derive(Debug)]
pub struct DsProxEnsemble {
    forest: lake_ml::forest::RandomForest,
}

impl DsProxEnsemble {
    /// Train from labelled dataset pairs `(table_a, table_b, proximate?)`.
    pub fn train(pairs: &[(&Table, &Table, bool)], seed: u64) -> DsProxEnsemble {
        let xs: Vec<Vec<f64>> = pairs
            .iter()
            .map(|(a, b, _)| pair_features(a, b))
            .collect();
        let ys: Vec<usize> = pairs.iter().map(|&(_, _, y)| usize::from(y)).collect();
        let cfg = lake_ml::forest::ForestConfig { seed, ..Default::default() };
        DsProxEnsemble { forest: lake_ml::forest::RandomForest::fit(&xs, &ys, 2, cfg) }
    }

    /// Learned proximity score for a pair (probability of "proximate").
    pub fn similarity(&self, a: &Table, b: &Table) -> f64 {
        self.forest.predict_proba(&pair_features(a, b))[1]
    }
}

/// Pairwise features: element-wise absolute difference of the two
/// datasets' feature vectors.
fn pair_features(a: &Table, b: &Table) -> Vec<f64> {
    dataset_features(a)
        .iter()
        .zip(dataset_features(b))
        .map(|(x, y)| (x - y).abs())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lake_core::{Column, Value};
    use rand::{RngExt, SeedableRng};

    /// Wide numeric "sensor" tables vs narrow textual "person" tables.
    fn sensor_table(seed: u64) -> Table {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cols = (0..6)
            .map(|i| {
                Column::new(
                    format!("m{i}"),
                    (0..50).map(|_| Value::Float(rng.random::<f64>())).collect(),
                )
            })
            .collect();
        Table::from_columns(format!("sensor{seed}"), cols).unwrap()
    }

    fn person_table(seed: u64) -> Table {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let names: Vec<Value> = (0..20)
            .map(|_| Value::str(format!("person_{}", rng.random_range(0..1000))))
            .collect();
        let cities: Vec<Value> = (0..20)
            .map(|_| Value::str(["delft", "paris"][rng.random_range(0..2usize)]))
            .collect();
        Table::from_columns(
            format!("people{seed}"),
            vec![Column::new("name", names), Column::new("city", cities)],
        )
        .unwrap()
    }

    #[test]
    fn similar_shapes_share_a_category() {
        let mut org = DsKnn::default();
        let a0 = org.add(&sensor_table(1));
        assert!(a0.opened_new);
        let a1 = org.add(&sensor_table(2));
        assert_eq!(a1.category, a0.category, "similar sensor tables share a category");
        let b0 = org.add(&person_table(1));
        assert_ne!(b0.category, a0.category, "different shape opens a new category");
        let b1 = org.add(&person_table(2));
        assert_eq!(b1.category, b0.category);
        assert_eq!(org.num_categories(), 2);
    }

    #[test]
    fn matching_candidates_stay_within_categories() {
        let mut org = DsKnn::default();
        org.add(&sensor_table(1));
        org.add(&sensor_table(2));
        org.add(&person_table(1));
        let cands = org.matching_candidates();
        assert_eq!(cands, vec![(0, 1)]);
    }

    #[test]
    fn similarity_graph_is_complete_and_bounded() {
        let mut org = DsKnn::default();
        org.add(&sensor_table(1));
        org.add(&sensor_table(2));
        org.add(&person_table(1));
        let g = org.similarity_graph();
        assert_eq!(g.len(), 3);
        for &(_, _, s) in &g {
            assert!((0.0..=1.0).contains(&s));
        }
        // Sensor-sensor similarity beats sensor-person.
        let ss = g.iter().find(|&&(a, b, _)| (a, b) == (0, 1)).unwrap().2;
        let sp = g.iter().find(|&&(a, b, _)| (a, b) == (0, 2)).unwrap().2;
        assert!(ss > sp);
    }

    #[test]
    fn supervised_ensemble_learns_proximity() {
        // Train on sensor-sensor / person-person positives and
        // cross-shape negatives; test on unseen seeds.
        let sensors: Vec<Table> = (0..6).map(sensor_table).collect();
        let people: Vec<Table> = (0..6).map(person_table).collect();
        let mut pairs: Vec<(&Table, &Table, bool)> = Vec::new();
        for i in 0..4 {
            for j in (i + 1)..4 {
                pairs.push((&sensors[i], &sensors[j], true));
                pairs.push((&people[i], &people[j], true));
                pairs.push((&sensors[i], &people[j], false));
            }
        }
        let model = DsProxEnsemble::train(&pairs, 11);
        let same = model.similarity(&sensors[4], &sensors[5]);
        let cross = model.similarity(&sensors[4], &people[5]);
        assert!(same > 0.5, "{same}");
        assert!(cross < 0.5, "{cross}");
        assert!(same > cross);
    }

    #[test]
    fn features_are_fixed_length_and_finite() {
        let f = dataset_features(&sensor_table(5));
        assert_eq!(f.len(), 8);
        assert!(f.iter().all(|x| x.is_finite()));
        let empty = Table::empty("e");
        let fe = dataset_features(&empty);
        assert_eq!(fe.len(), 8);
        assert!(fe.iter().all(|x| x.is_finite()));
    }
}
