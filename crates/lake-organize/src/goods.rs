//! GOODS-style catalog organization (§6.1.1).
//!
//! "For each dataset, it collects various metadata and adds it as one
//! entry in the GOODS catalog … the metadata is classified into six
//! categories, including basic, content-based, provenance, user-supplied,
//! team, project, and temporal metadata." Post-hoc collection is the
//! defining trait: datasets exist first, the catalog crawls them later.
//! GOODS also clusters different versions of the same dataset (by
//! version-suffix convention) and exports provenance as
//! subject–predicate–object triples for graph visualization (§6.7).

use lake_core::{Dataset, DatasetId, Value};
use std::collections::BTreeMap;

/// The six GOODS metadata categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Category {
    /// Size, format, aliases.
    Basic,
    /// Schema, fields, statistics crawled from the data.
    Content,
    /// Jobs that read/wrote the dataset, lineage.
    Provenance,
    /// Descriptions, annotations from people.
    UserSupplied,
    /// Team / project context.
    TeamProject,
    /// Change history timestamps.
    Temporal,
}

impl Category {
    /// All categories in catalog order.
    pub const ALL: [Category; 6] = [
        Category::Basic,
        Category::Content,
        Category::Provenance,
        Category::UserSupplied,
        Category::TeamProject,
        Category::Temporal,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Category::Basic => "basic",
            Category::Content => "content",
            Category::Provenance => "provenance",
            Category::UserSupplied => "user-supplied",
            Category::TeamProject => "team/project",
            Category::Temporal => "temporal",
        }
    }
}

/// One catalog entry: per-category key→value metadata.
#[derive(Debug, Clone, Default)]
pub struct CatalogEntry {
    sections: BTreeMap<&'static str, BTreeMap<String, Value>>,
}

impl CatalogEntry {
    /// Set a metadata cell.
    pub fn set(&mut self, cat: Category, key: &str, value: Value) {
        self.sections
            .entry(cat.name())
            .or_default()
            .insert(key.to_string(), value);
    }

    /// Read a metadata cell.
    pub fn get(&self, cat: Category, key: &str) -> Option<&Value> {
        self.sections.get(cat.name())?.get(key)
    }

    /// All cells of one category.
    pub fn section(&self, cat: Category) -> Vec<(&str, &Value)> {
        self.sections
            .get(cat.name())
            .map(|m| m.iter().map(|(k, v)| (k.as_str(), v)).collect())
            .unwrap_or_default()
    }
}

/// The GOODS catalog.
#[derive(Debug, Default)]
pub struct GoodsCatalog {
    entries: BTreeMap<String, CatalogEntry>, // keyed by dataset path/name
    provenance: Vec<(String, String, String)>, // (subject, predicate, object)
    clock: u64,
}

impl GoodsCatalog {
    /// An empty catalog.
    pub fn new() -> GoodsCatalog {
        GoodsCatalog::default()
    }

    /// Crawl a dataset *post hoc* (GOODS's defining mode): derive basic +
    /// content + temporal metadata automatically.
    pub fn crawl(&mut self, path: &str, id: DatasetId, dataset: &Dataset) {
        self.clock += 1;
        let e = self.entries.entry(path.to_string()).or_default();
        e.set(Category::Basic, "id", Value::Int(id.0 as i64));
        e.set(Category::Basic, "format", Value::str(dataset.kind().name()));
        e.set(Category::Basic, "size", Value::Int(dataset.approx_size() as i64));
        e.set(Category::Content, "records", Value::Int(dataset.record_count() as i64));
        if let Dataset::Table(t) = dataset {
            e.set(Category::Content, "columns", Value::Int(t.num_columns() as i64));
            e.set(Category::Content, "schema", Value::str(t.schema().to_string()));
        }
        e.set(Category::Temporal, "crawled_at", Value::Int(self.clock as i64));
    }

    /// Record user-supplied metadata (the crowdsourced enrichment path of
    /// §6.4.3 — owners, auditors, users exchanging dataset information).
    pub fn annotate(&mut self, path: &str, user: &str, key: &str, value: &str) {
        self.clock += 1;
        let e = self.entries.entry(path.to_string()).or_default();
        e.set(Category::UserSupplied, key, Value::str(value));
        e.set(Category::UserSupplied, &format!("{key}__by"), Value::str(user));
        e.set(Category::Temporal, "annotated_at", Value::Int(self.clock as i64));
    }

    /// Assign team/project context.
    pub fn assign_team(&mut self, path: &str, team: &str, project: &str) {
        let e = self.entries.entry(path.to_string()).or_default();
        e.set(Category::TeamProject, "team", Value::str(team));
        e.set(Category::TeamProject, "project", Value::str(project));
    }

    /// Record a provenance event as a triple, e.g.
    /// `(job:etl1, wrote, logs/day1)`.
    pub fn record_provenance(&mut self, subject: &str, predicate: &str, object: &str) {
        self.provenance
            .push((subject.to_string(), predicate.to_string(), object.to_string()));
        if let Some(e) = self.entries.get_mut(object) {
            e.set(Category::Provenance, subject, Value::str(predicate));
        }
    }

    /// Export provenance triples (for graph rendering / path queries).
    pub fn provenance_triples(&self) -> &[(String, String, String)] {
        &self.provenance
    }

    /// A catalog entry.
    pub fn entry(&self, path: &str) -> Option<&CatalogEntry> {
        self.entries.get(path)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cluster dataset versions: entries whose path differs only by a
    /// trailing version/date segment (`sales/2024-01-01`, `sales/v2`, …)
    /// group under their common stem. Returns stem → sorted members.
    pub fn version_clusters(&self) -> BTreeMap<String, Vec<String>> {
        let mut clusters: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for path in self.entries.keys() {
            let stem = match path.rsplit_once('/') {
                Some((stem, last)) if is_versionish(last) => stem.to_string(),
                _ => path.clone(),
            };
            clusters.entry(stem).or_default().push(path.clone());
        }
        clusters
    }

    /// Keyword search over all metadata values; returns matching paths.
    pub fn search(&self, keyword: &str) -> Vec<String> {
        let kw = keyword.to_lowercase();
        self.entries
            .iter()
            .filter(|(path, e)| {
                path.to_lowercase().contains(&kw)
                    || Category::ALL.iter().any(|&c| {
                        e.section(c)
                            .iter()
                            .any(|(_, v)| v.render().to_lowercase().contains(&kw))
                    })
            })
            .map(|(p, _)| p.clone())
            .collect()
    }
}

/// Is this path segment a version marker (digits, dates, `v<digits>`)?
fn is_versionish(seg: &str) -> bool {
    if seg.is_empty() {
        return false;
    }
    let body = seg.strip_prefix('v').unwrap_or(seg);
    !body.is_empty() && body.chars().all(|c| c.is_ascii_digit() || matches!(c, '-' | '_' | '.'))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lake_core::{Table, Value};

    fn table() -> Dataset {
        Dataset::Table(
            Table::from_rows("t", &["a", "b"], vec![vec![Value::Int(1), Value::str("x")]]).unwrap(),
        )
    }

    #[test]
    fn crawl_fills_basic_content_temporal() {
        let mut c = GoodsCatalog::new();
        c.crawl("datasets/sales", DatasetId(3), &table());
        let e = c.entry("datasets/sales").unwrap();
        assert_eq!(e.get(Category::Basic, "format"), Some(&Value::str("table")));
        assert_eq!(e.get(Category::Content, "columns"), Some(&Value::Int(2)));
        assert!(e.get(Category::Temporal, "crawled_at").is_some());
        assert!(e.get(Category::Provenance, "x").is_none());
    }

    #[test]
    fn annotations_record_author() {
        let mut c = GoodsCatalog::new();
        c.crawl("d", DatasetId(1), &table());
        c.annotate("d", "ada", "description", "daily sales export");
        let e = c.entry("d").unwrap();
        assert_eq!(e.get(Category::UserSupplied, "description"), Some(&Value::str("daily sales export")));
        assert_eq!(e.get(Category::UserSupplied, "description__by"), Some(&Value::str("ada")));
    }

    #[test]
    fn provenance_triples_link_jobs_to_datasets() {
        let mut c = GoodsCatalog::new();
        c.crawl("logs/day1", DatasetId(1), &table());
        c.record_provenance("job:etl", "wrote", "logs/day1");
        c.record_provenance("job:report", "read", "logs/day1");
        assert_eq!(c.provenance_triples().len(), 2);
        let e = c.entry("logs/day1").unwrap();
        assert_eq!(e.get(Category::Provenance, "job:etl"), Some(&Value::str("wrote")));
    }

    #[test]
    fn version_clustering_groups_by_stem() {
        let mut c = GoodsCatalog::new();
        for p in ["sales/2024-01-01", "sales/2024-01-02", "sales/v3", "hr/roster"] {
            c.crawl(p, DatasetId(0), &table());
        }
        let clusters = c.version_clusters();
        assert_eq!(clusters["sales"].len(), 3);
        assert_eq!(clusters["hr/roster"], vec!["hr/roster"]);
    }

    #[test]
    fn search_spans_paths_and_values() {
        let mut c = GoodsCatalog::new();
        c.crawl("finance/ledger", DatasetId(1), &table());
        c.annotate("finance/ledger", "bob", "note", "quarterly audit data");
        assert_eq!(c.search("ledger"), vec!["finance/ledger"]);
        assert_eq!(c.search("audit"), vec!["finance/ledger"]);
        assert!(c.search("zzz").is_empty());
    }

    #[test]
    fn versionish_detection() {
        assert!(is_versionish("2024-01-01"));
        assert!(is_versionish("v12"));
        assert!(is_versionish("1.2.3"));
        assert!(!is_versionish("roster"));
        assert!(!is_versionish("v"));
    }
}
