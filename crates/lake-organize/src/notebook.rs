//! Juneau's notebook machinery (§6.1.3, Table 2 row 4; §6.7).
//!
//! "A workflow graph is a directed bipartite graph with two types of
//! nodes: data object nodes … and computational module nodes representing
//! code cells … Juneau also has a DAG for managing the relationships of
//! variables in notebooks, referred to as variable dependency graphs. In a
//! variable dependency graph, nodes represent the variables, and the
//! labeled, directed edges indicate that one variable is computed using
//! another variable through a function. Via subgraph isomorphism, Juneau
//! is able to discover tables sharing similar workflows."

use crate::DagDescription;
use lake_core::stats::jaccard;
use std::collections::{BTreeMap, BTreeSet};

/// One cell of a computational notebook: a function applied to input
/// variables producing an output variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// Function / operation name (`read_csv`, `dropna`, `merge`, …).
    pub function: String,
    /// Input variable names.
    pub inputs: Vec<String>,
    /// Output variable name.
    pub output: String,
}

/// A notebook: an ordered list of cells.
#[derive(Debug, Clone, Default)]
pub struct Notebook {
    /// Notebook name.
    pub name: String,
    /// Cells in execution order.
    pub cells: Vec<Cell>,
}

impl Notebook {
    /// A notebook with a name.
    pub fn new(name: &str) -> Notebook {
        Notebook { name: name.to_string(), cells: Vec::new() }
    }

    /// Append a cell.
    pub fn cell(&mut self, function: &str, inputs: &[&str], output: &str) -> &mut Self {
        self.cells.push(Cell {
            function: function.to_string(),
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
            output: output.to_string(),
        });
        self
    }
}

/// The bipartite workflow graph: data-object nodes ↔ module nodes.
#[derive(Debug, Clone, Default)]
pub struct WorkflowGraph {
    /// Data-object node names.
    pub data_nodes: BTreeSet<String>,
    /// Module (cell) nodes: `(function, index)`.
    pub module_nodes: Vec<String>,
    /// data → module edges (input).
    pub inputs: Vec<(String, usize)>,
    /// module → data edges (output).
    pub outputs: Vec<(usize, String)>,
}

impl WorkflowGraph {
    /// Build from a notebook.
    pub fn from_notebook(nb: &Notebook) -> WorkflowGraph {
        let mut g = WorkflowGraph::default();
        for (mi, c) in nb.cells.iter().enumerate() {
            g.module_nodes.push(c.function.clone());
            for i in &c.inputs {
                g.data_nodes.insert(i.clone());
                g.inputs.push((i.clone(), mi));
            }
            g.data_nodes.insert(c.output.clone());
            g.outputs.push((mi, c.output.clone()));
        }
        g
    }

    /// Bipartiteness invariant: every edge joins a data node and a module.
    pub fn is_bipartite(&self) -> bool {
        self.inputs.iter().all(|(d, m)| self.data_nodes.contains(d) && *m < self.module_nodes.len())
            && self
                .outputs
                .iter()
                .all(|(m, d)| self.data_nodes.contains(d) && *m < self.module_nodes.len())
    }
}

/// The variable-dependency DAG: variables as nodes; a labeled directed
/// edge `u --f--> v` when `v` is computed from `u` through function `f`.
#[derive(Debug, Clone, Default)]
pub struct VariableDependencyGraph {
    /// Edges: (from variable, function label, to variable).
    pub edges: Vec<(String, String, String)>,
}

impl VariableDependencyGraph {
    /// Build from a notebook.
    pub fn from_notebook(nb: &Notebook) -> VariableDependencyGraph {
        let mut g = VariableDependencyGraph::default();
        for c in &nb.cells {
            for i in &c.inputs {
                g.edges.push((i.clone(), c.function.clone(), c.output.clone()));
            }
        }
        g
    }

    /// All variables.
    pub fn variables(&self) -> BTreeSet<&str> {
        self.edges
            .iter()
            .flat_map(|(a, _, b)| [a.as_str(), b.as_str()])
            .collect()
    }

    /// Variables that (transitively) affect `var`, with the functions on
    /// the paths — Juneau's "find all other variables affecting v".
    pub fn ancestors_of(&self, var: &str) -> BTreeMap<String, BTreeSet<String>> {
        let mut out: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut frontier = vec![var.to_string()];
        while let Some(v) = frontier.pop() {
            for (from, f, to) in &self.edges {
                if *to == v && from != var {
                    let entry = out.entry(from.clone()).or_default();
                    if entry.insert(f.clone()) {
                        frontier.push(from.clone());
                    }
                }
            }
        }
        out
    }

    /// The *provenance signature* of a variable: the multiset of function
    /// labels on its derivation cone (exported to `lake-discovery`'s
    /// Juneau provenance signal).
    pub fn provenance_signature(&self, var: &str) -> Vec<String> {
        let mut sig: Vec<String> = Vec::new();
        let mut seen_edges = BTreeSet::new();
        let mut frontier = vec![var.to_string()];
        while let Some(v) = frontier.pop() {
            for (i, (from, f, to)) in self.edges.iter().enumerate() {
                if *to == v && seen_edges.insert(i) {
                    sig.push(f.clone());
                    frontier.push(from.clone());
                }
            }
        }
        sig.sort();
        sig
    }

    /// Workflow (provenance) similarity of two variables: Jaccard of
    /// their provenance signatures — the practical surrogate Juneau uses
    /// in place of full subgraph isomorphism for ranking.
    pub fn provenance_similarity(&self, a: &str, other: &VariableDependencyGraph, b: &str) -> f64 {
        let sa = self.provenance_signature(a);
        let sb = other.provenance_signature(b);
        if sa.is_empty() && sb.is_empty() {
            return 0.0;
        }
        jaccard(&sa, &sb)
    }

    /// Exact labeled-subgraph check: does every `(function)` edge chain of
    /// `pattern` embed into this graph (respecting direction and labels)?
    /// Used for the "tables sharing similar workflows" discovery on small
    /// patterns.
    pub fn contains_chain(&self, pattern: &[&str]) -> bool {
        if pattern.is_empty() {
            return true;
        }
        // Start anywhere: find edges with the first label and walk.
        fn walk(g: &VariableDependencyGraph, at: &str, rest: &[&str]) -> bool {
            if rest.is_empty() {
                return true;
            }
            g.edges
                .iter()
                .any(|(from, f, to)| from == at && f == rest[0] && walk(g, to, &rest[1..]))
        }
        self.edges
            .iter()
            .filter(|(_, f, _)| f == pattern[0])
            .any(|(_, _, to)| walk(self, to, &pattern[1..]))
    }

    /// Table 2 row for the variable-dependency DAG.
    pub fn describe(&self) -> DagDescription {
        DagDescription {
            system: "Juneau (variable dependency)",
            function: "Measure table relatedness w.r.t. notebook workflow",
            node: "Notebook variables",
            edge: "Notebook functions (as edge labels)",
            edge_direction: "From the input variable of the function to the output variable",
            nodes_built: self.variables().len(),
            edges_built: self.edges.len(),
        }
    }
}

/// A deterministic synthetic notebook session (the Jupyter-corpus
/// substitution from DESIGN.md): `steps` chained data-science operations.
pub fn synth_notebook(name: &str, steps: &[&str]) -> Notebook {
    let mut nb = Notebook::new(name);
    let mut prev = "raw".to_string();
    nb.cell("read_csv", &["path"], &prev.clone());
    for (i, op) in steps.iter().enumerate() {
        let out = format!("df{i}");
        nb.cell(op, &[prev.as_str()], &out);
        prev = out;
    }
    nb
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Notebook {
        let mut nb = Notebook::new("analysis");
        nb.cell("read_csv", &["path"], "raw")
            .cell("dropna", &["raw"], "clean")
            .cell("read_csv", &["path2"], "other")
            .cell("merge", &["clean", "other"], "joined")
            .cell("groupby", &["joined"], "report");
        nb
    }

    #[test]
    fn workflow_graph_is_bipartite() {
        let g = WorkflowGraph::from_notebook(&sample());
        assert!(g.is_bipartite());
        assert_eq!(g.module_nodes.len(), 5);
        assert!(g.data_nodes.contains("joined"));
        // merge has two input edges.
        assert_eq!(g.inputs.iter().filter(|(_, m)| *m == 3).count(), 2);
    }

    #[test]
    fn variable_graph_edges_are_labeled_and_directed() {
        let g = VariableDependencyGraph::from_notebook(&sample());
        assert!(g
            .edges
            .contains(&("clean".to_string(), "merge".to_string(), "joined".to_string())));
        assert_eq!(g.variables().len(), 7);
    }

    #[test]
    fn ancestors_walk_transitively() {
        let g = VariableDependencyGraph::from_notebook(&sample());
        let anc = g.ancestors_of("report");
        assert!(anc.contains_key("raw"));
        assert!(anc.contains_key("clean"));
        assert!(anc.contains_key("other"));
        assert!(anc["joined"].contains("groupby"));
        assert!(!anc.contains_key("report"));
    }

    #[test]
    fn provenance_similarity_matches_shared_pipelines() {
        let nb1 = synth_notebook("a", &["dropna", "normalize", "groupby"]);
        let nb2 = synth_notebook("b", &["dropna", "normalize", "groupby"]);
        let nb3 = synth_notebook("c", &["pivot", "plot"]);
        let g1 = VariableDependencyGraph::from_notebook(&nb1);
        let g2 = VariableDependencyGraph::from_notebook(&nb2);
        let g3 = VariableDependencyGraph::from_notebook(&nb3);
        let same = g1.provenance_similarity("df2", &g2, "df2");
        let diff = g1.provenance_similarity("df2", &g3, "df1");
        assert_eq!(same, 1.0);
        assert!(diff < same);
    }

    #[test]
    fn chain_containment_detects_workflow_patterns() {
        let g = VariableDependencyGraph::from_notebook(&sample());
        assert!(g.contains_chain(&["read_csv", "dropna", "merge"]));
        assert!(g.contains_chain(&["merge", "groupby"]));
        assert!(!g.contains_chain(&["groupby", "merge"]));
        assert!(g.contains_chain(&[]));
    }

    #[test]
    fn describe_reports_counts() {
        let g = VariableDependencyGraph::from_notebook(&sample());
        let d = g.describe();
        assert_eq!(d.nodes_built, 7);
        assert_eq!(d.edges_built, 6);
        assert_eq!(d.system, "Juneau (variable dependency)");
    }
}
