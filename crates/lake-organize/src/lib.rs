//! # lake-organize
//!
//! Dataset organization (survey §6.1, Table 2): how to structure and
//! navigate the mass of heterogeneous datasets in a lake.
//!
//! * [`goods`] — GOODS-style catalog organization: six metadata
//!   categories, version clustering, provenance triples (§6.1.1).
//! * [`dsknn`] — DS-Prox / DS-kNN classification-model organization:
//!   dataset feature extraction + incremental k-NN categorization
//!   (§6.1.2).
//! * [`kayak`] — KAYAK: primitives built from atomic tasks, the *pipeline*
//!   DAG and the *task-dependency* DAG, and a parallel scheduler
//!   exploiting the dependency DAG (§6.1.3, Table 2 rows 1–2).
//! * [`organization`] — Nargesian et al.'s data lake organizations:
//!   attribute-set DAGs navigated as a Markov model, optimized for
//!   discovery probability (§6.1.3, Table 2 row 3).
//! * [`ronin`] — RONIN: organization navigation combined with keyword and
//!   joinable-dataset search (§6.1.3).
//! * [`notebook`] — Juneau's notebook machinery: workflow graphs and
//!   variable-dependency DAGs with subgraph-based table relatedness
//!   (§6.1.3, Table 2 row 4; feeds `lake-discovery`'s Juneau signals).
//!
//! Each DAG-flavoured module exposes a [`DagDescription`] so the Table 2
//! comparison can be generated from the implementations themselves.

pub mod dsknn;
pub mod goods;
pub mod kayak;
pub mod notebook;
pub mod organization;
pub mod preview;
pub mod ronin;

/// Self-description of a DAG-based organization approach — the rows of the
/// survey's Table 2, generated from code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DagDescription {
    /// System / variant name.
    pub system: &'static str,
    /// What the DAG is for.
    pub function: &'static str,
    /// What nodes represent.
    pub node: &'static str,
    /// What edges represent.
    pub edge: &'static str,
    /// Edge direction semantics.
    pub edge_direction: &'static str,
    /// Measured node count (filled by the experiment harness).
    pub nodes_built: usize,
    /// Measured edge count.
    pub edges_built: usize,
}
